"""The stream equivalence oracle.

For seeded randomized delta streams, at every step the incremental path
(``incremental_prepare`` + ``StreamRunner.run_incremental`` reusing the
previous step's unit records) must produce a ``RempResult`` *byte-for-byte
identical* (same serialized document) to a from-scratch run on the
post-delta KB pair — across scales, error rates and worker counts — and
its spliced prepared state must serialize identically to a from-scratch
``Remp.prepare``.  Crowd budget conservation rides along: a pair living
in a clean (reused) unit is never re-billed by an update.
"""

import json

import pytest

from repro.core import Remp, RempConfig
from repro.datasets import evolving_bundle
from repro.partition import CrowdSpec
from repro.store.serialize import prepared_state_to_doc, result_to_doc
from repro.stream import StreamRunner, incremental_prepare


def _doc(result) -> str:
    return json.dumps(result_to_doc(result), sort_keys=True)


def _crowd(truth, error_rate, seed):
    return CrowdSpec(truth=truth, error_rate=error_rate, seed=seed)


def _incremental_chain(evolving, seed, workers, error_rate):
    """Run base + every delta incrementally; yield (step, state, outcome)."""
    config = RempConfig()
    runner = StreamRunner(config, seed=seed, workers=workers)
    state = Remp(config).prepare(evolving.base.kb1, evolving.base.kb2)
    outcome = runner.run_full(state, _crowd(evolving.gold_at(0), error_rate, seed))
    yield 0, state, outcome
    for step, delta in enumerate(evolving.deltas, start=1):
        prepared = incremental_prepare(state, delta, config)
        state = prepared.state
        outcome = runner.run_incremental(
            state,
            _crowd(evolving.gold_at(step), error_rate, seed),
            dirty=prepared.changed,
            reuse=outcome.records,
        )
        yield step, state, outcome


def _from_scratch(evolving, step, seed, workers, error_rate):
    config = RempConfig()
    bundle = evolving.bundle_at(step)
    state = Remp(config).prepare(bundle.kb1, bundle.kb2)
    runner = StreamRunner(config, seed=seed, workers=workers)
    return state, runner.run_full(state, _crowd(bundle.gold_matches, error_rate, seed))


class TestEquivalenceOracle:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("scale", [0.4, 0.75])
    def test_incremental_equals_from_scratch(self, seed, scale):
        """Every step of every seeded stream: results byte-identical."""
        evolving = evolving_bundle(seed=seed, scale=scale, steps=3)
        for step, state, outcome in _incremental_chain(
            evolving, seed=seed, workers=1, error_rate=0.1
        ):
            ref_state, ref = _from_scratch(
                evolving, step, seed=seed, workers=1, error_rate=0.1
            )
            assert prepared_state_to_doc(state) == prepared_state_to_doc(ref_state), (
                f"prepared-state drift at step {step} (seed={seed}, scale={scale})"
            )
            assert _doc(outcome.result) == _doc(ref.result), (
                f"result drift at step {step} (seed={seed}, scale={scale})"
            )

    def test_equivalence_under_oracle_crowd(self):
        evolving = evolving_bundle(seed=3, scale=0.5, steps=3)
        for step, _, outcome in _incremental_chain(
            evolving, seed=3, workers=1, error_rate=0.0
        ):
            _, ref = _from_scratch(evolving, step, seed=3, workers=1, error_rate=0.0)
            assert _doc(outcome.result) == _doc(ref.result)

    @pytest.mark.parametrize("workers", [1, 4])
    def test_equivalence_across_worker_counts(self, workers):
        """workers=4 incremental == workers=1 from-scratch, at every step."""
        evolving = evolving_bundle(seed=0, scale=0.75, steps=2)
        for step, _, outcome in _incremental_chain(
            evolving, seed=0, workers=workers, error_rate=0.1
        ):
            _, ref = _from_scratch(evolving, step, seed=0, workers=1, error_rate=0.1)
            assert _doc(outcome.result) == _doc(ref.result), (
                f"worker-count drift at step {step} (workers={workers})"
            )


class TestBudgetConservation:
    def _log_questions(self, record):
        return {tuple(entry["question"]) for entry in record.answer_log}

    def test_surviving_pairs_never_rebilled(self):
        """An update's new spend never includes a previously billed question.

        Reused units execute nothing, and the driver's ``questions_new``
        excludes everything in the lineage's answer logs — recomputed
        here independently from the per-unit records.
        """
        evolving = evolving_bundle(seed=1, scale=0.75, steps=3)
        previous_records = None
        for step, _, outcome in _incremental_chain(
            evolving, seed=1, workers=1, error_rate=0.1
        ):
            assert not outcome.reused_keys & outcome.executed_keys
            if previous_records is None:
                assert outcome.questions_new == len(
                    set().union(
                        *(
                            self._log_questions(r)
                            for r in outcome.records.values()
                        ),
                        set(),
                    )
                )
            else:
                inherited = set()
                for record in previous_records.values():
                    inherited |= self._log_questions(record)
                fresh = set()
                for key in outcome.executed_keys:
                    fresh |= self._log_questions(outcome.records[key])
                # The driver's accounting matches the independent recount.
                assert outcome.questions_new == len(fresh - inherited)
                # Questions of surviving (reused) units are disjoint from
                # any newly billed question.
                surviving = set()
                for key in outcome.reused_keys:
                    surviving |= self._log_questions(outcome.records[key])
                assert not (fresh - inherited) & surviving
            previous_records = outcome.records

    def test_reuse_actually_happens(self):
        """The suite must exercise real reuse, not vacuous dirt-everything."""
        evolving = evolving_bundle(seed=1, scale=0.75, steps=3)
        reused_total = 0
        for step, _, outcome in _incremental_chain(
            evolving, seed=1, workers=1, error_rate=0.1
        ):
            if step > 0:
                reused_total += len(outcome.reused_keys)
        assert reused_total > 0

    def test_logical_billing_matches_platform_semantics(self):
        """The merged result's questions_asked equals the from-scratch bill."""
        evolving = evolving_bundle(seed=2, scale=0.5, steps=2)
        for step, _, outcome in _incremental_chain(
            evolving, seed=2, workers=1, error_rate=0.1
        ):
            _, ref = _from_scratch(evolving, step, seed=2, workers=1, error_rate=0.1)
            assert outcome.result.questions_asked == ref.result.questions_asked
            assert outcome.questions_total == ref.result.questions_asked
            assert outcome.questions_new <= outcome.questions_total
