"""Tests for the fault plane: plan model, probes, and supervised recovery.

The contract under test: faults fire only at explicit ``faults.check``
probes, deterministically; every recovery path (store write retry, crowd
retry, shard requeue, worker replenishment, quarantine, resume) ends in
a result *byte-identical* to the fault-free run — including the billed
``questions_asked`` — or in a structured :class:`PartialResult`.
"""

import json
import multiprocessing
import sqlite3
import time

import pytest

from repro import faults
from repro.core import RempConfig
from repro.core.pipeline import LoopCheckpoint
from repro.crowd import CrowdPlatform, CrowdRetryPolicy, CrowdUnavailableError, Oracle
from repro.obs import RunScope
from repro.obs.live import BUS
from repro.partition import CrowdSpec, ParallelRunner, PartialResult
from repro.store import RunStore
from repro.store.serialize import result_to_doc
from repro.stream import StreamRunner


def _doc(result) -> str:
    return json.dumps(result_to_doc(result), sort_keys=True)


@pytest.fixture(scope="module")
def bundle(clustered6_bundle):
    return clustered6_bundle


@pytest.fixture(scope="module")
def state(prepared_clustered6):
    return prepared_clustered6


@pytest.fixture(scope="module")
def crowd(bundle):
    return CrowdSpec(truth=bundle.gold_matches, error_rate=0.0, seed=0)


@pytest.fixture(scope="module")
def reference(state, crowd):
    """Fault-free workers=1 run plus per-shard checkpoint depth."""
    assert faults.current_plan() is None
    events = []
    result = ParallelRunner(workers=1, on_event=events.append).run(state, crowd)
    loops: dict[int, int] = {}
    for event in events:
        if event.kind == "checkpointed":
            loops[event.shard_id] = max(loops.get(event.shard_id, 0), event.loops)
    return result, loops


def _victim(loops: dict[int, int]) -> int:
    """The graph shard with the deepest checkpoint history."""
    shard_id = max(loops, key=loops.get)
    assert loops[shard_id] >= 1
    return shard_id


# ----------------------------------------------------------------------
# Plan model
# ----------------------------------------------------------------------
class TestFaultPlanModel:
    def test_rule_validation(self):
        with pytest.raises(ValueError):
            faults.FaultRule("store.write", action="explode")
        with pytest.raises(ValueError):
            faults.FaultRule("store.write", times=0)
        with pytest.raises(ValueError):
            faults.FaultRule("store.write", action="delay", delay=-1.0)

    def test_times_budget_and_where_filters(self):
        plan = faults.FaultPlan(
            [faults.FaultRule("crowd.answer", times=2, where={"attempt": 0})]
        )
        assert plan.select("crowd.answer", {"attempt": 1}) is None
        assert plan.select("crowd.answer", {"attempt": 0}) is not None
        assert plan.select("crowd.answer", {"attempt": 0}) is not None
        assert plan.select("crowd.answer", {"attempt": 0}) is None  # budget spent
        assert plan.fired() == 2
        plan.reset()
        assert plan.fired() == 0
        assert plan.select("crowd.answer", {"attempt": 0}) is not None

    def test_where_missing_field_never_matches(self):
        rule = faults.FaultRule("store.write", where={"op": "create_run"})
        assert not rule.matches("store.write", {})
        assert rule.matches("store.write", {"op": "create_run", "attempt": 3})

    def test_fnmatch_site_pattern(self):
        plan = faults.FaultPlan([faults.FaultRule("worker.*", times=None)])
        assert plan.select("worker.start", {}) is not None
        assert plan.select("worker.mid_shard", {}) is not None
        assert plan.select("store.write", {}) is None

    def test_where_tuples_survive_json_round_trip(self):
        rule = faults.FaultRule("crowd.answer", where={"question": ("a", "b")})
        doc = json.loads(json.dumps(rule.to_doc()))
        revived = faults.FaultRule.from_doc(doc)
        # The probe supplies a tuple; the revived filter holds a JSON list.
        assert revived.matches("crowd.answer", {"question": ("a", "b")})
        assert not revived.matches("crowd.answer", {"question": ("a", "c")})

    def test_plan_round_trip_and_bare_list_shorthand(self):
        plan = faults.FaultPlan(
            [
                faults.FaultRule("store.write", times=None),
                faults.FaultRule("crowd.answer", action="delay", delay=0.5),
            ]
        )
        revived = faults.FaultPlan.from_doc(json.loads(json.dumps(plan.to_doc())))
        assert revived.to_doc() == plan.to_doc()
        bare = faults.FaultPlan.from_doc([{"site": "worker.start"}])
        assert bare.rules[0].site == "worker.start"
        assert bare.rules[0].action == "error"

    def test_parse_plan_json_and_file(self, tmp_path):
        text = json.dumps({"rules": [{"site": "store.write", "times": 3}]})
        assert faults.parse_plan(text).rules[0].times == 3
        path = tmp_path / "plan.json"
        path.write_text(text)
        assert faults.parse_plan(f"@{path}").rules[0].times == 3
        assert faults.parse_plan("  ").rules == []


class TestProbeRuntime:
    def test_no_plan_is_a_noop(self):
        assert faults.check("store.write", op="anything") is None

    def test_error_action_raises_and_counts(self):
        plan = faults.FaultPlan([faults.FaultRule("store.write")])
        scope = RunScope("run-f")
        with scope.activate(), faults.activate(plan):
            with pytest.raises(faults.InjectedFault):
                faults.check("store.write", op="save_checkpoint", attempt=0)
            assert faults.check("store.write", op="save_checkpoint") is None
        assert scope.metrics.counter("fault.injected") == 1
        assert scope.metrics.counter("fault.injected.store.write") == 1

    def test_delay_action_sleeps_and_reports(self):
        plan = faults.FaultPlan(
            [faults.FaultRule("crowd.answer", action="delay", delay=0.05)]
        )
        with faults.activate(plan):
            started = time.perf_counter()
            assert faults.check("crowd.answer") == "delay"
            assert time.perf_counter() - started >= 0.04

    def test_activation_precedence_and_disabled(self, monkeypatch):
        monkeypatch.setenv(
            faults.ENV_VAR, json.dumps([{"site": "store.write", "times": None}])
        )
        env_plan = faults.current_plan()
        assert env_plan is not None and env_plan.rules[0].site == "store.write"
        override = faults.FaultPlan([faults.FaultRule("crowd.answer")])
        with faults.activate(override):
            assert faults.current_plan() is override
            with faults.disabled():
                assert faults.current_plan() is None
                assert faults.check("crowd.answer") is None
            assert faults.current_plan() is override
        monkeypatch.delenv(faults.ENV_VAR)
        assert faults.current_plan() is None

    def test_injection_publishes_bus_event(self):
        seen = []
        token = BUS.subscribe(seen.append)
        try:
            plan = faults.FaultPlan([faults.FaultRule("worker.mid_shard")])
            with RunScope("run-bus").activate(), faults.activate(plan):
                with pytest.raises(faults.InjectedFault):
                    faults.check("worker.mid_shard", shard_id=7)
        finally:
            BUS.unsubscribe(token)
        kinds = [event["kind"] for event in seen]
        assert "fault.injected" in kinds
        event = seen[kinds.index("fault.injected")]
        assert event["site"] == "worker.mid_shard"
        assert event["action"] == "error"


# ----------------------------------------------------------------------
# Store: write retry, busy timeout, leases
# ----------------------------------------------------------------------
class TestStoreFaults:
    def test_busy_timeout_pragma(self, tmp_path, monkeypatch):
        with RunStore(tmp_path / "a.db") as store:
            row = store._conn.execute("PRAGMA busy_timeout").fetchone()
            assert row[0] == 5000
        monkeypatch.setenv("REPRO_SQLITE_BUSY_TIMEOUT_MS", "1234")
        with RunStore(tmp_path / "b.db") as store:
            row = store._conn.execute("PRAGMA busy_timeout").fetchone()
            assert row[0] == 1234

    def test_injected_write_failure_is_retried_once(self, tmp_path):
        plan = faults.FaultPlan(
            [faults.FaultRule("store.write", where={"attempt": 0})]
        )
        scope = RunScope("run-s")
        with RunStore(tmp_path / "runs.db") as store:
            with scope.activate(), faults.activate(plan):
                store.save_substrate_blob("k", 1, 1, b"\x00" * 8)
            assert store.load_substrate_blob("k") == (1, 1, b"\x00" * 8)
        assert plan.fired() == 1
        assert scope.metrics.counter("store.write.retry") == 1

    def test_write_retry_exhaustion_propagates(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_WRITE_RETRIES", "1")
        plan = faults.FaultPlan([faults.FaultRule("store.write", times=None)])
        with RunStore(tmp_path / "runs.db") as store:
            with faults.activate(plan):
                with pytest.raises(faults.InjectedFault):
                    store.save_substrate_blob("k", 1, 1, b"\x00" * 8)
            assert store.load_substrate_blob("k") is None
        assert plan.fired() == 2  # initial attempt + one retry

    def test_locked_error_is_transient_other_errors_are_not(self, tmp_path):
        with RunStore(tmp_path / "runs.db") as store:
            calls = []

            def locked_once(conn):
                if not calls:
                    calls.append(1)
                    raise sqlite3.OperationalError("database is locked")
                return 42

            assert store._write("test_op", locked_once) == 42
            assert len(calls) == 1

            attempts = []

            def always_broken(conn):
                attempts.append(1)
                raise sqlite3.OperationalError("no such table: nope")

            with pytest.raises(sqlite3.OperationalError):
                store._write("test_op", always_broken)
            assert len(attempts) == 1  # non-transient: no retry

    def test_lease_lifecycle(self, tmp_path):
        with RunStore(tmp_path / "runs.db") as store:
            assert store.acquire_shard_lease("r", 0, "pid:1", ttl=10.0, now=100.0)
            assert not store.acquire_shard_lease("r", 0, "pid:2", ttl=10.0, now=105.0)
            assert store.acquire_shard_lease("r", 0, "pid:1", ttl=10.0, now=105.0)
            lease = store.shard_lease("r", 0)
            assert lease["owner"] == "pid:1"
            assert lease["expires"] == 115.0
            assert store.heartbeat_shard_lease("r", 0, "pid:1", ttl=10.0, now=110.0)
            assert not store.heartbeat_shard_lease("r", 0, "pid:9", ttl=10.0, now=110.0)
            assert store.expired_shard_leases("r", now=119.0) == []
            assert store.expired_shard_leases("r", now=121.0) == [0]
            # An expired lease is free for the taking.
            assert store.acquire_shard_lease("r", 0, "pid:2", ttl=10.0, now=121.0)
            assert store.release_shard_lease("r", 0, "pid:2")
            assert store.shard_lease("r", 0)["owner"] is None
            assert store.bump_shard_attempts("r", 0) == 1
            assert store.bump_shard_attempts("r", 0) == 2

    def test_lease_stub_rows_are_invisible_to_resume(self, tmp_path):
        with RunStore(tmp_path / "runs.db") as store:
            store.acquire_shard_lease("r", 3, "pid:1")
            assert store.load_shard_records("r") == {}

    def test_checkpoint_write_preserves_lease_columns(self, tmp_path):
        checkpoint = LoopCheckpoint(
            next_loop_index=1,
            questions_asked=4,
            history=[],
            loop_state={},
            answer_log=[],
        )
        with RunStore(tmp_path / "runs.db") as store:
            store.acquire_shard_lease("r", 0, "pid:1", ttl=10.0, now=100.0)
            store.bump_shard_attempts("r", 0)
            store.save_shard_checkpoint("r", 0, checkpoint)
            lease = store.shard_lease("r", 0)
            assert lease["owner"] == "pid:1"
            assert lease["attempts"] == 1
            records = store.load_shard_records("r")
            assert records[0][0] == "loop"
            assert records[0][1].questions_asked == 4

    def test_corrupted_blob_degrades_to_repack(self, tmp_path):
        payload = bytes(range(64))
        plan = faults.FaultPlan(
            [faults.FaultRule("substrate.blob.load", action="corrupt")]
        )
        with RunStore(tmp_path / "runs.db") as store:
            store.save_substrate_blob("k", 8, 1, payload)
            with faults.activate(plan):
                # The corrupted payload fails its digest check: absent, so
                # the caller re-packs rather than trusting a wrong matrix.
                assert store.load_substrate_blob("k") is None
            assert plan.fired() == 1
            assert store.load_substrate_blob("k") == (8, 1, payload)
            # Re-saving (what the caller does after the re-pack) restores
            # a verified row.
            store.save_substrate_blob("k", 8, 1, payload)
            assert store.load_substrate_blob("k") == (8, 1, payload)


# ----------------------------------------------------------------------
# Crowd: timeout/retry policy, billing conservation
# ----------------------------------------------------------------------
def _oracle_platform(truth, policy) -> CrowdPlatform:
    return CrowdPlatform(
        [Oracle()], truth, workers_per_question=1, retry_policy=policy
    )


class TestCrowdRetry:
    TRUTH = {("a", "b")}

    def test_retry_policy_validation(self):
        with pytest.raises(ValueError):
            CrowdRetryPolicy(attempts=0)
        with pytest.raises(ValueError):
            CrowdRetryPolicy(backoff=-1.0)
        assert CrowdRetryPolicy(backoff=0.1).delay(2) == pytest.approx(0.4)

    def test_retry_reproduces_labels_and_bills_once(self):
        policy = CrowdRetryPolicy(attempts=3, backoff=0.0)
        clean = _oracle_platform(self.TRUTH, policy)
        expected = clean.ask(("a", "b"))
        platform = _oracle_platform(self.TRUTH, policy)
        plan = faults.FaultPlan(
            [faults.FaultRule("crowd.answer", where={"attempt": 0})]
        )
        scope = RunScope("run-c")
        with scope.activate(), faults.activate(plan):
            records = platform.ask(("a", "b"))
        assert records == expected
        assert platform.questions_asked == 1
        assert plan.fired() == 1
        assert scope.metrics.counter("crowd.retry") == 1
        # The recorded answer is cached: asking again costs nothing and
        # probes nothing.
        with faults.activate(faults.FaultPlan([faults.FaultRule("crowd.answer")])):
            assert platform.ask(("a", "b")) == expected
        assert platform.questions_asked == 1

    def test_exhausted_retries_raise_unavailable_and_bill_nothing(self):
        platform = _oracle_platform(
            self.TRUTH, CrowdRetryPolicy(attempts=2, backoff=0.0)
        )
        plan = faults.FaultPlan(
            [faults.FaultRule("crowd.answer", times=None)]
        )
        with faults.activate(plan):
            with pytest.raises(CrowdUnavailableError):
                platform.ask(("a", "b"))
        assert plan.fired() == 2
        assert platform.questions_asked == 0
        assert platform.ask(("a", "b"))  # recovers once the fault clears

    def test_slow_answers_are_counted(self):
        platform = _oracle_platform(
            self.TRUTH, CrowdRetryPolicy(attempts=1, slow_threshold=0.0)
        )
        scope = RunScope("run-slow")
        with scope.activate():
            platform.ask(("a", "b"))
        assert scope.metrics.counter("crowd.slow") == 1


# ----------------------------------------------------------------------
# Supervised pool execution
# ----------------------------------------------------------------------
def _assert_no_stray_children():
    time.sleep(0.2)
    assert not multiprocessing.active_children()


def _env_rules(monkeypatch, rules: list[dict]) -> None:
    monkeypatch.setenv(faults.ENV_VAR, json.dumps(rules))


START_METHODS = [
    method
    for method in ("fork", "spawn")
    if method in multiprocessing.get_all_start_methods()
]


class TestSupervisedPool:
    @pytest.mark.parametrize("start_method", START_METHODS)
    def test_killed_worker_is_requeued_byte_identically(
        self, state, crowd, reference, monkeypatch, start_method
    ):
        ref_result, loops = reference
        victim = _victim(loops)
        monkeypatch.setenv("REPRO_START_METHOD", start_method)
        # ``where`` (not ``times``) keys the rule: spawn workers re-parse
        # the env plan with fresh counters, but the requeued task carries
        # attempt=1 so the replacement worker sails past the probe.
        _env_rules(
            monkeypatch,
            [
                {
                    "site": "worker.mid_shard",
                    "action": "kill",
                    "where": {"shard_id": victim, "attempt": 0},
                }
            ],
        )
        events = []
        scope = RunScope("run-kill")
        with scope.activate():
            result = ParallelRunner(workers=2, on_event=events.append).run(
                state, crowd
            )
        assert _doc(result) == _doc(ref_result)
        assert result.questions_asked == ref_result.questions_asked
        retried = [e for e in events if e.kind == "retried"]
        assert [(e.shard_id, e.attempt) for e in retried] == [(victim, 1)]
        assert scope.metrics.counter("fault.worker_death") == 1
        assert scope.metrics.counter("fault.shard_retry") == 1
        _assert_no_stray_children()

    def test_worker_startup_failure_replenishes_pool(
        self, state, crowd, reference, monkeypatch
    ):
        ref_result, _ = reference
        _env_rules(
            monkeypatch,
            [{"site": "worker.start", "action": "error", "where": {"worker": 0}}],
        )
        scope = RunScope("run-start")
        with scope.activate():
            result = ParallelRunner(workers=2).run(state, crowd)
        assert _doc(result) == _doc(ref_result)
        assert scope.metrics.counter("fault.worker_death") == 1
        # No shard was claimed by the stillborn worker: nothing retried.
        assert scope.metrics.counter("fault.shard_retry") == 0
        _assert_no_stray_children()

    def test_transient_worker_error_is_retried(
        self, state, crowd, reference, monkeypatch
    ):
        ref_result, loops = reference
        victim = _victim(loops)
        _env_rules(
            monkeypatch,
            [
                {
                    "site": "worker.mid_shard",
                    "action": "error",
                    "where": {"shard_id": victim, "attempt": 0},
                }
            ],
        )
        events = []
        result = ParallelRunner(workers=2, on_event=events.append).run(state, crowd)
        assert _doc(result) == _doc(ref_result)
        assert any(e.kind == "retried" and e.shard_id == victim for e in events)
        _assert_no_stray_children()

    def test_inline_execution_shares_the_retry_loop(
        self, state, crowd, reference, monkeypatch
    ):
        ref_result, loops = reference
        victim = _victim(loops)
        _env_rules(
            monkeypatch,
            [
                {
                    "site": "worker.mid_shard",
                    "action": "error",
                    "where": {"shard_id": victim, "attempt": 0},
                }
            ],
        )
        events = []
        result = ParallelRunner(workers=1, on_event=events.append).run(state, crowd)
        assert _doc(result) == _doc(ref_result)
        assert any(e.kind == "retried" and e.shard_id == victim for e in events)

    def test_poison_shard_quarantines_into_partial_result(
        self, state, crowd, reference, monkeypatch
    ):
        ref_result, loops = reference
        victim = _victim(loops)
        _env_rules(
            monkeypatch,
            [
                {
                    "site": "worker.mid_shard",
                    "action": "error",
                    "times": None,
                    "where": {"shard_id": victim},
                }
            ],
        )
        events = []
        scope = RunScope("run-poison")
        with scope.activate():
            with pytest.raises(PartialResult) as info:
                ParallelRunner(
                    workers=2, on_event=events.append, max_shard_retries=1
                ).run(state, crowd)
        partial = info.value
        assert [q["shard_id"] for q in partial.quarantined] == [victim]
        assert partial.quarantined[0]["attempts"] == 2
        assert partial.quarantined[0]["kind"] == "graph"
        # The healthy shards' merged outcome rides along, strictly smaller
        # than the reference.
        assert partial.result.matches < ref_result.matches
        assert partial.result.questions_asked < ref_result.questions_asked
        assert any(e.kind == "quarantined" and e.shard_id == victim for e in events)
        assert scope.metrics.counter("fault.quarantine") == 1
        # Regression: no worker outlives a degraded run.
        _assert_no_stray_children()

    def test_kill_then_resume_from_store(
        self, state, crowd, reference, monkeypatch, tmp_path
    ):
        ref_result, loops = reference
        victim = _victim(loops)
        _env_rules(
            monkeypatch,
            [
                {
                    "site": "worker.mid_shard",
                    "action": "kill",
                    "where": {"shard_id": victim, "attempt": 0},
                }
            ],
        )
        store = RunStore(tmp_path / "runs.db")
        with store:
            with pytest.raises(PartialResult):
                ParallelRunner(
                    workers=2, store=store, run_id="r", max_shard_retries=0
                ).run(state, crowd)
            _assert_no_stray_children()
            # The healthy shards persisted their results; the victim's
            # lease stub must not masquerade as a checkpoint.
            records = store.load_shard_records("r")
            assert records and victim not in records
            assert all(record[0] == "done" for record in records.values())
            # A later run on the same store finishes the quarantined shard
            # and lands byte-identical to the fault-free reference.
            monkeypatch.delenv(faults.ENV_VAR)
            events = []
            result = ParallelRunner(
                workers=2, store=store, run_id="r", on_event=events.append
            ).run(state, crowd)
            assert _doc(result) == _doc(ref_result)
            assert result.questions_asked == ref_result.questions_asked
            restored = {e.shard_id for e in events if e.kind == "restored"}
            assert restored == set(records)
        _assert_no_stray_children()


# ----------------------------------------------------------------------
# The chaos equivalence oracle
# ----------------------------------------------------------------------
class TestChaosEquivalence:
    def _chaos_rules(self, victim: int) -> list[dict]:
        return [
            # One worker killed mid-shard (first attempt only).
            {
                "site": "worker.mid_shard",
                "action": "kill",
                "where": {"shard_id": victim, "attempt": 0},
            },
            # One transient store write failure (first attempt only).
            {
                "site": "store.write",
                "action": "error",
                "where": {"op": "save_shard_checkpoint", "attempt": 0},
                "times": 1,
            },
            # One slow and one failing crowd answer (retried internally).
            {"site": "crowd.answer", "action": "delay", "delay": 0.01, "times": 1},
            {"site": "crowd.answer", "action": "error", "where": {"attempt": 0}},
        ]

    def test_partitioned_run_survives_chaos_byte_identically(
        self, state, crowd, reference, monkeypatch, tmp_path
    ):
        ref_result, loops = reference
        victim = _victim(loops)
        _env_rules(monkeypatch, self._chaos_rules(victim))
        scope = RunScope("run-chaos")
        with RunStore(tmp_path / "runs.db") as store, scope.activate():
            result = ParallelRunner(workers=2, store=store, run_id="r").run(
                state, crowd
            )
        assert _doc(result) == _doc(ref_result)
        assert result.questions_asked == ref_result.questions_asked
        assert scope.metrics.counter("fault.worker_death") == 1
        assert scope.metrics.counter("store.write.retry") >= 1
        _assert_no_stray_children()

    def test_stream_run_survives_chaos_byte_identically(
        self, state, crowd, monkeypatch
    ):
        # The stream layer shards at max_shard_size=1, so the victim comes
        # from a fault-free stream reference, not the partitioned plan.
        events = []
        runner = StreamRunner(RempConfig(), seed=0, workers=2, on_event=events.append)
        ref = runner.run_full(state, crowd)
        loops: dict[int, int] = {}
        for event in events:
            if event.kind == "checkpointed":
                loops[event.shard_id] = max(loops.get(event.shard_id, 0), event.loops)
        victim = _victim(loops)
        rules = [rule for rule in self._chaos_rules(victim) if rule["site"] != "store.write"]
        _env_rules(monkeypatch, rules)
        chaotic = StreamRunner(RempConfig(), seed=0, workers=2).run_full(state, crowd)
        assert _doc(chaotic.result) == _doc(ref.result)
        assert chaotic.result.questions_asked == ref.result.questions_asked
        _assert_no_stray_children()
