"""Standard exporters: Chrome trace, Prometheus text, bench history, filters."""

import json

from repro.cli import main
from repro.obs.export import (
    append_bench_history,
    chrome_trace,
    filter_spans,
    history_path,
    load_bench_history,
    prometheus_text,
    validate_chrome_trace,
)
from repro.service import MatchingService
from repro.store import RunStore

SPANS = [
    {"name": "prepare", "ts": 10.0, "dur": 0.5, "run_id": "r1"},
    {"name": "loop.iteration", "ts": 10.6, "dur": 0.25, "run_id": "r1", "loop": 1},
    {"name": "shard.work", "ts": 10.7, "dur": 0.1, "run_id": "r1", "shard_id": 2},
    {"name": "mark", "ts": 10.9, "dur": 0.0, "run_id": "r1"},
]


class TestChromeTrace:
    def test_spans_become_complete_and_instant_events(self):
        doc = chrome_trace(SPANS)
        events = doc["traceEvents"]
        by_name = {e["name"]: e for e in events if e["ph"] != "M"}
        # Timestamps rebase to the earliest span, in microseconds.
        assert by_name["prepare"]["ts"] == 0
        assert by_name["prepare"]["dur"] == 500_000
        assert by_name["loop.iteration"]["ts"] == 600_000
        assert by_name["loop.iteration"]["args"]["loop"] == 1
        # Session spans on tid 0, shard spans on shard_id + 1.
        assert by_name["prepare"]["tid"] == 0
        assert by_name["shard.work"]["tid"] == 3
        # Zero-duration events become thread-scoped instants.
        assert by_name["mark"]["ph"] == "i"
        assert by_name["mark"]["s"] == "t"
        names = {
            e["args"]["name"] for e in events if e["ph"] == "M"
        }
        assert names == {"session", "shard 2"}

    def test_empty_span_list(self):
        doc = chrome_trace([])
        assert doc["traceEvents"] == []
        assert validate_chrome_trace(doc) == []

    def test_exported_trace_validates(self):
        assert validate_chrome_trace(chrome_trace(SPANS)) == []

    def test_validator_catches_structural_breaks(self):
        assert validate_chrome_trace({}) == ["traceEvents must be a list"]
        errors = validate_chrome_trace(
            {
                "traceEvents": [
                    "not-an-object",
                    {"ph": "X", "pid": 1, "tid": 0, "ts": -5},
                    {"name": "i", "ph": "i", "pid": 1, "tid": 0},
                    {"name": "z", "ph": "?", "pid": 1, "tid": 0},
                ]
            }
        )
        assert any("not an object" in e for e in errors)
        assert any("missing 'name'" in e for e in errors)
        assert any("bad ts" in e for e in errors)
        assert any("missing scope" in e for e in errors)
        assert any("unknown phase" in e for e in errors)


class TestPrometheusText:
    def test_counters_gauges_and_stage_families(self):
        text = prometheus_text(
            {
                "counters": {"crowd.questions_billed": 12},
                "gauges": {"stream.unit_reuse_rate": 0.75},
            },
            labels={"run_id": "r1", "dataset": "iimb"},
            timings={"prepare.vectors": {"seconds": 1.5, "calls": 2}},
        )
        assert "# TYPE repro_crowd_questions_billed_total counter" in text
        assert (
            'repro_crowd_questions_billed_total{dataset="iimb",run_id="r1"} 12'
            in text
        )
        assert "# TYPE repro_stream_unit_reuse_rate gauge" in text
        assert (
            'repro_stage_seconds{dataset="iimb",run_id="r1",stage="prepare.vectors"} 1.5'
            in text
        )
        assert (
            'repro_stage_calls{dataset="iimb",run_id="r1",stage="prepare.vectors"} 2'
            in text
        )
        assert text.endswith("\n")

    def test_names_and_label_values_escape(self):
        text = prometheus_text(
            {"counters": {"1weird-name": 1}, "gauges": {}},
            labels={"path": 'a"b\\c'},
        )
        assert "_1weird_name_total" in text
        assert r'path="a\"b\\c"' in text

    def test_empty_document_renders_empty(self):
        assert prometheus_text({"counters": {}, "gauges": {}}) == ""


class TestBenchHistory:
    def test_append_and_load_round_trip(self, tmp_path):
        path = tmp_path / "BENCH_history.jsonl"
        append_bench_history(
            "obs",
            meta={"clusters": 4},
            metrics={"gauges": {"bench.overhead": 0.01}},
            stages={"obs.traced_run": 1.25},
            path=path,
        )
        append_bench_history(
            "obs",
            stages={"obs.traced_run": {"seconds": 1.5, "calls": 1}},
            path=path,
        )
        entries = load_bench_history(path)
        assert [e["bench"] for e in entries] == ["obs", "obs"]
        assert entries[0]["meta"] == {"clusters": 4}
        # Stage docs normalise to plain seconds.
        assert entries[0]["stages"] == {"obs.traced_run": 1.25}
        assert entries[1]["stages"] == {"obs.traced_run": 1.5}

    def test_missing_history_loads_empty(self, tmp_path):
        assert load_bench_history(tmp_path / "nope.jsonl") == []

    def test_env_var_resolves_default_path(self, tmp_path, monkeypatch):
        target = tmp_path / "hist.jsonl"
        monkeypatch.setenv("REPRO_BENCH_HISTORY", str(target))
        assert history_path() == target
        append_bench_history("obs", stages={"s": 1.0})
        assert load_bench_history() and target.exists()
        monkeypatch.delenv("REPRO_BENCH_HISTORY")
        assert history_path().name == "BENCH_history.jsonl"


class TestFilterSpans:
    def test_name_substring_and_shard_filters(self):
        assert [s["name"] for s in filter_spans(SPANS, name="loop")] == [
            "loop.iteration"
        ]
        assert [s["name"] for s in filter_spans(SPANS, shard_id=2)] == [
            "shard.work"
        ]
        assert filter_spans(SPANS, name="shard", shard_id=3) == []
        assert filter_spans(SPANS) == SPANS


class TestTraceCLI:
    def _run(self, tmp_path, monkeypatch):
        # dblp_acm decomposes into several components, so the pool path
        # really runs and worker spans come back stamped with shard ids.
        path = tmp_path / "s.db"
        monkeypatch.setenv("REPRO_STORE", str(path))
        with MatchingService(RunStore(path)) as service:
            run_id = service.submit(
                "dblp_acm", scale=0.2, workers=2, background=False
            )
            service.result(run_id)
        return run_id

    def test_span_filter_narrows_output(self, tmp_path, monkeypatch, capsys):
        run_id = self._run(tmp_path, monkeypatch)
        assert main(["runs", "trace", run_id, "--span", "loop.iteration"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines
        assert all(
            json.loads(line)["name"] == "loop.iteration" for line in lines
        )

    def test_shard_filter_narrows_output(self, tmp_path, monkeypatch, capsys):
        run_id = self._run(tmp_path, monkeypatch)
        assert main(["runs", "trace", run_id, "--shard", "0"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines
        assert all(json.loads(line)["shard_id"] == 0 for line in lines)

    def test_unmatched_filter_fails(self, tmp_path, monkeypatch, capsys):
        run_id = self._run(tmp_path, monkeypatch)
        assert main(["runs", "trace", run_id, "--span", "nonexistent"]) == 1
        assert "no spans match" in capsys.readouterr().err

    def test_chrome_export_validates(self, tmp_path, monkeypatch, capsys):
        run_id = self._run(tmp_path, monkeypatch)
        assert main(["runs", "trace", run_id, "--chrome"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert validate_chrome_trace(doc) == []
        assert doc["traceEvents"]

    def test_prometheus_metrics_export(self, tmp_path, monkeypatch, capsys):
        run_id = self._run(tmp_path, monkeypatch)
        assert main(["runs", "metrics", run_id, "--prometheus"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_crowd_questions_billed_total counter" in out
        assert f'run_id="{run_id}"' in out
        assert 'stage="' in out
