"""Regression sentinel: snapshot loading, noise model, CLI exit codes."""

import json

import pytest

from repro.cli import main
from repro.obs.sentinel import (
    Snapshot,
    compare,
    flagged,
    load_snapshot,
    render_report,
)


def _history(path, samples, stage="loop.run"):
    with path.open("w") as handle:
        for seconds in samples:
            handle.write(
                json.dumps({"bench": "t", "stages": {stage: seconds}}) + "\n"
            )
    return path


class TestLoadSnapshot:
    def test_missing_path_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_snapshot(tmp_path / "nope.jsonl")

    def test_jsonl_history_accumulates_samples(self, tmp_path):
        path = _history(tmp_path / "h.jsonl", [1.0, 1.1, 0.9])
        snapshot = load_snapshot(path)
        assert snapshot.stages == {"loop.run": [1.0, 1.1, 0.9]}

    def test_artifact_directory(self, tmp_path):
        root = tmp_path / "run-1"
        root.mkdir()
        (root / "meta.json").write_text(
            json.dumps(
                {"stage_timings": {"prepare.vectors": {"seconds": 2.0, "calls": 1}}}
            )
        )
        (root / "metrics.json").write_text(
            json.dumps({"counters": {}, "gauges": {"bench.traced_seconds": 3.5}})
        )
        snapshot = load_snapshot(root)
        assert snapshot.stages == {"prepare.vectors": [2.0]}
        assert snapshot.gauges == {"bench.traced_seconds": 3.5}

    def test_single_json_document(self, tmp_path):
        path = tmp_path / "BENCH_obs.json"
        path.write_text(
            json.dumps(
                {
                    "meta": {"bench": "obs"},
                    "metrics": {"gauges": {"bench.overhead": 0.01}},
                    "stages": {"obs.traced_run": 1.5},
                }
            )
        )
        snapshot = load_snapshot(path)
        assert snapshot.stages == {"obs.traced_run": [1.5]}
        assert snapshot.gauges == {"bench.overhead": 0.01}

    def test_trajectory_list_with_accel_fallback_prefixes(self, tmp_path):
        path = tmp_path / "BENCH_prepare.json"
        path.write_text(
            json.dumps(
                [
                    {
                        "bench": "prepare",
                        "stages_accel": {"prepare.vectors": {"seconds": 0.5, "calls": 1}},
                        "stages_fallback": {"prepare.vectors": 2.5},
                    }
                ]
            )
        )
        snapshot = load_snapshot(path)
        assert snapshot.stages == {
            "accel.prepare.vectors": [0.5],
            "fallback.prepare.vectors": [2.5],
        }


class TestCompare:
    def test_identical_snapshots_pass(self):
        base = Snapshot(source="a", stages={"s": [1.0, 1.05, 0.95]})
        cur = Snapshot(source="b", stages={"s": [1.0]})
        findings = compare(base, cur)
        assert len(findings) == 1
        assert not flagged(findings)
        assert findings[0].ratio == pytest.approx(1.0)

    def test_2x_slowdown_flags(self):
        base = Snapshot(source="a", stages={"s": [1.0, 1.0, 1.0]})
        cur = Snapshot(source="b", stages={"s": [2.0]})
        (finding,) = compare(base, cur)
        assert finding.flagged
        assert finding.ratio == pytest.approx(2.0)

    def test_noisy_baseline_earns_wider_allowance(self):
        # cv ≈ 0.33 → allowance ≈ 3 * 0.33 ≈ 1.0, so a 1.8x current passes
        # where a quiet baseline (50% allowance) would have flagged it.
        noisy = Snapshot(source="a", stages={"s": [1.0, 1.5, 0.5, 1.3, 0.7]})
        quiet = Snapshot(source="a", stages={"s": [1.0, 1.0, 1.0]})
        cur = Snapshot(source="b", stages={"s": [1.8]})
        assert not flagged(compare(noisy, cur))
        assert flagged(compare(quiet, cur))

    def test_min_seconds_gates_micro_stages(self):
        base = Snapshot(source="a", stages={"tiny": [0.001], "big": [1.0]})
        cur = Snapshot(source="b", stages={"tiny": [0.049], "big": [1.1]})
        findings = compare(base, cur)
        # The 49x "regression" on a sub-threshold stage never surfaces.
        assert [f.name for f in findings] == ["big"]
        assert not flagged(findings)

    def test_stages_present_on_one_side_are_skipped(self):
        base = Snapshot(source="a", stages={"old": [1.0]})
        cur = Snapshot(source="b", stages={"new": [1.0]})
        assert compare(base, cur) == []

    def test_time_like_gauges_compared_others_ignored(self):
        base = Snapshot(
            source="a",
            gauges={"bench.traced_seconds": 1.0, "bench.overhead": 0.01},
        )
        cur = Snapshot(
            source="b",
            gauges={"bench.traced_seconds": 2.5, "bench.overhead": 0.99},
        )
        findings = compare(base, cur)
        assert [f.name for f in findings] == ["gauge:bench.traced_seconds"]
        assert findings[0].flagged

    def test_render_report_marks_regressions(self):
        base = Snapshot(source="base.jsonl", stages={"s": [1.0]})
        cur = Snapshot(source="cur.jsonl", stages={"s": [2.0]})
        findings = compare(base, cur)
        report = render_report(base, cur, findings)
        assert "base.jsonl" in report and "cur.jsonl" in report
        assert "REGRESSION" in report
        assert "1 regression(s) flagged" in report
        empty = render_report(base, cur, [])
        assert "no comparable stages" in empty


class TestBenchCompareCLI:
    def test_identical_rerun_passes(self, tmp_path, capsys):
        base = _history(tmp_path / "base.jsonl", [1.0, 1.02, 0.98])
        cur = _history(tmp_path / "cur.jsonl", [1.01])
        assert main(["bench", "compare", str(base), str(cur)]) == 0
        out = capsys.readouterr().out
        assert "within allowance" in out

    def test_injected_2x_slowdown_fails(self, tmp_path, capsys):
        base = _history(tmp_path / "base.jsonl", [1.0, 1.0, 1.0])
        cur = _history(tmp_path / "cur.jsonl", [2.0])
        assert main(["bench", "compare", str(base), str(cur)]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_missing_snapshot_is_usage_error(self, tmp_path, capsys):
        base = _history(tmp_path / "base.jsonl", [1.0])
        missing = tmp_path / "nope.jsonl"
        assert main(["bench", "compare", str(base), str(missing)]) == 2
        assert "bench compare" in capsys.readouterr().err

    def test_threshold_flags_are_honoured(self, tmp_path, capsys):
        base = _history(tmp_path / "base.jsonl", [1.0])
        cur = _history(tmp_path / "cur.jsonl", [1.4])
        # 40% over: passes the default 50% allowance ...
        assert main(["bench", "compare", str(base), str(cur)]) == 0
        capsys.readouterr()
        # ... but fails a tightened one.
        assert (
            main(
                [
                    "bench",
                    "compare",
                    str(base),
                    str(cur),
                    "--max-slowdown",
                    "0.2",
                ]
            )
            == 1
        )

    def test_min_seconds_flag_gates(self, tmp_path, capsys):
        base = _history(tmp_path / "base.jsonl", [0.5])
        cur = _history(tmp_path / "cur.jsonl", [2.0])
        assert main(["bench", "compare", str(base), str(cur)]) == 1
        capsys.readouterr()
        assert (
            main(
                ["bench", "compare", str(base), str(cur), "--min-seconds", "1.0"]
            )
            == 0
        )
        assert "no comparable stages" in capsys.readouterr().out
