"""Tests for the decision tree and random forest."""

import numpy as np
import pytest

from repro.ml import DecisionTreeClassifier, RandomForestClassifier


def _separable(n=200, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.uniform(0, 1, size=(n, 4))
    y = (X[:, 0] + X[:, 2] > 1.0).astype(float)
    return X, y


def _xor(n=400, seed=1):
    rng = np.random.default_rng(seed)
    X = rng.uniform(0, 1, size=(n, 2))
    y = ((X[:, 0] > 0.5) ^ (X[:, 1] > 0.5)).astype(float)
    return X, y


class TestDecisionTree:
    def test_fits_separable_data(self):
        X, y = _separable()
        tree = DecisionTreeClassifier().fit(X, y)
        assert (tree.predict(X) == y).mean() > 0.98

    def test_xor_needs_depth(self):
        X, y = _xor()
        stump = DecisionTreeClassifier(max_depth=1).fit(X, y)
        deep = DecisionTreeClassifier(max_depth=6).fit(X, y)
        assert (deep.predict(X) == y).mean() > (stump.predict(X) == y).mean()

    def test_pure_leaf_on_constant_labels(self):
        X = np.array([[0.0], [1.0], [2.0]])
        y = np.ones(3)
        tree = DecisionTreeClassifier().fit(X, y)
        assert tree.depth() == 0
        assert np.all(tree.predict_proba(X) == 1.0)

    def test_constant_features_yield_leaf(self):
        X = np.zeros((10, 3))
        y = np.array([0, 1] * 5, dtype=float)
        tree = DecisionTreeClassifier().fit(X, y)
        assert tree.depth() == 0
        assert np.all(tree.predict_proba(X) == 0.5)

    def test_max_depth_respected(self):
        X, y = _xor()
        tree = DecisionTreeClassifier(max_depth=2).fit(X, y)
        assert tree.depth() <= 2

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier().fit(np.empty((0, 2)), np.empty(0))

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier().fit(np.zeros((3, 2)), np.zeros(4))

    def test_rejects_1d_features(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier().fit(np.zeros(3), np.zeros(3))

    def test_unfitted_predict_raises(self):
        with pytest.raises(RuntimeError):
            DecisionTreeClassifier().predict(np.zeros((1, 2)))

    def test_probabilities_in_bounds(self):
        X, y = _separable()
        tree = DecisionTreeClassifier(max_depth=3).fit(X, y)
        proba = tree.predict_proba(X)
        assert np.all((proba >= 0) & (proba <= 1))


class TestRandomForest:
    def test_fits_xor(self):
        X, y = _xor()
        forest = RandomForestClassifier(n_estimators=30, seed=7).fit(X, y)
        assert (forest.predict(X) == y).mean() > 0.95

    def test_generalizes_on_separable(self):
        X, y = _separable(400, seed=3)
        X_test, y_test = _separable(200, seed=4)
        forest = RandomForestClassifier(n_estimators=25, seed=0).fit(X, y)
        assert (forest.predict(X_test) == y_test).mean() > 0.9

    def test_deterministic_given_seed(self):
        X, y = _xor(200)
        p1 = RandomForestClassifier(n_estimators=10, seed=5).fit(X, y).predict_proba(X)
        p2 = RandomForestClassifier(n_estimators=10, seed=5).fit(X, y).predict_proba(X)
        assert np.array_equal(p1, p2)

    def test_rejects_bad_estimator_count(self):
        with pytest.raises(ValueError):
            RandomForestClassifier(n_estimators=0)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            RandomForestClassifier().predict_proba(np.zeros((1, 2)))

    def test_is_fitted_flag(self):
        forest = RandomForestClassifier(n_estimators=2)
        assert not forest.is_fitted
        X, y = _separable(50)
        forest.fit(X, y)
        assert forest.is_fitted

    def test_probability_average_in_bounds(self):
        X, y = _xor(150)
        forest = RandomForestClassifier(n_estimators=15, seed=2).fit(X, y)
        proba = forest.predict_proba(X)
        assert np.all((proba >= 0) & (proba <= 1))
