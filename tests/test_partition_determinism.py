"""Worker-count invariance and crash recovery of partitioned runs.

The contract of :mod:`repro.partition`: the merged result is a pure
function of (prepared state, config, seed, strategy, partition
parameters) — never of the pool size or scheduling order.  These tests
pin that property across seeds and all three selection strategies, and
verify that a killed partitioned run resumes from its per-shard
checkpoints to the byte-identical result without re-billing questions.
"""

import pytest

from repro.core import Remp, RempConfig
from repro.datasets import clustered_bundle
from repro.partition import CrowdSpec, ParallelRunner
from repro.store import RunStore

#: Small multi-component dataset: 5 clusters -> 5 graph shards + critics.
_CLUSTERS = 5


@pytest.fixture(scope="module")
def worlds():
    """(bundle, prepared state) per generation seed, computed once."""
    cache = {}
    for seed in (0, 1, 2):
        bundle = clustered_bundle(
            num_clusters=_CLUSTERS,
            movies_per_cluster=3,
            seed=seed,
            critics_per_cluster=1,
        )
        cache[seed] = (bundle, Remp().prepare(bundle.kb1, bundle.kb2))
    return cache


def _run(state, crowd, *, workers, strategy="remp", config=None, **kwargs):
    runner = ParallelRunner(
        config, seed=crowd.seed, workers=workers, strategy=strategy, **kwargs
    )
    return runner.run(state, crowd)


def _assert_identical(first, second):
    assert first.matches == second.matches
    assert first.labeled_matches == second.labeled_matches
    assert first.inferred_matches == second.inferred_matches
    assert first.isolated_matches == second.isolated_matches
    assert first.non_matches == second.non_matches
    assert first.questions_asked == second.questions_asked
    assert first.num_loops == second.num_loops
    assert [r.questions for r in first.history] == [
        r.questions for r in second.history
    ]


class TestWorkerCountInvariance:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("strategy", ["remp", "maxinf", "maxpr"])
    def test_pool_equals_sequential(self, worlds, seed, strategy):
        bundle, state = worlds[seed]
        crowd = CrowdSpec(truth=bundle.gold_matches, error_rate=0.08, seed=seed)
        sequential = _run(state, crowd, workers=1, strategy=strategy)
        pooled = _run(state, crowd, workers=3, strategy=strategy)
        _assert_identical(sequential, pooled)

    def test_invariant_under_budget(self, worlds):
        bundle, state = worlds[0]
        crowd = CrowdSpec(truth=bundle.gold_matches, error_rate=0.08, seed=0)
        config = RempConfig(budget=9)
        sequential = _run(state, crowd, workers=1, config=config)
        pooled = _run(state, crowd, workers=2, config=config)
        _assert_identical(sequential, pooled)

    def test_rerun_is_deterministic(self, worlds):
        bundle, state = worlds[1]
        crowd = CrowdSpec(truth=bundle.gold_matches, error_rate=0.08, seed=1)
        _assert_identical(
            _run(state, crowd, workers=1), _run(state, crowd, workers=1)
        )


class _Killed(Exception):
    pass


class TestKillAndResume:
    @pytest.fixture(scope="class")
    def setup(self, worlds):
        bundle, state = worlds[0]
        crowd = CrowdSpec(truth=bundle.gold_matches, error_rate=0.08, seed=0)
        baseline = _run(state, crowd, workers=1)
        return bundle, state, crowd, baseline

    def _kill_after(self, state, crowd, store, run_id, events: int):
        """Run partitioned until `events` checkpoints fired, then die."""
        seen = []

        def sink(event):
            if event.kind == "checkpointed":
                seen.append(event)
                if len(seen) == events:
                    raise _Killed

        with pytest.raises(_Killed):
            ParallelRunner(
                workers=1, store=store, run_id=run_id, on_event=sink
            ).run(state, crowd)

    def test_resume_conserves_result_and_billing(self, tmp_path, setup):
        bundle, state, crowd, baseline = setup
        store = RunStore(tmp_path / "kill.db")
        run_id = store.create_run("clustered", 0, 1.0, None, workers=1)
        self._kill_after(state, crowd, store, run_id, events=3)
        # Some shards finished, at most one holds a mid-loop checkpoint.
        records = store.load_shard_records(run_id)
        assert records, "the kill left no shard state behind"

        events = []
        resumed = ParallelRunner(
            workers=1, store=store, run_id=run_id, on_event=events.append
        ).run(state, crowd)
        _assert_identical(baseline, resumed)
        # Finished shards were restored, not re-run.
        done_before = {k for k, r in records.items() if r[0] == "done"}
        restored = {e.shard_id for e in events if e.kind == "restored"}
        assert done_before <= restored
        store.close()

    def test_mid_loop_checkpoint_resumes_without_rebilling(self, tmp_path, setup):
        bundle, state, crowd, baseline = setup
        store = RunStore(tmp_path / "midloop.db")
        run_id = store.create_run("clustered", 0, 1.0, None, workers=1)
        # Kill on the very first checkpoint: shard 0 is mid-loop.
        self._kill_after(state, crowd, store, run_id, events=1)
        records = store.load_shard_records(run_id)
        assert any(r[0] == "loop" for r in records.values())
        (shard_id,) = [k for k, r in records.items() if r[0] == "loop"]
        checkpoint = records[shard_id][1]
        replayed = {tuple(e["question"]) for e in checkpoint.answer_log}
        assert replayed, "checkpoint recorded no crowd answers"

        resumed = ParallelRunner(workers=1, store=store, run_id=run_id).run(
            state, crowd
        )
        _assert_identical(baseline, resumed)
        store.close()

    def test_pool_resume_after_kill(self, tmp_path, setup):
        bundle, state, crowd, baseline = setup
        store = RunStore(tmp_path / "pool.db")
        run_id = store.create_run("clustered", 0, 1.0, None, workers=2)
        self._kill_after(state, crowd, store, run_id, events=2)
        resumed = ParallelRunner(workers=2, store=store, run_id=run_id).run(
            state, crowd
        )
        _assert_identical(baseline, resumed)
        store.close()
