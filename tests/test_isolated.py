"""Tests for the isolated-pair classifier (Section VII-B)."""


from repro.core.config import RempConfig
from repro.core.isolated import IsolatedPairClassifier, attribute_signature


def test_attribute_signature():
    assert attribute_signature((True, False, True)) == frozenset({0, 2})
    assert attribute_signature(()) == frozenset()


def _setup(num=40):
    """Synthetic retained set: vector (s,) where matches have s ~ 0.9."""
    vectors, signatures, priors = {}, {}, {}
    matches, non_matches = set(), set()
    for i in range(num):
        pair = (f"a{i}", f"b{i}")
        is_match = i % 2 == 0
        sim = 0.9 if is_match else 0.1
        vectors[pair] = (sim,)
        signatures[pair] = frozenset({0})
        priors[pair] = sim
        if i < num // 2:  # first half resolved
            (matches if is_match else non_matches).add(pair)
    return vectors, signatures, priors, matches, non_matches


class TestNeighborhood:
    def test_same_signature_in_neighborhood(self):
        vectors, signatures, priors, _, _ = _setup()
        clf = IsolatedPairClassifier(vectors, signatures, priors)
        hood = clf.neighborhood(("a0", "b0"))
        assert ("a1", "b1") in hood
        assert ("a0", "b0") not in hood

    def test_different_signature_excluded(self):
        vectors, signatures, priors, _, _ = _setup()
        signatures[("odd", "odd")] = frozenset({5})
        vectors[("odd", "odd")] = (0.5,)
        clf = IsolatedPairClassifier(vectors, signatures, priors)
        assert ("odd", "odd") not in clf.neighborhood(("a0", "b0"))


class TestClassify:
    def test_learns_separable_boundary(self):
        vectors, signatures, priors, matches, non_matches = _setup()
        clf = IsolatedPairClassifier(vectors, signatures, priors)
        unresolved = [p for p in vectors if p not in matches and p not in non_matches]
        predicted = clf.classify(unresolved, set(matches), set(non_matches))
        expected = {p for p in unresolved if vectors[p][0] > 0.5}
        assert predicted == expected

    def test_no_positives_without_ask_abstains(self):
        vectors, signatures, priors, _, non_matches = _setup()
        clf = IsolatedPairClassifier(vectors, signatures, priors)
        unresolved = sorted(vectors)
        predicted = clf.classify(unresolved, set(), set(non_matches))
        assert predicted == set()

    def test_seed_questions_unlock_group(self):
        vectors, signatures, priors, _, _ = _setup()
        # Make seeding realistic: a few high-prior pairs are actually
        # non-matches, so the crowd answers contain both classes.
        for i in (1, 3):
            pair = (f"a{i}", f"b{i}")
            priors[pair] = 0.95
        clf = IsolatedPairClassifier(
            vectors, signatures, priors, RempConfig(isolated_seed_questions=12)
        )
        gold = {p for p in vectors if vectors[p][0] > 0.5}

        def ask(pair):
            return pair in gold

        predicted = clf.classify(sorted(vectors), set(), set(), ask=ask)
        asked_gold = {p for p in gold if p in clf._priors and ask(p)}
        assert 0 < clf.questions_asked <= 12
        found = len((predicted | gold) & gold)  # sanity on shapes
        recovered = predicted & gold
        assert len(recovered) / (len(gold) - clf.questions_asked) > 0.5

    def test_seeding_disabled_with_zero_budget(self):
        vectors, signatures, priors, _, _ = _setup()
        clf = IsolatedPairClassifier(
            vectors, signatures, priors, RempConfig(isolated_seed_questions=0)
        )
        predicted = clf.classify(sorted(vectors), set(), set(), ask=lambda p: True)
        assert clf.questions_asked == 0
        assert predicted == set()

    def test_already_resolved_pairs_not_predicted(self):
        vectors, signatures, priors, matches, non_matches = _setup()
        clf = IsolatedPairClassifier(vectors, signatures, priors)
        predicted = clf.classify(sorted(matches), set(matches), set(non_matches))
        assert predicted == set()

    def test_deterministic(self):
        vectors, signatures, priors, matches, non_matches = _setup()
        unresolved = [p for p in vectors if p not in matches and p not in non_matches]
        a = IsolatedPairClassifier(vectors, signatures, priors, seed=3).classify(
            unresolved, set(matches), set(non_matches)
        )
        b = IsolatedPairClassifier(vectors, signatures, priors, seed=3).classify(
            unresolved, set(matches), set(non_matches)
        )
        assert a == b
