"""Round-trip tests for KB serialization."""

import pytest

from repro.kb import KnowledgeBase, load_kb_json, load_kb_tsv, save_kb_json, save_kb_tsv


@pytest.fixture()
def kb():
    kb = KnowledgeBase("io-test")
    kb.add_entity("p1", label="Joan Cusack")
    kb.add_attribute_triple("p1", "born", 1962)
    kb.add_entity("c1", label="Evanston")
    kb.add_relationship_triple("p1", "wasBornIn", "c1")
    kb.add_entity("lonely")
    return kb


def _same_shape(a: KnowledgeBase, b: KnowledgeBase) -> bool:
    return (
        a.entities == b.entities
        and a.attributes == b.attributes
        and a.relationships == b.relationships
        and a.num_relationship_triples == b.num_relationship_triples
    )


def test_json_roundtrip(tmp_path, kb):
    path = tmp_path / "kb.json"
    save_kb_json(kb, path)
    loaded = load_kb_json(path)
    assert _same_shape(kb, loaded)
    # JSON preserves literal types.
    assert loaded.attribute_values("p1", "born") == {1962}
    assert loaded.label("p1") == "Joan Cusack"


def test_json_preserves_isolated_entities(tmp_path, kb):
    path = tmp_path / "kb.json"
    save_kb_json(kb, path)
    loaded = load_kb_json(path)
    assert "lonely" in loaded.entities


def test_tsv_roundtrip_stringifies_literals(tmp_path, kb):
    path = tmp_path / "kb.tsv"
    save_kb_tsv(kb, path)
    loaded = load_kb_tsv(path, name="io-test")
    assert loaded.relation_values("p1", "wasBornIn") == {"c1"}
    assert loaded.attribute_values("p1", "born") == {"1962"}


def test_tsv_rejects_malformed_lines(tmp_path):
    path = tmp_path / "bad.tsv"
    path.write_text("a\tb\tc\n")
    with pytest.raises(ValueError, match="expected 4"):
        load_kb_tsv(path)


def test_tsv_rejects_unknown_kind(tmp_path):
    path = tmp_path / "bad.tsv"
    path.write_text("a\tb\tc\tX\n")
    with pytest.raises(ValueError, match="unknown triple kind"):
        load_kb_tsv(path)


def test_empty_kb_roundtrips(tmp_path):
    kb = KnowledgeBase("empty")
    json_path = tmp_path / "kb.json"
    tsv_path = tmp_path / "kb.tsv"
    save_kb_json(kb, json_path)
    save_kb_tsv(kb, tsv_path)
    assert len(load_kb_json(json_path)) == 0
    assert len(load_kb_tsv(tsv_path)) == 0
