"""Tests for KB summary statistics."""

from repro.kb import KnowledgeBase, describe


def test_describe_counts():
    kb = KnowledgeBase("stats")
    kb.add_entity("a", label="A")
    kb.add_entity("b", label="B")
    kb.add_entity("iso", label="Isolated")
    kb.add_relationship_triple("a", "knows", "b")
    stats = describe(kb)
    assert stats.num_entities == 3
    assert stats.num_relationships == 1
    assert stats.num_relationship_triples == 1
    assert stats.num_isolated_entities == 1
    assert stats.num_attributes == 1  # rdfs:label
    assert abs(stats.mean_out_degree - 1 / 3) < 1e-12


def test_describe_empty_kb():
    stats = describe(KnowledgeBase("empty"))
    assert stats.num_entities == 0
    assert stats.mean_out_degree == 0.0


def test_as_row_contains_name():
    kb = KnowledgeBase("rowtest")
    kb.add_entity("x")
    assert "rowtest" in describe(kb).as_row()
