"""Failure-injection and degenerate-input tests for the pipeline."""

import pytest

from repro.core import Remp, RempConfig
from repro.core.candidates import generate_candidates
from repro.crowd import CrowdPlatform, SimulatedWorker
from repro.eval import evaluate_matches
from repro.kb import KnowledgeBase


@pytest.fixture(scope="module")
def bundle(bundle_iimb_03):
    return bundle_iimb_03


class TestDegenerateInputs:
    def test_empty_kbs(self):
        platform = CrowdPlatform.with_oracle(set())
        result = Remp().run(KnowledgeBase("a"), KnowledgeBase("b"), platform)
        assert result.matches == set()
        assert result.questions_asked == 0

    def test_unlabeled_kbs_yield_no_candidates(self):
        kb1, kb2 = KnowledgeBase("a"), KnowledgeBase("b")
        for i in range(5):
            kb1.add_entity(f"a{i}")
            kb2.add_entity(f"b{i}")
        result = Remp().run(kb1, kb2, CrowdPlatform.with_oracle(set()))
        assert result.matches == set()

    def test_relation_free_kbs(self):
        """Everything isolated: only the classifier path can fire."""
        kb1, kb2 = KnowledgeBase("a"), KnowledgeBase("b")
        gold = set()
        for i in range(12):
            kb1.add_entity(f"a{i}", label=f"thing number {i}")
            kb2.add_entity(f"b{i}", label=f"thing number {i}")
            gold.add((f"a{i}", f"b{i}"))
        result = Remp().run(kb1, kb2, CrowdPlatform.with_oracle(gold))
        assert result.num_loops == 0  # no propagation possible
        # Whatever is found must be correct (oracle labels).
        assert result.matches <= gold or evaluate_matches(result.matches, gold).precision > 0.8

    def test_identical_kbs(self, bundle):
        """A KB matched against itself: exact labels everywhere."""
        kb = bundle.kb1
        gold = {(e, e) for e in kb.entities if kb.label(e) is not None}
        result = Remp().run(kb, kb, CrowdPlatform.with_oracle(gold))
        quality = evaluate_matches(result.matches, gold)
        assert quality.precision > 0.9

    def test_zero_budget(self, bundle):
        config = RempConfig(budget=0, isolated_seed_questions=0)
        result = Remp(config).run(
            bundle.kb1, bundle.kb2, CrowdPlatform.with_oracle(bundle.gold_matches)
        )
        assert result.questions_asked == 0
        assert result.labeled_matches == set()

    def test_mu_larger_than_candidates(self, bundle):
        config = RempConfig(mu=10_000)
        result = Remp(config).run(
            bundle.kb1, bundle.kb2, CrowdPlatform.with_oracle(bundle.gold_matches)
        )
        assert result.num_loops >= 1

    def test_tau_one_requires_certainty(self, bundle):
        """τ=1 allows only probability-1 inferences: propagation shuts off."""
        config = RempConfig(tau=1.0)
        result = Remp(config).run(
            bundle.kb1, bundle.kb2, CrowdPlatform.with_oracle(bundle.gold_matches)
        )
        # Nothing can be inferred through relations at certainty 1, and the
        # oracle-labeled questions themselves are all correct.
        assert result.inferred_matches == set()
        assert result.labeled_matches <= bundle.gold_matches


class TestHostileCrowds:
    def test_near_random_workers_do_not_poison_precision(self, bundle):
        platform = CrowdPlatform.with_simulated_workers(
            bundle.gold_matches, num_workers=30, error_rate=0.45, seed=0
        )
        result = Remp().run(bundle.kb1, bundle.kb2, platform)
        quality = evaluate_matches(result.matches, bundle.gold_matches)
        # With near-random labels most questions stay unresolved; whatever
        # is asserted as a match should still be mostly right thanks to the
        # posterior thresholds.
        if result.matches:
            assert quality.precision > 0.5

    def test_single_worker_pool(self, bundle):
        platform = CrowdPlatform(
            [SimulatedWorker("w0", 0.1, seed=3)], bundle.gold_matches,
            workers_per_question=5,
        )
        result = Remp().run(bundle.kb1, bundle.kb2, platform)
        assert isinstance(result.questions_asked, int)

    def test_adversarial_label_reuse(self, bundle):
        """Asking the same platform twice must not double-bill."""
        platform = CrowdPlatform.with_oracle(bundle.gold_matches)
        first = Remp().run(bundle.kb1, bundle.kb2, platform)
        billed_after_first = platform.questions_asked
        Remp().run(bundle.kb1, bundle.kb2, platform)
        assert platform.questions_asked == billed_after_first  # all cached


class TestCandidateEdgeCases:
    def test_threshold_one_keeps_only_exact(self, bundle):
        result = generate_candidates(bundle.kb1, bundle.kb2, threshold=1.0)
        assert result.pairs >= result.initial_matches
        for pair in result.pairs:
            assert result.priors[pair] == 1.0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            RempConfig(tau=0.0)
        with pytest.raises(ValueError):
            RempConfig(k=0)
        with pytest.raises(ValueError):
            RempConfig(mu=0)
        with pytest.raises(ValueError):
            RempConfig(match_posterior=0.1, non_match_posterior=0.2)
