"""The shared prepare substrate: sharing, equivalence, and the leak fixes.

Covers the :mod:`repro.substrate` contract end to end — concurrent
sessions on one (KB pair, config) key share a single kernel arena and
still produce results byte-identical to fully isolated runs, across
monolithic / partitioned execution, both accel modes, spawn-started
pools, kill-and-resume, and delta-stream derivation — plus gc-based
regression tests for the two leaks the substrate work exposed
(``MatchingService._key_locks`` and ``LiteralScorer`` value pinning).
"""

import gc
import pickle
import threading
import weakref

import pytest

from repro.accel.dominance import PackedVectors
from repro.accel.literals import LiteralScorer
from repro.accel.runtime import force_accel, numpy_or_none
from repro.core import Remp
from repro.datasets import evolving_bundle
from repro.kb.model import KnowledgeBase
from repro.service import MatchingService
from repro.store import RunStore
from repro.substrate import (
    PrepareSubstrate,
    SubstrateCache,
    current_substrate,
    kb_fingerprint,
    substrate_key,
)


def _service(store=":memory:", **kwargs):
    """A service with a *private* substrate cache (isolated from the
    process-wide singleton, so tests cannot contaminate each other)."""
    kwargs.setdefault("substrate_cache", SubstrateCache())
    return MatchingService(store, **kwargs)


def _tiny_pair():
    """A small fresh KB pair, never owned by any dataset cache."""
    kb1 = KnowledgeBase("sub1")
    kb2 = KnowledgeBase("sub2")
    for i in range(4):
        kb1.add_entity(f"a{i}", label=f"movie number {i}")
        kb1.add_attribute_triple(f"a{i}", "year", 1990 + i)
        kb2.add_entity(f"b{i}", label=f"movie number {i}")
        kb2.add_attribute_triple(f"b{i}", "year", 1990 + i)
    return kb1, kb2


class TestFingerprints:
    def test_kb_fingerprint_is_content_addressed(self):
        kb1, _ = _tiny_pair()
        again, _ = _tiny_pair()
        assert kb_fingerprint(kb1) == kb_fingerprint(again)
        again.add_entity("extra", label="something else")
        assert kb_fingerprint(kb1) != kb_fingerprint(again)

    def test_substrate_key_covers_config(self):
        from repro.core import RempConfig

        kb1, kb2 = _tiny_pair()
        base = substrate_key(kb1, kb2, None)
        assert base == substrate_key(kb1, kb2, RempConfig())
        assert base != substrate_key(kb1, kb2, RempConfig(k=7))


class TestArenaSharing:
    def test_sessions_on_one_key_share_one_packed_matrix(self, tmp_path):
        with force_accel(True), _service(RunStore(tmp_path / "s.db")) as service:
            first = service.prepared("iimb", scale=0.2)
            assert first.substrate_key is not None
            # Evict the memory cache: the second request round-trips the
            # store into a *distinct* state object on the same key.
            service._memory_cache.clear()
            second = service.prepared("iimb", scale=0.2)
            assert second is not first
            assert second.vector_index.vectors == first.vector_index.vectors
            assert second.vector_index._packed is first.vector_index._packed
            assert service._substrate.stats()["hits"] >= 1

    def test_two_services_converge_on_shared_cache(self):
        cache = SubstrateCache()
        with force_accel(True):
            with MatchingService(":memory:", substrate_cache=cache) as one:
                state_a = one.prepared("iimb", scale=0.2)
                result_a = one.result(one.submit("iimb", scale=0.2, background=False))
            with MatchingService(":memory:", substrate_cache=cache) as two:
                state_b = two.prepared("iimb", scale=0.2)
                result_b = two.result(two.submit("iimb", scale=0.2, background=False))
        assert state_b.vector_index._packed is state_a.vector_index._packed
        assert len(cache) == 1
        assert result_b.matches == result_a.matches
        assert result_b.questions_asked == result_a.questions_asked

    def test_concurrent_shared_sessions_match_isolated_runs(self):
        with _service() as shared:
            run_ids = [shared.submit("iimb", scale=0.2) for _ in range(2)]
            shared_results = [shared.result(run_id) for run_id in run_ids]
        isolated_results = []
        for _ in range(2):
            with _service() as isolated:
                isolated_results.append(
                    isolated.result(isolated.submit("iimb", scale=0.2, background=False))
                )
        for result in shared_results:
            assert result.matches == isolated_results[0].matches
            assert result.questions_asked == isolated_results[0].questions_asked
            assert result.history == isolated_results[0].history
        assert isolated_results[0].matches == isolated_results[1].matches

    def test_no_accel_passthrough(self):
        kb1, kb2 = _tiny_pair()
        arena = PrepareSubstrate(substrate_key(kb1, kb2, None))
        with force_accel(False):
            with arena.activation():
                assert current_substrate() is None
            with _service() as service:
                state = service.prepared("iimb", scale=0.2)
                assert state.substrate_key is None
                off = service.result(service.submit("iimb", scale=0.2, background=False))
        with force_accel(True):
            with _service() as service:
                on = service.result(service.submit("iimb", scale=0.2, background=False))
        assert off.matches == on.matches
        assert off.questions_asked == on.questions_asked
        with force_accel(True), arena.activation():
            assert current_substrate() is arena

    def test_kill_and_resume_keeps_shared_equivalence(self, tmp_path):
        path = tmp_path / "store.db"
        with _service(RunStore(path)) as service:
            baseline = service.result(service.submit("iimb", scale=0.2, background=False))
            run_id = service.submit("iimb", scale=0.2, background=False)
            assert service.step(run_id)  # one loop, then the process "dies"
        with _service(RunStore(path)) as service:  # fresh arena cache too
            service.resume(run_id, background=False)
            resumed = service.result(run_id)
        assert resumed.matches == baseline.matches
        assert resumed.questions_asked == baseline.questions_asked


class TestWorkers:
    def _counters(self, service, run_id):
        doc = service.store.load_run_obs(run_id)
        return doc["metrics"]["counters"]

    def test_partitioned_run_matches_monolithic_and_never_repacks(self, tmp_path):
        with force_accel(True), _service(RunStore(tmp_path / "a.db")) as service:
            mono = service.result(service.submit("evolving", scale=0.4, background=False))
        with force_accel(True), _service(RunStore(tmp_path / "b.db")) as service:
            run_id = service.submit("evolving", scale=0.4, workers=4, background=False)
            parallel = service.result(run_id)
            counters = self._counters(service, run_id)
        assert parallel.matches == mono.matches
        assert parallel.questions_asked == mono.questions_asked
        assert counters.get("substrate.worker.attach", 0) >= 1
        # The parent pre-packed before the pool started, so no forked
        # worker ever saw an unpacked base state.
        assert "substrate.worker.base_unpacked" not in counters

    def test_spawn_pool_ships_shared_memory_matrix(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_START_METHOD", "spawn")
        with force_accel(True), _service(RunStore(tmp_path / "spawn.db")) as service:
            run_id = service.submit("evolving", scale=0.4, workers=2, background=False)
            spawned = service.result(run_id)
            counters = self._counters(service, run_id)
        monkeypatch.delenv("REPRO_START_METHOD")
        with force_accel(True), _service(RunStore(tmp_path / "fork.db")) as service:
            forked = service.result(
                service.submit("evolving", scale=0.4, workers=2, background=False)
            )
        assert spawned.matches == forked.matches
        assert spawned.questions_asked == forked.questions_asked
        if numpy_or_none() is not None:
            assert counters.get("substrate.shm.exported", 0) >= 1
        assert "substrate.worker.base_unpacked" not in counters


class TestPackedSharing:
    pairs = {("a", "x"): (1.0, 0.5), ("b", "y"): (0.5, 0.5), ("c", "z"): (0.0, 1.0)}

    def test_pickle_round_trip(self):
        with force_accel(True):
            packed = PackedVectors(dict(self.pairs))
            clone = pickle.loads(pickle.dumps(packed))
            if packed.available:
                assert clone.counts(list(self.pairs)) == packed.counts(list(self.pairs))
            else:  # pragma: no cover - numpy-less environment
                assert not clone.available

    def test_shared_memory_export_round_trip(self):
        np = numpy_or_none()
        if np is None:  # pragma: no cover
            pytest.skip("requires numpy")
        with force_accel(True):
            packed = PackedVectors(dict(self.pairs))
            assert packed.export_shared()
            try:
                clone = pickle.loads(pickle.dumps(packed))
                assert np.array_equal(clone.matrix, packed.matrix)
                assert clone.counts(list(self.pairs)) == packed.counts(list(self.pairs))
                clone.matrix = None
                clone._shm.close()
                clone._shm = None
            finally:
                packed.release_shared()
            # Releasing is idempotent and the exporter's matrix survives.
            packed.release_shared()
            assert packed.available

    def test_sorted_blob_round_trip_and_mismatch(self):
        np = numpy_or_none()
        if np is None:  # pragma: no cover
            pytest.skip("requires numpy")
        with force_accel(True):
            packed = PackedVectors(dict(self.pairs))
            rows, cols, payload = packed.sorted_blob()
            rebuilt = PackedVectors.from_sorted_blob(dict(self.pairs), rows, cols, payload)
            assert rebuilt.counts(list(self.pairs)) == packed.counts(list(self.pairs))
            # A blob that does not fit the index is refused, not adopted.
            assert PackedVectors.from_sorted_blob(dict(self.pairs), rows + 1, cols, payload) is None
            wrong = {("a", "x"): (1.0,)}
            assert PackedVectors.from_sorted_blob(wrong, rows, cols, payload) is None
            # Same shape but different floats — the key-collision case
            # (store keys truncate KB fingerprints): the row spot-check
            # refuses it instead of adopting a wrong canonical matrix.
            collided = dict(self.pairs)
            collided[("a", "x")] = (0.25, 0.75)
            assert PackedVectors.from_sorted_blob(collided, rows, cols, payload) is None

    def test_corrupt_store_blob_falls_back_to_repack(self, tmp_path):
        np = numpy_or_none()
        if np is None:  # pragma: no cover
            pytest.skip("requires numpy")
        path = tmp_path / "blob.db"
        with force_accel(True):
            with _service(RunStore(path)) as service:
                first = service.prepared("iimb", scale=0.2)
                key = ":".join(first.substrate_key)
                rows, cols, payload = service.store.load_substrate_blob(key)
                bad = bytearray(payload)
                bad[0] ^= 0xFF
                with service.store._lock, service.store._conn:
                    service.store._conn.execute(
                        "UPDATE substrate_blobs SET payload = ? WHERE key = ?",
                        (bytes(bad), key),
                    )
                # The digest check treats the corrupt row as absent.
                assert service.store.load_substrate_blob(key) is None
            with _service(RunStore(path)) as service:
                second = service.prepared("iimb", scale=0.2)
        # The fresh process re-packed from the tuples, not the bad blob.
        packed = second.vector_index._packed
        assert packed.available
        assert np.array_equal(
            packed.matrix[[packed.row[p] for p in sorted(second.vector_index.vectors)]],
            first.vector_index._packed.matrix[
                [first.vector_index._packed.row[p] for p in sorted(first.vector_index.vectors)]
            ],
        )

    def test_store_blob_survives_to_a_fresh_process(self, tmp_path):
        """A second 'process' (fresh substrate cache) adopts the blob."""
        np = numpy_or_none()
        if np is None:  # pragma: no cover
            pytest.skip("requires numpy")
        path = tmp_path / "blob.db"
        with force_accel(True):
            with _service(RunStore(path)) as service:
                first = service.prepared("iimb", scale=0.2)
                key = ":".join(first.substrate_key)
                assert service.store.load_substrate_blob(key) is not None
            with _service(RunStore(path)) as service:
                second = service.prepared("iimb", scale=0.2)
        assert second.vector_index._packed.available
        assert np.array_equal(
            second.vector_index._packed.matrix[
                [second.vector_index._packed.row[p] for p in sorted(second.vector_index.vectors)]
            ],
            first.vector_index._packed.matrix[
                [first.vector_index._packed.row[p] for p in sorted(first.vector_index.vectors)]
            ],
        )


class TestStreamDerive:
    def test_update_derives_child_arena_seeded_scorers(self, tmp_path):
        evolving = evolving_bundle(seed=0, scale=0.4, steps=1)
        cache = SubstrateCache()
        with force_accel(True):
            with MatchingService(
                RunStore(tmp_path / "stream.db"), substrate_cache=cache
            ) as service:
                root = service.submit(
                    "evolving", scale=0.4, stream=True, background=False
                )
                service.result(root)
                updated = service.update(root, evolving.deltas[0], background=False)
                service.result(updated)
        arenas = list(cache._entries.values())
        assert len(arenas) == 2
        parent, child = arenas
        shared_thresholds = set(parent._scorers) & set(child._scorers)
        assert shared_thresholds
        for threshold in shared_thresholds:
            # Seeded by snapshot: the child starts from the parent's
            # interned literals but owns its own scorer object (the
            # arenas lock independently, so aliasing would race).
            assert parent._scorers[threshold] is not child._scorers[threshold]
            assert set(parent._scorers[threshold]._ids) <= set(
                child._scorers[threshold]._ids
            )

    def test_stream_updates_do_not_accumulate_store_blobs(self, tmp_path):
        evolving = evolving_bundle(seed=0, scale=0.4, steps=2)
        with force_accel(True), _service(RunStore(tmp_path / "s.db")) as service:
            run = service.submit("evolving", scale=0.4, stream=True, background=False)
            service.result(run)
            before = service.store.stats()["substrate_blobs"]
            for delta in evolving.deltas:
                run = service.update(run, delta, background=False)
                service.result(run)
            after = service.store.stats()["substrate_blobs"]
        # Delta steps reuse the hot arena; persisting one full packed
        # matrix per step would grow the table with nothing evicting it.
        assert after == before

    def test_stream_update_equivalent_to_isolated(self, tmp_path):
        evolving = evolving_bundle(seed=0, scale=0.4, steps=1)
        results = []
        for name in ("shared", "isolated"):
            with _service(RunStore(tmp_path / f"{name}.db")) as service:
                root = service.submit(
                    "evolving", scale=0.4, stream=True, background=False
                )
                service.result(root)
                updated = service.update(root, evolving.deltas[0], background=False)
                results.append(service.result(updated))
        assert results[0].matches == results[1].matches
        assert results[0].questions_asked == results[1].questions_asked


class TestLeakFixes:
    def test_key_locks_pruned_after_compute(self):
        with _service() as service:
            service.prepared("iimb", scale=0.2)
            assert service._key_locks == {}
            service.prepared("iimb", scale=0.2)  # cache hit: no lock at all
            assert service._key_locks == {}

    def test_key_locks_pruned_under_concurrency(self):
        with _service() as service:
            threads = [
                threading.Thread(target=service.prepared, args=("iimb",), kwargs={"scale": 0.2})
                for _ in range(6)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert service._key_locks == {}
            assert service.cache_misses == 1

    def test_memory_cache_is_a_bounded_lru(self):
        with _service(memory_cache_size=2) as service:
            for seed in (0, 1, 2):
                service.prepared("iimb", seed=seed, scale=0.2)
            assert len(service._memory_cache) == 2
            assert service.cache_evictions == 1
            # Seed 0 was evicted (LRU); seeds 1 and 2 are still hits.
            hits_before = service.cache_hits
            service.prepared("iimb", seed=2, scale=0.2)
            assert service.cache_hits == hits_before + 1

    def test_scorer_does_not_pin_value_collections(self):
        class Values(list):
            """Weakref-able stand-in for a KB value collection."""

        scorer = LiteralScorer(0.9)
        values = Values(["cradle rock", "1999"])
        other = Values(["rock cradle"])
        first = scorer.set_similarity(values, other)
        ref = weakref.ref(values)
        del values
        gc.collect()
        assert ref() is None
        assert scorer.set_similarity(Values(["cradle rock", "1999"]), other) == first

    def test_dropped_kb_collectable_while_arena_lives(self):
        kb1, kb2 = _tiny_pair()
        arena = PrepareSubstrate(substrate_key(kb1, kb2, None))
        with force_accel(True):
            with arena.activation():
                state = Remp().prepare(kb1, kb2)
            arena.attach(state)
        assert arena._packed is not None or numpy_or_none() is None
        ref1, ref2 = weakref.ref(kb1), weakref.ref(kb2)
        del kb1, kb2, state
        gc.collect()
        # The arena (scorers, token indexes, packed matrix) lives on,
        # yet holds no strong reference to either KB.
        assert ref1() is None
        assert ref2() is None
        assert arena._scorers or arena._token_indexes


class TestSubstrateCache:
    def test_lru_eviction_and_stats(self):
        cache = SubstrateCache(capacity=2)
        keys = [(f"kb{i}", f"kb{i}'", "cfg") for i in range(3)]
        first = cache.get_or_create(keys[0])
        cache.get_or_create(keys[1])
        assert cache.get_or_create(keys[0]) is first  # refreshes LRU slot
        cache.get_or_create(keys[2])  # evicts keys[1]
        stats = cache.stats()
        assert stats == {
            "entries": 2,
            "capacity": 2,
            "hits": 1,
            "misses": 3,
            "evictions": 1,
        }
        assert cache.get_or_create(keys[0]) is first

    def test_derive_seeds_scorer_snapshots_only(self):
        cache = SubstrateCache()
        parent = cache.get_or_create(("p", "p'", "cfg"))
        scorer = parent.scorer(0.9)
        sim = scorer.set_similarity(["cradle rock", "1999"], ["rock cradle"])
        child = cache.derive(parent, ("c", "c'", "cfg"))
        assert child is not parent
        seeded = child._scorers[0.9]
        # A snapshot, never an alias: the arenas have separate locks, so
        # a shared mutable scorer could be interned into concurrently.
        assert seeded is not scorer
        for attr in (
            "_ids",
            "_numbers",
            "_tokens",
            "_raw",
            "_token_ids",
            "_pair_sims",
            "_set_sims",
        ):
            assert getattr(seeded, attr) is not getattr(scorer, attr)
        # The snapshot carries the parent's caches (same answers) but
        # mutates independently afterwards.
        assert seeded.threshold == scorer.threshold
        assert seeded._ids == scorer._ids
        assert seeded.set_similarity(["cradle rock", "1999"], ["rock cradle"]) == sim
        seeded.intern("only in child")
        assert (False, "only in child") not in scorer._ids
        assert child._token_indexes == {}
        assert child._packed is None
        # Deriving onto the same key is a no-op identity.
        assert cache.derive(parent, parent.key) is parent
