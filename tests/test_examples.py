"""Smoke tests: every example script must run and produce sane output."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(names) >= 3


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert completed.stdout.strip()


def test_quickstart_finds_all_matches():
    script = next(p for p in EXAMPLES if p.name == "quickstart.py")
    completed = subprocess.run(
        [sys.executable, str(script)], capture_output=True, text=True, timeout=300
    )
    assert "F1=100.0%" in completed.stdout
