"""Tests for string and numeric similarity measures."""


import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.text import (
    cosine_tokens,
    dice,
    edit_similarity,
    jaccard,
    levenshtein,
    numeric_similarity,
    token_jaccard,
)


class TestJaccard:
    def test_identical(self):
        assert jaccard({"a", "b"}, {"a", "b"}) == 1.0

    def test_disjoint(self):
        assert jaccard({"a"}, {"b"}) == 0.0

    def test_partial(self):
        assert jaccard({"a", "b"}, {"b", "c"}) == pytest.approx(1 / 3)

    def test_empty_vs_empty(self):
        assert jaccard(set(), set()) == 1.0

    def test_empty_vs_nonempty(self):
        assert jaccard(set(), {"a"}) == 0.0

    @given(st.sets(st.integers(), max_size=8), st.sets(st.integers(), max_size=8))
    def test_symmetry_and_bounds(self, a, b):
        assert jaccard(a, b) == jaccard(b, a)
        assert 0.0 <= jaccard(a, b) <= 1.0


class TestDiceCosine:
    def test_dice_partial(self):
        assert dice({"a", "b"}, {"b", "c"}) == pytest.approx(0.5)

    def test_cosine_partial(self):
        assert cosine_tokens({"a", "b"}, {"b", "c"}) == pytest.approx(0.5)

    def test_cosine_empty_one_side(self):
        assert cosine_tokens(set(), {"a"}) == 0.0

    @given(st.sets(st.integers(), max_size=8), st.sets(st.integers(), max_size=8))
    def test_dice_dominates_jaccard(self, a, b):
        # Dice >= Jaccard always holds.
        assert dice(a, b) >= jaccard(a, b) - 1e-12


class TestLevenshtein:
    def test_identical(self):
        assert levenshtein("abc", "abc") == 0

    def test_empty(self):
        assert levenshtein("", "abc") == 3
        assert levenshtein("abc", "") == 3

    def test_known_distance(self):
        assert levenshtein("kitten", "sitting") == 3

    def test_edit_similarity_bounds(self):
        assert edit_similarity("", "") == 1.0
        assert edit_similarity("abc", "abc") == 1.0
        assert edit_similarity("abc", "xyz") == 0.0

    @given(st.text(max_size=12), st.text(max_size=12))
    def test_symmetry(self, s, t):
        assert levenshtein(s, t) == levenshtein(t, s)

    @given(st.text(max_size=10), st.text(max_size=10), st.text(max_size=10))
    def test_triangle_inequality(self, a, b, c):
        assert levenshtein(a, c) <= levenshtein(a, b) + levenshtein(b, c)


class TestNumericSimilarity:
    def test_identical(self):
        assert numeric_similarity(5.0, 5.0) == 1.0
        assert numeric_similarity(0.0, 0.0) == 1.0

    def test_percentage_difference(self):
        assert numeric_similarity(100.0, 90.0) == pytest.approx(0.9)

    def test_clamped_at_zero(self):
        assert numeric_similarity(1.0, -100.0) == 0.0

    @given(st.floats(-1e6, 1e6), st.floats(-1e6, 1e6))
    def test_bounds_and_symmetry(self, x, y):
        s = numeric_similarity(x, y)
        assert 0.0 <= s <= 1.0
        assert s == pytest.approx(numeric_similarity(y, x))


class TestTokenJaccard:
    def test_same_label_different_case(self):
        assert token_jaccard("New York City", "new york city") == 1.0

    def test_stemming_helps(self):
        assert token_jaccard("directed movies", "directing movie") == 1.0

    def test_disjoint_labels(self):
        assert token_jaccard("alpha beta", "gamma delta") == 0.0
