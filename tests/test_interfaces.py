"""Tests for the multi-item question interface."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crowd.interfaces import (
    MultiItemCrowd,
    MultiItemQuestion,
    multi_item_cost,
    pack_questions,
    pairwise_cost,
)


class TestPacking:
    def test_single_pair(self):
        questions = pack_questions([("a", "b")], k=4)
        assert len(questions) == 1
        assert questions[0].covers(("a", "b"))

    def test_all_pairs_covered(self):
        pairs = [("a", "b"), ("b", "c"), ("c", "d"), ("x", "y")]
        questions = pack_questions(pairs, k=4)
        for pair in pairs:
            assert any(q.covers(pair) for q in questions)

    def test_respects_entity_limit(self):
        pairs = [(f"a{i}", f"b{i}") for i in range(10)]
        questions = pack_questions(pairs, k=4)
        assert all(len(q.entities) <= 4 for q in questions)

    def test_shared_entities_amortized(self):
        # star: center c paired with 5 others -> 2 questions at k=4 vs 5 pairwise
        pairs = [("c", f"o{i}") for i in range(5)]
        assert multi_item_cost(pairs, k=4) < pairwise_cost(pairs)

    def test_k_too_small_rejected(self):
        with pytest.raises(ValueError):
            pack_questions([("a", "b")], k=1)

    @settings(max_examples=30, deadline=None)
    @given(
        pairs=st.lists(
            st.tuples(
                st.sampled_from([f"a{i}" for i in range(6)]),
                st.sampled_from([f"b{i}" for i in range(6)]),
            ),
            max_size=15,
        ),
        k=st.integers(2, 6),
    )
    def test_packing_invariants(self, pairs, k):
        questions = pack_questions(pairs, k)
        for question in questions:
            assert len(question.entities) <= max(k, 2)
        for pair in pairs:
            assert any(q.covers(pair) for q in questions)


class TestMultiItemCrowd:
    def test_perfect_crowd_recovers_truth(self):
        truth = {("a1", "a2"), ("b1", "b2")}
        crowd = MultiItemCrowd(truth=truth, error_rate=0.0)
        question = MultiItemQuestion(frozenset({"a1", "a2", "b1", "b2"}))
        matched = crowd.matched_pairs(question)
        assert ("a1", "a2") in matched
        assert ("b1", "b2") in matched
        assert ("a1", "b1") not in matched

    def test_cost_counts_questions_not_pairs(self):
        crowd = MultiItemCrowd(truth=set())
        crowd.answer(MultiItemQuestion(frozenset({"a", "b", "c", "d"})))
        assert crowd.questions_asked == 1

    def test_noisy_crowd_errs_sometimes(self):
        truth = {("a1", "a2")}
        crowd = MultiItemCrowd(truth=truth, error_rate=0.4, seed=1)
        question = MultiItemQuestion(frozenset({"a1", "a2"}))
        outcomes = {frozenset(map(frozenset, crowd.answer(question))) for _ in range(50)}
        assert len(outcomes) > 1  # both groupings observed

    def test_invalid_error_rate(self):
        with pytest.raises(ValueError):
            MultiItemCrowd(truth=set(), error_rate=1.0)

    def test_partition_is_a_partition(self):
        crowd = MultiItemCrowd(truth={("a", "b")}, error_rate=0.2, seed=3)
        question = MultiItemQuestion(frozenset({"a", "b", "c"}))
        groups = crowd.answer(question)
        flat = [e for group in groups for e in group]
        assert sorted(flat) == sorted(question.entities)
