"""Tests for attribute matching with the 1:1 constraint (Section IV-C)."""

import pytest

from repro.core.attributes import attribute_similarity_matrix, match_attributes
from repro.kb import KnowledgeBase


@pytest.fixture()
def kbs_with_initial():
    kb1 = KnowledgeBase("kb1")
    kb2 = KnowledgeBase("kb2")
    initial = set()
    for i in range(6):
        e1, e2 = f"a{i}", f"b{i}"
        kb1.add_entity(e1, label=f"entity {i}")
        kb2.add_entity(e2, label=f"entity {i}")
        kb1.add_attribute_triple(e1, "birth", f"19{i}0-01-0{i+1}")
        kb2.add_attribute_triple(e2, "born", f"19{i}0-01-0{i+1}")
        kb1.add_attribute_triple(e1, "job", "word" + str(i))
        kb2.add_attribute_triple(e2, "profession", "word" + str(i))
        initial.add((e1, e2))
    return kb1, kb2, initial


def test_similarity_matrix_scores_true_pairs_high(kbs_with_initial):
    kb1, kb2, initial = kbs_with_initial
    sims = attribute_similarity_matrix(kb1, kb2, initial)
    assert sims[("birth", "born")] == pytest.approx(1.0)
    assert sims[("job", "profession")] == pytest.approx(1.0)
    # cross pairs present but weak
    assert sims.get(("birth", "profession"), 0.0) < 0.5


def test_label_attribute_excluded_by_default(kbs_with_initial):
    kb1, kb2, initial = kbs_with_initial
    sims = attribute_similarity_matrix(kb1, kb2, initial)
    assert all("rdfs:label" not in key for key in sims)


def test_one_to_one_matching(kbs_with_initial):
    kb1, kb2, initial = kbs_with_initial
    matches = match_attributes(kb1, kb2, initial)
    found = {(m.attr1, m.attr2) for m in matches}
    assert ("birth", "born") in found
    assert ("job", "profession") in found
    # 1:1: each attribute appears at most once
    lefts = [m.attr1 for m in matches]
    rights = [m.attr2 for m in matches]
    assert len(set(lefts)) == len(lefts)
    assert len(set(rights)) == len(rights)


def test_without_one_to_one_returns_all_above_threshold(kbs_with_initial):
    kb1, kb2, initial = kbs_with_initial
    loose = match_attributes(kb1, kb2, initial, one_to_one=False, min_similarity=0.01)
    strict = match_attributes(kb1, kb2, initial, one_to_one=True, min_similarity=0.01)
    assert len(loose) >= len(strict)


def test_no_initial_matches_yields_nothing():
    kb1, kb2 = KnowledgeBase("x"), KnowledgeBase("y")
    kb1.add_entity("a", label="A")
    kb2.add_entity("b", label="B")
    assert match_attributes(kb1, kb2, set()) == []


def test_min_similarity_filters(kbs_with_initial):
    kb1, kb2, initial = kbs_with_initial
    matches = match_attributes(kb1, kb2, initial, min_similarity=1.01)
    assert matches == []


def test_matches_sorted_by_similarity(kbs_with_initial):
    kb1, kb2, initial = kbs_with_initial
    matches = match_attributes(kb1, kb2, initial)
    sims = [m.similarity for m in matches]
    assert sims == sorted(sims, reverse=True)


def test_one_to_one_resolves_conflicts():
    """Two KB1 attributes competing for one KB2 attribute: best one wins."""
    kb1, kb2 = KnowledgeBase("x"), KnowledgeBase("y")
    initial = set()
    for i in range(4):
        e1, e2 = f"a{i}", f"b{i}"
        kb1.add_entity(e1)
        kb2.add_entity(e2)
        kb1.add_attribute_triple(e1, "exact", f"val{i} tok")
        kb1.add_attribute_triple(e1, "noisy", f"val{i} other")
        kb2.add_attribute_triple(e2, "target", f"val{i} tok")
        initial.add((e1, e2))
    matches = match_attributes(kb1, kb2, initial)
    winner = [m for m in matches if m.attr2 == "target"]
    assert len(winner) == 1
    assert winner[0].attr1 == "exact"
