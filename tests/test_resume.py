"""Checkpoint/resume: interrupted runs continue without re-asking questions."""

import pytest

from repro.core import Remp
from repro.crowd import CrowdPlatform


@pytest.fixture(scope="module")
def bundle(bundle_iimb_04):
    return bundle_iimb_04


def _platform(bundle):
    return CrowdPlatform.with_simulated_workers(
        bundle.gold_matches, num_workers=30, error_rate=0.1, seed=7
    )


class _Killed(Exception):
    pass


def _run_killed_after(bundle, loops: int):
    """Run until ``loops`` checkpoints were taken, then die mid-run."""
    checkpoints = []

    def sink(checkpoint):
        checkpoints.append(checkpoint)
        if len(checkpoints) == loops:
            raise _Killed

    platform = _platform(bundle)
    with pytest.raises(_Killed):
        Remp().run(bundle.kb1, bundle.kb2, platform, on_checkpoint=sink)
    return checkpoints[-1]


class TestAnswerLogReplay:
    def test_labels_independent_of_ask_order(self, bundle):
        questions = sorted(bundle.gold_matches)[:6]
        first = _platform(bundle)
        second = _platform(bundle)
        for question in questions:
            first.ask(question)
        for question in reversed(questions):
            second.ask(question)
        for question in questions:
            assert first.ask(question) == second.ask(question)

    def test_export_load_round_trip(self, bundle):
        platform = _platform(bundle)
        questions = sorted(bundle.gold_matches)[:4]
        originals = {q: platform.ask(q) for q in questions}
        log = platform.export_answer_log()

        replayed = _platform(bundle)
        replayed.load_answer_log(log)
        for question in questions:
            assert replayed.ask(question) == originals[question]
        # Replayed questions are never billed.
        assert replayed.questions_asked == 0

    def test_answer_log_property_view(self, bundle):
        platform = _platform(bundle)
        question = sorted(bundle.gold_matches)[0]
        platform.ask(question)
        assert question in platform.answer_log
        assert len(platform.answer_log[question]) == 5


class TestKillAndResume:
    @pytest.fixture(scope="class")
    def baseline(self, bundle):
        return Remp().run(bundle.kb1, bundle.kb2, _platform(bundle))

    def test_checkpoints_are_emitted(self, bundle, baseline):
        seen = []
        platform = _platform(bundle)
        Remp().run(bundle.kb1, bundle.kb2, platform, on_checkpoint=seen.append)
        assert len(seen) == baseline.num_loops
        # Loop-phase billing never exceeds the final count (isolated-pair
        # seeding may add questions after the last checkpoint).
        assert seen[-1].questions_asked <= baseline.questions_asked
        assert [c.next_loop_index for c in seen] == list(range(1, len(seen) + 1))

    def test_resume_conserves_result_and_questions(self, bundle, baseline):
        checkpoint = _run_killed_after(bundle, loops=2)

        platform = _platform(bundle)
        platform.load_answer_log(checkpoint.answer_log)
        resumed = Remp().run(
            bundle.kb1, bundle.kb2, platform, resume_from=checkpoint
        )
        assert resumed.matches == baseline.matches
        assert resumed.questions_asked == baseline.questions_asked
        assert resumed.num_loops == baseline.num_loops
        assert [r.questions for r in resumed.history] == [
            r.questions for r in baseline.history
        ]

    def test_resume_asks_no_duplicate_questions(self, bundle, baseline):
        checkpoint = _run_killed_after(bundle, loops=2)
        replayed = {tuple(entry["question"]) for entry in checkpoint.answer_log}

        platform = _platform(bundle)
        platform.load_answer_log(checkpoint.answer_log)
        resumed = Remp().run(
            bundle.kb1, bundle.kb2, platform, resume_from=checkpoint
        )
        # The resumed platform only billed questions the first run never asked.
        assert platform.questions_asked == resumed.questions_asked - len(replayed)
        billed = set(platform.answer_log) - replayed
        assert not billed & replayed

    def test_resume_from_final_checkpoint_skips_loops(self, bundle, baseline):
        seen = []
        platform = _platform(bundle)
        Remp().run(bundle.kb1, bundle.kb2, platform, on_checkpoint=seen.append)
        final = seen[-1]

        fresh = _platform(bundle)
        fresh.load_answer_log(final.answer_log)
        resumed = Remp().run(bundle.kb1, bundle.kb2, fresh, resume_from=final)
        assert resumed.matches == baseline.matches
        assert resumed.num_loops == baseline.num_loops


class TestBillingInvariant:
    def test_result_counts_match_platform_billing(self, bundle):
        platform = _platform(bundle)
        result = Remp().run(bundle.kb1, bundle.kb2, platform)
        assert result.questions_asked == platform.questions_asked


class TestStreamUpdateResume:
    """Kill-and-resume for mid-delta ``update()`` runs (repro.stream)."""

    SCALE = 0.75
    ERROR_RATE = 0.1

    @pytest.fixture(scope="class")
    def evolving(self):
        from repro.datasets import evolving_bundle

        return evolving_bundle(seed=0, scale=self.SCALE, steps=1)

    @pytest.fixture(scope="class")
    def reference(self, evolving, tmp_path_factory):
        """The uninterrupted root + update, for byte-comparison."""
        from repro.service import MatchingService
        from repro.store.serialize import result_to_doc

        path = tmp_path_factory.mktemp("stream-ref") / "ref.db"
        with MatchingService(str(path)) as service:
            root = service.submit(
                "evolving",
                scale=self.SCALE,
                error_rate=self.ERROR_RATE,
                background=False,
                stream=True,
            )
            service.result(root)
            updated = service.update(root, evolving.deltas[0], background=False)
            result = service.result(updated)
        return result_to_doc(result)

    def _interrupted_store(self, evolving, tmp_path, kill_on: str):
        """Run root + update, dying at the first ``kill_on`` unit event."""
        from repro.service import MatchingService

        class _Die(Exception):
            pass

        seen = []

        def killer(event):
            seen.append(event)
            if event.kind == kill_on and sum(
                1 for e in seen if e.kind == kill_on
            ) == 1:
                raise _Die

        path = tmp_path / "interrupted.db"
        with MatchingService(str(path)) as service:
            root = service.submit(
                "evolving",
                scale=self.SCALE,
                error_rate=self.ERROR_RATE,
                background=False,
                stream=True,
            )
            service.result(root)
            run_id = service.update(
                root, evolving.deltas[0], background=False, on_event=killer
            )
            with pytest.raises(_Die):
                service.result(run_id)
            assert service.store.get_run(run_id).status == "failed"
        return path, run_id

    @pytest.mark.parametrize("kill_on", ["checkpointed", "finished"])
    def test_resume_converges_to_uninterrupted_result(
        self, evolving, reference, tmp_path, kill_on
    ):
        """Mid-loop and between-unit kills both resume to the exact result."""
        from repro.service import MatchingService
        from repro.store.serialize import result_to_doc

        path, run_id = self._interrupted_store(evolving, tmp_path, kill_on)
        # A fresh service simulates a process restart.
        with MatchingService(str(path)) as service:
            service.resume(run_id, background=False)
            resumed = service.result(run_id)
            assert service.store.get_run(run_id).status == "done"
            outcome = service.stream_outcome(run_id)
        assert result_to_doc(resumed) == reference
        # Resume restores persisted work instead of re-running everything:
        # nothing that finished before the kill is re-billed as new spend.
        assert outcome is not None
        assert outcome.questions_new <= resumed.questions_asked
