"""Tests for similarity vectors, the partial order and Algorithm 1."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.attributes import AttributeMatch
from repro.core.pruning import partial_order_pruning, pruning_error_rate
from repro.core.vectors import (
    VectorIndex,
    build_similarity_vectors,
    dominates,
    strictly_dominates,
)
from repro.kb import KnowledgeBase


class TestPartialOrder:
    def test_dominates_reflexive(self):
        assert dominates((0.5, 0.5), (0.5, 0.5))

    def test_strict_dominance(self):
        assert strictly_dominates((0.9, 0.5), (0.5, 0.5))
        assert not strictly_dominates((0.5, 0.5), (0.5, 0.5))

    def test_incomparable_vectors(self):
        assert not dominates((0.9, 0.1), (0.1, 0.9))
        assert not dominates((0.1, 0.9), (0.9, 0.1))

    @given(
        st.lists(st.floats(0, 1), min_size=3, max_size=3),
        st.lists(st.floats(0, 1), min_size=3, max_size=3),
        st.lists(st.floats(0, 1), min_size=3, max_size=3),
    )
    def test_transitivity(self, a, b, c):
        a, b, c = tuple(a), tuple(b), tuple(c)
        if dominates(a, b) and dominates(b, c):
            assert dominates(a, c)


class TestBuildVectors:
    def test_vector_components_follow_attribute_matches(self):
        kb1, kb2 = KnowledgeBase("x"), KnowledgeBase("y")
        kb1.add_entity("a")
        kb2.add_entity("b")
        kb1.add_attribute_triple("a", "p", "same words")
        kb2.add_attribute_triple("b", "q", "same words")
        kb1.add_attribute_triple("a", "r", "alpha")
        kb2.add_attribute_triple("b", "s", "omega")
        matches = [AttributeMatch("p", "q", 1.0), AttributeMatch("r", "s", 0.5)]
        vectors = build_similarity_vectors(kb1, kb2, {("a", "b")}, matches)
        assert vectors[("a", "b")] == (1.0, 0.0)

    def test_missing_attribute_yields_zero_component(self):
        kb1, kb2 = KnowledgeBase("x"), KnowledgeBase("y")
        kb1.add_entity("a")
        kb2.add_entity("b")
        matches = [AttributeMatch("p", "q", 1.0)]
        vectors = build_similarity_vectors(kb1, kb2, {("a", "b")}, matches)
        assert vectors[("a", "b")] == (0.0,)


def _index(vectors):
    return VectorIndex(dict(vectors))


class TestMinRank:
    def test_dominant_pair_has_rank_zero(self):
        index = _index({("u", "v1"): (0.9, 0.9), ("u", "v2"): (0.1, 0.1)})
        assert index.min_rank(("u", "v1")) == 0
        assert index.min_rank(("u", "v2")) == 1

    def test_incomparable_pairs_all_rank_zero(self):
        index = _index({("u", "v1"): (0.9, 0.1), ("u", "v2"): (0.1, 0.9)})
        assert index.min_rank(("u", "v1")) == 0
        assert index.min_rank(("u", "v2")) == 0

    def test_two_sided_rank_takes_max(self):
        index = _index(
            {
                ("u1", "v"): (0.5,),
                ("u2", "v"): (0.9,),
                ("u1", "w"): (0.4,),
            }
        )
        # ("u1","v") dominated by ("u2","v") on the right side
        assert index.min_rank(("u1", "v")) == 1


class TestPruning:
    def test_keeps_small_blocks(self):
        index = _index({("u", f"v{i}"): (float(i) / 10,) for i in range(3)})
        retained = partial_order_pruning(set(index.vectors), index, k=4)
        assert retained == set(index.vectors)

    def test_prunes_dominated_beyond_k(self):
        vectors = {("u", f"v{i}"): (float(i),) for i in range(10)}
        index = _index(vectors)
        retained = partial_order_pruning(set(vectors), index, k=4)
        # top-4 by the single component: v6..v9
        assert retained == {("u", f"v{i}") for i in range(6, 10)}

    def test_incomparable_block_survives(self):
        # Pairwise incomparable vectors: nothing can be pruned.
        vectors = {("u", f"v{i}"): tuple(1.0 if j == i else 0.0 for j in range(6)) for i in range(6)}
        index = _index(vectors)
        retained = partial_order_pruning(set(vectors), index, k=2)
        assert retained == set(vectors)

    def test_prunes_both_sides(self):
        vectors = {(f"u{i}", "v"): (float(i),) for i in range(8)}
        index = _index(vectors)
        retained = partial_order_pruning(set(vectors), index, k=3)
        assert retained == {(f"u{i}", "v") for i in range(5, 8)}

    def test_k_must_be_positive(self):
        index = _index({})
        with pytest.raises(ValueError):
            partial_order_pruning(set(), index, k=0)

    @settings(max_examples=25, deadline=None)
    @given(
        values=st.lists(st.floats(0, 1), min_size=1, max_size=12),
        k=st.integers(1, 5),
    )
    def test_retained_pairs_have_min_rank_below_k(self, values, k):
        vectors = {("u", f"v{i}"): (val,) for i, val in enumerate(values)}
        index = _index(vectors)
        retained = partial_order_pruning(set(vectors), index, k=k)
        for pair in retained:
            assert index.min_rank(pair) < k
        # every pruned pair is genuinely out of the top-k
        for pair in set(vectors) - retained:
            assert index.min_rank(pair) >= k


class TestPruningErrorRate:
    def test_consistent_partial_order_zero_error(self):
        index = _index({("u", "v1"): (0.9,), ("u", "v2"): (0.1,)})
        gold = {("u", "v1")}
        assert pruning_error_rate(set(index.vectors), index, gold) == 0.0

    def test_inverted_order_flags_error(self):
        index = _index({("u", "v1"): (0.1,), ("u", "v2"): (0.9,)})
        gold = {("u", "v1")}  # the true match is dominated by a non-match
        assert pruning_error_rate(set(index.vectors), index, gold) == pytest.approx(0.5)

    def test_empty_retained(self):
        index = _index({})
        assert pruning_error_rate(set(), index, set()) == 0.0
