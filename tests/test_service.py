"""Tests for the concurrent matching service."""

import threading

import pytest

from repro.core import Remp, RempConfig
from repro.crowd import CrowdPlatform
from repro.service import MatchingService
from repro.store import RunStore


@pytest.fixture(scope="module")
def bundle(bundle_iimb_02):
    return bundle_iimb_02


@pytest.fixture(scope="module")
def direct_result(bundle):
    platform = CrowdPlatform.with_oracle(bundle.gold_matches)
    return Remp().run(bundle.kb1, bundle.kb2, platform)


class TestPreparedCache:
    def test_second_run_skips_prepare(self, tmp_path, monkeypatch):
        calls = []
        original = Remp.prepare

        def counting(self, kb1, kb2):
            calls.append(1)
            return original(self, kb1, kb2)

        monkeypatch.setattr(Remp, "prepare", counting)
        with MatchingService(RunStore(tmp_path / "store.db")) as service:
            a = service.submit("iimb", scale=0.2, background=False)
            b = service.submit("iimb", scale=0.2, background=False)
            result_a = service.result(a)
            result_b = service.result(b)
        assert len(calls) == 1  # the acceptance criterion: one prepare()
        assert result_a.matches == result_b.matches
        assert result_a.questions_asked == result_b.questions_asked

    def test_cache_hit_returns_identical_artifacts(self, tmp_path):
        with MatchingService(RunStore(tmp_path / "store.db")) as service:
            first = service.prepared("iimb", scale=0.2)
            second = service.prepared("iimb", scale=0.2)
            assert second is first  # memory cache
            assert service.cache_hits == 1
            assert service.cache_misses == 1

    def test_store_cache_survives_new_service(self, tmp_path):
        path = tmp_path / "store.db"
        with MatchingService(RunStore(path)) as service:
            first = service.prepared("iimb", scale=0.2)
        with MatchingService(RunStore(path)) as service:
            second = service.prepared("iimb", scale=0.2)
            assert service.cache_misses == 0
            assert service.cache_hits == 1
        assert second.retained == first.retained
        assert second.priors == first.priors

    def test_concurrent_prepare_deduplicated(self, tmp_path, monkeypatch):
        calls = []
        original = Remp.prepare

        def counting(self, kb1, kb2):
            calls.append(1)
            return original(self, kb1, kb2)

        monkeypatch.setattr(Remp, "prepare", counting)
        with MatchingService(RunStore(tmp_path / "store.db")) as service:
            results = []

            def worker():
                results.append(service.prepared("iimb", scale=0.2))

            threads = [threading.Thread(target=worker) for _ in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert len(calls) == 1
        assert all(state is results[0] for state in results)


class TestSessionLifecycle:
    def test_background_submit_result(self, tmp_path, bundle, direct_result):
        with MatchingService(RunStore(tmp_path / "store.db"), max_workers=2) as service:
            run_id = service.submit("iimb", scale=0.2)
            result = service.result(run_id)
            assert service.status(run_id) == "done"
            assert result.matches == direct_result.matches
            assert result.questions_asked == direct_result.questions_asked
            record = service.store.get_run(run_id)
            assert record.status == "done"
            assert record.questions_asked == result.questions_asked

    def test_foreground_step_lifecycle(self, tmp_path, direct_result):
        with MatchingService(RunStore(tmp_path / "store.db")) as service:
            run_id = service.submit("iimb", scale=0.2, background=False)
            assert service.status(run_id) == "queued"
            steps = 0
            while service.step(run_id):
                steps += 1
                assert service.status(run_id) == "running"
            result = service.result(run_id)
            assert steps == direct_result.num_loops
            assert result.matches == direct_result.matches
            assert service.status(run_id) == "done"

    def test_stepping_checkpoints_each_loop(self, tmp_path):
        with MatchingService(RunStore(tmp_path / "store.db")) as service:
            run_id = service.submit("iimb", scale=0.2, background=False)
            assert service.step(run_id)
            checkpoint = service.store.load_checkpoint(run_id)
            assert checkpoint is not None
            assert checkpoint.next_loop_index == 1
            assert checkpoint.answer_log

    def test_concurrent_batch_matches_sequential(self, tmp_path, direct_result):
        with MatchingService(RunStore(tmp_path / "store.db"), max_workers=4) as service:
            run_ids = [service.submit("iimb", scale=0.2) for _ in range(3)]
            results = [service.result(run_id) for run_id in run_ids]
        for result in results:
            assert result.matches == direct_result.matches
            assert result.questions_asked == direct_result.questions_asked

    def test_result_from_ledger_after_restart(self, tmp_path):
        path = tmp_path / "store.db"
        with MatchingService(RunStore(path)) as service:
            run_id = service.submit("iimb", scale=0.2, background=False)
            finished = service.result(run_id)
        with MatchingService(RunStore(path)) as service:
            stored = service.result(run_id)
            assert stored.matches == finished.matches

    def test_unknown_run_rejected(self, tmp_path):
        with MatchingService(RunStore(tmp_path / "store.db")) as service:
            with pytest.raises(KeyError):
                service.status("nope")
            with pytest.raises(KeyError):
                service.resume("nope")


class TestServiceResume:
    def test_resume_interrupted_session(self, tmp_path, direct_result):
        path = tmp_path / "store.db"
        with MatchingService(RunStore(path)) as service:
            run_id = service.submit("iimb", scale=0.2, background=False)
            # Two loops, then the process "dies".
            assert service.step(run_id)
            assert service.step(run_id)
            questions_so_far = service.store.load_checkpoint(run_id).questions_asked

        with MatchingService(RunStore(path)) as service:
            service.resume(run_id, background=False)
            resumed = service.result(run_id)
            assert resumed.matches == direct_result.matches
            assert resumed.questions_asked == direct_result.questions_asked
            assert resumed.questions_asked >= questions_so_far
            assert service.store.get_run(run_id).status == "done"
            # The finished run's checkpoint is cleaned up.
            assert service.store.load_checkpoint(run_id) is None

    def test_resume_live_run_rejected(self, tmp_path):
        with MatchingService(RunStore(tmp_path / "store.db")) as service:
            run_id = service.submit("iimb", scale=0.2, background=False)
            with pytest.raises(ValueError, match="live session"):
                service.resume(run_id)

    def test_resume_finished_run_rejected(self, tmp_path):
        with MatchingService(RunStore(tmp_path / "store.db")) as service:
            run_id = service.submit("iimb", scale=0.2, background=False)
            service.result(run_id)
            with pytest.raises(ValueError, match="already finished"):
                service.resume(run_id)

    def test_noisy_resume_matches_uninterrupted(self, tmp_path):
        config = RempConfig()
        path_a = tmp_path / "a.db"
        path_b = tmp_path / "b.db"
        with MatchingService(RunStore(path_a)) as service:
            run_id = service.submit(
                "iimb", scale=0.2, config=config, error_rate=0.1, background=False
            )
            uninterrupted = service.result(run_id)

        with MatchingService(RunStore(path_b)) as service:
            run_id = service.submit(
                "iimb", scale=0.2, config=config, error_rate=0.1, background=False
            )
            assert service.step(run_id)
        with MatchingService(RunStore(path_b)) as service:
            service.resume(run_id, background=False)
            resumed = service.result(run_id)
        assert resumed.matches == uninterrupted.matches
        assert resumed.questions_asked == uninterrupted.questions_asked


class TestStreamSessions:
    def test_update_inherits_parent_workers(self, tmp_path):
        """A lineage started parallel stays parallel across updates."""
        from repro.datasets import evolving_bundle

        evolving = evolving_bundle(seed=0, scale=0.4, steps=2)
        with MatchingService(str(tmp_path / "svc.db")) as service:
            root = service.submit(
                "evolving", scale=0.4, workers=2, background=False, stream=True
            )
            service.result(root)
            updated = service.update(root, evolving.deltas[0], background=False)
            service.result(updated)
            assert service.store.get_run(updated).workers == 2
            # An explicit override still wins and is recorded.
            second = service.update(
                updated, evolving.deltas[1], workers=1, background=False
            )
            service.result(second)
            assert service.store.get_run(second).workers == 1


class TestTimingIsolation:
    def test_concurrent_timings_do_not_contaminate_run(self, tmp_path):
        """Another session's kernel timings never leak into a run's doc.

        Before run-scoped timing, ``TIMINGS`` was snapshot/diffed around
        the run, so any concurrent session writing to the global registry
        contaminated the persisted per-run stages.
        """
        from repro.accel.runtime import TIMINGS

        stop = threading.Event()

        def poison():
            while not stop.is_set():
                TIMINGS.add("poison.stage", 1.0)

        thread = threading.Thread(target=poison, daemon=True)
        thread.start()
        try:
            with MatchingService(RunStore(tmp_path / "store.db")) as service:
                run_id = service.submit("iimb", scale=0.2, background=False)
                service.result(run_id)
                stages = service.store.load_run_timings(run_id)["stages"]
        finally:
            stop.set()
            thread.join()
        assert "poison.stage" not in stages
        assert stages, "real stages should still be attributed"
