"""Cross-module property-based tests on randomized worlds.

These complement the per-module hypothesis tests with end-to-end
invariants: whatever the world looks like, the pipeline must respect its
precision restriction under an oracle, billing must match the platform,
and the core data structures must stay internally consistent.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Remp, RempConfig
from repro.crowd import CrowdPlatform
from repro.datasets.synthesis import (
    AttributeSpec,
    NoiseConfig,
    RelationSpec,
    TypeSpec,
    WorldConfig,
    generate_dataset,
)
from repro.eval import evaluate_matches


def _world(seed: int, homonyms: float, noise_level: float) -> WorldConfig:
    noise = NoiseConfig(
        label_typo_prob=noise_level,
        label_token_drop_prob=noise_level / 2,
        value_noise_prob=noise_level,
        value_break_prob=0.2,
        edge_drop_prob=noise_level / 2,
    )
    return WorldConfig(
        name=f"prop{seed}",
        types=(
            TypeSpec(
                "a",
                24,
                attributes=(AttributeSpec("x", kind="year"),),
                relations=(RelationSpec("r", "b", mean_degree=1.5),),
            ),
            TypeSpec("b", 18, attributes=(AttributeSpec("y", tokens=2),)),
            TypeSpec("c", 14),  # isolated type
        ),
        noise2=noise,
        homonym_fraction=homonyms,
        vocabulary_size=90,
    )


@settings(max_examples=8, deadline=None)
@given(
    seed=st.integers(0, 500),
    homonyms=st.sampled_from([0.0, 0.1]),
    noise_level=st.sampled_from([0.05, 0.2]),
)
def test_oracle_run_invariants(seed, homonyms, noise_level):
    bundle = generate_dataset(_world(seed, homonyms, noise_level), seed=seed)
    platform = CrowdPlatform.with_oracle(bundle.gold_matches)
    remp = Remp(RempConfig(mu=5))
    state = remp.prepare(bundle.kb1, bundle.kb2)
    result = remp.run(bundle.kb1, bundle.kb2, platform, state=state)

    # Billing consistency.
    assert result.questions_asked == platform.questions_asked
    # Output partition consistency.
    assert result.matches == (
        result.labeled_matches | result.inferred_matches | result.isolated_matches
    )
    assert not result.matches & result.non_matches
    # Every output pair exists in both KBs.
    for e1, e2 in result.matches:
        assert e1 in bundle.kb1
        assert e2 in bundle.kb2
    # Oracle labels are never wrong, so labeled matches are all gold.
    assert result.labeled_matches <= bundle.gold_matches
    # The precision restriction (Definition 1) under clean labels.
    if len(result.matches) >= 10:
        assert evaluate_matches(result.matches, bundle.gold_matches).precision > 0.6


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(0, 300))
def test_prepare_artifacts_internally_consistent(seed):
    bundle = generate_dataset(_world(seed, 0.05, 0.1), seed=seed)
    state = Remp().prepare(bundle.kb1, bundle.kb2)
    # Vector index covers exactly the candidates; retained is a subset.
    assert set(state.vector_index.vectors) == state.candidates.pairs
    assert state.retained <= state.candidates.pairs
    # Graph vertices and signature keys are exactly the retained pairs.
    assert state.graph.vertices == state.retained
    assert set(state.signatures) == state.retained
    # Priors come from label similarity and stay in (0, 1].
    for pair, prior in state.priors.items():
        assert 0.0 < prior <= 1.0
    # All vectors share one length: len(attribute_matches) + 1 (the prior).
    lengths = {len(v) for v in state.vector_index.vectors.values()}
    assert lengths == {len(state.attribute_matches) + 1}


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(0, 300), error_rate=st.sampled_from([0.1, 0.3]))
def test_noisy_crowd_never_crashes_and_bills_once(seed, error_rate):
    bundle = generate_dataset(_world(seed, 0.1, 0.15), seed=seed)
    platform = CrowdPlatform.with_simulated_workers(
        bundle.gold_matches, num_workers=15, error_rate=error_rate, seed=seed
    )
    result = Remp().run(bundle.kb1, bundle.kb2, platform)
    assert result.questions_asked == platform.questions_asked
    assert platform.labels_collected == platform.questions_asked * min(5, 15)
