"""The accel equivalence oracle: kernels vs pure-Python reference.

Every kernel in :mod:`repro.accel` claims *byte-identical* results to the
reference path it replaces.  This suite pins that claim three ways:

* property-based (hypothesis) equivalence of the dominance kernels and
  the interned simL scorer against the reference functions, across
  seeds, scales, attribute counts, degenerate blocks of size <= k,
  duplicate vectors and empty-token labels;
* serialized-document identity of a full ``Remp.prepare`` with the accel
  layer on vs off;
* full-run identity (including per-loop question batches, which are
  sensitive to inferred-set iteration order) through the incremental
  propagator, with and without a mid-run checkpoint restore.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accel.dominance import (
    PackedVectors,
    _any_dominator_python,
    _counts_python,
    any_strict_dominator,
    strict_dominance_counts,
)
from repro.accel.candidates import score_candidates
from repro.accel.literals import LiteralScorer
from repro.accel.marginals import _marginals_dp, _marginals_reference
from repro.accel.runtime import accel_enabled, force_accel
from repro.core import Remp, RempConfig
from repro.core.attributes import AttributeMatch
from repro.core.candidates import _token_index
from repro.core.er_graph import build_er_graph
from repro.core.isolated import build_signatures
from repro.core.propagation import _marginals_exact, _odds
from repro.kb.model import KnowledgeBase
from repro.core.pruning import partial_order_pruning, pruning_error_rate
from repro.core.vectors import VectorIndex
from repro.crowd import CrowdPlatform
from repro.datasets import clustered_bundle
from repro.store.serialize import prepared_state_to_doc, result_to_doc
from repro.text.literal import literal_set_similarity

# ----------------------------------------------------------------------
# Kernel-level properties
# ----------------------------------------------------------------------
#: Tied component values dominate real blocks; a coarse grid maximizes
#: duplicate vectors and equal-sum prefixes (the tricky kernel paths).
_component = st.sampled_from([0.0, 0.25, 0.5, 0.75, 1.0])


@st.composite
def _blocks(draw):
    width = draw(st.integers(min_value=0, max_value=5))
    size = draw(st.integers(min_value=0, max_value=64))
    vector = st.tuples(*[_component] * width)
    return draw(st.lists(vector, min_size=size, max_size=size))


@settings(max_examples=60, deadline=None)
@given(_blocks(), st.sampled_from([None, 1, 2, 4]))
def test_dominance_counts_match_reference(block, cap):
    assert strict_dominance_counts(block, cap) == _counts_python(block, cap)


@settings(max_examples=60, deadline=None)
@given(_blocks(), st.sampled_from([None, 4]))
def test_packed_counts_match_reference(block, cap):
    vectors = {(f"L{i}", f"R{i}"): v for i, v in enumerate(block)}
    packed = PackedVectors(vectors)
    pairs = list(vectors)
    if not packed.available:
        return
    assert packed.counts(pairs, cap) == _counts_python(block, cap)


@settings(max_examples=40, deadline=None)
@given(_blocks(), _blocks())
def test_any_dominator_matches_reference(targets, candidates):
    width = len(targets[0]) if targets else 0
    candidates = [c[:width] + (0.0,) * (width - len(c)) for c in candidates]
    assert any_strict_dominator(targets, candidates) == _any_dominator_python(
        targets, candidates
    )


#: Literal pool mixing strings, numeric strings, numbers, bools and
#: labels that normalize to an empty token set ("!!!", "").
_literal = st.sampled_from(
    [
        "The Cradle Will Rock",
        "cradle rock film",
        "rock",
        "1999",
        " 1999 ",
        1999,
        1999.0,
        2024,
        3.14,
        "3.14",
        True,
        False,
        "",
        "!!!",
        "Ω λ",
        0,
        "nan",
    ]
)
_values = st.lists(_literal, min_size=0, max_size=4).map(tuple)


@settings(max_examples=100, deadline=None)
@given(_values, _values, st.sampled_from([0.5, 0.9, 1.0]))
def test_literal_scorer_matches_reference(values_a, values_b, threshold):
    scorer = LiteralScorer(threshold)
    expected = literal_set_similarity(values_a, values_b, threshold)
    assert scorer.set_similarity(values_a, values_b) == expected
    # Memoized second call must return the identical float.
    assert scorer.set_similarity(values_a, values_b) == expected


# ----------------------------------------------------------------------
# Index / pruning equivalence (accel on vs REPRO_NO_ACCEL)
# ----------------------------------------------------------------------
@st.composite
def _vector_indexes(draw):
    width = draw(st.integers(min_value=1, max_value=4))
    n_left = draw(st.integers(min_value=1, max_value=8))
    n_right = draw(st.integers(min_value=1, max_value=8))
    vector = st.tuples(*[_component] * width)
    vectors = {}
    for i in range(n_left):
        for j in range(n_right):
            if draw(st.booleans()):
                vectors[(f"L{i}", f"R{j}")] = draw(vector)
    return vectors


@settings(max_examples=40, deadline=None)
@given(_vector_indexes(), st.integers(min_value=1, max_value=5))
def test_pruning_and_min_rank_equivalence(vectors, k):
    pairs = set(vectors)
    with force_accel(True):
        index = VectorIndex(dict(vectors))
        retained_on = partial_order_pruning(pairs, index, k)
        ranks_on = {p: index.min_rank(p) for p in pairs}
    with force_accel(False):
        index = VectorIndex(dict(vectors))
        retained_off = partial_order_pruning(pairs, index, k)
        ranks_off = {p: index.min_rank(p) for p in pairs}
    assert retained_on == retained_off
    assert ranks_on == ranks_off


@settings(max_examples=30, deadline=None)
@given(_vector_indexes(), st.data())
def test_pruning_error_rate_equivalence(vectors, data):
    pairs = sorted(vectors)
    gold = set(
        data.draw(st.lists(st.sampled_from(pairs), unique=True))
    ) if pairs else set()
    with force_accel(True):
        rate_on = pruning_error_rate(set(pairs), VectorIndex(dict(vectors)), gold)
    with force_accel(False):
        rate_off = pruning_error_rate(set(pairs), VectorIndex(dict(vectors)), gold)
    assert rate_on == rate_off


# ----------------------------------------------------------------------
# Pipeline-level byte identity
# ----------------------------------------------------------------------
def _bundle():
    return clustered_bundle(
        num_clusters=4,
        movies_per_cluster=3,
        seed=0,
        label_noise=0.5,
        critics_per_cluster=1,
    )


def _dump(doc) -> str:
    return json.dumps(doc, sort_keys=True)


def test_prepare_byte_identity():
    bundle = _bundle()
    with force_accel(True):
        doc_on = prepared_state_to_doc(Remp().prepare(bundle.kb1, bundle.kb2))
    with force_accel(False):
        doc_off = prepared_state_to_doc(Remp().prepare(bundle.kb1, bundle.kb2))
    assert _dump(doc_on) == _dump(doc_off)


def test_full_run_byte_identity():
    """Loops, question batches and all resolution sets must coincide."""
    bundle = _bundle()

    def run():
        platform = CrowdPlatform.with_simulated_workers(
            bundle.gold_matches, error_rate=0.1, seed=3
        )
        return Remp().run(bundle.kb1, bundle.kb2, platform)

    with force_accel(True):
        result_on = run()
    with force_accel(False):
        result_off = run()
    assert _dump(result_to_doc(result_on)) == _dump(result_to_doc(result_off))
    assert [r.questions for r in result_on.history] == [
        r.questions for r in result_off.history
    ]


def test_checkpoint_restore_resets_propagator():
    """A restored loop state re-primes the incremental propagator.

    Resolutions restored from a snapshot arrive without the propagator
    having seen the intermediate diffs; the run must still finish
    byte-identically to an uninterrupted one.
    """
    bundle = _bundle()
    config = RempConfig()

    def platform():
        return CrowdPlatform.with_simulated_workers(
            bundle.gold_matches, error_rate=0.1, seed=1
        )

    with force_accel(True):
        state = Remp(config).prepare(bundle.kb1, bundle.kb2)
        straight = result_to_doc(
            Remp(config).run(bundle.kb1, bundle.kb2, platform(), state=state)
        )
        # Collect checkpoints from a throwaway loop drive, then restart
        # from the first one on a fresh platform that replays its answer
        # log (the documented resume protocol).
        checkpoints = []
        Remp(config).run_loop_phase(
            state, platform(), on_checkpoint=checkpoints.append
        )
        assert checkpoints, "bundle too small to checkpoint mid-loop"
        resumed_platform = platform()
        resumed_platform.load_answer_log(checkpoints[0].answer_log)
        resumed = result_to_doc(
            Remp(config).run(
                bundle.kb1,
                bundle.kb2,
                resumed_platform,
                state=state,
                resume_from=checkpoints[0],
            )
        )
    assert _dump(resumed) == _dump(straight)


def test_accel_enabled_by_default_and_env_gated(monkeypatch):
    monkeypatch.delenv("REPRO_NO_ACCEL", raising=False)
    assert accel_enabled()
    monkeypatch.setenv("REPRO_NO_ACCEL", "1")
    assert not accel_enabled()
    monkeypatch.setenv("REPRO_NO_ACCEL", "")
    assert accel_enabled()


# ----------------------------------------------------------------------
# Kernel-floor properties: marginals, ER graph, candidates, signatures
# ----------------------------------------------------------------------
def _random_world_pairs(draw, max_side=6, max_pairs=12):
    n_left = draw(st.integers(min_value=1, max_value=max_side))
    n_right = draw(st.integers(min_value=1, max_value=max_side))
    universe = [(f"l{i}", f"r{j}") for i in range(n_left) for j in range(n_right)]
    pairs = draw(
        st.lists(
            st.sampled_from(universe), min_size=1, max_size=max_pairs, unique=True
        )
    )
    return sorted(pairs)


@st.composite
def _marginal_groups(draw):
    pairs = _random_world_pairs(draw)
    # Repeated 0.5s force prior ties; missing entries take the default.
    prior = st.sampled_from([0.1, 0.25, 0.5, 0.5, 0.5, 0.9, 0.99])
    priors = {p: draw(prior) for p in pairs if draw(st.booleans())}
    gamma = draw(st.sampled_from([0.01, 0.5, 1.0, 2.0]))
    return pairs, priors, gamma


@settings(max_examples=80, deadline=None)
@given(_marginal_groups())
def test_marginal_dp_matches_reference(group):
    """The memoized permanent DP is bit-equal to the plain recursion."""
    pairs, priors, gamma = group
    odds = [_odds(priors.get(p, 0.5)) * gamma for p in pairs]
    reference = _marginals_reference(pairs, odds)
    dp = _marginals_dp(pairs, odds)
    assert list(dp) == list(reference)
    assert all(dp[p].hex() == reference[p].hex() for p in pairs)
    with force_accel(True):
        on = _marginals_exact(pairs, priors, gamma)
    with force_accel(False):
        off = _marginals_exact(pairs, priors, gamma)
    assert all(on[p].hex() == off[p].hex() for p in pairs)


@st.composite
def _relational_worlds(draw):
    size = draw(st.integers(min_value=2, max_value=7))
    relations = ("directed", "acted_in", "cites")
    triple = st.tuples(
        st.integers(min_value=0, max_value=size - 1),
        st.sampled_from(relations),
        st.integers(min_value=0, max_value=size - 1),
    )
    kb1 = KnowledgeBase("hw1")
    kb2 = KnowledgeBase("hw2")
    for i in range(size):
        kb1.add_entity(f"a{i}")
        kb2.add_entity(f"b{i}")
    for s, rel, t in draw(st.lists(triple, max_size=24)):
        kb1.add_relationship_triple(f"a{s}", rel, f"a{t}")
    for s, rel, t in draw(st.lists(triple, max_size=24)):
        kb2.add_relationship_triple(f"b{s}", rel, f"b{t}")
    vertex = st.tuples(
        st.integers(min_value=0, max_value=size - 1),
        st.integers(min_value=0, max_value=size - 1),
    )
    vertices = [
        (f"a{i}", f"b{j}")
        for i, j in draw(st.lists(vertex, min_size=1, max_size=16, unique=True))
    ]
    return kb1, kb2, vertices


@settings(max_examples=60, deadline=None)
@given(_relational_worlds())
def test_er_graph_kernel_matches_reference(world):
    """Adjacency-joined groups replay the reference's dict orders exactly."""
    kb1, kb2, vertices = world
    with force_accel(True):
        accel = build_er_graph(kb1, kb2, vertices)
    with force_accel(False):
        pure = build_er_graph(kb1, kb2, vertices)
    assert accel.vertices == pure.vertices
    assert list(accel.groups) == list(pure.groups)
    for vertex, by_label in pure.groups.items():
        assert list(accel.groups[vertex]) == list(by_label)
        for label, members in by_label.items():
            assert accel.groups[vertex][label] == members


@st.composite
def _label_worlds(draw):
    tokens = ("north", "star", "blue", "rock", "film", "x1")
    label = st.lists(
        st.sampled_from(tokens), min_size=1, max_size=3, unique=True
    ).map(" ".join)
    kb1 = KnowledgeBase("lw1")
    kb2 = KnowledgeBase("lw2")
    for i, text in enumerate(draw(st.lists(label, min_size=1, max_size=12))):
        kb1.add_entity(f"p{i}", label=text)
    for j, text in enumerate(draw(st.lists(label, min_size=1, max_size=12))):
        kb2.add_entity(f"q{j}", label=text)
    threshold = draw(st.sampled_from([0.3, 0.5, 1.0]))
    return kb1, kb2, threshold


@settings(max_examples=60, deadline=None)
@given(_label_worlds())
def test_candidate_scoring_kernel_matches_reference(world):
    """The vectorized postings join scores bit-equal Jaccard priors."""
    kb1, kb2, threshold = world
    tokens1, _ = _token_index(kb1)
    tokens2, inverted2 = _token_index(kb2)
    expected: dict[tuple[str, str], float] = {}
    for entity1, tset1 in tokens1.items():
        intersections: dict[str, int] = {}
        for token in tset1:
            for entity2 in inverted2.get(token, ()):
                intersections[entity2] = intersections.get(entity2, 0) + 1
        for entity2, shared in intersections.items():
            sim = shared / (len(tset1) + len(tokens2[entity2]) - shared)
            if sim >= threshold:
                expected[(entity1, entity2)] = sim
    with force_accel(True):
        scored = score_candidates(
            tokens1, tokens2, inverted2, threshold, min_entities=0
        )
    assert scored is not None
    assert scored.keys() == expected.keys()
    assert all(scored[pair].hex() == expected[pair].hex() for pair in expected)


@st.composite
def _attribute_worlds(draw):
    attrs = ("year", "runtime", "budget", "rating")
    size = draw(st.integers(min_value=1, max_value=6))
    kb1 = KnowledgeBase("aw1")
    kb2 = KnowledgeBase("aw2")
    cell = st.tuples(
        st.integers(min_value=0, max_value=size - 1), st.sampled_from(attrs)
    )
    for i in range(size):
        kb1.add_entity(f"a{i}")
        kb2.add_entity(f"b{i}")
    for i, attr in draw(st.lists(cell, max_size=12)):
        kb1.add_attribute_triple(f"a{i}", attr, 1)
    for i, attr in draw(st.lists(cell, max_size=12)):
        kb2.add_attribute_triple(f"b{i}", attr, 1)
    matches = [
        AttributeMatch(attr, attr, 1.0) for attr in draw(st.sets(st.sampled_from(attrs)))
    ]
    vertex = st.tuples(
        st.integers(min_value=0, max_value=size - 1),
        st.integers(min_value=0, max_value=size - 1),
    )
    retained = [
        (f"a{i}", f"b{j}")
        for i, j in draw(st.lists(vertex, min_size=1, max_size=12, unique=True))
    ]
    return kb1, kb2, retained, matches


@settings(max_examples=60, deadline=None)
@given(_attribute_worlds())
def test_signature_interning_matches_reference(world):
    """Interned signatures equal the per-pair accessor loop's, key order too."""
    kb1, kb2, retained, matches = world
    with force_accel(True):
        interned = build_signatures(kb1, kb2, retained, matches)
    with force_accel(False):
        reference = build_signatures(kb1, kb2, retained, matches)
    assert list(interned) == list(reference)
    assert interned == reference
    by_value: dict[frozenset, int] = {}
    for signature in interned.values():
        previous = by_value.setdefault(signature, id(signature))
        assert previous == id(signature), "equal signatures must be one object"


def test_prepare_byte_identity_above_scoring_cutoff():
    """Full-prepare identity on a world large enough to engage the
    vectorized scoring kernel (the small bundle stays below its cutoff)."""
    bundle = clustered_bundle(
        num_clusters=6,
        movies_per_cluster=5,
        seed=0,
        label_noise=0.5,
        critics_per_cluster=2,
    )
    with force_accel(True):
        doc_on = prepared_state_to_doc(Remp().prepare(bundle.kb1, bundle.kb2))
    with force_accel(False):
        doc_off = prepared_state_to_doc(Remp().prepare(bundle.kb1, bundle.kb2))
    assert _dump(doc_on) == _dump(doc_off)
