"""Tests for relationship-consistency estimation (Section V-A)."""

import pytest

from repro.core.consistency import (
    Consistency,
    _best_latent,
    _Observation,
    estimate_all_consistencies,
    estimate_consistency,
)
from repro.kb import KnowledgeBase


class TestBestLatent:
    def test_zero_zeta_prefers_lower_bound(self):
        assert _best_latent(5, 5, 0, 1e-9) == 0

    def test_huge_zeta_prefers_max(self):
        assert _best_latent(5, 5, 0, 1e9) == 5

    def test_respects_lower_bound(self):
        assert _best_latent(5, 5, 3, 1e-9) == 3

    def test_upper_bound_is_min(self):
        assert _best_latent(2, 9, 0, 1e9) == 2


class TestEstimateConsistency:
    def test_fully_consistent_relationship(self):
        obs = [_Observation(2, 2, 2) for _ in range(10)]
        c = estimate_consistency(obs)
        assert c.epsilon1 > 0.9
        assert c.epsilon2 > 0.9

    def test_fully_inconsistent_relationship(self):
        obs = [_Observation(2, 2, 0) for _ in range(10)]
        c = estimate_consistency(obs)
        # With no observed matches the MLE can sit anywhere; the latent
        # search starts at the observed lower bound, so epsilon stays low.
        assert c.epsilon1 < 0.5

    def test_asymmetric_value_sets(self):
        # r1 single-valued and always matched; r2 multi-valued.
        obs = [_Observation(1, 4, 1) for _ in range(10)]
        c = estimate_consistency(obs)
        assert c.epsilon1 > c.epsilon2

    def test_empty_observations(self):
        c = estimate_consistency([])
        assert c == Consistency(0.5, 0.5, 0)

    def test_epsilons_clamped(self):
        obs = [_Observation(1, 1, 1) for _ in range(50)]
        c = estimate_consistency(obs, epsilon_ceiling=0.95)
        assert c.epsilon1 <= 0.95
        assert c.epsilon2 <= 0.95

    def test_gamma_positive(self):
        assert Consistency(0.9, 0.9, 1).gamma() > 1.0
        assert Consistency(0.1, 0.1, 1).gamma() < 1.0


class TestEstimateAll:
    @pytest.fixture()
    def functional_kbs(self):
        """wasBornIn is functional and perfectly consistent across KBs."""
        kb1, kb2 = KnowledgeBase("x"), KnowledgeBase("y")
        matches = set()
        for i in range(8):
            kb1.add_relationship_triple(f"a{i}", "bornIn", f"ac{i}")
            kb2.add_relationship_triple(f"b{i}", "birthPlace", f"bc{i}")
            matches.add((f"a{i}", f"b{i}"))
            matches.add((f"ac{i}", f"bc{i}"))
        return kb1, kb2, matches

    def test_functional_relationship_high_epsilon(self, functional_kbs):
        kb1, kb2, matches = functional_kbs
        result = estimate_all_consistencies(
            kb1, kb2, {("bornIn", "birthPlace")}, matches
        )
        c = result[("bornIn", "birthPlace")]
        assert c.epsilon1 > 0.9
        assert c.epsilon2 > 0.9
        assert c.support == 8

    def test_unsupported_label_gets_default(self, functional_kbs):
        kb1, kb2, matches = functional_kbs
        result = estimate_all_consistencies(
            kb1, kb2, {("nope", "nada")}, matches, epsilon_default=0.42
        )
        assert result[("nope", "nada")].epsilon1 == 0.42

    def test_min_support_fallback(self, functional_kbs):
        kb1, kb2, matches = functional_kbs
        result = estimate_all_consistencies(
            kb1, kb2, {("bornIn", "birthPlace")}, matches,
            min_support=100, epsilon_default=0.5,
        )
        assert result[("bornIn", "birthPlace")].epsilon1 == 0.5

    def test_inverse_labels_estimated(self, functional_kbs):
        kb1, kb2, matches = functional_kbs
        result = estimate_all_consistencies(
            kb1, kb2, {("~bornIn", "~birthPlace")}, matches
        )
        c = result[("~bornIn", "~birthPlace")]
        assert c.epsilon1 > 0.9

    def test_partially_consistent(self):
        """Half the matched pairs have matching values -> epsilon near 0.5."""
        kb1, kb2 = KnowledgeBase("x"), KnowledgeBase("y")
        matches = set()
        for i in range(10):
            kb1.add_relationship_triple(f"a{i}", "r", f"ac{i}")
            kb2.add_relationship_triple(f"b{i}", "s", f"bc{i}")
            matches.add((f"a{i}", f"b{i}"))
            if i < 5:
                matches.add((f"ac{i}", f"bc{i}"))
        result = estimate_all_consistencies(kb1, kb2, {("r", "s")}, matches)
        c = result[("r", "s")]
        assert 0.3 < c.epsilon1 < 0.8
