"""Tests for match propagation (Sections V-B, V-C)."""

import pytest

from repro.core.config import RempConfig
from repro.core.consistency import Consistency
from repro.core.er_graph import build_er_graph
from repro.core.propagation import (
    ProbabilisticERGraph,
    build_probabilistic_graph,
    neighbor_marginals,
)
from repro.kb import KnowledgeBase


class TestNeighborMarginals:
    def test_paper_example(self):
        """Section V-B worked example: Tim directed Cradle and Player.

        With ε₁ = ε₂ = 0.9 and uniform priors 0.5, the consistent pairs
        (Cradle, Cradle) and (Player, Player) should get probability near
        0.99 while the cross pair (Cradle, Player) drops near 0.01 — they
        compete for the same values.
        """
        group = {("yC", "dC"), ("yP", "dP"), ("yC", "dP")}
        priors = {("yC", "dC"): 0.5, ("yP", "dP"): 0.5, ("yC", "dP"): 0.5}
        consistency = Consistency(0.9, 0.9, 10)
        marginals = neighbor_marginals(group, priors, consistency)
        assert marginals[("yC", "dC")] > 0.9
        assert marginals[("yP", "dP")] > 0.9
        assert marginals[("yC", "dP")] < 0.2

    def test_single_functional_pair(self):
        group = {("a", "b")}
        marginals = neighbor_marginals(group, {("a", "b"): 0.5}, Consistency(0.95, 0.95, 5))
        assert marginals[("a", "b")] > 0.9

    def test_low_consistency_blocks_propagation(self):
        group = {("a", "b")}
        marginals = neighbor_marginals(group, {("a", "b"): 0.5}, Consistency(0.05, 0.05, 5))
        assert marginals[("a", "b")] < 0.2

    def test_prior_breaks_ties(self):
        group = {("a", "b1"), ("a", "b2")}
        priors = {("a", "b1"): 0.9, ("a", "b2"): 0.2}
        marginals = neighbor_marginals(group, priors, Consistency(0.9, 0.9, 5))
        assert marginals[("a", "b1")] > marginals[("a", "b2")]

    def test_marginals_in_unit_interval(self):
        group = {(f"a{i}", f"b{j}") for i in range(3) for j in range(3)}
        priors = {p: 0.5 for p in group}
        marginals = neighbor_marginals(group, priors, Consistency(0.8, 0.8, 5))
        for value in marginals.values():
            assert 0.0 <= value <= 1.0

    def test_one_to_one_competition(self):
        """Two left values for one right value cannot both match."""
        group = {("a1", "b"), ("a2", "b")}
        priors = {("a1", "b"): 0.5, ("a2", "b"): 0.5}
        marginals = neighbor_marginals(group, priors, Consistency(0.9, 0.9, 5))
        assert marginals[("a1", "b")] + marginals[("a2", "b")] <= 1.0 + 1e-9

    def test_oversized_group_reduced_not_crashed(self):
        group = {(f"a{i}", f"b{j}") for i in range(8) for j in range(8)}
        priors = {p: 0.4 for p in group}
        config = RempConfig(max_exact_pairs=10, max_candidates_per_value=2)
        marginals = neighbor_marginals(group, priors, Consistency(0.9, 0.9, 5), config)
        assert len(marginals) == len(group)
        assert all(0.0 <= v <= 1.0 for v in marginals.values())


class TestProbabilisticGraph:
    def test_set_edge_keeps_max(self):
        graph = ProbabilisticERGraph()
        graph.set_edge(("a", "b"), ("c", "d"), 0.5)
        graph.set_edge(("a", "b"), ("c", "d"), 0.8)
        graph.set_edge(("a", "b"), ("c", "d"), 0.3)
        assert graph.probability(("a", "b"), ("c", "d")) == 0.8

    def test_zero_probability_not_stored(self):
        graph = ProbabilisticERGraph()
        graph.set_edge(("a", "b"), ("c", "d"), 0.0)
        assert graph.num_edges == 0

    def test_self_probability_is_one(self):
        graph = ProbabilisticERGraph()
        assert graph.probability(("a", "b"), ("a", "b")) == 1.0

    def test_missing_edge_zero(self):
        graph = ProbabilisticERGraph()
        assert graph.probability(("a", "b"), ("x", "y")) == 0.0


class TestBuildProbabilisticGraph:
    @pytest.fixture()
    def setup(self):
        kb1, kb2 = KnowledgeBase("x"), KnowledgeBase("y")
        kb1.add_relationship_triple("yTim", "directed", "yCradle")
        kb2.add_relationship_triple("dTim", "directedBy", "dCradle")
        vertices = {("yTim", "dTim"), ("yCradle", "dCradle")}
        graph = build_er_graph(kb1, kb2, vertices)
        priors = {v: 0.5 for v in vertices}
        consistencies = {
            ("directed", "directedBy"): Consistency(0.9, 0.9, 5),
            ("~directed", "~directedBy"): Consistency(0.9, 0.9, 5),
        }
        return kb1, kb2, graph, priors, consistencies

    def test_edges_both_directions(self, setup):
        kb1, kb2, graph, priors, consistencies = setup
        prob = build_probabilistic_graph(graph, kb1, kb2, priors, consistencies)
        forward = prob.probability(("yTim", "dTim"), ("yCradle", "dCradle"))
        backward = prob.probability(("yCradle", "dCradle"), ("yTim", "dTim"))
        assert forward > 0.8
        assert backward > 0.8

    def test_default_consistency_used_for_unknown_labels(self, setup):
        kb1, kb2, graph, priors, _ = setup
        prob = build_probabilistic_graph(graph, kb1, kb2, priors, {})
        # neutral epsilon 0.5 -> gamma 1 -> marginal equals normalized prior
        forward = prob.probability(("yTim", "dTim"), ("yCradle", "dCradle"))
        assert 0.2 < forward < 0.8


class TestReduceGroupDeterminism:
    def test_tie_break_is_deterministic_across_hash_seeds(self):
        """Equal-prior ties must not fall back to set iteration order.

        The reduction sorts a ``set``; with a prior-only key, the pairs
        cut at ``max_pairs`` would follow hash-seed-dependent set order
        and differ across processes.  Run the same tie-heavy reduction
        in two subprocesses with different ``PYTHONHASHSEED`` values
        and require identical output.
        """
        import json
        import os
        import subprocess
        import sys

        import repro

        src_dir = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        script = (
            "import json, sys\n"
            "from repro.core.propagation import _reduce_group\n"
            "pairs = [(f'l{i}', f'r{j}') for i in range(6) for j in range(6)]\n"
            "priors = {p: 0.5 for p in pairs}\n"
            "priors[('l0', 'r0')] = 0.9\n"
            "print(json.dumps(_reduce_group(pairs, priors, 12, 3)))\n"
        )
        outputs = []
        for seed in ("1", "20"):
            env = dict(os.environ, PYTHONHASHSEED=seed)
            env["PYTHONPATH"] = os.pathsep.join(
                p for p in (src_dir, env.get("PYTHONPATH", "")) if p
            )
            proc = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                env=env,
                check=True,
            )
            outputs.append(json.loads(proc.stdout))
        assert outputs[0] == outputs[1]
        assert len(outputs[0]) == 12
