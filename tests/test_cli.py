"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.store import RunStore


def test_datasets_command(capsys):
    assert main(["datasets", "--scale", "0.2"]) == 0
    out = capsys.readouterr().out
    for name in ("iimb", "dblp_acm", "imdb_yago", "dbpedia_yago"):
        assert name in out


def test_run_command_oracle(capsys):
    assert main(["run", "iimb", "--scale", "0.2", "--error-rate", "0"]) == 0
    out = capsys.readouterr().out
    assert "F1=" in out
    assert "questions=" in out


def test_run_command_with_budget(capsys):
    assert main(["run", "iimb", "--scale", "0.2", "--budget", "3", "--error-rate", "0"]) == 0
    assert "questions=" in capsys.readouterr().out


def test_experiment_command(capsys):
    assert main(["experiment", "table5", "--scale", "0.2"]) == 0
    assert "Table V" in capsys.readouterr().out


def test_export_command(tmp_path, capsys):
    assert main(["export", "iimb", str(tmp_path / "out"), "--scale", "0.2"]) == 0
    gold = json.loads((tmp_path / "out" / "gold_matches.json").read_text())
    assert gold
    assert (tmp_path / "out" / "kb1.json").exists()
    assert (tmp_path / "out" / "kb2.json").exists()


def test_run_workers_partitioned(capsys):
    assert main(
        ["run", "iimb", "--scale", "0.2", "--error-rate", "0", "--workers", "2"]
    ) == 0
    captured = capsys.readouterr()
    assert "F1=" in captured.out
    # The live status line streams shard lifecycle events to stderr.
    assert "shard 0" in captured.err
    assert "finished" in captured.err


def test_run_workers_zero_rejected(capsys):
    assert main(["run", "iimb", "--workers", "0"]) == 2
    assert "--workers" in capsys.readouterr().err


def test_partition_info(capsys):
    assert main(["partition", "info", "iimb", "--scale", "0.2"]) == 0
    out = capsys.readouterr().out
    assert "graph shard(s)" in out
    assert "SHARD" in out
    assert "isolated" in out


def test_partition_info_with_shard_cap(capsys):
    assert main(
        ["partition", "info", "iimb", "--scale", "0.2", "--max-shard-size", "10"]
    ) == 0
    assert "max shard size 10" in capsys.readouterr().out


def test_unknown_dataset_rejected():
    with pytest.raises(SystemExit):
        main(["run", "nonsense"])


def test_run_without_dataset_or_resume_rejected(capsys):
    assert main(["run"]) == 2
    assert "dataset is required" in capsys.readouterr().err


def test_parser_lists_all_experiments():
    parser = build_parser()
    help_text = parser.format_help()
    assert "experiment" in help_text
    for command in ("serve-batch", "runs", "cache"):
        assert command in help_text


class TestStoreCommands:
    @pytest.fixture()
    def store_path(self, tmp_path):
        return str(tmp_path / "store.db")

    def test_run_with_store_records_ledger(self, store_path, capsys):
        argv = ["run", "iimb", "--scale", "0.2", "--error-rate", "0",
                "--store", store_path]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "run=" in out

        assert main(["runs", "list", "--store", store_path]) == 0
        out = capsys.readouterr().out
        assert "iimb" in out
        assert "done" in out

    def test_second_run_hits_prepared_cache(self, store_path, capsys):
        argv = ["serve-batch", "iimb", "--scale", "0.2", "--store", store_path]
        assert main(argv) == 0
        assert "1 misses" in capsys.readouterr().out
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "1 hits, 0 misses" in out

    def test_serve_batch_multiple_datasets(self, store_path, capsys):
        argv = ["serve-batch", "iimb", "dblp_acm", "--scale", "0.2",
                "--workers", "2", "--store", store_path]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "iimb" in out and "dblp_acm" in out
        assert "F1=" in out

    def test_runs_show(self, store_path, capsys):
        main(["run", "iimb", "--scale", "0.2", "--error-rate", "0",
              "--store", store_path])
        out = capsys.readouterr().out
        run_id = out.split("run=")[1].split()[0]
        assert main(["runs", "show", run_id, "--store", store_path]) == 0
        detail = capsys.readouterr().out
        assert f"run_id: {run_id}" in detail
        assert "result:" in detail

    def test_runs_show_unknown_run(self, store_path, capsys):
        assert main(["runs", "show", "nope", "--store", store_path]) == 1

    def _submit_run(self, store_path, capsys, *extra):
        main(["run", "iimb", "--scale", "0.2", "--error-rate", "0",
              "--store", store_path, *extra])
        out = capsys.readouterr().out
        return out.split("run=")[1].split()[0]

    def test_runs_show_totals_kernel_timings(self, store_path, capsys):
        run_id = self._submit_run(store_path, capsys)
        assert main(["runs", "show", run_id, "--store", store_path]) == 0
        detail = capsys.readouterr().out
        assert "kernel timings (seconds x calls):" in detail
        lines = detail.splitlines()
        start = lines.index("kernel timings (seconds x calls):") + 1
        stage_lines = []
        for line in lines[start:]:
            if "total (wall-clock)" in line or not line.startswith("  "):
                break
            stage_lines.append(line)
        seconds = [float(line.split()[-2].rstrip("s")) for line in stage_lines]
        assert seconds == sorted(seconds, reverse=True)
        total_line = next(line for line in lines if "total (wall-clock)" in line)
        total = float(total_line.split()[-1].rstrip("s"))
        # Each printed row (and the total) is rounded to 3 decimals, so
        # the recoverable drift is half a millisecond per line.
        assert total == pytest.approx(sum(seconds), abs=5e-4 * (len(seconds) + 1))

    def test_runs_trace_prints_jsonl(self, store_path, capsys):
        run_id = self._submit_run(store_path, capsys)
        assert main(["runs", "trace", run_id, "--store", store_path]) == 0
        out = capsys.readouterr().out
        spans = [json.loads(line) for line in out.splitlines()]
        assert spans
        assert all(span["run_id"] == run_id for span in spans)
        assert "loop.iteration" in {span["name"] for span in spans}

    def test_runs_trace_without_trace_is_clean_error(self, store_path, capsys):
        run_id = self._submit_run(store_path, capsys)
        with RunStore(store_path) as store:
            doc = store.load_run_obs(run_id)
            doc["trace"] = []
            store.save_run_obs(run_id, doc)
        assert main(["runs", "trace", run_id, "--store", store_path]) == 1
        assert "no trace recorded" in capsys.readouterr().err
        assert main(["runs", "trace", "nope", "--store", store_path]) == 1

    def test_runs_metrics_reports_ledger(self, store_path, capsys):
        run_id = self._submit_run(store_path, capsys)
        assert main(["runs", "metrics", run_id, "--store", store_path]) == 0
        doc = json.loads(capsys.readouterr().out)
        ledger = doc["cost_ledger"]
        assert ledger["total"] == sum(i["questions"] for i in ledger["items"])
        with RunStore(store_path) as store:
            record = store.get_run(run_id)
        assert ledger["total"] == record.questions_asked
        assert doc["metrics"]["counters"]["loop.iterations"] >= 1

    def test_runs_export_artifacts(self, store_path, capsys, tmp_path):
        run_id = self._submit_run(store_path, capsys, "--workers", "2")
        out_root = tmp_path / "artifacts"
        assert main(["runs", "export-artifacts", run_id,
                     "--output", str(out_root), "--store", store_path]) == 0
        out = capsys.readouterr().out
        assert "wrote run artifacts to" in out
        dest = out_root / run_id
        for name in ("meta.json", "trace.jsonl", "metrics.json",
                     "cost_ledger.json", "result.json"):
            assert (dest / name).is_file()
        meta = json.loads((dest / "meta.json").read_text())
        assert meta["run_id"] == run_id
        assert main(["runs", "export-artifacts", "nope",
                     "--store", store_path]) == 1

    def test_runs_export_artifacts_refuses_overwrite(
        self, store_path, capsys, tmp_path
    ):
        run_id = self._submit_run(store_path, capsys)
        out_root = tmp_path / "artifacts"
        argv = ["runs", "export-artifacts", run_id,
                "--out", str(out_root), "--store", store_path]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(argv) == 1
        assert "--force" in capsys.readouterr().err
        assert main(argv + ["--force"]) == 0
        assert "wrote run artifacts" in capsys.readouterr().out

    def test_run_profile_flag_collects_samples(self, store_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE_INTERVAL", "0.001")
        assert main(["run", "iimb", "--scale", "0.2", "--error-rate", "0",
                     "--profile", "--store", store_path]) == 0
        out = capsys.readouterr().out
        run_id = next(
            part.split("=", 1)[1] for part in out.split() if part.startswith("run=")
        )
        with RunStore(store_path) as store:
            doc = store.load_run_obs(run_id)
        assert doc["profile"]["samples"] >= 0
        assert "interval" in doc["profile"]
        # The flag must not leak into later commands' environment.
        import os
        assert os.environ.get("REPRO_PROFILE") is None

    def test_cache_info_and_clear(self, store_path, capsys):
        main(["run", "iimb", "--scale", "0.2", "--error-rate", "0",
              "--store", store_path])
        capsys.readouterr()
        assert main(["cache", "info", "--store", store_path]) == 0
        assert "prepared states: 1" in capsys.readouterr().out
        assert main(["cache", "clear", "--store", store_path]) == 0
        assert "removed 1" in capsys.readouterr().out

    def test_run_honors_repro_store_env(self, store_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_STORE", store_path)
        assert main(["run", "iimb", "--scale", "0.2", "--error-rate", "0"]) == 0
        assert "run=" in capsys.readouterr().out
        assert main(["runs", "list"]) == 0
        assert "done" in capsys.readouterr().out

    def test_resume_rejects_conflicting_flags(self, store_path, capsys):
        assert main(["run", "iimb", "--resume", "rid", "--store", store_path]) == 2
        assert "cannot be combined with --resume" in capsys.readouterr().err
        assert main(["run", "--resume", "rid", "--budget", "5",
                     "--store", store_path]) == 2
        assert "--budget" in capsys.readouterr().err

    def test_resume_unknown_run_is_clean_error(self, store_path, capsys):
        assert main(["run", "--resume", "nope", "--store", store_path]) == 1
        assert "cannot resume" in capsys.readouterr().err

    def test_resume_finished_run_is_clean_error(self, store_path, capsys):
        main(["run", "iimb", "--scale", "0.2", "--error-rate", "0",
              "--store", store_path])
        out = capsys.readouterr().out
        run_id = out.split("run=")[1].split()[0]
        assert main(["run", "--resume", run_id, "--store", store_path]) == 1
        assert "already finished" in capsys.readouterr().err

    def test_resume_via_cli(self, store_path, capsys):
        from repro.service import MatchingService

        # Interrupt a run after one loop, as if the process had died.
        with MatchingService(store_path) as service:
            run_id = service.submit(
                "iimb", scale=0.2, error_rate=0.0, background=False
            )
            assert service.step(run_id)

        assert main(["run", "--resume", run_id, "--store", store_path]) == 0
        out = capsys.readouterr().out
        assert f"run={run_id}" in out
        assert "F1=" in out

    def test_update_via_cli_reuses_clean_units(self, store_path, tmp_path, capsys):
        from repro.datasets import evolving_bundle

        assert main(["run", "evolving", "--scale", "0.4", "--error-rate", "0",
                     "--stream", "--store", store_path]) == 0
        run_id = capsys.readouterr().out.split("run=")[1].split()[0]
        evolving = evolving_bundle(seed=0, scale=0.4, steps=1)
        delta_file = tmp_path / "delta.json"
        delta_file.write_text(json.dumps(evolving.deltas[0].to_doc()))
        assert main(["update", run_id, "--delta", str(delta_file),
                     "--store", store_path]) == 0
        out = capsys.readouterr().out
        assert "reused" in out
        assert "F1=" in out

    def test_run_since_advances_stream(self, store_path, capsys):
        assert main(["run", "evolving", "--scale", "0.4", "--error-rate", "0",
                     "--stream", "--store", store_path]) == 0
        run_id = capsys.readouterr().out.split("run=")[1].split()[0]
        assert main(["run", "--since", run_id, "--steps", "2",
                     "--store", store_path]) == 0
        out = capsys.readouterr().out
        assert "step 1:" in out and "step 2:" in out
        assert "F1=" in out

    def test_runs_show_prints_lineage(self, store_path, capsys):
        main(["run", "evolving", "--scale", "0.4", "--error-rate", "0",
              "--stream", "--store", store_path])
        root = capsys.readouterr().out.split("run=")[1].split()[0]
        main(["run", "--since", root, "--steps", "1", "--store", store_path])
        child = capsys.readouterr().out.split("run=")[-1].split()[0]
        assert main(["runs", "show", child, "--store", store_path]) == 0
        detail = capsys.readouterr().out
        assert "stream_step: 1" in detail
        assert f"lineage: {root} -> {child}" in detail
        assert "kb_fingerprint:" in detail


class TestStreamErrorPaths:
    """CLI error paths for the stream verbs (``update`` / ``run --since``)."""

    @pytest.fixture()
    def store_path(self, tmp_path):
        return str(tmp_path / "stream.db")

    @pytest.fixture()
    def delta_file(self, tmp_path):
        from repro.datasets import evolving_bundle

        path = tmp_path / "delta.json"
        path.write_text(
            json.dumps(evolving_bundle(seed=0, scale=0.4, steps=1).deltas[0].to_doc())
        )
        return str(path)

    def test_stream_requires_store(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_STORE", raising=False)
        assert main(["run", "evolving", "--stream"]) == 2
        assert "--stream requires --store" in capsys.readouterr().err

    def test_stream_rejects_budget(self, store_path, capsys):
        assert main(["run", "evolving", "--stream", "--budget", "5",
                     "--store", store_path]) == 2
        assert "--budget" in capsys.readouterr().err

    def test_steps_requires_since(self, store_path, capsys):
        assert main(["run", "evolving", "--steps", "2", "--store", store_path]) == 2
        assert "--steps only applies with --since" in capsys.readouterr().err

    def test_since_requires_steps(self, store_path, capsys):
        assert main(["run", "--since", "rid", "--store", store_path]) == 2
        assert "--steps" in capsys.readouterr().err

    def test_since_rejects_conflicting_flags(self, store_path, capsys):
        """Flags the lineage would silently ignore are rejected instead."""
        assert main(["run", "--since", "rid", "--steps", "1", "--mu", "5",
                     "--store", store_path]) == 2
        assert "--mu" in capsys.readouterr().err
        assert main(["run", "--since", "rid", "--steps", "1",
                     "--error-rate", "0.3", "--store", store_path]) == 2
        assert "--error-rate" in capsys.readouterr().err
        assert main(["run", "--since", "rid", "--steps", "1", "--scale", "0.5",
                     "--store", store_path]) == 2
        assert "--scale" in capsys.readouterr().err

    def test_since_unknown_run(self, store_path, capsys):
        assert main(["run", "--since", "nope", "--steps", "1",
                     "--store", store_path]) == 1
        assert "unknown run" in capsys.readouterr().err

    def test_since_non_stream_run(self, store_path, capsys):
        main(["run", "iimb", "--scale", "0.2", "--error-rate", "0",
              "--store", store_path])
        run_id = capsys.readouterr().out.split("run=")[1].split()[0]
        assert main(["run", "--since", run_id, "--steps", "1",
                     "--store", store_path]) == 1
        assert "not a stream run" in capsys.readouterr().err

    def test_update_unknown_run(self, store_path, delta_file, capsys):
        assert main(["update", "nope", "--delta", delta_file,
                     "--store", store_path]) == 1
        assert "unknown run" in capsys.readouterr().err

    def test_update_missing_delta_file(self, store_path, capsys):
        assert main(["update", "rid", "--delta", "/no/such/file.json",
                     "--store", store_path]) == 2
        assert "no such delta file" in capsys.readouterr().err

    def test_update_malformed_delta_file(self, store_path, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{\"version\": 99}")
        assert main(["update", "rid", "--delta", str(bad),
                     "--store", store_path]) == 2
        assert "malformed delta" in capsys.readouterr().err

    def test_update_conflicting_fingerprint(self, store_path, tmp_path, capsys):
        """A delta pinned to the wrong KB pair is rejected, not applied."""
        from repro.datasets import evolving_bundle
        from repro.stream import KBDelta

        main(["run", "evolving", "--scale", "0.4", "--error-rate", "0",
              "--stream", "--store", store_path])
        run_id = capsys.readouterr().out.split("run=")[1].split()[0]
        delta = evolving_bundle(seed=0, scale=0.4, steps=1).deltas[0]
        stale = KBDelta(
            ops=delta.ops,
            gold_add=delta.gold_add,
            gold_remove=delta.gold_remove,
            parent_fingerprint="deadbeefdeadbeef",
        )
        stale_file = tmp_path / "stale.json"
        stale_file.write_text(json.dumps(stale.to_doc()))
        assert main(["update", run_id, "--delta", str(stale_file),
                     "--store", store_path]) == 1
        assert "conflicts" in capsys.readouterr().err

    def test_since_against_premigration_store(self, tmp_path, capsys):
        """A store created before the lineage migration upgrades cleanly.

        The legacy schema (no parent/delta/step/fingerprint columns, no
        stream_units table) must be migrated on open, and ``run --since``
        against its old runs must fail with a clear message instead of
        crashing.
        """
        import sqlite3

        from repro.store import RunStore

        path = str(tmp_path / "legacy.db")
        legacy = sqlite3.connect(path)
        legacy.executescript(
            """
            CREATE TABLE prepared_states (
                dataset TEXT NOT NULL, seed INTEGER NOT NULL,
                scale REAL NOT NULL, config_hash TEXT NOT NULL,
                payload TEXT NOT NULL, created_at TEXT NOT NULL,
                PRIMARY KEY (dataset, seed, scale, config_hash));
            CREATE TABLE runs (
                run_id TEXT PRIMARY KEY, dataset TEXT NOT NULL,
                seed INTEGER NOT NULL, scale REAL NOT NULL,
                config_hash TEXT NOT NULL, strategy TEXT NOT NULL,
                error_rate REAL NOT NULL DEFAULT 0.0, status TEXT NOT NULL,
                config_json TEXT NOT NULL,
                questions_asked INTEGER NOT NULL DEFAULT 0,
                result_json TEXT, error TEXT, workers INTEGER,
                created_at TEXT NOT NULL, updated_at TEXT NOT NULL);
            CREATE TABLE checkpoints (
                run_id TEXT PRIMARY KEY, payload TEXT NOT NULL,
                updated_at TEXT NOT NULL);
            CREATE TABLE shard_checkpoints (
                run_id TEXT NOT NULL, shard_id INTEGER NOT NULL,
                kind TEXT NOT NULL, payload TEXT NOT NULL,
                updated_at TEXT NOT NULL, PRIMARY KEY (run_id, shard_id));
            INSERT INTO runs VALUES
                ('legacyrun', 'evolving', 0, 0.4, 'x', 'remp', 0.0, 'done',
                 '{}', 0, NULL, NULL, NULL, '2026-01-01', '2026-01-01');
            """
        )
        legacy.commit()
        legacy.close()

        assert main(["run", "--since", "legacyrun", "--steps", "1",
                     "--store", path]) == 1
        err = capsys.readouterr().err
        assert "not a stream run" in err and "lineage migration" in err
        # The open performed the migration: lineage columns and the
        # stream_units table now exist, and old rows read back as
        # non-stream runs.
        with RunStore(path) as store:
            record = store.get_run("legacyrun")
            assert record is not None
            assert record.stream_step is None
            assert record.kb_fingerprint is None
            assert not record.streaming
            assert store.stats()["stream_units"] == 0

