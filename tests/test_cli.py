"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


def test_datasets_command(capsys):
    assert main(["datasets", "--scale", "0.2"]) == 0
    out = capsys.readouterr().out
    for name in ("iimb", "dblp_acm", "imdb_yago", "dbpedia_yago"):
        assert name in out


def test_run_command_oracle(capsys):
    assert main(["run", "iimb", "--scale", "0.2", "--error-rate", "0"]) == 0
    out = capsys.readouterr().out
    assert "F1=" in out
    assert "questions=" in out


def test_run_command_with_budget(capsys):
    assert main(["run", "iimb", "--scale", "0.2", "--budget", "3", "--error-rate", "0"]) == 0
    assert "questions=" in capsys.readouterr().out


def test_experiment_command(capsys):
    assert main(["experiment", "table5", "--scale", "0.2"]) == 0
    assert "Table V" in capsys.readouterr().out


def test_export_command(tmp_path, capsys):
    assert main(["export", "iimb", str(tmp_path / "out"), "--scale", "0.2"]) == 0
    gold = json.loads((tmp_path / "out" / "gold_matches.json").read_text())
    assert gold
    assert (tmp_path / "out" / "kb1.json").exists()
    assert (tmp_path / "out" / "kb2.json").exists()


def test_unknown_dataset_rejected():
    with pytest.raises(SystemExit):
        main(["run", "nonsense"])


def test_parser_lists_all_experiments():
    parser = build_parser()
    help_text = parser.format_help()
    assert "experiment" in help_text
