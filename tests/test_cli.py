"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


def test_datasets_command(capsys):
    assert main(["datasets", "--scale", "0.2"]) == 0
    out = capsys.readouterr().out
    for name in ("iimb", "dblp_acm", "imdb_yago", "dbpedia_yago"):
        assert name in out


def test_run_command_oracle(capsys):
    assert main(["run", "iimb", "--scale", "0.2", "--error-rate", "0"]) == 0
    out = capsys.readouterr().out
    assert "F1=" in out
    assert "questions=" in out


def test_run_command_with_budget(capsys):
    assert main(["run", "iimb", "--scale", "0.2", "--budget", "3", "--error-rate", "0"]) == 0
    assert "questions=" in capsys.readouterr().out


def test_experiment_command(capsys):
    assert main(["experiment", "table5", "--scale", "0.2"]) == 0
    assert "Table V" in capsys.readouterr().out


def test_export_command(tmp_path, capsys):
    assert main(["export", "iimb", str(tmp_path / "out"), "--scale", "0.2"]) == 0
    gold = json.loads((tmp_path / "out" / "gold_matches.json").read_text())
    assert gold
    assert (tmp_path / "out" / "kb1.json").exists()
    assert (tmp_path / "out" / "kb2.json").exists()


def test_run_workers_partitioned(capsys):
    assert main(
        ["run", "iimb", "--scale", "0.2", "--error-rate", "0", "--workers", "2"]
    ) == 0
    captured = capsys.readouterr()
    assert "F1=" in captured.out
    # The live status line streams shard lifecycle events to stderr.
    assert "shard 0" in captured.err
    assert "finished" in captured.err


def test_run_workers_zero_rejected(capsys):
    assert main(["run", "iimb", "--workers", "0"]) == 2
    assert "--workers" in capsys.readouterr().err


def test_partition_info(capsys):
    assert main(["partition", "info", "iimb", "--scale", "0.2"]) == 0
    out = capsys.readouterr().out
    assert "graph shard(s)" in out
    assert "SHARD" in out
    assert "isolated" in out


def test_partition_info_with_shard_cap(capsys):
    assert main(
        ["partition", "info", "iimb", "--scale", "0.2", "--max-shard-size", "10"]
    ) == 0
    assert "max shard size 10" in capsys.readouterr().out


def test_unknown_dataset_rejected():
    with pytest.raises(SystemExit):
        main(["run", "nonsense"])


def test_run_without_dataset_or_resume_rejected(capsys):
    assert main(["run"]) == 2
    assert "dataset is required" in capsys.readouterr().err


def test_parser_lists_all_experiments():
    parser = build_parser()
    help_text = parser.format_help()
    assert "experiment" in help_text
    for command in ("serve-batch", "runs", "cache"):
        assert command in help_text


class TestStoreCommands:
    @pytest.fixture()
    def store_path(self, tmp_path):
        return str(tmp_path / "store.db")

    def test_run_with_store_records_ledger(self, store_path, capsys):
        argv = ["run", "iimb", "--scale", "0.2", "--error-rate", "0",
                "--store", store_path]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "run=" in out

        assert main(["runs", "list", "--store", store_path]) == 0
        out = capsys.readouterr().out
        assert "iimb" in out
        assert "done" in out

    def test_second_run_hits_prepared_cache(self, store_path, capsys):
        argv = ["serve-batch", "iimb", "--scale", "0.2", "--store", store_path]
        assert main(argv) == 0
        assert "1 misses" in capsys.readouterr().out
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "1 hits, 0 misses" in out

    def test_serve_batch_multiple_datasets(self, store_path, capsys):
        argv = ["serve-batch", "iimb", "dblp_acm", "--scale", "0.2",
                "--workers", "2", "--store", store_path]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "iimb" in out and "dblp_acm" in out
        assert "F1=" in out

    def test_runs_show(self, store_path, capsys):
        main(["run", "iimb", "--scale", "0.2", "--error-rate", "0",
              "--store", store_path])
        out = capsys.readouterr().out
        run_id = out.split("run=")[1].split()[0]
        assert main(["runs", "show", run_id, "--store", store_path]) == 0
        detail = capsys.readouterr().out
        assert f"run_id: {run_id}" in detail
        assert "result:" in detail

    def test_runs_show_unknown_run(self, store_path, capsys):
        assert main(["runs", "show", "nope", "--store", store_path]) == 1

    def test_cache_info_and_clear(self, store_path, capsys):
        main(["run", "iimb", "--scale", "0.2", "--error-rate", "0",
              "--store", store_path])
        capsys.readouterr()
        assert main(["cache", "info", "--store", store_path]) == 0
        assert "prepared states: 1" in capsys.readouterr().out
        assert main(["cache", "clear", "--store", store_path]) == 0
        assert "removed 1" in capsys.readouterr().out

    def test_run_honors_repro_store_env(self, store_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_STORE", store_path)
        assert main(["run", "iimb", "--scale", "0.2", "--error-rate", "0"]) == 0
        assert "run=" in capsys.readouterr().out
        assert main(["runs", "list"]) == 0
        assert "done" in capsys.readouterr().out

    def test_resume_rejects_conflicting_flags(self, store_path, capsys):
        assert main(["run", "iimb", "--resume", "rid", "--store", store_path]) == 2
        assert "cannot be combined with --resume" in capsys.readouterr().err
        assert main(["run", "--resume", "rid", "--budget", "5",
                     "--store", store_path]) == 2
        assert "--budget" in capsys.readouterr().err

    def test_resume_unknown_run_is_clean_error(self, store_path, capsys):
        assert main(["run", "--resume", "nope", "--store", store_path]) == 1
        assert "cannot resume" in capsys.readouterr().err

    def test_resume_finished_run_is_clean_error(self, store_path, capsys):
        main(["run", "iimb", "--scale", "0.2", "--error-rate", "0",
              "--store", store_path])
        out = capsys.readouterr().out
        run_id = out.split("run=")[1].split()[0]
        assert main(["run", "--resume", run_id, "--store", store_path]) == 1
        assert "already finished" in capsys.readouterr().err

    def test_resume_via_cli(self, store_path, capsys):
        from repro.service import MatchingService

        # Interrupt a run after one loop, as if the process had died.
        with MatchingService(store_path) as service:
            run_id = service.submit(
                "iimb", scale=0.2, error_rate=0.0, background=False
            )
            assert service.step(run_id)

        assert main(["run", "--resume", run_id, "--store", store_path]) == 0
        out = capsys.readouterr().out
        assert f"run={run_id}" in out
        assert "F1=" in out
