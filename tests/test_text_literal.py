"""Tests for the extended literal-set similarity simL."""

import pytest

from repro.text import literal_set_similarity, literal_similarity


class TestLiteralSimilarity:
    def test_equal_strings(self):
        assert literal_similarity("Mona Lisa", "mona lisa") == 1.0

    def test_numbers_percentage(self):
        assert literal_similarity(100, 95) == pytest.approx(0.95)

    def test_numeric_strings_parsed(self):
        assert literal_similarity("100", "95") == pytest.approx(0.95)

    def test_number_vs_text_is_zero(self):
        assert literal_similarity(100, "one hundred") == 0.0

    def test_bools_treated_as_text(self):
        # bool is not coerced to a number; compares as tokens.
        assert literal_similarity(True, "true") == 1.0


class TestLiteralSetSimilarity:
    def test_identical_sets(self):
        assert literal_set_similarity({"a b"}, {"a b"}) == 1.0

    def test_empty_sets_yield_zero(self):
        assert literal_set_similarity(set(), set()) == 0.0
        assert literal_set_similarity({"x"}, set()) == 0.0

    def test_partial_overlap(self):
        # one matched literal out of 1+2-1 = 2 union slots
        sim = literal_set_similarity({"alpha"}, {"alpha", "beta"})
        assert sim == pytest.approx(0.5)

    def test_threshold_blocks_weak_matches(self):
        # 'alpha beta' vs 'alpha' has Jaccard 0.5 < default threshold 0.9
        assert literal_set_similarity({"alpha beta"}, {"alpha"}) == 0.0
        assert literal_set_similarity({"alpha beta"}, {"alpha"}, threshold=0.4) == 1.0

    def test_each_literal_matched_once(self):
        # two copies on one side cannot both match a single counterpart
        sim = literal_set_similarity({"x y", "x y z"}, {"x y"}, threshold=0.5)
        # one matched, union = 2 + 1 - 1 = 2
        assert sim == pytest.approx(0.5)

    def test_numeric_sets(self):
        assert literal_set_similarity({1000}, {999}, threshold=0.9) == 1.0
        assert literal_set_similarity({1000}, {1}, threshold=0.9) == 0.0
