"""Tests for label normalization."""

from hypothesis import given
from hypothesis import strategies as st

from repro.text import normalize_label, stem, tokenize


def test_tokenize_lowercases_and_splits():
    assert tokenize("The Cradle Will Rock (1999)") == ["the", "cradle", "will", "rock", "1999"]


def test_tokenize_empty():
    assert tokenize("") == []
    assert tokenize("!!!") == []


def test_stem_common_suffixes():
    assert stem("directed") == "direct"
    assert stem("acting") == "act"
    assert stem("players") == "player"


def test_stem_plural_and_singular_agree():
    assert stem("movies") == stem("movie") == "movi"
    assert stem("directed") == stem("directing") == "direct"


def test_stem_short_tokens_untouched():
    assert stem("is") == "is"
    assert stem("ed") == "ed"
    assert stem("a") == "a"


def test_normalize_label_is_frozenset():
    result = normalize_label("New York City")
    assert isinstance(result, frozenset)
    assert "new" in result and "york" in result


def test_normalize_label_without_stemming():
    with_stem = normalize_label("running shoes", stemming=True)
    without = normalize_label("running shoes", stemming=False)
    assert "running" in without
    assert "running" not in with_stem


@given(st.text(max_size=60))
def test_normalize_never_raises_and_is_idempotent_tokens(text):
    tokens = normalize_label(text)
    # every token survives re-normalization unchanged up to stemming fixpoint absence
    for token in tokens:
        assert token == token.lower()
        assert token.isalnum()


@given(st.text(max_size=60))
def test_tokenize_only_alnum(text):
    for token in tokenize(text):
        assert token.isalnum()
        assert token == token.lower()
