"""Tests for the synthetic dataset suite."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import DATASET_NAMES, generate_dataset, load_dataset
from repro.datasets.profiles import PROFILE_BUILDERS, iimb_config
from repro.datasets.synthesis import (
    AttributeSpec,
    NoiseConfig,
    RelationSpec,
    TypeSpec,
    WorldConfig,
    _sample_degree,
)
from repro.datasets.vocab import make_vocabulary, make_word, typo


class TestVocab:
    def test_vocabulary_distinct(self):
        words = make_vocabulary(random.Random(0), 300)
        assert len(words) == 300
        assert len(set(words)) == 300

    def test_make_word_nonempty(self):
        rng = random.Random(1)
        for _ in range(50):
            assert make_word(rng)

    def test_typo_changes_word_usually(self):
        rng = random.Random(2)
        changed = sum(1 for _ in range(100) if typo(rng, "example") != "example")
        assert changed > 90

    def test_typo_empty_word(self):
        assert typo(random.Random(0), "") == ""


class TestSampleDegree:
    def test_mean_one_is_deterministic(self):
        rng = random.Random(0)
        assert all(_sample_degree(rng, 1.0) == 1 for _ in range(20))

    def test_mean_respected_roughly(self):
        rng = random.Random(3)
        samples = [_sample_degree(rng, 2.5) for _ in range(4000)]
        mean = sum(samples) / len(samples)
        assert 2.1 < mean < 2.9
        assert min(samples) >= 1


class TestGeneration:
    @pytest.fixture(scope="class")
    def bundle(self):
        return load_dataset("iimb", seed=0)

    def test_gold_matches_exist_in_both_kbs(self, bundle):
        for e1, e2 in bundle.gold_matches:
            assert e1 in bundle.kb1
            assert e2 in bundle.kb2

    def test_gold_matches_are_one_to_one(self, bundle):
        lefts = [e1 for e1, _ in bundle.gold_matches]
        rights = [e2 for _, e2 in bundle.gold_matches]
        assert len(set(lefts)) == len(lefts)
        assert len(set(rights)) == len(rights)

    def test_entity_types_cover_all_entities(self, bundle):
        for entity in bundle.kb1.entities:
            assert entity in bundle.entity_types
        for entity in bundle.kb2.entities:
            assert entity in bundle.entity_types

    def test_deterministic_generation(self):
        a = generate_dataset(iimb_config(), seed=7)
        b = generate_dataset(iimb_config(), seed=7)
        assert a.gold_matches == b.gold_matches
        assert a.kb1.entities == b.kb1.entities
        assert sorted(t.as_tuple() for t in a.kb1.iter_triples()) == sorted(
            t.as_tuple() for t in b.kb1.iter_triples()
        )

    def test_different_seeds_differ(self):
        a = generate_dataset(iimb_config(), seed=1)
        b = generate_dataset(iimb_config(), seed=2)
        assert a.gold_matches != b.gold_matches

    def test_exact_label_pairs_exist(self, bundle):
        exact = [
            (e1, e2)
            for e1, e2 in bundle.gold_matches
            if bundle.kb1.labels(e1) & bundle.kb2.labels(e2)
        ]
        assert len(exact) >= len(bundle.gold_matches) * 0.3

    def test_attribute_gold_refers_to_real_attributes(self, bundle):
        for a1, a2 in bundle.gold_attribute_matches:
            assert a1 in bundle.kb1.attributes
            assert a2 in bundle.kb2.attributes


class TestProfiles:
    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_all_profiles_generate(self, name):
        bundle = load_dataset(name, seed=0, scale=0.3)
        assert len(bundle.gold_matches) > 10
        assert len(bundle.kb1) > 20
        assert len(bundle.kb2) > 20

    def test_dblp_acm_asymmetric(self):
        # DBLP is much larger than ACM; authors follow their publications,
        # which softens the raw ratio, so require a clear 1.5x asymmetry.
        bundle = load_dataset("dblp_acm", seed=0)
        assert len(bundle.kb2) > 1.5 * len(bundle.kb1)

    def test_dblp_acm_single_relationship(self):
        bundle = load_dataset("dblp_acm", seed=0)
        assert len(bundle.kb1.relationships) == 1
        assert len(bundle.kb2.relationships) == 1

    def test_iimb_schemas_identical(self):
        bundle = load_dataset("iimb", seed=0)
        assert bundle.kb1.attributes == bundle.kb2.attributes
        assert bundle.kb1.relationships == bundle.kb2.relationships

    def test_imdb_yago_schemas_renamed(self):
        bundle = load_dataset("imdb_yago", seed=0)
        assert "actedIn" in bundle.kb1.relationships
        assert "performedIn" in bundle.kb2.relationships
        assert "actedIn" not in bundle.kb2.relationships

    def test_isolated_share_ordering(self):
        """Isolated-match share grows IIMB < I-Y < D-Y as in Table VIII."""

        def isolated_share(name):
            bundle = load_dataset(name, seed=0)
            isolated = sum(
                1
                for e1, e2 in bundle.gold_matches
                if not bundle.kb1.has_relations(e1) and not bundle.kb2.has_relations(e2)
            )
            return isolated / len(bundle.gold_matches)

        assert isolated_share("iimb") < isolated_share("imdb_yago") < isolated_share("dbpedia_yago")

    def test_dbpedia_yago_has_attribute_clutter(self):
        bundle = load_dataset("dbpedia_yago", seed=0)
        assert len(bundle.kb1.attributes) > 2 * len(bundle.gold_attribute_matches)

    def test_scale_changes_size(self):
        small = load_dataset("iimb", seed=0, scale=0.25)
        full = load_dataset("iimb", seed=0, scale=1.0)
        assert len(small.kb1) < len(full.kb1) / 2

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown dataset"):
            load_dataset("nope")

    def test_registry_caches(self):
        a = load_dataset("iimb", seed=3)
        b = load_dataset("iimb", seed=3)
        assert a is b


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 1000))
def test_world_generation_invariants(seed):
    """Generated KBs never reference entities outside themselves."""
    config = WorldConfig(
        name="prop",
        types=(
            TypeSpec(
                "a",
                20,
                attributes=(AttributeSpec("x", kind="number"),),
                relations=(RelationSpec("r", "b", mean_degree=1.5),),
            ),
            TypeSpec("b", 15),
        ),
        noise2=NoiseConfig(label_typo_prob=0.3, edge_drop_prob=0.2),
    )
    bundle = generate_dataset(config, seed=seed)
    for kb in (bundle.kb1, bundle.kb2):
        for triple in kb.iter_relationship_triples():
            assert triple.subject in kb
            assert str(triple.value) in kb


@pytest.mark.parametrize("name", PROFILE_BUILDERS)
def test_profile_fractions_sum_below_one(name):
    config = PROFILE_BUILDERS[name]()
    assert config.overlap + config.only1 + config.only2 <= 1.0 + 1e-9
