"""Shared session-scoped dataset and prepared-state fixtures.

Dataset bundles are cheap to re-request (``load_dataset`` caches
process-wide), but ``Remp.prepare`` is not — candidate generation,
attribute matching, pruning and ER-graph construction dominate suite
wall-clock when every module prepares the same world independently.
These fixtures compute each (bundle, prepared state) pair once per
session; module fixtures alias them under their local names.

Prepared states are shared read-only: the loop copies what it mutates
(:class:`repro.core.LoopState` owns its priors and resolution sets), and
slicing/serialization build new containers.  Tests that need to mutate a
state must prepare their own.
"""

import faulthandler

import pytest

from repro.accel.dominance import _counts_python, strict_dominance_counts
from repro.accel.literals import LiteralScorer
from repro.accel.marginals import _marginals_dp, _marginals_reference
from repro.accel.runtime import accel_enabled, force_accel
from repro.core import Remp
from repro.core.er_graph import build_er_graph
from repro.core.isolated import build_signatures
from repro.datasets import clustered_bundle, load_dataset
from repro.kb.model import KnowledgeBase
from repro.text.literal import literal_set_similarity


# ----------------------------------------------------------------------
# Suite hang ceiling
# ----------------------------------------------------------------------
#: Seconds after which a wedged suite dumps stacks and aborts (fallback
#: when pytest-timeout is absent; CI installs the plugin and passes
#: ``--timeout`` for per-test granularity instead).
SUITE_HANG_CEILING = 1800


def pytest_configure(config):
    if not config.pluginmanager.hasplugin("timeout"):
        # The fault/recovery tests exercise worker kills and queue
        # teardown; a deadlock there must fail the run loudly, not hang
        # it forever.  dump_traceback_later is the stdlib's watchdog.
        faulthandler.dump_traceback_later(SUITE_HANG_CEILING, exit=True)


def pytest_unconfigure(config):
    if not config.pluginmanager.hasplugin("timeout"):
        faulthandler.cancel_dump_traceback_later()


# ----------------------------------------------------------------------
# Accel smoke: both kernel paths stay covered every session
# ----------------------------------------------------------------------
@pytest.fixture(scope="session", autouse=True)
def _accel_smoke():
    """Cross-check the accel kernels against the reference in BOTH modes.

    The suite runs with whatever ``REPRO_NO_ACCEL`` the environment set
    (CI exercises both); this smoke forces each mode once per session so
    a kernel regression cannot hide behind the suite-wide default.
    """
    block = [(1.0, 0.5), (0.5, 0.5), (1.0, 1.0), (0.5, 0.5), (0.0, 1.0)] * 6
    values_a, values_b = ("cradle rock", 1999, "!!!"), ("rock cradle", "1999")
    pairs = [("l0", "r0"), ("l0", "r1"), ("l1", "r0"), ("l2", "r2")]
    odds = [0.4, 1.5, 0.9, 2.0]
    smoke1, smoke2 = KnowledgeBase("smoke1"), KnowledgeBase("smoke2")
    for i in range(3):
        smoke1.add_entity(f"a{i}")
        smoke2.add_entity(f"b{i}")
        smoke1.add_attribute_triple(f"a{i}", "year", 1990 + i)
    smoke2.add_attribute_triple("b0", "year", 1990)
    smoke1.add_relationship_triple("a0", "directed", "a1")
    smoke1.add_relationship_triple("a0", "directed", "a2")
    smoke2.add_relationship_triple("b0", "directed", "b1")
    smoke_vertices = [("a0", "b0"), ("a1", "b1"), ("a2", "b1")]
    from repro.core.attributes import AttributeMatch

    smoke_matches = [AttributeMatch("year", "year", 1.0)]
    graphs, signatures = [], []
    for enabled in (True, False):
        with force_accel(enabled):
            assert accel_enabled() is enabled
            assert strict_dominance_counts(block, cap=4) == _counts_python(block, 4)
            assert LiteralScorer(0.9).set_similarity(
                values_a, values_b
            ) == literal_set_similarity(values_a, values_b, 0.9)
            assert _marginals_dp(pairs, odds) == _marginals_reference(pairs, odds)
            if enabled:
                from repro.accel.candidates import score_candidates

                tokens1 = {"a0": frozenset({"north", "star"})}
                tokens2 = {"b0": frozenset({"north"}), "b1": frozenset({"star", "x"})}
                inverted2 = {"north": {"b0"}, "star": {"b1"}, "x": {"b1"}}
                scored = score_candidates(
                    tokens1, tokens2, inverted2, 0.3, min_entities=0
                )
                assert scored == {
                    ("a0", "b0"): 1 / 2,
                    ("a0", "b1"): 1 / 3,
                }
            graphs.append(build_er_graph(smoke1, smoke2, smoke_vertices))
            signatures.append(
                build_signatures(smoke1, smoke2, smoke_vertices, smoke_matches)
            )
    assert graphs[0].groups == graphs[1].groups
    assert list(graphs[0].groups) == list(graphs[1].groups)
    assert signatures[0] == signatures[1]
    yield


# ----------------------------------------------------------------------
# Dataset bundles
# ----------------------------------------------------------------------
@pytest.fixture(scope="session")
def bundle_iimb_02():
    return load_dataset("iimb", seed=0, scale=0.2)


@pytest.fixture(scope="session")
def bundle_iimb_03():
    return load_dataset("iimb", seed=0, scale=0.3)


@pytest.fixture(scope="session")
def bundle_iimb_04():
    return load_dataset("iimb", seed=0, scale=0.4)


@pytest.fixture(scope="session")
def clustered6_bundle():
    """The partition/stream suites' multi-component world."""
    return clustered_bundle(
        num_clusters=6, movies_per_cluster=3, seed=0, critics_per_cluster=1
    )


# ----------------------------------------------------------------------
# Prepared states (read-only; see module docstring)
# ----------------------------------------------------------------------
@pytest.fixture(scope="session")
def prepared_iimb_02(bundle_iimb_02):
    return Remp().prepare(bundle_iimb_02.kb1, bundle_iimb_02.kb2)


@pytest.fixture(scope="session")
def prepared_iimb_04(bundle_iimb_04):
    return Remp().prepare(bundle_iimb_04.kb1, bundle_iimb_04.kb2)


@pytest.fixture(scope="session")
def prepared_clustered6(clustered6_bundle):
    return Remp().prepare(clustered6_bundle.kb1, clustered6_bundle.kb2)
