"""Tests for inferred-match-set discovery (Algorithm 2)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.discovery import (
    bounded_dijkstra,
    dijkstra_inferred_sets,
    edge_lengths,
    floyd_warshall_inferred_sets,
    inferred_sets,
    zeta_from_tau,
)
from repro.core.propagation import ProbabilisticERGraph


def _chain_graph(probabilities):
    """v0 -> v1 -> ... with the given edge probabilities."""
    graph = ProbabilisticERGraph()
    for i, p in enumerate(probabilities):
        graph.set_edge((f"v{i}", f"v{i}"), (f"v{i+1}", f"v{i+1}"), p)
    return graph


def test_zeta_from_tau():
    assert zeta_from_tau(1.0) == 0.0
    assert zeta_from_tau(0.9) == pytest.approx(-math.log(0.9))
    with pytest.raises(ValueError):
        zeta_from_tau(0.0)


def test_edge_lengths_drop_over_budget():
    graph = _chain_graph([0.99, 0.5])
    lengths = edge_lengths(graph, zeta_from_tau(0.9))
    v0, v1 = ("v0", "v0"), ("v1", "v1")
    assert v1 in lengths[v0]
    assert v1 not in lengths or ("v2", "v2") not in lengths.get(v1, {})


def test_single_hop_inference():
    graph = _chain_graph([0.95])
    sets = dijkstra_inferred_sets(graph, [("v0", "v0")], tau=0.9)
    inferred = sets[("v0", "v0")]
    assert ("v0", "v0") in inferred  # the question itself, distance 0
    assert ("v1", "v1") in inferred


def test_multi_hop_product_bound():
    # 0.95 * 0.95 ≈ 0.9025 >= 0.9 -> two hops allowed; three hops not.
    graph = _chain_graph([0.95, 0.95, 0.95])
    sets = dijkstra_inferred_sets(graph, [("v0", "v0")], tau=0.9)
    inferred = sets[("v0", "v0")]
    assert ("v2", "v2") in inferred
    assert ("v3", "v3") not in inferred


def test_best_path_wins():
    """Distant probability is the max over paths (largest lower bound)."""
    graph = ProbabilisticERGraph()
    a, b, c = ("a", "a"), ("b", "b"), ("c", "c")
    graph.set_edge(a, b, 0.5)   # direct but weak
    graph.set_edge(a, c, 0.99)  # detour
    graph.set_edge(c, b, 0.99)
    sets = dijkstra_inferred_sets(graph, [a], tau=0.9)
    assert b in sets[a]  # 0.99^2 ≈ 0.98 >= 0.9 via the detour


def test_bounded_dijkstra_distances():
    graph = _chain_graph([0.95, 0.95])
    lengths = edge_lengths(graph, zeta_from_tau(0.5))
    dist = bounded_dijkstra(lengths, ("v0", "v0"), zeta_from_tau(0.5))
    assert dist[("v0", "v0")] == 0.0
    assert dist[("v2", "v2")] == pytest.approx(-2 * math.log(0.95))


def test_floyd_warshall_matches_dijkstra_on_chain():
    graph = _chain_graph([0.97, 0.96, 0.99, 0.95])
    sources = [(f"v{i}", f"v{i}") for i in range(5)]
    a = dijkstra_inferred_sets(graph, sources, tau=0.9)
    b = floyd_warshall_inferred_sets(graph, sources, tau=0.9)
    for source in sources:
        assert set(a[source]) == set(b[source])
        for target in a[source]:
            assert a[source][target] == pytest.approx(b[source][target], abs=1e-9)


@settings(max_examples=30, deadline=None)
@given(
    edges=st.lists(
        st.tuples(st.integers(0, 7), st.integers(0, 7), st.floats(0.05, 1.0)),
        max_size=24,
    ),
    tau=st.sampled_from([0.5, 0.8, 0.9, 0.95]),
)
def test_fw_equals_dijkstra_on_random_graphs(edges, tau):
    graph = ProbabilisticERGraph()
    for i, j, p in edges:
        if i != j:
            graph.set_edge((f"v{i}", ""), (f"v{j}", ""), p)
    sources = [(f"v{i}", "") for i in range(8)]
    a = dijkstra_inferred_sets(graph, sources, tau=tau)
    b = floyd_warshall_inferred_sets(graph, sources, tau=tau)
    for source in sources:
        assert set(a[source]) == set(b[source])
        for target in a[source]:
            assert a[source][target] == pytest.approx(b[source][target], abs=1e-9)


def test_dispatch():
    graph = _chain_graph([0.95])
    sources = [("v0", "v0")]
    a = inferred_sets(graph, sources, 0.9, use_dijkstra=True)
    b = inferred_sets(graph, sources, 0.9, use_dijkstra=False)
    assert set(a[sources[0]]) == set(b[sources[0]])
