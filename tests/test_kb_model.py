"""Unit tests for the KB data model."""

import pytest

from repro.kb import KnowledgeBase, Triple
from repro.kb.model import LABEL_ATTRIBUTE, EntityPair


@pytest.fixture()
def kb():
    kb = KnowledgeBase("test")
    kb.add_entity("e1", label="Leonardo da Vinci")
    kb.add_attribute_triple("e1", "birth_date", "1452-04-15")
    kb.add_entity("m1", label="Mona Lisa")
    kb.add_relationship_triple("e1", "works", "m1")
    return kb


def test_entities_registered(kb):
    assert {"e1", "m1"} <= kb.entities
    assert "e1" in kb
    assert "missing" not in kb
    assert len(kb) == 2


def test_attribute_value_sets(kb):
    assert kb.attribute_values("e1", "birth_date") == {"1452-04-15"}
    assert kb.attribute_values("e1", "unknown") == set()
    assert kb.attribute_values("ghost", "birth_date") == set()


def test_relationship_value_sets(kb):
    assert kb.relation_values("e1", "works") == {"m1"}
    assert kb.relation_sources("m1", "works") == {"e1"}
    assert kb.relation_values("m1", "works") == set()


def test_labels(kb):
    assert kb.label("e1") == "Leonardo da Vinci"
    assert kb.labels("m1") == {"Mona Lisa"}
    kb.add_entity("nolabel")
    assert kb.label("nolabel") is None


def test_label_is_attribute_triple(kb):
    assert LABEL_ATTRIBUTE in kb.attributes
    assert "Mona Lisa" in kb.attribute_values("m1", LABEL_ATTRIBUTE)


def test_duplicate_triples_not_double_counted(kb):
    before = kb.num_attribute_triples
    kb.add_attribute_triple("e1", "birth_date", "1452-04-15")
    assert kb.num_attribute_triples == before
    before_rel = kb.num_relationship_triples
    kb.add_relationship_triple("e1", "works", "m1")
    assert kb.num_relationship_triples == before_rel


def test_has_relations(kb):
    assert kb.has_relations("e1")
    assert kb.has_relations("m1")  # object position counts
    kb.add_entity("isolated", label="Isolated")
    assert not kb.has_relations("isolated")


def test_iter_triples_roundtrip(kb):
    triples = list(kb.iter_triples())
    attr = [t for t in triples if not t.is_relation]
    rel = [t for t in triples if t.is_relation]
    assert len(attr) == kb.num_attribute_triples
    assert len(rel) == kb.num_relationship_triples
    rebuilt = KnowledgeBase("copy")
    rebuilt.add_triples(triples)
    assert rebuilt.entities == kb.entities
    assert rebuilt.num_attribute_triples == kb.num_attribute_triples
    assert rebuilt.num_relationship_triples == kb.num_relationship_triples


def test_entity_attributes_and_relations_views(kb):
    attrs = kb.entity_attributes("e1")
    assert set(attrs) == {LABEL_ATTRIBUTE, "birth_date"}
    rels = kb.entity_relations("e1")
    assert set(rels) == {"works"}
    inv = kb.entity_inverse_relations("m1")
    assert set(inv) == {"works"}


def test_triple_as_tuple():
    t = Triple("s", "p", "o", is_relation=True)
    assert t.as_tuple() == ("s", "p", "o")


def test_entity_pair_prior_not_compared():
    assert EntityPair("a", "b", prior=0.1) == EntityPair("a", "b", prior=0.9)
    assert EntityPair("a", "b").as_tuple() == ("a", "b")
