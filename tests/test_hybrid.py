"""Tests for the hybrid ER extension (propagation + partial order)."""

import pytest

from repro.core import Remp
from repro.core.hybrid import HybridRemp, monotone_inferences
from repro.core.truth import TruthInferenceResult
from repro.crowd import CrowdPlatform
from repro.eval import evaluate_matches


@pytest.fixture(scope="module")
def bundle(bundle_iimb_04):
    return bundle_iimb_04


@pytest.fixture(scope="module")
def state(bundle):
    return HybridRemp().prepare(bundle.kb1, bundle.kb2)


class TestMonotoneInferences:
    def test_match_propagates_to_dominating_sibling(self, bundle, state):
        loop_state = HybridRemp()._make_loop_state(state)
        # find a pair with a strictly dominating sibling
        for pair in sorted(state.retained):
            vector = state.vector_index.vectors[pair]
            for sibling in state.vector_index.by_left.get(pair[0], []):
                sv = state.vector_index.vectors[sibling]
                if sibling != pair and sv != vector and all(a >= b for a, b in zip(sv, vector)):
                    truth = TruthInferenceResult(matches={pair})
                    matches, _ = monotone_inferences(state, loop_state, truth)
                    assert sibling in matches
                    return
        pytest.skip("no dominating sibling in this sample")

    def test_non_match_propagates_downward(self, bundle, state):
        loop_state = HybridRemp()._make_loop_state(state)
        for pair in sorted(state.retained):
            vector = state.vector_index.vectors[pair]
            for sibling in state.vector_index.by_left.get(pair[0], []):
                sv = state.vector_index.vectors[sibling]
                if sibling != pair and sv != vector and all(a >= b for a, b in zip(vector, sv)):
                    truth = TruthInferenceResult(non_matches={pair})
                    _, non_matches = monotone_inferences(state, loop_state, truth)
                    assert sibling in non_matches
                    return
        pytest.skip("no dominated sibling in this sample")

    def test_resolved_pairs_excluded(self, state):
        loop_state = HybridRemp()._make_loop_state(state)
        some = sorted(state.retained)[0]
        loop_state.resolve_match(some, labeled=True)
        truth = TruthInferenceResult(matches={some})
        matches, non_matches = monotone_inferences(state, loop_state, truth)
        assert some not in matches
        assert some not in non_matches


class TestHybridRemp:
    def test_quality_comparable_to_base(self, bundle, state):
        base_platform = CrowdPlatform.with_oracle(bundle.gold_matches)
        base = Remp().run(bundle.kb1, bundle.kb2, base_platform)
        hybrid_platform = CrowdPlatform.with_oracle(bundle.gold_matches)
        hybrid = HybridRemp().run(bundle.kb1, bundle.kb2, hybrid_platform, state=state)
        base_f1 = evaluate_matches(base.matches, bundle.gold_matches).f1
        hybrid_f1 = evaluate_matches(hybrid.matches, bundle.gold_matches).f1
        assert hybrid_f1 > base_f1 - 0.1

    def test_never_asks_more_questions(self, bundle, state):
        """Extra inference can only reduce the unresolved set."""
        base_platform = CrowdPlatform.with_oracle(bundle.gold_matches)
        base = Remp().run(bundle.kb1, bundle.kb2, base_platform)
        hybrid_platform = CrowdPlatform.with_oracle(bundle.gold_matches)
        hybrid = HybridRemp().run(bundle.kb1, bundle.kb2, hybrid_platform, state=state)
        assert hybrid.questions_asked <= base.questions_asked + 5

    def test_deterministic(self, bundle, state):
        results = []
        for _ in range(2):
            platform = CrowdPlatform.with_oracle(bundle.gold_matches)
            results.append(
                HybridRemp().run(bundle.kb1, bundle.kb2, platform, state=state).matches
            )
        assert results[0] == results[1]
