"""Tests for the persistent run store and its stable serialization."""

import json

import pytest

from repro.core import RempConfig
from repro.core.pipeline import LoopCheckpoint, LoopRecord, RempResult
from repro.kb import KnowledgeBase, kb_from_doc, kb_to_doc
from repro.store import (
    RunStore,
    checkpoint_from_doc,
    checkpoint_to_doc,
    config_from_doc,
    config_hash,
    config_to_doc,
    prepared_state_from_doc,
    prepared_state_to_doc,
    result_from_doc,
    result_to_doc,
)


@pytest.fixture(scope="module")
def bundle(bundle_iimb_02):
    return bundle_iimb_02


@pytest.fixture(scope="module")
def state(prepared_iimb_02):
    return prepared_iimb_02


class TestKBSerialization:
    def test_round_trip_equality(self, bundle):
        doc = kb_to_doc(bundle.kb1)
        rebuilt = kb_from_doc(doc)
        assert kb_to_doc(rebuilt) == doc
        assert rebuilt.entities == bundle.kb1.entities
        assert rebuilt.num_attribute_triples == bundle.kb1.num_attribute_triples
        assert rebuilt.num_relationship_triples == bundle.kb1.num_relationship_triples

    def test_doc_is_insertion_order_independent(self):
        a = KnowledgeBase("kb")
        a.add_entity("e1", label="one")
        a.add_attribute_triple("e1", "year", 1990)
        a.add_relationship_triple("e1", "knows", "e2")
        b = KnowledgeBase("kb")
        b.add_relationship_triple("e1", "knows", "e2")
        b.add_attribute_triple("e1", "year", 1990)
        b.add_entity("e1", label="one")
        assert kb_to_doc(a) == kb_to_doc(b)

    def test_mixed_literal_types_survive(self):
        kb = KnowledgeBase("kb")
        kb.add_attribute_triple("e", "a", 3)
        kb.add_attribute_triple("e", "a", "3")
        kb.add_attribute_triple("e", "a", 2.5)
        rebuilt = kb_from_doc(kb_to_doc(kb))
        assert rebuilt.attribute_values("e", "a") == {3, "3", 2.5}


class TestConfigHash:
    def test_none_matches_default(self):
        assert config_hash(None) == config_hash(RempConfig())

    def test_sensitive_to_parameters(self):
        assert config_hash(RempConfig(mu=5)) != config_hash(RempConfig())

    def test_config_round_trip(self):
        config = RempConfig(mu=7, tau=0.8, budget=42)
        rebuilt = config_from_doc(config_to_doc(config))
        assert rebuilt == config
        assert config_hash(rebuilt) == config_hash(config)


class TestPreparedStateSerialization:
    def test_round_trip_is_byte_stable(self, state):
        doc = prepared_state_to_doc(state)
        blob = json.dumps(doc, sort_keys=True)
        rebuilt = prepared_state_from_doc(json.loads(blob))
        assert json.dumps(prepared_state_to_doc(rebuilt), sort_keys=True) == blob

    def test_round_trip_preserves_artifacts(self, state):
        rebuilt = prepared_state_from_doc(prepared_state_to_doc(state))
        assert rebuilt.retained == state.retained
        assert rebuilt.priors == state.priors
        assert rebuilt.isolated == state.isolated
        assert rebuilt.signatures == state.signatures
        assert rebuilt.vector_index.vectors == state.vector_index.vectors
        assert rebuilt.graph.vertices == state.graph.vertices
        assert rebuilt.graph.groups == state.graph.groups
        assert rebuilt.candidates.pairs == state.candidates.pairs
        assert rebuilt.candidates.initial_matches == state.candidates.initial_matches
        assert rebuilt.attribute_matches == state.attribute_matches

    def test_unknown_version_rejected(self, state):
        doc = prepared_state_to_doc(state)
        doc["version"] = 999
        with pytest.raises(ValueError, match="version"):
            prepared_state_from_doc(doc)


class TestRunStore:
    def test_prepared_cache_hit_and_miss(self, tmp_path, state):
        with RunStore(tmp_path / "store.db") as store:
            assert store.load_prepared("iimb", 0, 0.2, None) is None
            store.save_prepared("iimb", 0, 0.2, None, state)
            assert store.has_prepared("iimb", 0, 0.2, None)
            cached = store.load_prepared("iimb", 0, 0.2, None)
            assert cached.retained == state.retained
            assert cached.priors == state.priors
            # Different key components miss.
            assert store.load_prepared("iimb", 1, 0.2, None) is None
            assert store.load_prepared("iimb", 0, 0.4, None) is None
            assert store.load_prepared("iimb", 0, 0.2, RempConfig(mu=3)) is None

    def test_prepared_cache_survives_reopen(self, tmp_path, state):
        path = tmp_path / "store.db"
        with RunStore(path) as store:
            store.save_prepared("iimb", 0, 0.2, None, state)
        with RunStore(path) as store:
            assert store.has_prepared("iimb", 0, 0.2, None)

    def test_clear_prepared(self, tmp_path, state):
        with RunStore(tmp_path / "store.db") as store:
            store.save_prepared("iimb", 0, 0.2, None, state)
            assert store.clear_prepared() == 1
            assert not store.has_prepared("iimb", 0, 0.2, None)

    def test_run_ledger_lifecycle(self, tmp_path):
        with RunStore(tmp_path / "store.db") as store:
            run_id = store.create_run("iimb", 0, 0.2, RempConfig(mu=5), error_rate=0.1)
            record = store.get_run(run_id)
            assert record.status == "queued"
            assert record.error_rate == 0.1
            assert store.get_run_config(run_id).mu == 5
            store.update_run_status(run_id, "running")
            result = RempResult(matches={("a", "b")}, questions_asked=3, num_loops=1)
            store.finish_run(run_id, result)
            record = store.get_run(run_id)
            assert record.status == "done"
            assert record.questions_asked == 3
            assert store.get_result(run_id).matches == {("a", "b")}
            assert [r.run_id for r in store.list_runs()] == [run_id]

    def test_fail_run_keeps_checkpoint(self, tmp_path):
        with RunStore(tmp_path / "store.db") as store:
            run_id = store.create_run("iimb", 0, 0.2, None)
            checkpoint = LoopCheckpoint(
                next_loop_index=2,
                questions_asked=4,
                history=[],
                loop_state={
                    "priors": [],
                    "labeled_matches": [],
                    "inferred_matches": [],
                    "resolved_matches": [],
                    "resolved_non_matches": [],
                },
                answer_log=[],
            )
            store.save_checkpoint(run_id, checkpoint)
            store.fail_run(run_id, "boom")
            assert store.get_run(run_id).status == "failed"
            assert store.load_checkpoint(run_id) is not None
            assert store.get_run(run_id).questions_asked == 4

    def test_unknown_status_rejected(self, tmp_path):
        with RunStore(tmp_path / "store.db") as store:
            run_id = store.create_run("iimb", 0, 0.2, None)
            with pytest.raises(ValueError, match="unknown run status"):
                store.update_run_status(run_id, "exploded")

    def test_workers_column_round_trip(self, tmp_path):
        with RunStore(tmp_path / "store.db") as store:
            mono = store.create_run("iimb", 0, 0.2, None)
            part = store.create_run("iimb", 0, 0.2, None, workers=4)
            assert store.get_run(mono).workers is None
            assert not store.get_run(mono).partitioned
            assert store.get_run(part).workers == 4
            assert store.get_run(part).partitioned

    def test_workers_column_migrated_into_old_store(self, tmp_path):
        """A PR-1-era database (no workers column) opens and upgrades."""
        import sqlite3

        path = tmp_path / "old.db"
        conn = sqlite3.connect(path)
        conn.executescript(
            """
            CREATE TABLE runs (
                run_id TEXT PRIMARY KEY, dataset TEXT NOT NULL,
                seed INTEGER NOT NULL, scale REAL NOT NULL,
                config_hash TEXT NOT NULL, strategy TEXT NOT NULL,
                error_rate REAL NOT NULL DEFAULT 0.0, status TEXT NOT NULL,
                config_json TEXT NOT NULL,
                questions_asked INTEGER NOT NULL DEFAULT 0,
                result_json TEXT, error TEXT,
                created_at TEXT NOT NULL, updated_at TEXT NOT NULL
            );
            INSERT INTO runs VALUES ('r1', 'iimb', 0, 0.2, 'h', 'remp', 0.0,
                                     'done', '{}', 3, NULL, NULL, 't0', 't1');
            """
        )
        conn.commit()
        conn.close()
        with RunStore(path) as store:
            record = store.get_run("r1")
            assert record is not None
            assert record.workers is None
            assert store.create_run("iimb", 0, 0.2, None, workers=2)


class TestShardCheckpoints:
    def _checkpoint(self) -> LoopCheckpoint:
        return LoopCheckpoint(
            next_loop_index=1,
            questions_asked=2,
            history=[],
            loop_state={
                "priors": [["a", "b", 0.5]],
                "labeled_matches": [["a", "b"]],
                "inferred_matches": [],
                "resolved_matches": [["a", "b"]],
                "resolved_non_matches": [],
            },
            answer_log=[],
        )

    def test_loop_and_done_round_trip(self, tmp_path):
        with RunStore(tmp_path / "store.db") as store:
            run_id = store.create_run("iimb", 0, 0.2, None, workers=2)
            store.save_shard_checkpoint(run_id, 0, self._checkpoint())
            result = RempResult(matches={("a", "b")}, questions_asked=2, num_loops=1)
            log = [{"question": ["a", "b"], "worker_id": "w0",
                    "label": True, "worker_quality": 1.0}]
            store.save_shard_result(run_id, 1, result, {"priors": []}, answer_log=log)
            records = store.load_shard_records(run_id)
            assert set(records) == {0, 1}
            kind, checkpoint = records[0]
            assert kind == "loop"
            assert checkpoint.questions_asked == 2
            kind, stored_result, snapshot, answer_log = records[1]
            assert kind == "done"
            assert stored_result.matches == {("a", "b")}
            assert snapshot == {"priors": []}
            assert answer_log == log

    def test_done_overwrites_loop(self, tmp_path):
        with RunStore(tmp_path / "store.db") as store:
            run_id = store.create_run("iimb", 0, 0.2, None, workers=2)
            store.save_shard_checkpoint(run_id, 0, self._checkpoint())
            result = RempResult(matches=set(), questions_asked=2, num_loops=1)
            store.save_shard_result(run_id, 0, result, {})
            assert store.load_shard_records(run_id)[0][0] == "done"

    def test_finish_run_clears_shard_rows(self, tmp_path):
        with RunStore(tmp_path / "store.db") as store:
            run_id = store.create_run("iimb", 0, 0.2, None, workers=2)
            store.save_shard_checkpoint(run_id, 0, self._checkpoint())
            assert store.stats()["shard_checkpoints"] == 1
            store.finish_run(
                run_id, RempResult(matches=set(), questions_asked=0, num_loops=0)
            )
            assert store.load_shard_records(run_id) == {}
            assert store.stats()["shard_checkpoints"] == 0

    def test_fail_run_keeps_shard_rows(self, tmp_path):
        with RunStore(tmp_path / "store.db") as store:
            run_id = store.create_run("iimb", 0, 0.2, None, workers=2)
            store.save_shard_checkpoint(run_id, 3, self._checkpoint())
            store.fail_run(run_id, "boom")
            assert set(store.load_shard_records(run_id)) == {3}

    def test_clear_shard_checkpoints(self, tmp_path):
        with RunStore(tmp_path / "store.db") as store:
            run_id = store.create_run("iimb", 0, 0.2, None, workers=2)
            store.save_shard_checkpoint(run_id, 0, self._checkpoint())
            store.save_shard_checkpoint(run_id, 1, self._checkpoint())
            assert store.clear_shard_checkpoints(run_id) == 2
            assert store.load_shard_records(run_id) == {}


class TestCheckpointSerialization:
    def test_round_trip(self):
        checkpoint = LoopCheckpoint(
            next_loop_index=3,
            questions_asked=12,
            history=[
                LoopRecord(
                    loop_index=0,
                    questions=[("a", "b")],
                    labeled_matches=1,
                    labeled_non_matches=0,
                    unresolved_questions=0,
                    inferred_matches_so_far=2,
                )
            ],
            loop_state={
                "priors": [["a", "b", 0.7]],
                "labeled_matches": [["a", "b"]],
                "inferred_matches": [],
                "resolved_matches": [["a", "b"]],
                "resolved_non_matches": [],
            },
            answer_log=[
                {"question": ["a", "b"], "worker_id": "w0", "label": True,
                 "worker_quality": 0.95}
            ],
        )
        rebuilt = checkpoint_from_doc(checkpoint_to_doc(checkpoint))
        assert rebuilt == checkpoint

    def test_result_round_trip(self):
        result = RempResult(
            matches={("a", "b"), ("c", "d")},
            questions_asked=5,
            num_loops=2,
            history=[],
            labeled_matches={("a", "b")},
            inferred_matches={("c", "d")},
            isolated_matches=set(),
            non_matches={("a", "d")},
        )
        rebuilt = result_from_doc(result_to_doc(result))
        assert rebuilt == result
