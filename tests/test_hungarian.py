"""Tests for the Hungarian algorithm, cross-validated against scipy."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.optimize import linear_sum_assignment

from repro.assignment import hungarian_max, hungarian_min


def _cost_of(matrix, pairs):
    return sum(matrix[i][j] for i, j in pairs)


class TestHungarianMin:
    def test_identity_optimal(self):
        cost = [[0, 9, 9], [9, 0, 9], [9, 9, 0]]
        pairs = hungarian_min(cost)
        assert sorted(pairs) == [(0, 0), (1, 1), (2, 2)]

    def test_known_instance(self):
        cost = [[4, 1, 3], [2, 0, 5], [3, 2, 2]]
        pairs = hungarian_min(cost)
        assert _cost_of(cost, pairs) == 5  # (0,1),(1,0),(2,2)

    def test_rectangular_wide(self):
        cost = [[1, 0, 5, 5], [0, 9, 5, 5]]
        pairs = hungarian_min(cost)
        assert len(pairs) == 2
        assert _cost_of(cost, pairs) == 0

    def test_rectangular_tall(self):
        cost = [[1, 0], [0, 9], [5, 5]]
        pairs = hungarian_min(cost)
        assert len(pairs) == 2
        rows = [i for i, _ in pairs]
        cols = [j for _, j in pairs]
        assert len(set(rows)) == 2 and len(set(cols)) == 2
        assert _cost_of(cost, pairs) == 0

    def test_empty(self):
        assert hungarian_min([]) == []
        assert hungarian_min([[]]) == []

    def test_non_rectangular_rejected(self):
        with pytest.raises(ValueError):
            hungarian_min([[1, 2], [3]])

    def test_negative_costs(self):
        cost = [[-5, 0], [0, -5]]
        pairs = hungarian_min(cost)
        assert _cost_of(cost, pairs) == -10


class TestHungarianMax:
    def test_profit_matrix(self):
        profit = [[0.9, 0.1], [0.2, 0.8]]
        pairs = hungarian_max(profit)
        assert sorted(pairs) == [(0, 0), (1, 1)]

    def test_empty(self):
        assert hungarian_max([]) == []


@settings(max_examples=60, deadline=None)
@given(
    n=st.integers(1, 7),
    m=st.integers(1, 7),
    seed=st.integers(0, 10_000),
)
def test_matches_scipy_on_random_instances(n, m, seed):
    rng = np.random.default_rng(seed)
    cost = rng.uniform(-10, 10, size=(n, m))
    ours = hungarian_min(cost.tolist())
    rows, cols = linear_sum_assignment(cost)
    expected = float(cost[rows, cols].sum())
    actual = float(sum(cost[i, j] for i, j in ours))
    assert actual == pytest.approx(expected, abs=1e-9)
    # valid matching: distinct rows, distinct columns, covers min(n, m)
    assert len({i for i, _ in ours}) == len(ours) == min(n, m)
    assert len({j for _, j in ours}) == len(ours)
