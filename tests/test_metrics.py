"""Tests for the evaluation metrics."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.eval import evaluate_matches, f1_score, pair_completeness, reduction_ratio


class TestF1:
    def test_perfect(self):
        assert f1_score(1.0, 1.0) == 1.0

    def test_zero(self):
        assert f1_score(0.0, 0.0) == 0.0

    def test_harmonic_mean(self):
        assert f1_score(1.0, 0.5) == pytest.approx(2 / 3)

    @given(st.floats(0, 1), st.floats(0, 1))
    def test_bounded_by_min_and_max(self, p, r):
        f1 = f1_score(p, r)
        assert f1 <= max(p, r) + 1e-12
        assert 0.0 <= f1 <= 1.0


class TestEvaluateMatches:
    def test_perfect_match(self):
        gold = {("a", "b"), ("c", "d")}
        q = evaluate_matches(gold, gold)
        assert q.precision == q.recall == q.f1 == 1.0

    def test_partial(self):
        predicted = {("a", "b"), ("x", "y")}
        gold = {("a", "b"), ("c", "d")}
        q = evaluate_matches(predicted, gold)
        assert q.precision == 0.5
        assert q.recall == 0.5
        assert q.true_positives == 1

    def test_empty_prediction(self):
        q = evaluate_matches(set(), {("a", "b")})
        assert q.precision == 0.0
        assert q.recall == 0.0
        assert q.f1 == 0.0

    def test_empty_gold(self):
        q = evaluate_matches({("a", "b")}, set())
        assert q.recall == 0.0

    def test_as_row_readable(self):
        q = evaluate_matches({("a", "b")}, {("a", "b")})
        row = q.as_row()
        assert "P=" in row and "F1=" in row


class TestBlockingMetrics:
    def test_reduction_ratio(self):
        assert reduction_ratio(100, 25) == 0.75
        assert reduction_ratio(0, 0) == 0.0
        assert reduction_ratio(10, 10) == 0.0

    def test_pair_completeness(self):
        gold = {("a", "b"), ("c", "d")}
        assert pair_completeness({("a", "b")}, gold) == 0.5
        assert pair_completeness(gold, gold) == 1.0
        assert pair_completeness(set(), gold) == 0.0
        assert pair_completeness({("a", "b")}, set()) == 0.0
