"""Tests for error-tolerant truth inference (Section VII-A, Eq. 17)."""

import pytest

from repro.core.truth import infer_truths, posterior_match_probability
from repro.crowd.platform import LabelRecord


def _records(question, labels, quality=0.9):
    return [
        LabelRecord(question, f"w{i}", label, quality) for i, label in enumerate(labels)
    ]


class TestPosterior:
    def test_unanimous_yes_raises_probability(self):
        q = ("a", "b")
        post = posterior_match_probability(0.5, _records(q, [True] * 5))
        assert post > 0.99

    def test_unanimous_no_lowers_probability(self):
        q = ("a", "b")
        post = posterior_match_probability(0.5, _records(q, [False] * 5))
        assert post < 0.01

    def test_split_labels_stay_near_prior(self):
        q = ("a", "b")
        post = posterior_match_probability(0.5, _records(q, [True, True, False, False]))
        assert post == pytest.approx(0.5)

    def test_majority_shifts(self):
        q = ("a", "b")
        post = posterior_match_probability(0.5, _records(q, [True, True, True, False, False]))
        assert 0.5 < post < 1.0

    def test_prior_matters(self):
        q = ("a", "b")
        one_yes = _records(q, [True])
        low = posterior_match_probability(0.1, one_yes)
        high = posterior_match_probability(0.9, one_yes)
        assert low < high

    def test_low_quality_workers_are_weak_evidence(self):
        q = ("a", "b")
        strong = posterior_match_probability(0.5, _records(q, [True] * 3, quality=0.95))
        weak = posterior_match_probability(0.5, _records(q, [True] * 3, quality=0.55))
        assert strong > weak

    def test_quality_clamped(self):
        q = ("a", "b")
        post = posterior_match_probability(0.5, _records(q, [True], quality=1.0))
        assert post < 1.0  # a single perfect worker is not absolute truth

    def test_degenerate_priors_overridable(self):
        """Unanimous worker evidence overrides even a 0/1 prior (homonyms
        carry prior 1.0 yet may be non-matches)."""
        q = ("a", "b")
        assert posterior_match_probability(0.0, _records(q, [True] * 9)) > 0.8
        assert posterior_match_probability(1.0, _records(q, [False] * 9)) < 0.2

    def test_invalid_prior(self):
        with pytest.raises(ValueError):
            posterior_match_probability(1.5, [])

    def test_no_records_returns_prior(self):
        assert posterior_match_probability(0.37, []) == pytest.approx(0.37)


class TestInferTruths:
    def test_classification_buckets(self):
        answers = {
            ("m", "m"): _records(("m", "m"), [True] * 5),
            ("n", "n"): _records(("n", "n"), [False] * 5),
            ("h", "h"): _records(("h", "h"), [True, True, False, False]),
        }
        priors = {("m", "m"): 0.5, ("n", "n"): 0.5, ("h", "h"): 0.5}
        result = infer_truths(answers, priors)
        assert ("m", "m") in result.matches
        assert ("n", "n") in result.non_matches
        assert ("h", "h") in result.unresolved

    def test_hard_question_prior_updated_to_posterior(self):
        q = ("h", "h")
        answers = {q: _records(q, [True, True, False, False])}
        result = infer_truths(answers, {q: 0.6})
        assert result.unresolved[q] == pytest.approx(0.6)
        assert result.posteriors[q] == result.unresolved[q]

    def test_missing_prior_uses_default(self):
        q = ("x", "y")
        answers = {q: _records(q, [True] * 5)}
        result = infer_truths(answers, {}, default_prior=0.5)
        assert q in result.matches

    def test_custom_thresholds(self):
        q = ("a", "b")
        answers = {q: _records(q, [True, True, True, False, False])}
        strict = infer_truths(answers, {q: 0.5}, match_threshold=0.999)
        assert q in strict.unresolved
