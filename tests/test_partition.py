"""Tests for the partition subsystem: partitioner, runner, merger, events."""

import io

import pytest

from repro.core import Remp, RempConfig
from repro.crowd import CrowdPlatform
from repro.eval import evaluate_matches
from repro.partition import (
    CrowdSpec,
    ParallelRunner,
    ShardProgressPrinter,
    entity_closure_components,
    pack_components,
    partition_state,
    shard_seed,
    split_budget,
)
from repro.service import MatchingService
from repro.store import RunStore


@pytest.fixture(scope="module")
def bundle(clustered6_bundle):
    return clustered6_bundle


@pytest.fixture(scope="module")
def state(prepared_clustered6):
    return prepared_clustered6


@pytest.fixture(scope="module")
def crowd(bundle):
    return CrowdSpec(truth=bundle.gold_matches, error_rate=0.0, seed=0)


class TestEntityClosure:
    def test_groups_cover_retained_disjointly(self, state):
        groups = entity_closure_components(state)
        union = set().union(*groups)
        assert union == state.retained
        assert sum(map(len, groups)) == len(state.retained)

    def test_groups_closed_under_edges_and_entities(self, state):
        groups = entity_closure_components(state)
        index = {pair: i for i, group in enumerate(groups) for pair in group}
        for vertex, by_label in state.graph.groups.items():
            for members in by_label.values():
                for neighbor in members:
                    assert index[vertex] == index[neighbor]
        by_entity = {}
        for pair in state.retained:
            for entity in pair:
                by_entity.setdefault(entity, set()).add(index[pair])
        assert all(len(groups_) == 1 for groups_ in by_entity.values())

    def test_one_group_per_cluster(self, state, bundle):
        groups = [
            g for g in entity_closure_components(state) if not g <= state.isolated
        ]
        assert len(groups) == 6  # one per studio cluster


class TestPartitioner:
    def test_graph_shards_cover_loop_pairs(self, state):
        plan = partition_state(state)
        covered = set().union(*(set(s.vertices) for s in plan.graph_shards))
        # Isolated pairs entity-linked to a component ride along; the
        # truly disconnected rest appears only in the classifier shards.
        assert state.retained - state.isolated <= covered
        assert covered <= state.retained
        isolated_covered = set().union(
            *(set(s.vertices) for s in plan.isolated_shards)
        )
        assert isolated_covered == state.isolated

    def test_graph_shards_are_disjoint(self, state):
        plan = partition_state(state)
        seen = set()
        for shard in plan.graph_shards:
            assert not (set(shard.vertices) & seen)
            seen |= set(shard.vertices)

    def test_shard_slices_are_self_contained(self, state):
        plan = partition_state(state)
        for shard in plan.graph_shards:
            vertices = set(shard.vertices)
            shard_state = shard.slice(state)
            assert shard_state.retained == vertices
            assert not shard_state.isolated
            for vertex, by_label in shard_state.graph.groups.items():
                assert vertex in vertices
                for members in by_label.values():
                    assert members <= vertices
            # The slice keeps every edge of the full graph inside it.
            full_edges = sum(
                len(m & vertices)
                for v in vertices
                for m in state.graph.groups.get(v, {}).values()
            )
            assert shard_state.graph.num_edges == full_edges
            assert shard.num_edges == full_edges

    def test_max_shard_size_respected(self, state):
        plan = partition_state(state, max_shard_size=40)
        sizes = {len(c) for c in entity_closure_components(state)}
        for shard in plan.graph_shards:
            # A shard may exceed the cap only when a single component does.
            assert shard.num_pairs <= 40 or shard.num_components == 1
        assert max(sizes) <= max(s.num_pairs for s in plan.graph_shards)

    def test_layout_is_deterministic(self, state):
        first = partition_state(state)
        second = partition_state(state)
        assert [s.vertices for s in first.shards] == [s.vertices for s in second.shards]
        assert [s.kind for s in first.shards] == [s.kind for s in second.shards]

    def test_isolated_split(self, state):
        plan = partition_state(state, isolated_shards=3)
        shards = plan.isolated_shards
        assert len(shards) == 3
        assert set().union(*(set(s.vertices) for s in shards)) == state.isolated
        for shard in shards:
            shard_state = shard.slice(state)
            assert shard_state.isolated == set(shard.vertices)
            # The classifier's neighborhoods span all retained pairs.
            assert shard_state.retained == state.retained

    def test_describe_mentions_every_shard(self, state):
        plan = partition_state(state)
        text = plan.describe()
        for shard in plan.shards:
            assert f"\n{shard.shard_id:>5} " in text

    def test_invalid_parameters_rejected(self, state):
        with pytest.raises(ValueError):
            partition_state(state, target_shards=0)
        with pytest.raises(ValueError):
            partition_state(state, max_shard_size=0)
        with pytest.raises(ValueError):
            partition_state(state, isolated_shards=0)


class TestPackComponents:
    def test_never_splits_a_component(self):
        components = [{("a", str(i)) for i in range(5)}, {("b", "0")}]
        bins = pack_components(components, max_shard_size=3)
        assert sorted(map(len, (set().union(*b) for b in bins))) == [1, 5]

    def test_balances_small_components(self):
        components = [{(chr(97 + i), "0")} for i in range(8)]
        bins = pack_components(components, max_shard_size=2)
        assert len(bins) == 4
        assert all(len(b) == 2 for b in bins)


class TestSplitBudget:
    def test_none_passes_through(self):
        assert split_budget(None, [3, 1]) == [None, None]

    def test_total_is_conserved(self):
        for total in (0, 1, 7, 100):
            allocation = split_budget(total, [5, 3, 2, 7])
            assert sum(allocation) == total

    def test_proportionality(self):
        assert split_budget(10, [3, 1, 1]) == [6, 2, 2]

    def test_budget_smaller_than_shards(self):
        allocation = split_budget(2, [1, 1, 1, 1])
        assert sum(allocation) == 2
        assert all(b in (0, 1) for b in allocation)

    def test_empty(self):
        assert split_budget(5, []) == []


class TestShardSeed:
    def test_distinct_and_stable(self):
        seeds = {shard_seed(0, i) for i in range(100)}
        assert len(seeds) == 100
        assert shard_seed(7, 3) == shard_seed(7, 3)
        assert shard_seed(7, 3) != shard_seed(8, 3)


class TestParallelRunner:
    def test_matches_monolithic_run(self, bundle, state, crowd):
        result = ParallelRunner(workers=1).run(state, crowd)
        mono = Remp().run(
            bundle.kb1,
            bundle.kb2,
            CrowdPlatform.with_oracle(bundle.gold_matches),
            state=state,
        )
        quality = evaluate_matches(result.matches, bundle.gold_matches)
        mono_quality = evaluate_matches(mono.matches, bundle.gold_matches)
        assert quality.f1 >= mono_quality.f1 - 0.05
        assert quality.f1 >= 0.9

    def test_budget_is_split_and_respected(self, state, crowd):
        config = RempConfig(budget=4)
        result = ParallelRunner(config, workers=1).run(state, crowd)
        # The budget gates the human–machine loop; isolated-pair seed
        # questions are unbudgeted, exactly as in the monolithic run.
        loop_questions = {q for record in result.history for q in record.questions}
        assert len(loop_questions) <= 4

    def test_events_cover_lifecycle(self, state, crowd):
        events = []
        ParallelRunner(workers=1, on_event=events.append).run(state, crowd)
        plan = partition_state(state)
        started = {e.shard_id for e in events if e.kind == "started"}
        finished = {e.shard_id for e in events if e.kind == "finished"}
        assert started == finished == {s.shard_id for s in plan.shards}
        assert any(e.kind == "checkpointed" for e in events)
        for event in events:
            if event.kind == "checkpointed":
                assert event.loops >= 1
        # Started always precedes finished for the same shard.
        for shard_id in started:
            kinds = [e.kind for e in events if e.shard_id == shard_id]
            assert kinds.index("started") < kinds.index("finished")

    def test_history_reindexed_sequentially(self, state, crowd):
        result = ParallelRunner(workers=1).run(state, crowd)
        assert [r.loop_index for r in result.history] == list(
            range(len(result.history))
        )
        assert result.num_loops == len(result.history)

    def test_parent_side_exception_terminates_pool(self, state, crowd):
        """A raising on_event sink must not leave orphaned workers behind."""
        import multiprocessing
        import time

        class Boom(Exception):
            pass

        def sink(event):
            raise Boom

        with pytest.raises(Boom):
            ParallelRunner(workers=2, on_event=sink).run(state, crowd)
        time.sleep(0.2)
        assert not multiprocessing.active_children()

    def test_invalid_workers_rejected(self):
        with pytest.raises(ValueError):
            ParallelRunner(workers=0)

    def test_store_requires_run_id(self):
        with pytest.raises(ValueError):
            ParallelRunner(store=RunStore(":memory:"))


class TestShardCheckpointStore:
    def test_runner_persists_and_finish_clears(self, tmp_path, state, crowd):
        store = RunStore(tmp_path / "s.db")
        run_id = store.create_run("clustered", 0, 1.0, None, workers=1)
        runner = ParallelRunner(workers=1, store=store, run_id=run_id)
        result = runner.run(state, crowd)
        records = store.load_shard_records(run_id)
        plan = partition_state(state)
        assert set(records) == {s.shard_id for s in plan.shards}
        assert all(record[0] == "done" for record in records.values())
        assert store.stats()["shard_checkpoints"] == len(plan.shards)
        store.finish_run(run_id, result)
        assert store.load_shard_records(run_id) == {}
        store.close()

    def test_second_run_restores_all_shards(self, tmp_path, state, crowd):
        store = RunStore(tmp_path / "s.db")
        run_id = store.create_run("clustered", 0, 1.0, None, workers=1)
        baseline = ParallelRunner(workers=1, store=store, run_id=run_id).run(
            state, crowd
        )
        events = []
        rerun = ParallelRunner(
            workers=1, store=store, run_id=run_id, on_event=events.append
        ).run(state, crowd)
        assert {e.kind for e in events} == {"restored"}
        assert rerun.matches == baseline.matches
        assert rerun.questions_asked == baseline.questions_asked
        assert [r.questions for r in rerun.history] == [
            r.questions for r in baseline.history
        ]
        store.close()


class TestServiceWorkers:
    def test_partitioned_session_round_trip(self, tmp_path):
        from repro.datasets import load_dataset

        gold = load_dataset("iimb", seed=0, scale=0.2).gold_matches
        with MatchingService(str(tmp_path / "svc.db")) as service:
            run_id = service.submit("iimb", scale=0.2, workers=1, background=False)
            result = service.result(run_id)
            record = service.store.get_run(run_id)
            assert record.status == "done"
            assert record.workers == 1
            assert record.partitioned
            # Quality on par with the monolithic session for the same key.
            mono_id = service.submit("iimb", scale=0.2, background=False)
            mono = service.result(mono_id)
            assert service.store.get_run(mono_id).workers is None
            partitioned_f1 = evaluate_matches(result.matches, gold).f1
            mono_f1 = evaluate_matches(mono.matches, gold).f1
            assert partitioned_f1 >= mono_f1 - 0.05

    def test_step_rejected_for_partitioned_sessions(self, tmp_path):
        with MatchingService(str(tmp_path / "svc.db")) as service:
            run_id = service.submit("iimb", scale=0.2, workers=1, background=False)
            with pytest.raises(ValueError):
                service.step(run_id)

    def test_concurrent_result_calls_execute_once(self, tmp_path):
        import threading

        events = []
        with MatchingService(str(tmp_path / "svc.db")) as service:
            run_id = service.submit(
                "iimb",
                scale=0.2,
                workers=1,
                background=False,
                on_event=events.append,
            )
            results = []
            threads = [
                threading.Thread(target=lambda: results.append(service.result(run_id)))
                for _ in range(2)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert results[0].matches == results[1].matches
            # One execution: every shard started exactly once.
            started = [e.shard_id for e in events if e.kind == "started"]
            assert len(started) == len(set(started))

    def test_resume_monolithic_as_partitioned_guarded(self, tmp_path):
        with MatchingService(str(tmp_path / "svc.db")) as service:
            run_id = service.submit("iimb", scale=0.2, background=False)
            session = service._session(run_id)
            session.step()  # leaves a mid-loop checkpoint
            service.store.fail_run(run_id, "killed")
            with pytest.raises(ValueError):
                service.resume(run_id, workers=2)


class TestExperimentsHelper:
    def test_partitioned_result_uses_shared_cache(self, bundle):
        from repro.experiments.common import partitioned_result, prepared_state

        first = partitioned_result(bundle, workers=1, error_rate=0.08, seed=3)
        second = partitioned_result(bundle, workers=1, error_rate=0.08, seed=3)
        assert first.matches == second.matches
        assert first.questions_asked == second.questions_asked
        # The helper rides the process-wide prepared-state cache.
        assert prepared_state(bundle) is prepared_state(bundle)


class TestProgressPrinter:
    def _events(self, state, crowd):
        events = []
        ParallelRunner(workers=1, on_event=events.append).run(state, crowd)
        return events

    def test_plain_stream_gets_one_line_per_event(self, state, crowd):
        events = self._events(state, crowd)
        stream = io.StringIO()
        printer = ShardProgressPrinter(stream, live=False)
        for event in events:
            printer(event)
        printer.close()
        lines = stream.getvalue().splitlines()
        # One line per event, plus the final summary close() appends.
        assert len(lines) == len(events) + 1
        assert any("finished" in line for line in lines)
        total = len({e.shard_id for e in events})
        assert lines[-1] == printer.render()
        assert f"partitions {total}/{total} done" in lines[-1]

    def test_plain_stream_close_is_idempotent_and_quiet_when_empty(self):
        stream = io.StringIO()
        printer = ShardProgressPrinter(stream, live=False)
        printer.close()
        printer.close()
        assert stream.getvalue() == ""

    def test_live_stream_rewrites_one_line(self, state, crowd):
        events = self._events(state, crowd)
        stream = io.StringIO()
        printer = ShardProgressPrinter(stream, live=True)
        for event in events:
            printer(event)
        printer.close()
        output = stream.getvalue()
        assert output.count("\r") == len(events) + 1  # one redraw per event + close
        total = len({e.shard_id for e in events})
        assert f"partitions {total}/{total} done" in printer.render()

    def test_render_counts_questions(self):
        from repro.partition import ShardEvent

        printer = ShardProgressPrinter(io.StringIO(), live=False)
        printer(ShardEvent(0, "started", "graph", pairs=10))
        printer(ShardEvent(0, "checkpointed", "graph", pairs=10, loops=1, questions=5))
        printer(ShardEvent(1, "started", "graph", pairs=10))
        assert "questions 5" in printer.render()
        assert "partitions 0/2 done" in printer.render()
