"""Tests for question benefit and selection (Section VI, Algorithm 3)."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.selection import (
    benefit,
    greedy_question_selection,
    max_inference_selection,
    max_probability_selection,
)


def _sets(mapping):
    return {q: {p: 0.0 for p in pairs} for q, pairs in mapping.items()}


class TestBenefit:
    def test_single_question(self):
        inferred = _sets({"q1": ["q1", "p1", "p2"]})
        priors = {"q1": 0.5}
        assert benefit(["q1"], inferred, priors) == pytest.approx(1.5)

    def test_disjoint_questions_add(self):
        inferred = _sets({"q1": ["p1"], "q2": ["p2"]})
        priors = {"q1": 0.5, "q2": 0.5}
        assert benefit(["q1", "q2"], inferred, priors) == pytest.approx(1.0)

    def test_overlapping_questions_subadditive(self):
        inferred = _sets({"q1": ["p1"], "q2": ["p1"]})
        priors = {"q1": 0.5, "q2": 0.5}
        together = benefit(["q1", "q2"], inferred, priors)
        assert together == pytest.approx(0.75)  # 1 - 0.5*0.5

    def test_empty(self):
        assert benefit([], {}, {}) == 0.0


@settings(max_examples=40, deadline=None)
@given(
    data=st.dictionaries(
        st.sampled_from(["q1", "q2", "q3", "q4"]),
        st.sets(st.sampled_from(["p1", "p2", "p3", "p4", "p5"]), max_size=5),
        max_size=4,
    ),
    priors=st.dictionaries(
        st.sampled_from(["q1", "q2", "q3", "q4"]),
        st.floats(0.0, 1.0),
        max_size=4,
    ),
)
def test_benefit_monotone_and_submodular(data, priors):
    """Theorem 2: benefit is increasing and submodular."""
    inferred = _sets(data)
    questions = sorted(data)
    for size in range(len(questions)):
        for subset in itertools.combinations(questions, size):
            base = benefit(list(subset), inferred, priors)
            for extra in questions:
                if extra in subset:
                    continue
                grown = benefit(list(subset) + [extra], inferred, priors)
                assert grown >= base - 1e-9  # increasing
                # submodularity: gain shrinks as the set grows
                for extra2 in questions:
                    if extra2 in subset or extra2 == extra:
                        continue
                    with_two = benefit(list(subset) + [extra, extra2], inferred, priors)
                    with_second = benefit(list(subset) + [extra2], inferred, priors)
                    lhs = with_two - with_second
                    rhs = grown - base
                    assert lhs <= rhs + 1e-9


class TestGreedySelection:
    def test_picks_highest_benefit_first(self):
        inferred = _sets({"q1": ["q1", "p1", "p2", "p3"], "q2": ["q2"]})
        priors = {"q1": 0.9, "q2": 0.9}
        selected = greedy_question_selection(["q1", "q2"], inferred, priors, mu=1)
        assert selected == ["q1"]

    def test_prefers_scattered_questions(self):
        """Two questions covering the same pairs: pick one, then diversify."""
        inferred = _sets({
            "q1": ["q1", "p1", "p2"],
            "q2": ["q2", "p1", "p2"],
            "q3": ["q3", "p9"],
        })
        priors = {"q1": 0.9, "q2": 0.85, "q3": 0.6}
        selected = greedy_question_selection(["q1", "q2", "q3"], inferred, priors, mu=2)
        assert selected[0] == "q1"
        assert selected[1] == "q3"  # diversification beats overlap

    def test_respects_mu(self):
        inferred = _sets({f"q{i}": [f"q{i}"] for i in range(10)})
        priors = {f"q{i}": 0.5 for i in range(10)}
        assert len(greedy_question_selection(list(priors), inferred, priors, mu=3)) == 3

    def test_skips_zero_prior_questions(self):
        inferred = _sets({"q1": ["q1", "p1"]})
        priors = {"q1": 0.0}
        assert greedy_question_selection(["q1"], inferred, priors, mu=5) == []

    def test_mu_must_be_positive(self):
        with pytest.raises(ValueError):
            greedy_question_selection([], {}, {}, mu=0)

    @settings(max_examples=30, deadline=None)
    @given(
        data=st.dictionaries(
            st.sampled_from([f"q{i}" for i in range(6)]),
            st.sets(st.sampled_from([f"p{i}" for i in range(8)]), max_size=8),
            min_size=1,
            max_size=6,
        ),
        seed=st.integers(0, 100),
        mu=st.integers(1, 4),
    )
    def test_greedy_matches_exhaustive_to_1_minus_1_over_e(self, data, seed, mu):
        """The lazy greedy result is within (1-1/e) of the optimum."""
        import random

        rng = random.Random(seed)
        inferred = _sets(data)
        priors = {q: rng.uniform(0.1, 1.0) for q in data}
        questions = sorted(data)
        greedy = greedy_question_selection(questions, inferred, priors, mu)
        greedy_value = benefit(greedy, inferred, priors)
        best = 0.0
        for subset in itertools.combinations(questions, min(mu, len(questions))):
            best = max(best, benefit(list(subset), inferred, priors))
        assert greedy_value >= (1 - 1 / 2.718281828) * best - 1e-9


class TestHeuristics:
    def test_maxinf_picks_largest_sets(self):
        inferred = _sets({"q1": ["a"], "q2": ["a", "b", "c"], "q3": ["a", "b"]})
        assert max_inference_selection(["q1", "q2", "q3"], inferred, 2) == ["q2", "q3"]

    def test_maxpr_picks_highest_priors(self):
        priors = {"q1": 0.2, "q2": 0.9, "q3": 0.5}
        assert max_probability_selection(["q1", "q2", "q3"], priors, 2) == ["q2", "q3"]

    def test_deterministic_tie_break(self):
        priors = {"qb": 0.5, "qa": 0.5}
        assert max_probability_selection(["qb", "qa"], priors, 1) == ["qa"]
