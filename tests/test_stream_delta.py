"""Unit tests for the KB-delta model and the incremental preparer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Remp, RempConfig
from repro.datasets import evolving_bundle
from repro.kb import KnowledgeBase, kb_to_doc
from repro.store.serialize import prepared_state_to_doc
from repro.stream import (
    DeltaConflictError,
    DeltaOp,
    KBDelta,
    compose_deltas,
    incremental_prepare,
    kb_pair_fingerprint,
)


def _tiny_pair():
    kb1, kb2 = KnowledgeBase("a"), KnowledgeBase("b")
    kb1.add_entity("x:1", label="alpha one")
    kb2.add_entity("y:1", label="alpha one")
    kb1.add_relationship_triple("x:1", "r", "x:2")
    kb2.add_relationship_triple("y:1", "r", "y:2")
    return kb1, kb2


class TestKnowledgeBaseMutation:
    def test_remove_attribute_triple_prunes_indexes(self):
        kb = KnowledgeBase("k")
        kb.add_entity("e", label="hello")
        assert kb.remove_attribute_triple("e", "rdfs:label", "hello")
        assert kb.label("e") is None
        assert kb.num_attribute_triples == 0
        assert not kb.remove_attribute_triple("e", "rdfs:label", "hello")

    def test_remove_relationship_triple_prunes_both_directions(self):
        kb = KnowledgeBase("k")
        kb.add_relationship_triple("a", "r", "b")
        assert kb.remove_relationship_triple("a", "r", "b")
        assert kb.relation_values("a", "r") == set()
        assert kb.relation_sources("b", "r") == set()
        assert not kb.has_relations("a")
        assert kb.num_relationship_triples == 0

    def test_remove_entity_cascades(self):
        kb = KnowledgeBase("k")
        kb.add_entity("m", label="movie")
        kb.add_relationship_triple("d", "directed", "m")
        kb.add_relationship_triple("m", "stars", "a")
        assert kb.remove_entity("m")
        assert "m" not in kb
        assert kb.relation_values("d", "directed") == set()
        assert kb.relation_sources("a", "stars") == set()

    def test_removal_retires_property_vocabulary(self):
        """Removing a property's last triple drops it from the vocabulary."""
        kb = KnowledgeBase("k")
        kb.add_attribute_triple("e1", "year", 1999)
        kb.add_attribute_triple("e2", "year", 2001)
        kb.add_relationship_triple("e1", "r", "e2")
        kb.remove_attribute_triple("e1", "year", 1999)
        assert "year" in kb.attributes  # one triple left
        kb.remove_attribute_triple("e2", "year", 2001)
        assert "year" not in kb.attributes
        kb.remove_relationship_triple("e1", "r", "e2")
        assert "r" not in kb.relationships

    def test_mutated_kb_serializes_like_fresh_build(self):
        """Removal must leave no trace — the incremental invariant's base."""
        kb = KnowledgeBase("k")
        kb.add_entity("e1", label="one")
        kb.add_entity("e2", label="two")
        kb.add_attribute_triple("e1", "year", 1999)
        kb.add_relationship_triple("e1", "r", "e2")

        mutated = kb.copy()
        mutated.add_entity("e3", label="three")
        mutated.add_relationship_triple("e2", "r", "e3")
        mutated.remove_entity("e3")
        assert kb_to_doc(mutated) == kb_to_doc(kb)

    def test_copy_is_independent(self):
        kb = KnowledgeBase("k")
        kb.add_entity("e", label="one")
        clone = kb.copy()
        clone.add_attribute_triple("e", "year", 2000)
        clone.remove_attribute_triple("e", "rdfs:label", "one")
        assert kb.label("e") == "one"
        assert kb.attribute_values("e", "year") == set()


class TestDeltaModel:
    def test_apply_does_not_mutate_inputs(self):
        kb1, kb2 = _tiny_pair()
        before = kb_pair_fingerprint(kb1, kb2)
        delta = KBDelta(ops=(DeltaOp("remove_entity", 1, "x:1"),))
        new1, _ = delta.apply(kb1, kb2)
        assert kb_pair_fingerprint(kb1, kb2) == before
        assert "x:1" not in new1

    def test_fingerprint_guard(self):
        kb1, kb2 = _tiny_pair()
        delta = KBDelta(
            ops=(DeltaOp("add_entity", 1, "x:9", value="new"),),
            parent_fingerprint="feedfacefeedface",
        )
        with pytest.raises(DeltaConflictError):
            delta.apply(kb1, kb2)
        # Matching fingerprint passes.
        good = KBDelta(
            ops=delta.ops, parent_fingerprint=kb_pair_fingerprint(kb1, kb2)
        )
        good.apply(kb1, kb2)

    def test_round_trip(self):
        delta = KBDelta(
            ops=(
                DeltaOp("add_entity", 1, "x:9", value="label nine"),
                DeltaOp("add_attribute", 2, "y:1", "year", 2001),
                DeltaOp("remove_relation", 1, "x:1", "r", "x:2"),
            ),
            gold_add=(("x:9", "y:9"),),
            gold_remove=(("x:1", "y:1"),),
            parent_fingerprint="0123456789abcdef",
        )
        assert KBDelta.from_doc(delta.to_doc()) == delta

    def test_unknown_version_rejected(self):
        with pytest.raises(ValueError, match="version"):
            KBDelta.from_doc({"version": 99, "ops": []})

    def test_invalid_op_rejected(self):
        with pytest.raises(ValueError):
            DeltaOp("explode", 1, "x")
        with pytest.raises(ValueError):
            DeltaOp("add_entity", 3, "x")

    def test_compose_equals_sequential_application(self):
        kb1, kb2 = _tiny_pair()
        first = KBDelta(
            ops=(DeltaOp("add_entity", 1, "x:9", value="nine"),),
            gold_add=(("x:9", "y:9"),),
        )
        second = KBDelta(
            ops=(DeltaOp("remove_entity", 1, "x:1"),),
            gold_remove=(("x:1", "y:1"), ("x:9", "y:9")),
        )
        sequential = second.apply(*first.apply(kb1, kb2))
        composed = first.compose(second).apply(kb1, kb2)
        assert kb_pair_fingerprint(*sequential) == kb_pair_fingerprint(*composed)
        gold = {("x:1", "y:1"), ("x:5", "y:5")}
        assert second.apply_gold(first.apply_gold(gold)) == first.compose(
            second
        ).apply_gold(gold)

    def test_compose_deltas_empty_is_noop(self):
        kb1, kb2 = _tiny_pair()
        new1, new2 = compose_deltas([]).apply(kb1, kb2)
        assert kb_pair_fingerprint(new1, new2) == kb_pair_fingerprint(kb1, kb2)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 100), steps=st.integers(1, 4))
    def test_evolving_compose_matches_stepwise(self, seed, steps):
        """Composing a delta prefix equals applying it step by step."""
        evolving = evolving_bundle(seed=seed, scale=0.4, steps=4)
        base = evolving.base
        composed = compose_deltas(evolving.deltas[:steps])
        via_compose = composed.apply(base.kb1, base.kb2)
        stepwise = evolving.bundle_at(steps)
        assert kb_pair_fingerprint(*via_compose) == kb_pair_fingerprint(
            stepwise.kb1, stepwise.kb2
        )
        assert composed.apply_gold(base.gold_matches) == stepwise.gold_matches


class TestIncrementalPrepare:
    def test_spliced_state_matches_full_prepare(self, clustered6_bundle):
        bundle = clustered6_bundle
        config = RempConfig()
        state = Remp(config).prepare(bundle.kb1, bundle.kb2)
        label = bundle.kb2.label("y:m3_1")
        delta = KBDelta(
            ops=(
                DeltaOp("add_entity", 1, "x:m2_77", value="studio002 film extra077"),
                DeltaOp("add_entity", 2, "y:m2_77", value="studio002 film extra077"),
                DeltaOp("add_relation", 1, "x:d2", "directed", "x:m2_77"),
                DeltaOp("add_relation", 2, "y:d2", "directed", "y:m2_77"),
                DeltaOp("remove_attribute", 2, "y:m3_1", "rdfs:label", label),
                DeltaOp("add_attribute", 2, "y:m3_1", "rdfs:label", label + " cut"),
                DeltaOp("remove_entity", 1, "x:a1_0"),
                DeltaOp("remove_entity", 2, "y:a1_0"),
            ),
        )
        prepared = incremental_prepare(state, delta, config)
        assert not prepared.fell_back
        full = Remp(config).prepare(*delta.apply(bundle.kb1, bundle.kb2))
        assert prepared_state_to_doc(prepared.state) == prepared_state_to_doc(full)
        assert prepared.fingerprint == kb_pair_fingerprint(full.kb1, full.kb2)

    def test_changed_set_is_conservative(self, clustered6_bundle):
        """Every pair whose artifacts differ must be in the changed set."""
        bundle = clustered6_bundle
        config = RempConfig()
        state = Remp(config).prepare(bundle.kb1, bundle.kb2)
        delta = KBDelta(ops=(DeltaOp("remove_entity", 1, "x:m4_0"),
                             DeltaOp("remove_entity", 2, "y:m4_0")))
        prepared = incremental_prepare(state, delta, config)
        assert prepared.changed is not None
        new = prepared.state
        union = state.retained | new.retained
        for pair in union - set(prepared.changed):
            assert (pair in state.retained) == (pair in new.retained)
            assert state.graph.groups.get(pair, {}) == new.graph.groups.get(pair, {})
            assert state.priors.get(pair) == new.priors.get(pair)
            assert state.signatures.get(pair) == new.signatures.get(pair)

    def test_untouched_clusters_stay_clean(self, clustered6_bundle):
        bundle = clustered6_bundle
        config = RempConfig()
        state = Remp(config).prepare(bundle.kb1, bundle.kb2)
        # A relation edit inside cluster 0: relations never feed attribute
        # matching, so no global fallback — and dirt stays in the cluster.
        delta = KBDelta(
            ops=(
                DeltaOp("add_relation", 1, "x:m0_0", "stars", "x:a0_1"),
                DeltaOp("add_relation", 2, "y:m0_0", "stars", "y:a0_1"),
            )
        )
        prepared = incremental_prepare(state, delta, config)
        assert not prepared.fell_back
        assert prepared.changed is not None
        assert prepared.changed
        # Dirt is confined to cluster 0's entities.
        for left, right in prepared.changed:
            assert "0_" in left or left == "x:d0"
            assert "0_" in right or right == "y:d0"

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 50), step=st.integers(0, 2))
    def test_every_evolving_step_splices_exactly(self, seed, step):
        """The core invariant under randomized deltas: doc equality."""
        evolving = evolving_bundle(seed=seed, scale=0.4, steps=3)
        config = RempConfig()
        before = evolving.bundle_at(step)
        state = Remp(config).prepare(before.kb1, before.kb2)
        prepared = incremental_prepare(state, evolving.deltas[step], config)
        after = evolving.bundle_at(step + 1)
        full = Remp(config).prepare(after.kb1, after.kb2)
        assert prepared_state_to_doc(prepared.state) == prepared_state_to_doc(full)
