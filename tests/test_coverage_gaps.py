"""Focused tests for corners not covered by the per-module suites."""

import pytest

from repro.core import Remp, RempConfig
from repro.core.config import RempConfig as Config
from repro.core.consistency import Consistency
from repro.core.propagation import _reduce_group, neighbor_marginals
from repro.crowd import CrowdPlatform
from repro.datasets import load_dataset
from repro.kb import KnowledgeBase


class TestGroupReduction:
    def test_small_group_untouched(self):
        pairs = [("a", "b"), ("c", "d")]
        assert _reduce_group(pairs, {}, max_pairs=12, per_value=3) == pairs

    def test_oversized_group_capped(self):
        pairs = [(f"a{i}", f"b{j}") for i in range(6) for j in range(6)]
        priors = {p: 0.5 for p in pairs}
        reduced = _reduce_group(pairs, priors, max_pairs=10, per_value=2)
        assert len(reduced) <= 10

    def test_strong_pairs_survive_reduction(self):
        pairs = [(f"a{i}", f"b{j}") for i in range(5) for j in range(5)]
        priors = {p: (0.95 if p[0][1:] == p[1][1:] else 0.1) for p in pairs}
        reduced = _reduce_group(pairs, priors, max_pairs=8, per_value=1)
        diagonal = {(f"a{i}", f"b{i}") for i in range(5)}
        assert diagonal <= set(reduced)

    def test_empty_group(self):
        assert neighbor_marginals(set(), {}, Consistency(0.9, 0.9, 1)) == {}


class TestPipelineBookkeeping:
    @pytest.fixture(scope="class")
    def run_result(self):
        bundle = load_dataset("iimb", seed=1, scale=0.3)
        platform = CrowdPlatform.with_oracle(bundle.gold_matches)
        result = Remp(RempConfig(mu=3)).run(bundle.kb1, bundle.kb2, platform)
        return bundle, result

    def test_history_loop_indices_sequential(self, run_result):
        _, result = run_result
        indices = [r.loop_index for r in result.history]
        assert indices == sorted(indices)

    def test_history_batches_respect_mu(self, run_result):
        _, result = run_result
        assert all(1 <= len(r.questions) <= 3 for r in result.history)

    def test_history_label_counts_consistent(self, run_result):
        _, result = run_result
        for record in result.history:
            total = (
                record.labeled_matches
                + record.labeled_non_matches
                + record.unresolved_questions
            )
            assert total == len(record.questions)

    def test_inferred_counter_monotone(self, run_result):
        _, result = run_result
        counts = [r.inferred_matches_so_far for r in result.history]
        assert counts == sorted(counts)

    def test_questions_never_repeat(self, run_result):
        _, result = run_result
        asked = [q for r in result.history for q in r.questions]
        assert len(asked) == len(set(asked))


class TestMultiLabelEntities:
    def test_entity_with_two_labels_matches_either(self):
        kb1, kb2 = KnowledgeBase("x"), KnowledgeBase("y")
        kb1.add_entity("a", label="First Alias")
        kb1.add_attribute_triple("a", "rdfs:label", "Second Alias")
        kb2.add_entity("b", label="Second Alias")
        from repro.core.candidates import generate_candidates

        result = generate_candidates(kb1, kb2, threshold=0.3)
        assert ("a", "b") in result.pairs
        # exact equality on *any* shared label makes it an initial match
        assert ("a", "b") in result.initial_matches

    def test_label_accessor_deterministic(self):
        kb = KnowledgeBase("x")
        kb.add_entity("a", label="Zeta")
        kb.add_attribute_triple("a", "rdfs:label", "Alpha")
        assert kb.label("a") == "Alpha"  # lexicographically smallest


class TestConfigDefaultsMatchPaper:
    def test_paper_parameters(self):
        config = Config()
        assert config.k == 4
        assert config.tau == 0.9
        assert config.mu == 10
        assert config.label_similarity_threshold == 0.3
        assert config.literal_threshold == 0.9
        assert config.match_posterior == 0.8
        assert config.non_match_posterior == 0.2
        assert config.psi == 0.9
