"""Smoke tests for every experiment driver at tiny scale.

Full-scale runs live in the benchmark harness; these tests assert that each
driver produces a well-formed table and that the cheap shape invariants
hold even at minimal dataset sizes.
"""


from repro.experiments import (
    figure3,
    figure4,
    figure5,
    figure6,
    table3,
    table4,
    table5,
    table6,
    table7,
    table8,
)
from repro.experiments.common import ExperimentResult

TINY = 0.15


def _check_table(result: ExperimentResult) -> None:
    assert result.title
    assert result.rows
    for row in result.rows:
        assert len(row) == len(result.headers)
    assert result.render().count("\n") >= len(result.rows)


def test_table3_smoke():
    result = table3.run(scale=TINY, datasets=("iimb",))
    _check_table(result)
    assert "Remp" in result.raw["iimb"]


def test_figure3_smoke():
    result = figure3.run(scale=TINY, datasets=("iimb",), error_rates=(0.05, 0.25))
    _check_table(result)
    assert ("iimb", 0.25) in result.raw


def test_table4_smoke():
    result = table4.run(scale=0.4)
    _check_table(result)
    for values in result.raw.values():
        assert 0.0 <= values["with"].f1 <= 1.0


def test_table5_smoke():
    result = table5.run(scale=TINY, datasets=("iimb", "dblp_acm"))
    _check_table(result)
    for values in result.raw.values():
        assert values["retained"] <= values["candidates"]


def test_figure4_smoke():
    result = figure4.run(scale=TINY, datasets=("iimb",), k_values=(1, 4))
    _check_table(result)
    series = result.raw["iimb"]
    assert series[4] >= series[1] - 1e-9


def test_table6_smoke():
    result = table6.run(scale=TINY, datasets=("iimb",), portions=(0.4, 0.8), repetitions=2)
    _check_table(result)
    scores = result.raw["iimb"]
    assert set(scores) == {"Remp", "PARIS", "SiGMa"}


def test_figure5_smoke():
    result = figure5.run(scale=TINY, datasets=("iimb",), budgets=(1, 4))
    _check_table(result)
    assert set(result.raw["iimb"]) == {"remp", "maxinf", "maxpr"}


def test_table7_smoke():
    result = table7.run(scale=TINY, datasets=("iimb",), mu_values=(1, 10))
    _check_table(result)
    f1_1, _, loops_1 = result.raw["iimb"][1]
    f1_10, _, loops_10 = result.raw["iimb"][10]
    assert loops_10 <= loops_1


def test_table8_smoke():
    result = table8.run(scale=TINY, datasets=("iimb", "imdb_yago"))
    _check_table(result)
    assert result.raw["imdb_yago"]["isolated_share"] > result.raw["iimb"]["isolated_share"]


def test_figure6_smoke():
    result = figure6.run(scale=0.3, portions=(0.5, 1.0))
    _check_table(result)
    assert result.raw["alg1"][1.0] >= 0.0


def test_render_alignment():
    result = ExperimentResult("T", ["a", "bb"], [["x", "y"], ["longer", "z"]])
    rendered = result.render()
    lines = rendered.splitlines()
    assert lines[0] == "T"
    assert len(lines) == 2 + 2 + 2  # title, blank, header, rule, 2 rows
