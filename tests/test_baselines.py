"""Tests for the baseline ER systems."""

import random

import pytest

from repro.baselines import Corleone, Hike, Paris, Power, SiGMa
from repro.baselines.base import partition_by_signature, vector_with_prior
from repro.baselines.paris import functionality, inverse_functionality
from repro.core import Remp
from repro.crowd import CrowdPlatform
from repro.eval import evaluate_matches
from repro.kb import KnowledgeBase


@pytest.fixture(scope="module")
def bundle(bundle_iimb_04):
    return bundle_iimb_04


@pytest.fixture(scope="module")
def state(prepared_iimb_04):
    return prepared_iimb_04


@pytest.fixture()
def platform(bundle):
    return CrowdPlatform.with_oracle(bundle.gold_matches)


class TestPartitioning:
    def test_partitions_cover_retained(self, state):
        blocks = partition_by_signature(state)
        covered = {pair for block in blocks for pair in block}
        assert covered == state.retained
        total = sum(len(b) for b in blocks)
        assert total == len(state.retained)  # disjoint

    def test_merge_threshold_one_keeps_identical_only(self, state):
        fine = partition_by_signature(state, merge_threshold=1.0)
        coarse = partition_by_signature(state, merge_threshold=0.3)
        assert len(coarse) <= len(fine)

    def test_vector_with_prior_leads_with_prior(self, state):
        pair = sorted(state.retained)[0]
        extended = vector_with_prior(state, pair)
        assert extended == state.vector_index.vectors[pair]
        assert extended[0] == state.priors[pair]


class TestCrowdBaselines:
    @pytest.mark.parametrize("cls", [Hike, Power, Corleone])
    def test_reasonable_quality(self, cls, bundle, state, platform):
        result = cls().run(state, platform)
        quality = evaluate_matches(result.matches, bundle.gold_matches)
        assert quality.f1 > 0.5
        assert result.questions_asked > 0
        assert result.questions_asked == platform.questions_asked

    @pytest.mark.parametrize("cls", [Hike, Power, Corleone])
    def test_deterministic(self, cls, bundle, state):
        runs = []
        for _ in range(2):
            platform = CrowdPlatform.with_oracle(bundle.gold_matches)
            runs.append(cls().run(state, platform).matches)
        assert runs[0] == runs[1]

    def test_remp_asks_fewer_questions_than_baselines(self, bundle, state):
        """The paper's headline: comparable F1 at far fewer questions."""
        platform = CrowdPlatform.with_oracle(bundle.gold_matches)
        remp = Remp().run(bundle.kb1, bundle.kb2, platform, state=state)
        for cls in (Hike, Corleone):
            other = CrowdPlatform.with_oracle(bundle.gold_matches)
            baseline = cls().run(state, other)
            assert remp.questions_asked < baseline.questions_asked

    def test_question_budget_caps(self, bundle, state, platform):
        result = Hike(max_questions_per_partition=1).run(state, platform)
        blocks = partition_by_signature(state)
        assert result.questions_asked <= len(blocks)


class TestSeedBaselines:
    @pytest.fixture(scope="class")
    def seeds(self, bundle):
        rng = random.Random(0)
        gold = sorted(bundle.gold_matches)
        return set(rng.sample(gold, int(0.6 * len(gold))))

    def test_paris_improves_with_seeds(self, bundle, state, seeds):
        with_seeds = Paris().run(state, seeds)
        without = Paris().run(state, set())
        q_with = evaluate_matches(with_seeds.matches, bundle.gold_matches)
        q_without = evaluate_matches(without.matches, bundle.gold_matches)
        assert q_with.f1 >= q_without.f1
        assert with_seeds.questions_asked == 0

    def test_sigma_improves_with_seeds(self, bundle, state, seeds):
        with_seeds = SiGMa().run(state, seeds)
        q = evaluate_matches(with_seeds.matches, bundle.gold_matches)
        assert q.f1 > 0.6
        assert with_seeds.questions_asked == 0

    def test_sigma_one_to_one(self, state, seeds):
        result = SiGMa().run(state, seeds)
        lefts = [p[0] for p in result.matches]
        rights = [p[1] for p in result.matches]
        assert len(set(lefts)) == len(lefts)
        assert len(set(rights)) == len(rights)

    def test_paris_includes_seeds(self, state, seeds):
        result = Paris().run(state, seeds)
        assert seeds <= result.matches

    def test_remp_propagation_beats_paris_and_sigma(self, bundle, state, seeds):
        """Table VI's shape: Remp's propagation wins at equal seeds."""
        remp_matches = Remp().propagate_only(bundle.kb1, bundle.kb2, seeds, state=state)
        remp_f1 = evaluate_matches(remp_matches, bundle.gold_matches).f1
        paris_f1 = evaluate_matches(Paris().run(state, seeds).matches, bundle.gold_matches).f1
        assert remp_f1 >= paris_f1 - 0.05  # clear win or statistical tie


class TestFunctionality:
    def test_functional_relationship(self):
        kb = KnowledgeBase("f")
        for i in range(5):
            kb.add_relationship_triple(f"s{i}", "r", f"o{i}")
        assert functionality(kb, "r") == 1.0

    def test_multivalued_relationship(self):
        kb = KnowledgeBase("f")
        kb.add_relationship_triple("s", "r", "o1")
        kb.add_relationship_triple("s", "r", "o2")
        assert functionality(kb, "r") == 0.5

    def test_inverse_functionality(self):
        kb = KnowledgeBase("f")
        kb.add_relationship_triple("s1", "r", "o")
        kb.add_relationship_triple("s2", "r", "o")
        assert inverse_functionality(kb, "r") == 0.5

    def test_missing_relationship_zero(self):
        kb = KnowledgeBase("f")
        assert functionality(kb, "none") == 0.0
        assert inverse_functionality(kb, "none") == 0.0
