"""Live telemetry plane: bus, run_events store, watch/top, CLI tailing."""

import json
import threading

import pytest

from repro.cli import main
from repro.obs.live import (
    BUS,
    RunWatch,
    StoreEventWriter,
    TelemetryBus,
    render_top,
)
from repro.service import MatchingService
from repro.store import RunStore
from repro.store.serialize import result_to_doc


class TestTelemetryBus:
    def test_publish_fans_out_to_subscribers(self):
        bus = TelemetryBus()
        seen, also = [], []
        bus.subscribe(seen.append)
        token = bus.subscribe(also.append)
        bus.publish({"kind": "x"})
        bus.unsubscribe(token)
        bus.publish({"kind": "y"})
        assert [e["kind"] for e in seen] == ["x", "y"]
        assert [e["kind"] for e in also] == ["x"]

    def test_failing_subscriber_is_detached_not_raised(self):
        bus = TelemetryBus()
        healthy = []

        def broken(event):
            raise RuntimeError("boom")

        bus.subscribe(broken)
        bus.subscribe(healthy.append)
        bus.publish({"kind": "a"})  # must not raise
        assert bus.subscriber_count() == 1
        bus.publish({"kind": "b"})
        assert [e["kind"] for e in healthy] == ["a", "b"]

    def test_module_bus_is_shared(self):
        seen = []
        token = BUS.subscribe(seen.append)
        try:
            BUS.publish({"kind": "shared"})
        finally:
            BUS.unsubscribe(token)
        assert seen and seen[0]["kind"] == "shared"


class TestRunEventsStore:
    def test_append_tail_last_count_clear(self, tmp_path):
        store = RunStore(tmp_path / "s.db")
        run_id = store.create_run("iimb", 0, 0.2, None)
        first = store.append_run_event(run_id, "status.running")
        store.append_run_event(
            run_id, "shard.finished", {"questions": 3}, shard_id=1
        )
        events = store.tail_run_events(run_id)
        assert [e["kind"] for e in events] == ["status.running", "shard.finished"]
        assert events[1]["shard_id"] == 1 and events[1]["questions"] == 3
        assert all(e["ts"] > 0 for e in events)
        # Tailing is by sequence: only events after the cursor come back.
        tail = store.tail_run_events(run_id, after_seq=first)
        assert [e["kind"] for e in tail] == ["shard.finished"]
        assert store.last_run_event(run_id)["kind"] == "shard.finished"
        assert store.count_run_events(run_id) == 2
        assert store.clear_run_events(run_id) == 2
        assert store.tail_run_events(run_id) == []
        assert store.last_run_event(run_id) is None
        store.close()

    def test_active_runs_excludes_finished(self, tmp_path):
        store = RunStore(tmp_path / "s.db")
        live = store.create_run("iimb", 0, 0.2, None)
        done = store.create_run("iimb", 1, 0.2, None)
        store.update_run_status(done, "failed")
        assert [r.run_id for r in store.active_runs()] == [live]
        store.close()


class TestStoreEventWriter:
    def test_writes_only_its_run_and_unsubscribes(self, tmp_path):
        store = RunStore(tmp_path / "s.db")
        run_id = store.create_run("iimb", 0, 0.2, None)
        bus = TelemetryBus()
        with StoreEventWriter(store, run_id, bus=bus):
            bus.publish({"kind": "status.running", "run_id": run_id, "ts": 1.0})
            bus.publish({"kind": "status.running", "run_id": "other", "ts": 2.0})
        bus.publish({"kind": "status.done", "run_id": run_id, "ts": 3.0})
        events = store.tail_run_events(run_id)
        assert [e["kind"] for e in events] == ["status.running"]
        assert events[0]["ts"] == 1.0
        assert bus.subscriber_count() == 0
        store.close()

    def test_column_fields_split_from_payload(self, tmp_path):
        store = RunStore(tmp_path / "s.db")
        run_id = store.create_run("iimb", 0, 0.2, None)
        bus = TelemetryBus()
        with StoreEventWriter(store, run_id, bus=bus):
            bus.publish(
                {
                    "kind": "shard.checkpointed",
                    "run_id": run_id,
                    "ts": 5.0,
                    "shard_id": 2,
                    "stream_step": 1,
                    "loops": 4,
                }
            )
        (event,) = store.tail_run_events(run_id)
        assert event["shard_id"] == 2
        assert event["stream_step"] == 1
        assert event["loops"] == 4
        assert "run_id" not in event  # implied by the query
        store.close()


class TestRunWatch:
    def _feed(self, watch, events):
        return watch.feed(
            [dict(event, seq=i + 1) for i, event in enumerate(events)]
        )

    def test_folds_status_loop_and_stream(self):
        watch = RunWatch()
        changed = self._feed(
            watch,
            [
                {"kind": "status.running"},
                {"kind": "loop.checkpointed", "loops": 2, "questions": 9},
                {"kind": "stream.summary", "units": 5, "reused": 3},
            ],
        )
        assert changed
        assert watch.status == "running"
        assert watch.questions == 9
        assert watch.last_seq == 3
        assert not watch.feed([])
        frame = watch.render()
        assert "loop 2" in frame and "9 questions" in frame
        assert "units=5 reused=3" in frame

    def test_shard_progress_is_monotone(self):
        watch = RunWatch()
        self._feed(
            watch,
            [
                {"kind": "shard.started", "shard_id": 0, "phase": "graph"},
                {
                    "kind": "shard.checkpointed",
                    "shard_id": 0,
                    "questions": 5,
                    "loops": 2,
                },
                # A stale (lower) count must not move progress backwards.
                {"kind": "shard.checkpointed", "shard_id": 0, "questions": 3},
                {
                    "kind": "shard.finished",
                    "shard_id": 0,
                    "questions": 5,
                    "matches": 4,
                },
            ],
        )
        shard = watch.shards[0]
        assert shard["state"] == "finished"
        assert shard["questions"] == 5
        assert shard["matches"] == 4
        assert watch.questions == 5
        frame = watch.render()
        assert "shard   0" in frame and "matches=4" in frame
        assert "shards 1/1 done" in frame

    def test_render_top_table(self, tmp_path):
        store = RunStore(tmp_path / "s.db")
        run_id = store.create_run("iimb", 0, 0.2, None)
        record = store.get_run(run_id)
        assert render_top([]) == "no runs in flight"
        table = render_top(
            [(record, {"kind": "shard.checkpointed", "shard_id": 1, "questions": 7})]
        )
        assert run_id[:12] in table
        assert "shard.checkpointed (shard 1)" in table
        assert " 7 " in table
        store.close()


class TestLiveRunEvents:
    """Execution paths persist their progress through the shared store."""

    def test_monolithic_run_emits_lifecycle_events(self, tmp_path):
        with MatchingService(RunStore(tmp_path / "s.db")) as service:
            run_id = service.submit("iimb", scale=0.2, background=False)
            result = service.result(run_id)
            events = service.store.tail_run_events(run_id)
        kinds = [e["kind"] for e in events]
        assert kinds[0] == "status.preparing"
        assert "status.running" in kinds
        assert kinds[-1] == "status.done"
        assert "loop.checkpointed" in kinds
        watch = RunWatch()
        watch.feed(events)
        assert watch.status == "done"
        assert watch.questions == result.questions_asked

    def test_partitioned_run_emits_per_shard_heartbeats(self, tmp_path):
        with MatchingService(RunStore(tmp_path / "s.db")) as service:
            run_id = service.submit("iimb", scale=0.2, workers=2, background=False)
            result = service.result(run_id)
            events = service.store.tail_run_events(run_id)
        kinds = {e["kind"] for e in events}
        assert "shard.started" in kinds and "shard.finished" in kinds
        watch = RunWatch()
        watch.feed(events)
        assert watch.shards
        assert all(s["state"] == "finished" for s in watch.shards.values())
        assert watch.questions == result.questions_asked

    def test_second_connection_tails_inflight_run(self, tmp_path):
        """A separate store handle on the same SQLite file sees progress
        while the run is still executing — the ``repro runs watch``
        contract, minus the subprocess."""
        path = tmp_path / "s.db"
        service = MatchingService(RunStore(path))
        try:
            run_id = service.submit("iimb", scale=0.2, workers=2, background=True)
            watch = RunWatch()
            tailer = RunStore(path)
            try:
                done = threading.Event()

                def wait():
                    service.result(run_id)
                    done.set()

                waiter = threading.Thread(target=wait)
                waiter.start()
                while not done.is_set():
                    watch.feed(tailer.tail_run_events(run_id, watch.last_seq))
                    done.wait(0.01)
                waiter.join()
                watch.feed(tailer.tail_run_events(run_id, watch.last_seq))
            finally:
                tailer.close()
            result = service.result(run_id)
        finally:
            service.close()
        assert watch.status == "done"
        assert watch.shards
        assert watch.questions == result.questions_asked


class _Die(Exception):
    pass


class TestKillAndResumeConsistency:
    """The satellite invariant: a killed ``--workers 4`` run under
    ``REPRO_NO_TRACE=1`` keeps its events table consistent, and after
    resume the cost ledger total equals the result's question count."""

    def test_events_and_ledger_survive_kill(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_NO_TRACE", "1")
        path = tmp_path / "s.db"
        seen = []

        def killer(event):
            seen.append(event)
            if sum(1 for e in seen if e.kind == "finished") == 1:
                raise _Die

        with MatchingService(RunStore(path)) as service:
            run_id = service.submit(
                "iimb", scale=0.2, workers=4, background=False, on_event=killer
            )
            with pytest.raises(_Die):
                service.result(run_id)
            assert service.store.get_run(run_id).status == "failed"
            events = service.store.tail_run_events(run_id)
            kinds = [e["kind"] for e in events]
            assert kinds[-1] == "status.failed"
            assert "shard.finished" in kinds

        # A fresh service simulates a process restart.
        with MatchingService(RunStore(path)) as service:
            service.resume(run_id, background=False)
            result = service.result(run_id)
            assert service.store.get_run(run_id).status == "done"
            events = service.store.tail_run_events(run_id)
            obs_doc = service.store.load_run_obs(run_id)

        kinds = [e["kind"] for e in events]
        assert kinds[-1] == "status.done"
        # Sequence numbers stay strictly increasing across the restart.
        seqs = [e["seq"] for e in events]
        assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)
        # Untraced runs still stream progress events (operational plane).
        assert obs_doc["trace"] == []
        ledger = obs_doc["cost_ledger"]
        assert ledger["total"] == result.questions_asked
        assert sum(i["questions"] for i in ledger["items"]) == ledger["total"]
        watch = RunWatch()
        watch.feed(events)
        assert watch.status == "done"
        assert watch.questions == result.questions_asked


class TestWatchAndTopCLI:
    def _finished_run(self, tmp_path, monkeypatch, **kwargs):
        path = tmp_path / "s.db"
        monkeypatch.setenv("REPRO_STORE", str(path))
        with MatchingService(RunStore(path)) as service:
            run_id = service.submit("iimb", scale=0.2, background=False, **kwargs)
            result = service.result(run_id)
        return run_id, result

    def test_runs_watch_renders_finished_run(self, tmp_path, monkeypatch, capsys):
        run_id, result = self._finished_run(tmp_path, monkeypatch, workers=2)
        assert main(["runs", "watch", run_id]) == 0
        out = capsys.readouterr().out
        assert f"run {run_id}" in out
        assert "done" in out
        assert "shard" in out
        assert f"questions {result.questions_asked}" in out
        assert "stages:" in out

    def test_runs_watch_once_flag(self, tmp_path, monkeypatch, capsys):
        run_id, _ = self._finished_run(tmp_path, monkeypatch)
        assert main(["runs", "watch", run_id, "--once"]) == 0
        assert run_id in capsys.readouterr().out

    def test_runs_watch_unknown_run(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_STORE", str(tmp_path / "s.db"))
        with RunStore(tmp_path / "s.db"):
            pass
        assert main(["runs", "watch", "nope"]) == 1
        assert "unknown run" in capsys.readouterr().err

    def test_top_lists_inflight_runs_only(self, tmp_path, monkeypatch, capsys):
        path = tmp_path / "s.db"
        monkeypatch.setenv("REPRO_STORE", str(path))
        with RunStore(path) as store:
            live = store.create_run("iimb", 0, 0.2, None)
            store.update_run_status(live, "running")
            store.append_run_event(
                live, "shard.checkpointed", {"questions": 4}, shard_id=0
            )
            done = store.create_run("iimb", 1, 0.2, None)
            store.update_run_status(done, "done")
        assert main(["top"]) == 0
        out = capsys.readouterr().out
        assert live[:12] in out
        assert done[:12] not in out
        assert "shard.checkpointed (shard 0)" in out

    def test_top_empty_store(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_STORE", str(tmp_path / "s.db"))
        assert main(["top"]) == 0
        assert "no runs in flight" in capsys.readouterr().out


class TestProgressEventsAreWritePathPassive:
    def test_partitioned_result_identical_with_busy_bus(self, tmp_path):
        """A live subscriber on the bus never perturbs the result."""

        def run(path):
            with MatchingService(RunStore(path)) as service:
                run_id = service.submit(
                    "iimb", scale=0.2, workers=2, background=False
                )
                return service.result(run_id)

        quiet = run(tmp_path / "quiet.db")
        seen = []
        token = BUS.subscribe(seen.append)
        try:
            noisy = run(tmp_path / "noisy.db")
        finally:
            BUS.unsubscribe(token)
        assert seen  # the subscriber really observed the run
        assert json.dumps(result_to_doc(noisy), sort_keys=True) == json.dumps(
            result_to_doc(quiet), sort_keys=True
        )
