"""Integration tests for the end-to-end Remp pipeline."""

import pytest

from repro.core import Remp, RempConfig
from repro.crowd import CrowdPlatform
from repro.eval import evaluate_matches


@pytest.fixture(scope="module")
def bundle(bundle_iimb_04):
    return bundle_iimb_04


@pytest.fixture(scope="module")
def oracle_result(bundle):
    remp = Remp()
    platform = CrowdPlatform.with_oracle(bundle.gold_matches)
    return remp.run(bundle.kb1, bundle.kb2, platform), platform


class TestPrepare:
    def test_artifacts_consistent(self, prepared_iimb_04):
        state = prepared_iimb_04
        assert state.retained <= state.candidates.pairs
        assert set(state.priors) == state.retained
        assert state.isolated <= state.retained
        assert set(state.signatures) == state.retained
        for pair in state.retained:
            assert pair in state.vector_index.vectors

    def test_initial_matches_have_prior_one(self, prepared_iimb_04):
        state = prepared_iimb_04
        for pair in state.candidates.initial_matches:
            assert state.candidates.priors[pair] == 1.0


class TestRun:
    def test_oracle_run_high_precision(self, bundle, oracle_result):
        result, _ = oracle_result
        quality = evaluate_matches(result.matches, bundle.gold_matches)
        assert quality.precision > 0.9
        assert quality.recall > 0.7
        assert quality.f1 > 0.85

    def test_question_count_bounded_by_loops(self, bundle, oracle_result):
        result, platform = oracle_result
        config = RempConfig()
        loop_questions = sum(len(r.questions) for r in result.history)
        assert loop_questions <= result.num_loops * config.mu
        assert result.questions_asked >= loop_questions
        assert platform.questions_asked == result.questions_asked

    def test_match_partition(self, bundle, oracle_result):
        result, _ = oracle_result
        assert result.matches == (
            result.labeled_matches | result.inferred_matches | result.isolated_matches
        )
        assert not (result.labeled_matches & result.inferred_matches)

    def test_far_fewer_questions_than_matches(self, bundle, oracle_result):
        """The headline claim: inference resolves many pairs per label."""
        result, _ = oracle_result
        assert result.questions_asked < len(result.matches)

    def test_budget_respected(self, bundle):
        config = RempConfig(budget=5)
        platform = CrowdPlatform.with_oracle(bundle.gold_matches)
        result = Remp(config).run(bundle.kb1, bundle.kb2, platform)
        # isolated seeding is also crowd labeling but budget gates the loop
        loop_questions = sum(len(r.questions) for r in result.history)
        assert loop_questions <= 5

    def test_unknown_strategy_rejected(self, bundle):
        platform = CrowdPlatform.with_oracle(bundle.gold_matches)
        with pytest.raises(ValueError, match="unknown selection strategy"):
            Remp().run(bundle.kb1, bundle.kb2, platform, strategy="nope")

    def test_alternative_strategies_run(self, bundle):
        for strategy in ("maxinf", "maxpr"):
            platform = CrowdPlatform.with_oracle(bundle.gold_matches)
            result = Remp().run(bundle.kb1, bundle.kb2, platform, strategy=strategy)
            quality = evaluate_matches(result.matches, bundle.gold_matches)
            assert quality.precision > 0.5

    def test_noisy_workers_still_accurate(self, bundle):
        platform = CrowdPlatform.with_simulated_workers(
            bundle.gold_matches, num_workers=30, error_rate=0.15, seed=1
        )
        result = Remp().run(bundle.kb1, bundle.kb2, platform)
        quality = evaluate_matches(result.matches, bundle.gold_matches)
        assert quality.f1 > 0.75

    def test_deterministic_given_same_platform_seed(self, bundle):
        results = []
        for _ in range(2):
            platform = CrowdPlatform.with_simulated_workers(
                bundle.gold_matches, num_workers=30, error_rate=0.1, seed=7
            )
            results.append(Remp().run(bundle.kb1, bundle.kb2, platform).matches)
        assert results[0] == results[1]

    def test_floyd_warshall_config_runs(self, bundle):
        config = RempConfig(use_dijkstra=False)
        platform = CrowdPlatform.with_oracle(bundle.gold_matches)
        result = Remp(config).run(bundle.kb1, bundle.kb2, platform)
        quality = evaluate_matches(result.matches, bundle.gold_matches)
        assert quality.f1 > 0.8


class TestPropagateOnly:
    def test_seeds_propagate(self, bundle):
        import random

        rng = random.Random(0)
        seeds = set(rng.sample(sorted(bundle.gold_matches), len(bundle.gold_matches) // 2))
        matches = Remp().propagate_only(bundle.kb1, bundle.kb2, seeds)
        assert matches >= seeds
        quality = evaluate_matches(matches, bundle.gold_matches)
        assert quality.recall > 0.5
        assert quality.precision > 0.85

    def test_no_seeds_no_matches(self, bundle):
        assert Remp().propagate_only(bundle.kb1, bundle.kb2, set()) == set()
