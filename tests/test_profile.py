"""Sampling profiler: folded stacks, scope integration, shard absorption."""

import json
import sys
import time

from repro.obs import RunScope
from repro.obs import runtime as obs_runtime
from repro.obs.profile import (
    DEFAULT_INTERVAL,
    SamplingProfiler,
    fold_stack,
    folded_text,
    profile_interval,
    profiling_enabled,
    top_stacks,
)
from repro.service import MatchingService
from repro.store import RunStore


def _spin(seconds: float) -> None:
    deadline = time.perf_counter() + seconds
    while time.perf_counter() < deadline:
        sum(range(100))


class TestFoldStack:
    def test_root_first_semicolon_joined(self):
        def inner():
            return fold_stack(sys._getframe())

        def outer():
            return inner()

        folded = outer()
        frames = folded.split(";")
        # Leaf (innermost frame) last, caller before it.
        assert frames[-1].endswith("TestFoldStack.test_root_first_semicolon_joined.<locals>.inner")
        assert frames[-2].endswith("TestFoldStack.test_root_first_semicolon_joined.<locals>.outer")
        assert all("test_profile" in frame for frame in frames[-2:])

    def test_profiler_frames_are_skipped(self):
        folded = fold_stack(sys._getframe())
        assert "repro.obs.profile" not in folded


class TestSamplingProfiler:
    def test_collects_samples_while_running(self):
        profiler = SamplingProfiler(interval=0.001)
        profiler.start()
        _spin(0.1)
        profiler.stop()
        doc = profiler.as_doc()
        assert doc["samples"] > 0
        assert doc["stacks"]
        assert sum(doc["stacks"].values()) == doc["samples"]
        assert doc["interval"] == 0.001
        assert any("_spin" in stack for stack in doc["stacks"])
        json.dumps(doc)  # the document is JSON-able

    def test_samples_accumulate_across_restarts(self):
        profiler = SamplingProfiler(interval=0.001)
        profiler.start()
        _spin(0.05)
        profiler.stop()
        first = profiler.samples
        assert first > 0
        profiler.start()
        _spin(0.05)
        profiler.stop()
        assert profiler.samples > first

    def test_double_start_and_stop_are_idempotent(self):
        profiler = SamplingProfiler(interval=0.001)
        profiler.start()
        profiler.start()
        profiler.stop()
        profiler.stop()  # must not raise

    def test_absorb_folds_foreign_document(self):
        profiler = SamplingProfiler(interval=0.001)
        profiler.absorb({"samples": 3, "stacks": {"a;b": 2, "a;c": 1}})
        profiler.absorb({"samples": 1, "stacks": {"a;b": 1}})
        doc = profiler.as_doc()
        assert doc["samples"] == 4
        assert doc["stacks"] == {"a;b": 3, "a;c": 1}

    def test_folded_text_and_top_stacks(self):
        doc = {"samples": 5, "stacks": {"a;b": 3, "a;c": 2}}
        assert folded_text(doc) == "a;b 3\na;c 2\n"
        assert folded_text({"stacks": {}}) == ""
        assert top_stacks(doc, limit=1) == [("a;b", 3)]


class TestEnvGates:
    def test_profiling_enabled_truthy_values(self, monkeypatch):
        monkeypatch.delenv("REPRO_PROFILE", raising=False)
        assert not profiling_enabled()
        for value in ("1", "true", "YES", "on"):
            monkeypatch.setenv("REPRO_PROFILE", value)
            assert profiling_enabled()
        monkeypatch.setenv("REPRO_PROFILE", "0")
        assert not profiling_enabled()

    def test_interval_parsing_falls_back(self, monkeypatch):
        monkeypatch.delenv("REPRO_PROFILE_INTERVAL", raising=False)
        assert profile_interval() == DEFAULT_INTERVAL
        monkeypatch.setenv("REPRO_PROFILE_INTERVAL", "0.02")
        assert profile_interval() == 0.02
        monkeypatch.setenv("REPRO_PROFILE_INTERVAL", "bananas")
        assert profile_interval() == DEFAULT_INTERVAL
        monkeypatch.setenv("REPRO_PROFILE_INTERVAL", "-1")
        assert profile_interval() == DEFAULT_INTERVAL


class TestRunScopeIntegration:
    def test_profiled_scope_exports_profile(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE_INTERVAL", "0.001")
        scope = RunScope("run-p", profile=True)
        with scope.activate():
            _spin(0.1)
        doc = scope.export()
        assert doc["profile"]["samples"] > 0
        assert doc["profile"]["stacks"]

    def test_unprofiled_scope_has_no_profile(self):
        scope = RunScope("run-q", profile=False)
        with scope.activate():
            pass
        assert "profile" not in scope.export()
        assert scope.profiler is None

    def test_env_gate_enables_by_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE", "1")
        assert RunScope("run-r").profiling
        monkeypatch.delenv("REPRO_PROFILE")
        assert not RunScope("run-s").profiling
        # An explicit argument wins over the environment either way.
        monkeypatch.setenv("REPRO_PROFILE", "1")
        assert not RunScope("run-t", profile=False).profiling

    def test_absorb_helper_routes_shard_profiles(self):
        parent = RunScope("run-u", profile=False)
        shard_profile = {"samples": 7, "stacks": {"x;y": 7}}
        with parent.activate():
            obs_runtime.absorb(spans=[], metrics={}, profile=shard_profile)
        doc = parent.export()
        assert doc["profile"]["samples"] == 7
        assert doc["profile"]["stacks"] == {"x;y": 7}


class TestServiceIntegration:
    def test_profiled_run_persists_and_exports_folded_stacks(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_PROFILE", "1")
        monkeypatch.setenv("REPRO_PROFILE_INTERVAL", "0.001")
        with MatchingService(RunStore(tmp_path / "s.db")) as service:
            run_id = service.submit("iimb", scale=0.2, background=False)
            service.result(run_id)
            obs_doc = service.store.load_run_obs(run_id)
            from repro.obs import export_run_artifacts

            dest = export_run_artifacts(
                service.store, run_id, root=tmp_path / "runs"
            )
        assert obs_doc["profile"]["samples"] > 0
        folded = (dest / "profile.folded").read_text()
        assert folded.strip()
        for line in folded.strip().splitlines():
            stack, count = line.rsplit(" ", 1)
            assert ";" in stack or stack
            assert int(count) > 0

    def test_unprofiled_run_exports_no_folded_file(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_PROFILE", raising=False)
        with MatchingService(RunStore(tmp_path / "s.db")) as service:
            run_id = service.submit("iimb", scale=0.2, background=False)
            service.result(run_id)
            from repro.obs import export_run_artifacts

            dest = export_run_artifacts(
                service.store, run_id, root=tmp_path / "runs"
            )
        assert not (dest / "profile.folded").exists()
