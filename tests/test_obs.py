"""Tests for repro.obs: tracer, metrics, run scopes, artifact contract."""

import json
import logging

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accel.runtime import TIMINGS
from repro.obs import (
    ARTIFACT_FILES,
    MetricsRegistry,
    RunScope,
    Tracer,
    benchmark_metrics_doc,
    export_run_artifacts,
    fallback_cost_ledger,
)
from repro.obs import runtime as obs_runtime
from repro.obs.logging import get_logger
from repro.obs.trace import NO_SPAN
from repro.service import MatchingService
from repro.store import RunStore
from repro.store.serialize import result_to_doc


class TestTracer:
    def test_spans_nest_per_thread(self):
        tracer = Tracer("run-1", enabled=True)
        with tracer.span("outer"):
            with tracer.span("inner", detail=7):
                pass
        spans = tracer.spans()
        assert [s["name"] for s in spans] == ["outer", "inner"]
        outer, inner = spans
        assert inner["parent_id"] == outer["id"]
        assert "parent_id" not in outer
        assert inner["detail"] == 7
        assert all(s["run_id"] == "run-1" for s in spans)
        assert all(s["dur"] >= 0 for s in spans)

    def test_correlation_fields_stamped(self):
        tracer = Tracer("run-2", shard_id=3, stream_step=1, enabled=True)
        tracer.event("mark")
        (span,) = tracer.spans()
        assert span["shard_id"] == 3
        assert span["stream_step"] == 1
        assert span["dur"] == 0.0

    def test_disabled_tracer_collects_nothing(self):
        tracer = Tracer("run-3", enabled=False)
        with tracer.span("ignored"):
            pass
        tracer.event("also-ignored")
        assert tracer.spans() == []

    def test_no_trace_env_gates_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_TRACE", "1")
        assert not Tracer("r").enabled
        monkeypatch.delenv("REPRO_NO_TRACE")
        assert Tracer("r").enabled

    def test_span_cap_counts_drops(self, monkeypatch):
        monkeypatch.setattr("repro.obs.trace.MAX_SPANS", 2)
        tracer = Tracer("run-4", enabled=True)
        for _ in range(5):
            tracer.event("e")
        assert len(tracer.spans()) == 2
        assert tracer.dropped == 3

    def test_add_spans_absorbs_children(self):
        parent = Tracer("run-5", enabled=True)
        child = Tracer("run-5", shard_id=0, enabled=True)
        child.event("child-work")
        parent.add_spans(child.spans())
        (span,) = parent.spans()
        assert span["shard_id"] == 0


class TestMetricsRegistry:
    def test_counters_accumulate_and_gauges_overwrite(self):
        registry = MetricsRegistry()
        registry.count("c")
        registry.count("c", 4)
        registry.gauge("g", 0.5)
        registry.gauge("g", 0.7)
        doc = registry.as_doc()
        assert doc == {"counters": {"c": 5}, "gauges": {"g": 0.7}}
        assert registry.counter("c") == 5
        assert registry.counter("missing") == 0

    def test_merge_and_round_trip(self):
        first = MetricsRegistry()
        first.count("questions", 3)
        first.gauge("rate", 0.25)
        second = MetricsRegistry.from_doc(first.as_doc())
        second.count("questions", 2)
        first.merge(second)
        assert first.counter("questions") == 8
        assert first.as_doc()["gauges"]["rate"] == 0.25

    def test_merge_takes_elementwise_gauge_max(self):
        # Pinned semantics: merged gauges take the element-wise max, so
        # absorbing shard registries is order-independent.  Direct
        # ``gauge()`` calls stay last-write (see the overwrite test).
        low, high = MetricsRegistry(), MetricsRegistry()
        low.gauge("depth", 2.0)
        high.gauge("depth", 5.0)
        high.gauge("only_high", 1.0)
        low.merge(high)
        assert low.as_doc()["gauges"] == {"depth": 5.0, "only_high": 1.0}
        # Merging the lower value back in does not regress the max.
        relow = MetricsRegistry()
        relow.gauge("depth", 2.0)
        low.merge(relow)
        assert low.as_doc()["gauges"]["depth"] == 5.0

    @settings(max_examples=50, deadline=None)
    @given(
        docs=st.lists(
            st.dictionaries(
                st.sampled_from(["a", "b", "c"]),
                st.floats(
                    min_value=-1e6,
                    max_value=1e6,
                    allow_nan=False,
                    allow_infinity=False,
                ),
                max_size=3,
            ),
            min_size=1,
            max_size=5,
        ),
        order=st.randoms(),
    )
    def test_gauge_merge_is_commutative_and_associative(self, docs, order):
        """Any absorption order of shard gauge docs yields the same
        merged registry — max is commutative and associative."""

        def merged(sequence):
            registry = MetricsRegistry()
            for gauges in sequence:
                registry.merge(MetricsRegistry.from_doc({"gauges": gauges}))
            return registry.as_doc()["gauges"]

        shuffled = list(docs)
        order.shuffle(shuffled)
        assert merged(docs) == merged(shuffled)
        # Associativity: pre-merging a prefix then folding the rest is
        # the same as folding everything one by one.
        prefix = MetricsRegistry()
        for gauges in docs[: len(docs) // 2]:
            prefix.merge(MetricsRegistry.from_doc({"gauges": gauges}))
        rest = MetricsRegistry.from_doc(prefix.as_doc())
        for gauges in docs[len(docs) // 2 :]:
            rest.merge(MetricsRegistry.from_doc({"gauges": gauges}))
        assert rest.as_doc()["gauges"] == merged(docs)


class TestRunScope:
    def test_helpers_are_noops_without_scope(self):
        obs_runtime.count("orphan")
        obs_runtime.gauge("orphan", 1.0)
        obs_runtime.event("orphan")
        assert obs_runtime.span("orphan") is NO_SPAN

    def test_helpers_route_to_active_scope(self):
        scope = RunScope("run-x", trace=True)
        with scope.activate():
            obs_runtime.count("hits", 2)
            obs_runtime.gauge("rate", 0.5)
            with obs_runtime.span("stage"):
                obs_runtime.event("inside")
        doc = scope.export()
        assert doc["metrics"]["counters"] == {"hits": 2}
        assert doc["metrics"]["gauges"] == {"rate": 0.5}
        assert [s["name"] for s in doc["trace"]] == ["stage", "inside"]

    def test_global_timings_route_to_scope(self):
        scope = RunScope("run-y", trace=True)
        with scope.activate():
            with TIMINGS.timed("scoped.stage"):
                pass
        stages = scope.timings.snapshot()
        assert "scoped.stage" in stages
        # The process-wide registry still accumulates (complete totals).
        assert "scoped.stage" in TIMINGS.snapshot()
        # timed() under a scope also emits a span.
        assert "scoped.stage" in [s["name"] for s in scope.tracer.spans()]

    def test_scopes_do_not_leak_across_activations(self):
        inner, outer = RunScope("inner"), RunScope("outer")
        with outer.activate():
            with inner.activate():
                obs_runtime.count("work")
            obs_runtime.count("work")
        assert inner.metrics.counter("work") == 1
        assert outer.metrics.counter("work") == 1

    def test_absorb_folds_child_exports(self):
        parent = RunScope("p", trace=True)
        child = RunScope("p", shard_id=1, trace=True)
        with child.activate():
            obs_runtime.count("shard.work", 3)
            obs_runtime.event("shard.mark")
        with parent.activate():
            obs_runtime.absorb(
                spans=child.tracer.spans(), metrics=child.metrics.as_doc()
            )
        assert parent.metrics.counter("shard.work") == 3
        assert parent.tracer.spans()[0]["shard_id"] == 1


def _export(service, run_id, root):
    return export_run_artifacts(service.store, run_id, root=root)


def _read_ledger(dest):
    return json.loads((dest / "cost_ledger.json").read_text())


class TestArtifactContract:
    def test_plain_run_exports_full_contract(self, tmp_path):
        with MatchingService(RunStore(tmp_path / "store.db")) as service:
            run_id = service.submit("iimb", scale=0.2, background=False)
            result = service.result(run_id)
            dest = _export(service, run_id, tmp_path / "runs")
            assert sorted(p.name for p in dest.iterdir()) == sorted(ARTIFACT_FILES)
            meta = json.loads((dest / "meta.json").read_text())
            assert meta["run_id"] == run_id
            assert meta["dataset"] == "iimb"
            assert "repro_version" in meta and "accel" in meta
            ledger = _read_ledger(dest)
            assert ledger["total"] == result.questions_asked
            assert sum(i["questions"] for i in ledger["items"]) == ledger["total"]
            assert all(i["scope"] == "loop" for i in ledger["items"])
            spans = [
                json.loads(line)
                for line in (dest / "trace.jsonl").read_text().splitlines()
            ]
            assert spans and all(s["run_id"] == run_id for s in spans)
            assert "loop.iteration" in {s["name"] for s in spans}
            metrics = json.loads((dest / "metrics.json").read_text())
            assert metrics["counters"]["crowd.questions_billed"] == (
                result.questions_asked
            )
            stored = json.loads((dest / "result.json").read_text())
            assert stored == result_to_doc(result)

    def test_partitioned_run_ledger_itemises_shards(self, tmp_path):
        with MatchingService(RunStore(tmp_path / "store.db")) as service:
            run_id = service.submit(
                "iimb", scale=0.2, workers=2, background=False
            )
            result = service.result(run_id)
            dest = _export(service, run_id, tmp_path / "runs")
            ledger = _read_ledger(dest)
            assert ledger["total"] == result.questions_asked
            assert all(i["scope"] == "shard" for i in ledger["items"])
            assert {i["kind"] for i in ledger["items"]} <= {"graph", "isolated"}

    def test_stream_run_ledger_itemises_units(self, tmp_path):
        with MatchingService(RunStore(tmp_path / "store.db")) as service:
            run_id = service.submit(
                "iimb", scale=0.2, stream=True, background=False
            )
            result = service.result(run_id)
            dest = _export(service, run_id, tmp_path / "runs")
            ledger = _read_ledger(dest)
            assert ledger["total"] == result.questions_asked
            assert all(i["scope"] == "stream_unit" for i in ledger["items"])
            assert "questions_new" in ledger
            metrics = json.loads((dest / "metrics.json").read_text())
            assert "stream.units.executed" in metrics["counters"]

    def test_pre_obs_run_falls_back(self, tmp_path):
        # A ledger row persisted before the obs layer existed (no run_obs
        # document) still exports the contract with a one-item ledger.
        store = RunStore(tmp_path / "store.db")
        run_id = store.create_run("iimb", 0, 0.2, None)
        record = store.get_run(run_id)
        dest = export_run_artifacts(store, run_id, root=tmp_path / "runs")
        assert sorted(p.name for p in dest.iterdir()) == sorted(
            set(ARTIFACT_FILES) - {"result.json"}
        )
        ledger = _read_ledger(dest)
        assert ledger == fallback_cost_ledger(record)
        store.close()

    def test_unknown_run_raises(self, tmp_path):
        store = RunStore(tmp_path / "store.db")
        with pytest.raises(KeyError):
            export_run_artifacts(store, "nope", root=tmp_path / "runs")
        store.close()

    def test_existing_export_refused_unless_forced(self, tmp_path):
        store = RunStore(tmp_path / "store.db")
        run_id = store.create_run("iimb", 0, 0.2, None)
        dest = export_run_artifacts(store, run_id, root=tmp_path / "runs")
        marker = dest / "meta.json"
        before = marker.read_text()
        marker.write_text('{"tampered": true}')
        with pytest.raises(FileExistsError, match="--force"):
            export_run_artifacts(store, run_id, root=tmp_path / "runs")
        # The refused export touched nothing.
        assert marker.read_text() == '{"tampered": true}'
        export_run_artifacts(store, run_id, root=tmp_path / "runs", force=True)
        assert marker.read_text() == before
        store.close()

    def test_empty_destination_directory_is_fine(self, tmp_path):
        store = RunStore(tmp_path / "store.db")
        run_id = store.create_run("iimb", 0, 0.2, None)
        (tmp_path / "runs" / run_id).mkdir(parents=True)
        dest = export_run_artifacts(store, run_id, root=tmp_path / "runs")
        assert (dest / "meta.json").exists()
        store.close()


class TestTracingDoesNotPerturbResults:
    def test_results_byte_identical_with_and_without_tracing(
        self, tmp_path, monkeypatch
    ):
        def run(store_path):
            with MatchingService(RunStore(store_path)) as service:
                run_id = service.submit(
                    "iimb", scale=0.2, error_rate=0.05, background=False
                )
                return service.result(run_id), service.store.load_run_obs(run_id)

        traced, traced_doc = run(tmp_path / "on.db")
        monkeypatch.setenv("REPRO_NO_TRACE", "1")
        untraced, untraced_doc = run(tmp_path / "off.db")
        assert json.dumps(result_to_doc(traced), sort_keys=True) == json.dumps(
            result_to_doc(untraced), sort_keys=True
        )
        assert traced_doc["trace"]
        assert untraced_doc["trace"] == []
        # Counters (the cost ledger's substrate) stay on either way.
        assert (
            untraced_doc["metrics"]["counters"]["crowd.questions_billed"]
            == untraced.questions_asked
        )


class TestBenchmarkDoc:
    def test_shape_matches_run_artifacts(self):
        registry = MetricsRegistry()
        registry.count("bench.iterations", 3)
        doc = benchmark_metrics_doc({"bench": "obs"}, registry.as_doc())
        assert doc["meta"] == {"bench": "obs"}
        assert doc["metrics"]["counters"]["bench.iterations"] == 3


class TestLoggingGate:
    def test_unset_env_keeps_library_silent(self, monkeypatch):
        monkeypatch.delenv("REPRO_LOG", raising=False)
        monkeypatch.setattr("repro.obs.logging._applied", None)
        get_logger("service")
        root = logging.getLogger("repro")
        assert all(isinstance(h, logging.NullHandler) for h in root.handlers)

    def test_env_attaches_stderr_handler_at_level(self, monkeypatch):
        monkeypatch.setenv("REPRO_LOG", "debug")
        monkeypatch.setattr("repro.obs.logging._applied", None)
        logger = get_logger("partition")
        assert logger.name == "repro.partition"
        root = logging.getLogger("repro")
        assert root.level == logging.DEBUG
        assert any(
            isinstance(h, logging.StreamHandler)
            and not isinstance(h, logging.NullHandler)
            for h in root.handlers
        )
        # Restore the silent default for the rest of the suite.
        monkeypatch.setenv("REPRO_LOG", "")
        monkeypatch.setattr("repro.obs.logging._applied", None)
        get_logger("partition")

    def test_bogus_level_falls_back_to_info(self, monkeypatch):
        monkeypatch.setenv("REPRO_LOG", "bananas")
        monkeypatch.setattr("repro.obs.logging._applied", None)
        get_logger("stream")
        assert logging.getLogger("repro").level == logging.INFO
        monkeypatch.setenv("REPRO_LOG", "")
        monkeypatch.setattr("repro.obs.logging._applied", None)
        get_logger("stream")
