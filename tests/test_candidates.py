"""Tests for candidate entity match generation (Section IV-B)."""

import pytest

from repro.core.candidates import generate_candidates
from repro.kb import KnowledgeBase


@pytest.fixture()
def kbs():
    kb1 = KnowledgeBase("kb1")
    kb1.add_entity("a1", label="New York City")
    kb1.add_entity("a2", label="Joan Cusack")
    kb1.add_entity("a3", label="Completely Different")
    kb1.add_entity("a4")  # no label
    kb2 = KnowledgeBase("kb2")
    kb2.add_entity("b1", label="New York City")
    kb2.add_entity("b2", label="John Cusack")
    kb2.add_entity("b3", label="Unrelated Thing")
    return kb1, kb2


def test_exact_label_pair_is_candidate_and_initial(kbs):
    kb1, kb2 = kbs
    result = generate_candidates(kb1, kb2, threshold=0.3)
    assert ("a1", "b1") in result.pairs
    assert ("a1", "b1") in result.initial_matches
    assert result.prior(("a1", "b1")) == 1.0


def test_partial_overlap_is_candidate_not_initial(kbs):
    kb1, kb2 = kbs
    result = generate_candidates(kb1, kb2, threshold=0.3)
    # "Joan Cusack" vs "John Cusack" share 'cusack' -> Jaccard 1/3
    assert ("a2", "b2") in result.pairs
    assert ("a2", "b2") not in result.initial_matches
    assert 0.0 < result.prior(("a2", "b2")) < 1.0


def test_disjoint_labels_not_candidates(kbs):
    kb1, kb2 = kbs
    result = generate_candidates(kb1, kb2, threshold=0.3)
    assert ("a3", "b1") not in result.pairs
    assert ("a3", "b3") not in result.pairs


def test_unlabeled_entities_never_candidates(kbs):
    kb1, kb2 = kbs
    result = generate_candidates(kb1, kb2, threshold=0.3)
    assert all(pair[0] != "a4" for pair in result.pairs)


def test_threshold_filters(kbs):
    kb1, kb2 = kbs
    low = generate_candidates(kb1, kb2, threshold=0.2)
    high = generate_candidates(kb1, kb2, threshold=0.9)
    assert low.pairs >= high.pairs
    assert ("a2", "b2") not in high.pairs


def test_priors_are_jaccard_similarities(kbs):
    kb1, kb2 = kbs
    result = generate_candidates(kb1, kb2, threshold=0.1)
    for pair, prior in result.priors.items():
        assert 0.0 < prior <= 1.0


def test_candidate_set_container_protocol(kbs):
    kb1, kb2 = kbs
    result = generate_candidates(kb1, kb2)
    assert len(result) == len(result.pairs)
    assert (("a1", "b1") in result) == (("a1", "b1") in result.pairs)
    assert result.prior(("zz", "zz")) == 0.0


def test_empty_kbs():
    result = generate_candidates(KnowledgeBase("e1"), KnowledgeBase("e2"))
    assert len(result) == 0
    assert not result.initial_matches


class TestUntokenizableExactLabels:
    """Regression: identical raw labels whose normalization is empty.

    Such pairs used to vanish from both M_c and M_in because token-based
    blocking never saw the entities; an exact raw-label equality must
    admit them with prior 1.0.
    """

    def test_both_sides_empty_tokens(self):
        kb1 = KnowledgeBase("kb1")
        kb1.add_entity("a1", label="???")
        kb2 = KnowledgeBase("kb2")
        kb2.add_entity("b1", label="???")
        result = generate_candidates(kb1, kb2)
        assert ("a1", "b1") in result.pairs
        assert ("a1", "b1") in result.initial_matches
        assert result.prior(("a1", "b1")) == 1.0

    def test_one_side_tokenizable_via_second_label(self):
        # b1's only label is untokenizable; a1 carries the same raw label
        # alongside a tokenizable one, so blocking sees a1 but not b1.
        kb1 = KnowledgeBase("kb1")
        kb1.add_entity("a1", label="Star")
        kb1.add_attribute_triple("a1", "rdfs:label", "★")
        kb2 = KnowledgeBase("kb2")
        kb2.add_entity("b1", label="★")
        result = generate_candidates(kb1, kb2)
        assert ("a1", "b1") in result.pairs
        assert ("a1", "b1") in result.initial_matches
        assert result.prior(("a1", "b1")) == 1.0

    def test_different_untokenizable_labels_stay_apart(self):
        kb1 = KnowledgeBase("kb1")
        kb1.add_entity("a1", label="???")
        kb2 = KnowledgeBase("kb2")
        kb2.add_entity("b1", label="!!!")
        result = generate_candidates(kb1, kb2)
        assert not result.pairs

    def test_tokenizable_exact_pairs_unchanged(self, kbs):
        kb1, kb2 = kbs
        result = generate_candidates(kb1, kb2)
        assert ("a1", "b1") in result.initial_matches
        assert result.prior(("a1", "b1")) == 1.0


def test_inverted_index_scores_match_naive_jaccard():
    """The one-pass intersection counting equals per-pair set algebra."""
    from repro.text.normalize import normalize_label
    from repro.text.similarity import jaccard

    words = ["alpha", "bravo", "charlie", "delta", "echo", "fox", "golf"]
    kb1, kb2 = KnowledgeBase("kb1"), KnowledgeBase("kb2")
    import random

    rng = random.Random(42)
    for i in range(40):
        kb1.add_entity(f"a{i}", label=" ".join(rng.sample(words, rng.randint(1, 4))))
        kb2.add_entity(f"b{i}", label=" ".join(rng.sample(words, rng.randint(1, 4))))
    threshold = 0.3
    result = generate_candidates(kb1, kb2, threshold=threshold)

    expected = {}
    for i in range(40):
        tokens1 = normalize_label(kb1.label(f"a{i}"))
        for j in range(40):
            tokens2 = normalize_label(kb2.label(f"b{j}"))
            sim = jaccard(tokens1, tokens2)
            if sim >= threshold:
                expected[(f"a{i}", f"b{j}")] = sim
    assert result.priors == pytest.approx(expected)
    assert result.pairs == set(expected)
