"""Tests for the ASCII plot helper."""

import pytest

from repro.eval.plots import ascii_plot


def test_basic_plot_contains_markers_and_legend():
    chart = ascii_plot(
        {"remp": [0.9, 0.95, 0.99], "maxpr": [0.5, 0.7, 0.8]},
        x_labels=["1", "2", "4"],
        title="demo",
    )
    assert "demo" in chart
    assert "o=maxpr" in chart
    assert "x=remp" in chart
    assert "o" in chart and "x" in chart


def test_constant_series_does_not_divide_by_zero():
    chart = ascii_plot({"flat": [0.5, 0.5, 0.5]}, x_labels=["a", "b", "c"])
    assert "flat" in chart


def test_mismatched_lengths_rejected():
    with pytest.raises(ValueError):
        ascii_plot({"s": [1.0, 2.0]}, x_labels=["a"])


def test_empty_series():
    assert ascii_plot({}, x_labels=[], title="t") == "t"


def test_height_respected():
    chart = ascii_plot({"s": [0.0, 1.0]}, x_labels=["a", "b"], height=5)
    plot_rows = [line for line in chart.splitlines() if "|" in line]
    assert len(plot_rows) == 5
