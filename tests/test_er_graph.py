"""Tests for ER graph construction (Definition 2)."""

import pytest

from repro.core.er_graph import build_er_graph, inverse_label, value_sets
from repro.kb import KnowledgeBase


@pytest.fixture()
def movie_kbs():
    """Two tiny movie KBs echoing Figure 1 of the paper."""
    kb1 = KnowledgeBase("yago")
    kb2 = KnowledgeBase("dbpedia")
    kb1.add_entity("y:Tim", label="Tim Robbins")
    kb1.add_entity("y:Cradle", label="Cradle Will Rock")
    kb1.add_entity("y:Player", label="The Player")
    kb1.add_relationship_triple("y:Tim", "directed", "y:Cradle")
    kb1.add_relationship_triple("y:Tim", "directed", "y:Player")
    kb2.add_entity("d:Tim", label="Tim Robbins")
    kb2.add_entity("d:Cradle", label="Cradle Will Rock")
    kb2.add_entity("d:Player", label="The Player")
    kb2.add_relationship_triple("d:Tim", "directedBy", "d:Cradle")
    kb2.add_relationship_triple("d:Tim", "directedBy", "d:Player")
    return kb1, kb2


@pytest.fixture()
def vertices():
    return {
        ("y:Tim", "d:Tim"),
        ("y:Cradle", "d:Cradle"),
        ("y:Player", "d:Player"),
        ("y:Cradle", "d:Player"),
    }


def test_forward_edges_from_relationship_pairs(movie_kbs, vertices):
    kb1, kb2 = movie_kbs
    graph = build_er_graph(kb1, kb2, vertices)
    groups = graph.neighbor_groups(("y:Tim", "d:Tim"))
    assert ("directed", "directedBy") in groups
    members = groups[("directed", "directedBy")]
    assert ("y:Cradle", "d:Cradle") in members
    assert ("y:Cradle", "d:Player") in members  # cross pair also a candidate
    assert ("y:Player", "d:Player") in members


def test_inverse_edges_allow_backward_propagation(movie_kbs, vertices):
    kb1, kb2 = movie_kbs
    graph = build_er_graph(kb1, kb2, vertices)
    groups = graph.neighbor_groups(("y:Cradle", "d:Cradle"))
    assert ("~directed", "~directedBy") in groups
    assert ("y:Tim", "d:Tim") in groups[("~directed", "~directedBy")]


def test_no_edges_to_non_vertices(movie_kbs):
    kb1, kb2 = movie_kbs
    graph = build_er_graph(kb1, kb2, {("y:Tim", "d:Tim")})
    assert graph.neighbor_groups(("y:Tim", "d:Tim")) == {}


def test_isolated_vertices(movie_kbs, vertices):
    kb1, kb2 = movie_kbs
    kb1.add_entity("y:Lonely", label="Lonely")
    kb2.add_entity("d:Lonely", label="Lonely")
    vertices = vertices | {("y:Lonely", "d:Lonely")}
    graph = build_er_graph(kb1, kb2, vertices)
    assert ("y:Lonely", "d:Lonely") in graph.isolated_vertices()
    assert ("y:Tim", "d:Tim") not in graph.isolated_vertices()


def test_connected_components(movie_kbs, vertices):
    kb1, kb2 = movie_kbs
    kb1.add_entity("y:Lonely")
    kb2.add_entity("d:Lonely")
    vertices = vertices | {("y:Lonely", "d:Lonely")}
    graph = build_er_graph(kb1, kb2, vertices)
    components = graph.connected_components()
    sizes = sorted(len(c) for c in components)
    assert sizes == [1, 4]


def test_iter_components_matches_connected_components(movie_kbs, vertices):
    kb1, kb2 = movie_kbs
    graph = build_er_graph(kb1, kb2, vertices)
    lazy = sorted(map(sorted, graph.iter_components()))
    eager = sorted(map(sorted, graph.connected_components()))
    assert lazy == eager
    assert set().union(*graph.iter_components()) == graph.vertices


def test_subgraph_over_whole_component_keeps_edges(movie_kbs, vertices):
    kb1, kb2 = movie_kbs
    graph = build_er_graph(kb1, kb2, vertices)
    (component,) = [c for c in graph.connected_components() if len(c) > 1]
    sub = graph.subgraph(component)
    assert sub.vertices == component
    assert sub.num_edges == sum(
        len(members)
        for vertex in component
        for members in graph.groups.get(vertex, {}).values()
    )


def test_subgraph_drops_outside_members(movie_kbs, vertices):
    kb1, kb2 = movie_kbs
    graph = build_er_graph(kb1, kb2, vertices)
    vertex = ("y:Tim", "d:Tim")
    sub = graph.subgraph({vertex})
    assert sub.vertices == {vertex}
    # All of the vertex's neighbors are outside, so no group survives.
    assert not sub.groups.get(vertex)
    assert sub.isolated_vertices() == {vertex}


def test_num_edges_counts_labels_separately(movie_kbs, vertices):
    kb1, kb2 = movie_kbs
    graph = build_er_graph(kb1, kb2, vertices)
    # forward edges: Tim->3 pairs; inverse edges: each movie pair -> Tim
    assert graph.num_forward_edges() == 3
    assert graph.num_edges > graph.num_forward_edges()


def test_degree(movie_kbs, vertices):
    kb1, kb2 = movie_kbs
    graph = build_er_graph(kb1, kb2, vertices)
    assert graph.degree(("y:Tim", "d:Tim")) == 3
    assert graph.degree(("y:Player", "d:Player")) == 1


def test_iter_edges_consistent_with_groups(movie_kbs, vertices):
    kb1, kb2 = movie_kbs
    graph = build_er_graph(kb1, kb2, vertices)
    edges = list(graph.iter_edges())
    assert len(edges) == graph.num_edges
    for source, label, target in edges:
        assert target in graph.neighbor_groups(source)[label]


def test_inverse_label_roundtrip():
    assert inverse_label(("a", "b")) == ("~a", "~b")
    assert inverse_label(("~a", "~b")) == ("a", "b")


def test_value_sets_directionality(movie_kbs):
    kb1, kb2 = movie_kbs
    n1, n2 = value_sets(kb1, kb2, "y:Tim", "d:Tim", ("directed", "directedBy"))
    assert n1 == {"y:Cradle", "y:Player"}
    assert n2 == {"d:Cradle", "d:Player"}
    s1, s2 = value_sets(kb1, kb2, "y:Cradle", "d:Cradle", ("~directed", "~directedBy"))
    assert s1 == {"y:Tim"}
    assert s2 == {"d:Tim"}
