"""Integration tests reproducing the paper's own worked examples.

* The Figure 1 ER-graph fragment: labeling (y:Joan, d:Joan) a match should
  let Remp infer the birthplace pair (y:NYC-analog, d:NYC-analog) — a match
  between *different entity types*, which is the paper's motivating case.
* The Section V-B numeric example: with ε₁ = ε₂ = 0.9 and uniform priors,
  Pr[Cradle ≃ Cradle] ≈ 0.99 and Pr[Cradle ≃ Player] ≈ 0.01.
"""

import pytest

from repro.core import Remp, RempConfig
from repro.core.consistency import Consistency
from repro.core.propagation import neighbor_marginals
from repro.crowd import CrowdPlatform
from repro.kb import KnowledgeBase


@pytest.fixture()
def figure1_kbs():
    """The Figure 1 fragment: persons, movies and cities in two KBs."""
    y = KnowledgeBase("yago")
    d = KnowledgeBase("dbpedia")
    # persons
    y.add_entity("y:Joan", label="Joan Cusack")
    y.add_entity("y:John", label="John Cusack")
    y.add_entity("y:Tim", label="Tim Robbins")
    d.add_entity("d:Joan", label="Joan Cusack")
    d.add_entity("d:John", label="John Cusack")
    d.add_entity("d:Tim", label="Tim Robbins")
    # movies
    y.add_entity("y:Cradle", label="Cradle Will Rock")
    y.add_entity("y:Player", label="The Player")
    d.add_entity("d:Cradle", label="Cradle Will Rock")
    d.add_entity("d:Player", label="The Player")
    # cities
    y.add_entity("y:NYC", label="New York City")
    y.add_entity("y:Evanston", label="Evanston")
    d.add_entity("d:NYC", label="New York City")
    d.add_entity("d:Evanston", label="Evanston")
    # relationships (y: wasBornIn / d: birthPlace are cross-named)
    y.add_relationship_triple("y:Joan", "wasBornIn", "y:NYC")
    d.add_relationship_triple("d:Joan", "birthPlace", "d:NYC")
    y.add_relationship_triple("y:John", "wasBornIn", "y:Evanston")
    d.add_relationship_triple("d:John", "birthPlace", "d:Evanston")
    y.add_relationship_triple("y:Tim", "wasBornIn", "y:NYC")
    d.add_relationship_triple("d:Tim", "birthPlace", "d:NYC")
    y.add_relationship_triple("y:Joan", "actedIn", "y:Cradle")
    d.add_relationship_triple("d:Joan", "actedIn", "d:Cradle")
    y.add_relationship_triple("y:John", "actedIn", "y:Cradle")
    d.add_relationship_triple("d:John", "actedIn", "d:Cradle")
    y.add_relationship_triple("y:John", "actedIn", "y:Player")
    d.add_relationship_triple("d:John", "actedIn", "d:Player")
    y.add_relationship_triple("y:Tim", "directedBy", "y:Cradle")
    d.add_relationship_triple("d:Tim", "directedBy", "d:Cradle")
    gold = {
        ("y:Joan", "d:Joan"), ("y:John", "d:John"), ("y:Tim", "d:Tim"),
        ("y:Cradle", "d:Cradle"), ("y:Player", "d:Player"),
        ("y:NYC", "d:NYC"), ("y:Evanston", "d:Evanston"),
    }
    return y, d, gold


def test_figure1_cross_type_inference(figure1_kbs):
    y, d, gold = figure1_kbs
    platform = CrowdPlatform.with_oracle(gold)
    result = Remp(RempConfig(mu=1)).run(y, d, platform)
    # A handful of person labels resolves movies AND cities.
    assert ("y:NYC", "d:NYC") in result.matches
    assert ("y:Cradle", "d:Cradle") in result.matches
    assert result.questions_asked < len(gold)
    # Cross-type pairs were inferred, not asked.
    asked = {q for record in result.history for q in record.questions}
    inferred_types = {p for p in result.inferred_matches if p not in asked}
    assert inferred_types


def test_section5b_numeric_example():
    """ε₁ = ε₂ = 0.9, priors 0.5: Pr[Cradle≃Cradle] ≈ 0.99, cross ≈ 0.01."""
    # Figure 1's ER graph contains exactly these three candidate pairs for
    # Tim's movies (the fourth cross pair is not a vertex).
    group = {
        ("y:Cradle", "d:Cradle"),
        ("y:Player", "d:Player"),
        ("y:Cradle", "d:Player"),
    }
    priors = {p: 0.5 for p in group}
    marginals = neighbor_marginals(group, priors, Consistency(0.9, 0.9, 10))
    assert marginals[("y:Cradle", "d:Cradle")] == pytest.approx(0.98, abs=0.02)
    assert marginals[("y:Player", "d:Player")] == pytest.approx(0.98, abs=0.02)
    assert marginals[("y:Cradle", "d:Player")] == pytest.approx(0.01, abs=0.02)


def test_figure1_non_match_not_inferred(figure1_kbs):
    """(y:John, d:Joan)-style cross pairs must not survive as matches."""
    y, d, gold = figure1_kbs
    platform = CrowdPlatform.with_oracle(gold)
    result = Remp().run(y, d, platform)
    assert ("y:John", "d:Joan") not in result.matches
    assert ("y:Joan", "d:John") not in result.matches
    assert ("y:Cradle", "d:Player") not in result.matches
