"""Tests for the crowd simulation substrate."""

import pytest

from repro.crowd import CrowdPlatform, Oracle, SimulatedWorker


class TestWorkers:
    def test_oracle_always_truthful(self):
        oracle = Oracle()
        assert oracle.answer(("a", "b"), True) is True
        assert oracle.answer(("a", "b"), False) is False
        assert oracle.quality == 1.0

    def test_simulated_worker_error_rate(self):
        worker = SimulatedWorker("w", error_rate=0.2, seed=42)
        n = 5000
        wrong = sum(1 for _ in range(n) if worker.answer(("a", "b"), True) is False)
        assert 0.17 < wrong / n < 0.23

    def test_zero_error_worker_is_perfect(self):
        worker = SimulatedWorker("w", error_rate=0.0, seed=1)
        assert all(worker.answer(("a", "b"), True) for _ in range(100))

    def test_quality_complements_error_rate(self):
        assert SimulatedWorker("w", 0.15).quality == pytest.approx(0.85)

    def test_invalid_error_rate_rejected(self):
        with pytest.raises(ValueError):
            SimulatedWorker("w", error_rate=1.0)
        with pytest.raises(ValueError):
            SimulatedWorker("w", error_rate=-0.1)


class TestCrowdPlatform:
    @pytest.fixture()
    def platform(self):
        truth = {("a1", "b1"), ("a2", "b2")}
        return CrowdPlatform.with_simulated_workers(
            truth, num_workers=20, error_rate=0.1, workers_per_question=5, seed=0
        )

    def test_ask_returns_redundant_labels(self, platform):
        records = platform.ask(("a1", "b1"))
        assert len(records) == 5
        assert len({r.worker_id for r in records}) == 5

    def test_billing_counts_distinct_questions(self, platform):
        platform.ask(("a1", "b1"))
        platform.ask(("a1", "b1"))  # cached, free
        platform.ask(("a9", "b9"))
        assert platform.questions_asked == 2
        assert platform.labels_collected == 10

    def test_label_reuse_is_stable(self, platform):
        first = platform.ask(("a1", "b1"))
        second = platform.ask(("a1", "b1"))
        assert first is second

    def test_majority_label_oracle(self):
        platform = CrowdPlatform.with_oracle({("a", "b")})
        assert platform.majority_label(("a", "b")) is True
        assert platform.majority_label(("a", "x")) is False

    def test_majority_label_mostly_correct_with_low_error(self, platform):
        correct = sum(
            1 for i in range(50) if platform.majority_label((f"a{i}", f"b{i}")) is (i in (1, 2))
        )
        assert correct >= 45

    def test_reset_billing_keeps_cache(self, platform):
        records = platform.ask(("a1", "b1"))
        platform.reset_billing()
        assert platform.questions_asked == 0
        assert platform.ask(("a1", "b1")) is records
        assert platform.questions_asked == 0  # cached question not re-billed

    def test_redundancy_capped_by_pool(self):
        platform = CrowdPlatform(
            [Oracle("o1"), Oracle("o2")], truth=set(), workers_per_question=5
        )
        assert len(platform.ask(("x", "y"))) == 2

    def test_empty_pool_rejected(self):
        with pytest.raises(ValueError):
            CrowdPlatform([], truth=set())

    def test_batch_ask(self, platform):
        result = platform.ask_batch([("a1", "b1"), ("a2", "b2")])
        assert set(result) == {("a1", "b1"), ("a2", "b2")}
        assert platform.questions_asked == 2
