"""Align two movie knowledge bases with noisy simulated crowd workers.

The IMDB-YAGO-like profile from the dataset suite: renamed schemas
(``actedIn`` vs ``performedIn``), noisy labels and a large share of
isolated writer entities.  The script compares three worker error rates
and shows how error-tolerant truth inference keeps the result stable —
the single-dataset version of the paper's Figure 3.

Run with::

    python examples/movie_alignment.py
"""

from repro.core import Remp
from repro.crowd import CrowdPlatform
from repro.datasets import load_dataset
from repro.eval import evaluate_matches
from repro.kb import describe


def main() -> None:
    bundle = load_dataset("imdb_yago", seed=7, scale=0.5)
    print("KB1:", describe(bundle.kb1).as_row())
    print("KB2:", describe(bundle.kb2).as_row())
    print("Gold matches:", len(bundle.gold_matches))
    print()

    remp = Remp()
    state = remp.prepare(bundle.kb1, bundle.kb2)
    print(f"Candidates: {len(state.candidates.pairs)}  retained: {len(state.retained)}")
    print("Attribute matches found:")
    for match in state.attribute_matches:
        print(f"  {match.attr1:16s} <-> {match.attr2:22s} sim={match.similarity:.2f}")
    print()

    for error_rate in (0.05, 0.15, 0.25):
        platform = CrowdPlatform.with_simulated_workers(
            bundle.gold_matches,
            num_workers=50,
            error_rate=error_rate,
            workers_per_question=5,
            seed=1,
        )
        result = remp.run(bundle.kb1, bundle.kb2, platform, state=state)
        quality = evaluate_matches(result.matches, bundle.gold_matches)
        print(
            f"error_rate={error_rate:.2f}: {quality.as_row()}  "
            f"#Q={result.questions_asked} loops={result.num_loops}"
        )


if __name__ == "__main__":
    main()
