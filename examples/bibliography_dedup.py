"""Deduplicate two bibliographic databases (the DBLP-ACM scenario).

Publications carry titles, years and venues; authors exist only through
authorship triples.  Remp labels a few publication pairs and lets the
single ``hasAuthor`` relationship propagate the matches to author pairs —
cross-type inference that transitivity- and monotonicity-based systems
cannot perform.  The script contrasts Remp's question count with the
number of matches it returns, then shows how PARIS and SiGMa fare from
the same evidence without a crowd.

Run with::

    python examples/bibliography_dedup.py
"""

import random

from repro.baselines import Paris, SiGMa
from repro.core import Remp
from repro.crowd import CrowdPlatform
from repro.datasets import load_dataset
from repro.eval import evaluate_matches


def main() -> None:
    bundle = load_dataset("dblp_acm", seed=3, scale=0.8)
    pubs = sum(1 for e in bundle.kb1.entities if e.startswith("x:publication"))
    authors = sum(1 for e in bundle.kb1.entities if e.startswith("x:author"))
    print(f"KB1: {pubs} publications, {authors} authors; gold matches: {len(bundle.gold_matches)}")
    print()

    remp = Remp()
    state = remp.prepare(bundle.kb1, bundle.kb2)
    platform = CrowdPlatform.with_simulated_workers(
        bundle.gold_matches, num_workers=40, error_rate=0.05, seed=2
    )
    result = remp.run(bundle.kb1, bundle.kb2, platform, state=state)
    quality = evaluate_matches(result.matches, bundle.gold_matches)
    print(f"Remp: {quality.as_row()}")
    print(
        f"  asked {result.questions_asked} questions; "
        f"{len(result.inferred_matches)} matches inferred through authorship"
    )

    # Cross-type propagation in action: pick an inferred author match.
    author_matches = [
        pair for pair in result.inferred_matches if pair[0].startswith("x:author")
    ]
    if author_matches:
        example = sorted(author_matches)[0]
        print(f"  e.g. inferred author match {example} without asking about it")
    print()

    # The collective, crowd-free competitors with 40% trusted seeds.
    rng = random.Random(0)
    seeds = set(rng.sample(sorted(bundle.gold_matches), int(0.4 * len(bundle.gold_matches))))
    for system in (Paris(), SiGMa()):
        baseline = system.run(state, seeds)
        q = evaluate_matches(baseline.matches, bundle.gold_matches)
        print(f"{baseline.name} with 40% seeds: {q.as_row()}")


if __name__ == "__main__":
    main()
