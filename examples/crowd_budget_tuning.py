"""Explore the cost/latency/quality trade-offs of the crowdsourcing loop.

Three knobs matter in practice:

* the **budget** — the hard cap on paid questions (Definition 1);
* **µ** — questions per human–machine loop (latency vs over-asking);
* the **selection strategy** — Remp's benefit function vs the MaxInf and
  MaxPr heuristics.

This script sweeps each knob on the DBpedia-YAGO-like profile and prints
compact tables, mirroring the paper's Table VII and Figure 5 analyses.

Run with::

    python examples/crowd_budget_tuning.py
"""

from repro.core import Remp, RempConfig
from repro.crowd import CrowdPlatform
from repro.datasets import load_dataset
from repro.eval import evaluate_matches


def main() -> None:
    bundle = load_dataset("dbpedia_yago", seed=5, scale=0.4)
    state = Remp().prepare(bundle.kb1, bundle.kb2)
    print(f"Gold matches: {len(bundle.gold_matches)}, retained pairs: {len(state.retained)}")

    print("\n-- budget sweep (mu=10) --")
    for budget in (10, 25, 50, 100):
        config = RempConfig(budget=budget)
        platform = CrowdPlatform.with_oracle(bundle.gold_matches)
        result = Remp(config).run(bundle.kb1, bundle.kb2, platform, state=state)
        quality = evaluate_matches(result.matches, bundle.gold_matches)
        print(f"  budget={budget:4d}: F1={quality.f1:6.1%} #Q={result.questions_asked}")

    print("\n-- mu sweep (latency vs questions) --")
    for mu in (1, 5, 10, 20):
        config = RempConfig(mu=mu)
        platform = CrowdPlatform.with_oracle(bundle.gold_matches)
        result = Remp(config).run(bundle.kb1, bundle.kb2, platform, state=state)
        quality = evaluate_matches(result.matches, bundle.gold_matches)
        print(
            f"  mu={mu:2d}: F1={quality.f1:6.1%} #Q={result.questions_asked} "
            f"loops={result.num_loops}"
        )

    print("\n-- selection strategy (budget=30, mu=1) --")
    for strategy in ("remp", "maxinf", "maxpr"):
        config = RempConfig(mu=1, budget=30, isolated_seed_questions=0)
        platform = CrowdPlatform.with_oracle(bundle.gold_matches)
        result = Remp(config).run(
            bundle.kb1, bundle.kb2, platform, strategy=strategy, state=state
        )
        quality = evaluate_matches(result.matches, bundle.gold_matches)
        print(f"  {strategy:7s}: F1={quality.f1:6.1%} #Q={result.questions_asked}")


if __name__ == "__main__":
    main()
