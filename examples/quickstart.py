"""Quickstart: resolve two small knowledge bases with Remp.

Builds two toy movie KBs by hand, runs the full crowdsourced collective ER
pipeline with a perfect oracle standing in for the crowd, and prints what
was asked, inferred and classified.

Run with::

    python examples/quickstart.py
"""

from repro.core import Remp
from repro.crowd import CrowdPlatform
from repro.eval import evaluate_matches
from repro.kb import KnowledgeBase


def build_yago_like() -> KnowledgeBase:
    kb = KnowledgeBase("yago-mini")
    kb.add_entity("y:TimRobbins", label="Tim Robbins")
    kb.add_attribute_triple("y:TimRobbins", "birth_date", "1958-10-16")
    kb.add_entity("y:Cradle", label="Cradle Will Rock")
    kb.add_attribute_triple("y:Cradle", "release", "1999-12-08")
    kb.add_entity("y:Player", label="The Player")
    kb.add_attribute_triple("y:Player", "release", "1992-04-03")
    kb.add_entity("y:JoanCusack", label="Joan Cusack")
    kb.add_attribute_triple("y:JoanCusack", "birth_date", "1962-10-11")
    kb.add_entity("y:Evanston", label="Evanston Illinois")
    kb.add_relationship_triple("y:TimRobbins", "directed", "y:Cradle")
    kb.add_relationship_triple("y:TimRobbins", "actedIn", "y:Player")
    kb.add_relationship_triple("y:JoanCusack", "actedIn", "y:Cradle")
    kb.add_relationship_triple("y:JoanCusack", "wasBornIn", "y:Evanston")
    return kb


def build_dbpedia_like() -> KnowledgeBase:
    kb = KnowledgeBase("dbpedia-mini")
    kb.add_entity("d:Tim_Robbins", label="Tim Robbins")
    kb.add_attribute_triple("d:Tim_Robbins", "born", "1958-10-16")
    kb.add_entity("d:Cradle_Will_Rock", label="Cradle Will Rock")
    kb.add_attribute_triple("d:Cradle_Will_Rock", "released", "1999-12-08")
    kb.add_entity("d:The_Player", label="The Player")
    kb.add_attribute_triple("d:The_Player", "released", "1992-04-03")
    kb.add_entity("d:Joan_Cusack", label="Joan Cusack")
    kb.add_attribute_triple("d:Joan_Cusack", "born", "1962-10-11")
    kb.add_entity("d:Evanston", label="Evanston Illinois")
    kb.add_relationship_triple("d:Tim_Robbins", "director", "d:Cradle_Will_Rock")
    kb.add_relationship_triple("d:Tim_Robbins", "starring", "d:The_Player")
    kb.add_relationship_triple("d:Joan_Cusack", "starring", "d:Cradle_Will_Rock")
    kb.add_relationship_triple("d:Joan_Cusack", "birthPlace", "d:Evanston")
    return kb


def main() -> None:
    kb1 = build_yago_like()
    kb2 = build_dbpedia_like()

    gold = {
        ("y:TimRobbins", "d:Tim_Robbins"),
        ("y:Cradle", "d:Cradle_Will_Rock"),
        ("y:Player", "d:The_Player"),
        ("y:JoanCusack", "d:Joan_Cusack"),
        ("y:Evanston", "d:Evanston"),
    }

    # A crowd platform; here the "crowd" is a perfect oracle answering from
    # the gold standard.  Swap in CrowdPlatform.with_simulated_workers to
    # see error-tolerant truth inference at work.
    platform = CrowdPlatform.with_oracle(gold)

    remp = Remp()
    result = remp.run(kb1, kb2, platform)

    print("Questions asked:", result.questions_asked)
    for record in result.history:
        print(f"  loop {record.loop_index}: asked {record.questions}")
    print("Labeled matches: ", sorted(result.labeled_matches))
    print("Inferred matches:", sorted(result.inferred_matches))
    print("Isolated matches:", sorted(result.isolated_matches))
    print()
    quality = evaluate_matches(result.matches, gold)
    print("Quality:", quality.as_row())


if __name__ == "__main__":
    main()
