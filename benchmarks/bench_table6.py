"""Bench for Table VI: propagation-only Remp vs PARIS vs SiGMa over seeds."""

from repro.experiments import table6

SCALE = 0.3


def test_table6(benchmark, show):
    result = benchmark.pedantic(
        table6.run,
        kwargs={"scale": SCALE, "seed": 0, "repetitions": 3},
        rounds=1,
        iterations=1,
    )
    show(result)
    assert len(result.rows) == 4 * 3
    for dataset, scores in result.raw.items():
        # Shape check: everyone improves with more seeds.
        for name in ("Remp", "PARIS", "SiGMa"):
            assert scores[name][-1] >= scores[name][0] - 0.05
