"""Ablation bench: base Remp vs the hybrid extension (DESIGN.md §6).

The hybrid adds entity-local partial-order inference to every crowd label
(the paper's stated future work); the bench reports both systems' F1 and
question counts side by side.
"""

from repro.core import Remp
from repro.core.hybrid import HybridRemp
from repro.crowd import CrowdPlatform
from repro.datasets import load_dataset
from repro.eval import evaluate_matches

SCALE = 0.4


def test_hybrid_vs_base(benchmark):
    def run_both():
        rows = {}
        for name in ("iimb", "dblp_acm"):
            bundle = load_dataset(name, seed=0, scale=SCALE)
            for label, system in (("base", Remp()), ("hybrid", HybridRemp())):
                platform = CrowdPlatform.with_oracle(bundle.gold_matches)
                result = system.run(bundle.kb1, bundle.kb2, platform)
                quality = evaluate_matches(result.matches, bundle.gold_matches)
                rows[(name, label)] = (quality.f1, result.questions_asked)
        return rows

    rows = benchmark.pedantic(run_both, rounds=1, iterations=1)
    print()
    for (dataset, label), (f1, questions) in sorted(rows.items()):
        print(f"  {dataset:10s} {label:6s} F1={f1:6.1%} #Q={questions}")
    for dataset in ("iimb", "dblp_acm"):
        assert rows[(dataset, "hybrid")][0] > rows[(dataset, "base")][0] - 0.1
