"""Bench for Table V: partial-order pruning statistics at k = 4."""

from repro.experiments import table5


def test_table5(benchmark, show):
    result = benchmark.pedantic(
        table5.run, kwargs={"scale": 1.0, "seed": 0}, rounds=1, iterations=1
    )
    show(result)
    assert len(result.rows) == 4
    for dataset, values in result.raw.items():
        # Pair completeness survives pruning almost unchanged.
        assert values["pc_retained"] >= values["pc_candidates"] - 0.05
        # The partial order is almost perfect (error rate a few percent).
        assert values["error_rate"] < 0.1
    # D-Y has the weakest pair completeness (missing labels), as in the paper.
    assert result.raw["dbpedia_yago"]["pc_candidates"] == min(
        v["pc_candidates"] for v in result.raw.values()
    )
