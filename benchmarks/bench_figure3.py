"""Bench for Figure 3: robustness to worker error rates 0.05/0.15/0.25."""

from repro.experiments import figure3

SCALE = 0.3


def test_figure3(benchmark, show):
    result = benchmark.pedantic(
        figure3.run, kwargs={"scale": SCALE, "seed": 0}, rounds=1, iterations=1
    )
    show(result)
    assert len(result.rows) == 4 * 3
    # Shape check: Remp F1 stays reasonably stable across error rates.
    for dataset in ("iimb", "dblp_acm"):
        f1s = [result.raw[(dataset, e)]["Remp"][0] for e in (0.05, 0.15, 0.25)]
        assert max(f1s) - min(f1s) < 0.25
