"""Bench: pairwise vs multi-item question-interface cost (Related Work).

CrowdER-style packing amortizes the per-question fee across the entities a
task shows; on star-shaped pair sets (one entity vs many candidates — the
common blocking output) the saving approaches k/2.
"""

import random

from repro.crowd.interfaces import multi_item_cost, pack_questions, pairwise_cost


def _star_pairs(num_stars=30, leaves=6, seed=0):
    rng = random.Random(seed)
    pairs = []
    for star in range(num_stars):
        center = f"c{star}"
        for leaf in range(leaves):
            pairs.append((center, f"l{star}_{leaf}"))
    rng.shuffle(pairs)
    return pairs


def test_multi_item_packing(benchmark):
    pairs = _star_pairs()
    questions = benchmark(pack_questions, pairs, 6)
    assert all(len(q.entities) <= 6 for q in questions)
    saving = 1 - len(questions) / pairwise_cost(pairs)
    print(f"\n  pairwise cost={pairwise_cost(pairs)} multi-item cost={len(questions)} "
          f"saving={saving:.0%}")
    assert len(questions) < pairwise_cost(pairs)


def test_cost_crossover_with_k(benchmark):
    pairs = _star_pairs(num_stars=15, leaves=5)

    def sweep():
        return {k: multi_item_cost(pairs, k) for k in (2, 3, 4, 6, 8)}

    costs = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    for k, cost in costs.items():
        print(f"  k={k}: {cost} questions (pairwise {pairwise_cost(pairs)})")
    # Larger questions are never more expensive.
    ks = sorted(costs)
    assert all(costs[b] <= costs[a] for a, b in zip(ks, ks[1:]))
