"""Bench for Figure 5: Remp vs MaxInf vs MaxPr question-selection curves."""

from repro.experiments import figure5

SCALE = 0.3


def test_figure5(benchmark, show):
    result = benchmark.pedantic(
        figure5.run,
        kwargs={"scale": SCALE, "seed": 0, "budgets": (1, 2, 4, 8, 16, 32)},
        rounds=1,
        iterations=1,
    )
    show(result)
    assert len(result.rows) == 4 * 3
    # Shape check: at the final budget, Remp's benefit function is at least
    # as good as MaxPr on every dataset (MaxPr ignores inference power).
    wins = sum(
        1
        for series in result.raw.values()
        if series["remp"][-1] >= series["maxpr"][-1] - 1e-9
    )
    assert wins >= 3
