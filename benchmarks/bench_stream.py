"""Benchmark: incremental KB-delta update vs full re-prepare + re-run.

A small delta (one movie renamed in one of ``REPRO_BENCH_CLUSTERS``
clusters — well under 5% of the candidate pairs) is applied to a
clustered world.  The *full* path re-prepares the post-delta KBs and
re-runs every unit; the *incremental* path splices the cached prepared
state (``incremental_prepare``) and re-runs only the dirty cluster,
restoring every clean unit's recorded outcome.  Both must produce
byte-identical results; at ≥ 12 clusters the incremental path must be
≥ 3x faster (self-gating, like ``bench_partition``).

Scale knobs (environment):

``REPRO_BENCH_CLUSTERS``  number of clusters/components (default 24)
``REPRO_BENCH_MOVIES``    movies per cluster (default 12)

CI runs this file at tiny scale (see the workflow's stream-smoke step),
where the speedup assertion self-gates and only correctness is checked.
"""

import json
import os
import time

import pytest

from repro.core import Remp, RempConfig
from repro.datasets import clustered_bundle
from repro.obs import append_bench_history
from repro.partition import CrowdSpec
from repro.store.serialize import result_to_doc
from repro.stream import DeltaOp, KBDelta, incremental_prepare, StreamRunner

CLUSTERS = int(os.environ.get("REPRO_BENCH_CLUSTERS", "24"))
MOVIES = int(os.environ.get("REPRO_BENCH_MOVIES", "12"))
LABEL_NOISE = 0.5
ERROR_RATE = 0.05
SEED = 0


def _bundle():
    return clustered_bundle(
        num_clusters=CLUSTERS,
        movies_per_cluster=MOVIES,
        seed=SEED,
        label_noise=LABEL_NOISE,
    )


def _delta(bundle) -> KBDelta:
    """Rename one movie of cluster 0 in both KBs (< 5% of the world)."""
    m1, m2 = "x:m0_1", "y:m0_1"
    new_label = "studio000 film renamed001"
    ops = []
    old1, old2 = bundle.kb1.label(m1), bundle.kb2.label(m2)
    if old1 is not None:
        ops.append(DeltaOp("remove_attribute", 1, m1, "rdfs:label", old1))
    if old2 is not None:
        ops.append(DeltaOp("remove_attribute", 2, m2, "rdfs:label", old2))
    ops.append(DeltaOp("add_attribute", 1, m1, "rdfs:label", new_label))
    ops.append(DeltaOp("add_attribute", 2, m2, "rdfs:label", new_label))
    return KBDelta(ops=tuple(ops))


def _crowd(truth):
    return CrowdSpec(truth=truth, error_rate=ERROR_RATE, seed=SEED)


def _full_update(bundle, delta):
    """The naive path: re-prepare the post-delta KBs, re-run everything."""
    kb1, kb2 = delta.apply(bundle.kb1, bundle.kb2)
    state = Remp(RempConfig(), seed=SEED).prepare(kb1, kb2)
    runner = StreamRunner(RempConfig(), seed=SEED, workers=1)
    return runner.run_full(state, _crowd(bundle.gold_matches))


def _incremental_update(base_state, base_records, bundle, delta):
    """The stream path: splice the cached state, re-run dirty units only."""
    prepared = incremental_prepare(base_state, delta, RempConfig())
    runner = StreamRunner(RempConfig(), seed=SEED, workers=1)
    return runner.run_incremental(
        prepared.state,
        _crowd(bundle.gold_matches),
        dirty=prepared.changed,
        reuse=base_records,
    )


@pytest.fixture(scope="module")
def baseline():
    """The pre-delta world, its prepared state and recorded unit outcomes."""
    bundle = _bundle()
    state = Remp(RempConfig(), seed=SEED).prepare(bundle.kb1, bundle.kb2)
    outcome = StreamRunner(RempConfig(), seed=SEED, workers=1).run_full(
        state, _crowd(bundle.gold_matches)
    )
    return bundle, state, outcome.records


def test_stream_full_update(benchmark, baseline):
    bundle, _, _ = baseline
    delta = _delta(bundle)
    outcome = benchmark.pedantic(
        _full_update, args=(bundle, delta), rounds=1, iterations=1
    )
    assert outcome.result.matches


def test_stream_incremental_update(benchmark, baseline):
    bundle, state, records = baseline
    delta = _delta(bundle)
    outcome = benchmark.pedantic(
        _incremental_update, args=(state, records, bundle, delta), rounds=1, iterations=1
    )
    assert outcome.result.matches
    assert outcome.reused_keys


def test_stream_speedup(baseline):
    """Incremental vs full wall clock on a ≤ 5% delta; ≥ 3x at scale."""
    bundle, state, records = baseline
    delta = _delta(bundle)

    start = time.perf_counter()
    full = _full_update(bundle, delta)
    t_full = time.perf_counter() - start
    start = time.perf_counter()
    incremental = _incremental_update(state, records, bundle, delta)
    t_incremental = time.perf_counter() - start

    assert json.dumps(result_to_doc(incremental.result), sort_keys=True) == json.dumps(
        result_to_doc(full.result), sort_keys=True
    )
    assert incremental.reused_keys
    speedup = t_full / t_incremental if t_incremental else float("inf")
    reused = len(incremental.reused_keys)
    total = len(incremental.records)
    print(
        f"\n{CLUSTERS} clusters x {MOVIES} movies, 1-movie rename: "
        f"full {t_full:.2f}s, incremental {t_incremental:.2f}s "
        f"-> {speedup:.2f}x speedup ({reused}/{total} units reused, "
        f"{incremental.questions_new} newly billed questions)"
    )
    append_bench_history(
        "stream",
        meta={
            "bench": "stream",
            "clusters": CLUSTERS,
            "movies": MOVIES,
            "reused": reused,
            "units": total,
            "speedup": round(speedup, 3),
        },
        stages={
            "stream.full_update": t_full,
            "stream.incremental_update": t_incremental,
        },
    )
    if CLUSTERS >= 12:
        assert speedup >= 3.0, (
            f"expected >= 3x at {CLUSTERS} clusters, measured {speedup:.2f}x"
        )
    else:
        pytest.skip(
            f"speedup assertion needs >= 12 clusters (have {CLUSTERS}); "
            f"measured {speedup:.2f}x"
        )
