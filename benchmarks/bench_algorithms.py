"""Micro-benchmarks for the core algorithms (not tied to one paper artifact)."""

import random

import numpy as np

from repro.assignment import hungarian_min
from repro.core import Remp
from repro.core.discovery import dijkstra_inferred_sets
from repro.core.propagation import ProbabilisticERGraph
from repro.core.pruning import partial_order_pruning
from repro.core.selection import greedy_question_selection
from repro.datasets import load_dataset
from repro.ml import RandomForestClassifier


def test_hungarian_40x40(benchmark):
    rng = np.random.default_rng(0)
    cost = rng.uniform(0, 1, size=(40, 40)).tolist()
    pairs = benchmark(hungarian_min, cost)
    assert len(pairs) == 40


def test_pruning_imdb_yago(benchmark):
    bundle = load_dataset("imdb_yago", seed=0, scale=0.5)
    state = Remp().prepare(bundle.kb1, bundle.kb2)
    retained = benchmark(
        partial_order_pruning, state.candidates.pairs, state.vector_index, 4
    )
    assert retained <= state.candidates.pairs


def _random_prob_graph(n=300, edges=1200, seed=0):
    rng = random.Random(seed)
    graph = ProbabilisticERGraph()
    for _ in range(edges):
        i, j = rng.randrange(n), rng.randrange(n)
        if i != j:
            graph.set_edge((f"v{i}", ""), (f"v{j}", ""), rng.uniform(0.9, 1.0))
    return graph


def test_discovery_dijkstra(benchmark):
    graph = _random_prob_graph()
    sources = [(f"v{i}", "") for i in range(300)]
    sets = benchmark(dijkstra_inferred_sets, graph, sources, 0.9)
    assert len(sets) == 300


def test_greedy_selection(benchmark):
    graph = _random_prob_graph()
    sources = [(f"v{i}", "") for i in range(300)]
    inferred = dijkstra_inferred_sets(graph, sources, 0.9)
    priors = {s: 0.7 for s in sources}
    selected = benchmark(greedy_question_selection, sources, inferred, priors, 10)
    assert 0 < len(selected) <= 10


def test_random_forest_fit(benchmark):
    rng = np.random.default_rng(1)
    X = rng.uniform(0, 1, size=(300, 5))
    y = (X[:, 0] + X[:, 3] > 1.0).astype(float)
    model = benchmark(
        lambda: RandomForestClassifier(n_estimators=20, seed=0).fit(X, y)
    )
    assert model.is_fitted
