"""Benchmark: vectorized prepare kernels + incremental loop propagation.

Times ``Remp.prepare`` end-to-end with the accel layer on vs off
(``REPRO_NO_ACCEL=1`` semantics via ``force_accel``) over increasing
scales of two workloads:

* **blocking stress** — a clustered world whose label noise collapses
  many labels, producing the large ambiguous dominance blocks the packed
  kernels exist for (at the largest scale the ≥ 4x acceptance bar is
  asserted);
* **loop propagation** — the ``bench_partition`` clustered bundle, timing
  the cumulative ``LoopState.propagate`` wall-clock across the whole
  human–machine loop (≥ 3x bar for the incremental propagator).

Both assertions self-gate the same way ``bench_partition`` gates on
cores: when the fallback measurement is too small to time reliably
(tiny CI smoke scales), the bar is skipped and only the harness
correctness — byte-identical results between the two modes — is checked.

Scale knobs (environment):

``REPRO_BENCH_PREPARE_SCALE``   largest blocking-stress scale (default 400)
``REPRO_BENCH_CLUSTERS``        clusters for the loop bundle (default 24)
``REPRO_BENCH_MOVIES``          movies per cluster (default 16)

Every run appends machine-readable per-stage timings to
``BENCH_prepare.json`` (the perf trajectory artifact CI uploads), so
future PRs can compare stage-level profiles across commits, and mirrors
each sample into the unified ``BENCH_history.jsonl`` trajectory
(:func:`repro.obs.append_bench_history`) that ``repro bench compare``
diffs across CI runs.
"""

import json
import os
import time
from pathlib import Path

import pytest

from repro.accel.runtime import TIMINGS, force_accel
from repro.core import Remp
from repro.crowd import CrowdPlatform
from repro.datasets import clustered_bundle
from repro.obs import append_bench_history
from repro.store.serialize import prepared_state_to_doc
from repro.text import normalize

#: Critics per cluster at the top blocking-stress scale.
PREPARE_SCALE = int(os.environ.get("REPRO_BENCH_PREPARE_SCALE", "400"))
CLUSTERS = int(os.environ.get("REPRO_BENCH_CLUSTERS", "24"))
MOVIES = int(os.environ.get("REPRO_BENCH_MOVIES", "16"))
ERROR_RATE = 0.05

#: Fallback wall-clock below which a speedup ratio is noise, not signal.
MIN_MEASURABLE_SECONDS = 2.0

TRAJECTORY_PATH = Path(os.environ.get("REPRO_BENCH_TRAJECTORY", "BENCH_prepare.json"))


def _blocking_bundle(scale: int):
    """High-ambiguity world: collapsed labels -> large dominance blocks."""
    return clustered_bundle(
        num_clusters=4,
        movies_per_cluster=4,
        critics_per_cluster=scale,
        seed=0,
        label_noise=0.9,
    )


def _timed_prepare(bundle, accel: bool):
    """(wall seconds, prepared state, stage timings) for one cold prepare."""
    TIMINGS.reset()
    normalize.normalize_label.cache_clear()
    with force_accel(accel):
        start = time.perf_counter()
        state = Remp().prepare(bundle.kb1, bundle.kb2)
        elapsed = time.perf_counter() - start
    return elapsed, state, TIMINGS.as_doc()


def _timed_loop(bundle, accel: bool):
    """Cumulative propagate seconds + loop doc for one full loop phase."""
    TIMINGS.reset()
    normalize.normalize_label.cache_clear()
    with force_accel(accel):
        remp = Remp()
        state = remp.prepare(bundle.kb1, bundle.kb2)
        platform = CrowdPlatform.with_simulated_workers(
            bundle.gold_matches, error_rate=ERROR_RATE, seed=0
        )
        loop_state, history, questions = remp.run_loop_phase(state, platform)
    snapshot = TIMINGS.snapshot()
    propagate_seconds = snapshot.get("loop.propagate", (0.0, 0))[0]
    doc = {
        "labeled": sorted(map(list, loop_state.labeled_matches)),
        "inferred": sorted(map(list, loop_state.inferred_matches)),
        "non_matches": sorted(map(list, loop_state.resolved_non_matches)),
        "questions": questions,
        "batches": [record.questions for record in history],
    }
    return propagate_seconds, doc, TIMINGS.as_doc()


def _append_trajectory(entry: dict) -> None:
    """Append one record to the machine-readable perf trajectory."""
    trajectory = []
    if TRAJECTORY_PATH.exists():
        try:
            trajectory = json.loads(TRAJECTORY_PATH.read_text())
        except json.JSONDecodeError:
            trajectory = []
    trajectory.append(entry)
    TRAJECTORY_PATH.write_text(json.dumps(trajectory, indent=1, sort_keys=True))

    # Mirror into the unified cross-bench trajectory the regression
    # sentinel (``repro bench compare``) reads.
    stages = {
        f"{entry['bench']}.accel": entry["accel_seconds"],
        f"{entry['bench']}.fallback": entry["fallback_seconds"],
    }
    for prefix, key in (("accel", "stages_accel"), ("fallback", "stages_fallback")):
        for name, doc in entry.get(key, {}).items():
            stages[f"{prefix}.{name}"] = doc
    meta = {k: v for k, v in entry.items() if not k.startswith("stages")}
    append_bench_history(entry["bench"], meta=meta, stages=stages)


def _scales() -> list[int]:
    """Geometric ramp up to the configured top scale."""
    ramp = [PREPARE_SCALE // 4, PREPARE_SCALE // 2, PREPARE_SCALE]
    return sorted({max(1, scale) for scale in ramp})


def test_prepare_speedup():
    """End-to-end prepare, accel vs fallback, byte-identical and >= 4x."""
    rows = []
    for scale in _scales():
        bundle = _blocking_bundle(scale)
        t_accel, state_accel, stages_accel = _timed_prepare(bundle, accel=True)
        t_fallback, state_fallback, stages_fallback = _timed_prepare(
            bundle, accel=False
        )
        assert prepared_state_to_doc(state_accel) == prepared_state_to_doc(
            state_fallback
        ), f"accel prepare drift at scale {scale}"
        speedup = t_fallback / t_accel if t_accel else float("inf")
        rows.append((scale, t_accel, t_fallback, speedup))
        print(
            f"\nprepare scale={scale}: accel {t_accel:.2f}s, "
            f"fallback {t_fallback:.2f}s -> {speedup:.2f}x "
            f"({len(state_accel.retained)} retained)"
        )
        _append_trajectory(
            {
                "bench": "prepare",
                "scale": scale,
                "accel_seconds": round(t_accel, 4),
                "fallback_seconds": round(t_fallback, 4),
                "speedup": round(speedup, 3),
                "stages_accel": stages_accel,
                "stages_fallback": stages_fallback,
            }
        )
    top_scale, _, top_fallback, top_speedup = rows[-1]
    if top_fallback < MIN_MEASURABLE_SECONDS:
        pytest.skip(
            f"fallback prepare too fast to grade at scale {top_scale} "
            f"({top_fallback:.2f}s < {MIN_MEASURABLE_SECONDS:.0f}s); "
            f"measured {top_speedup:.2f}x"
        )
    assert top_speedup >= 4.0, (
        f"expected >= 4x prepare speedup at scale {top_scale}, "
        f"measured {top_speedup:.2f}x"
    )


def test_loop_propagate_speedup():
    """Cumulative LoopState.propagate, accel vs fallback, >= 3x."""
    bundle = clustered_bundle(
        num_clusters=CLUSTERS,
        movies_per_cluster=MOVIES,
        seed=0,
        label_noise=0.5,
    )
    t_accel, doc_accel, stages_accel = _timed_loop(bundle, accel=True)
    t_fallback, doc_fallback, stages_fallback = _timed_loop(bundle, accel=False)
    assert doc_accel == doc_fallback, "incremental propagation drift"
    speedup = t_fallback / t_accel if t_accel else float("inf")
    print(
        f"\npropagate ({CLUSTERS}x{MOVIES}): accel {t_accel:.2f}s, "
        f"fallback {t_fallback:.2f}s -> {speedup:.2f}x "
        f"over {len(doc_accel['batches'])} loops"
    )
    _append_trajectory(
        {
            "bench": "loop_propagate",
            "clusters": CLUSTERS,
            "movies": MOVIES,
            "accel_seconds": round(t_accel, 4),
            "fallback_seconds": round(t_fallback, 4),
            "speedup": round(speedup, 3),
            "stages_accel": stages_accel,
            "stages_fallback": stages_fallback,
        }
    )
    if t_fallback < MIN_MEASURABLE_SECONDS:
        pytest.skip(
            f"fallback propagate too fast to grade ({t_fallback:.2f}s); "
            f"measured {speedup:.2f}x"
        )
    assert speedup >= 3.0, (
        f"expected >= 3x propagate speedup, measured {speedup:.2f}x"
    )


def test_prepare_accel_benchmark(benchmark):
    bundle = _blocking_bundle(_scales()[0])
    result = benchmark.pedantic(
        _timed_prepare, args=(bundle, True), rounds=1, iterations=1
    )
    assert result[1].retained


def test_prepare_fallback_benchmark(benchmark):
    bundle = _blocking_bundle(_scales()[0])
    result = benchmark.pedantic(
        _timed_prepare, args=(bundle, False), rounds=1, iterations=1
    )
    assert result[1].retained
