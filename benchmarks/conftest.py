"""Shared configuration for the benchmark harness.

Each ``bench_*`` module regenerates one paper artifact (table or figure) at
a reduced dataset scale, timing the full driver via pytest-benchmark and
printing the same rows the paper reports.  Run with::

    pytest benchmarks/ --benchmark-only -s
"""

import pytest


@pytest.fixture()
def show():
    """Print a rendered experiment table beneath the benchmark output."""

    def _show(result):
        print()
        print(result.render())
        return result

    return _show
