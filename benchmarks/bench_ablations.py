"""Ablation benches for the design decisions called out in DESIGN.md §6."""

import random

from repro.core import Remp, RempConfig
from repro.core.consistency import Consistency
from repro.core.discovery import floyd_warshall_inferred_sets, dijkstra_inferred_sets
from repro.core.propagation import ProbabilisticERGraph, neighbor_marginals
from repro.crowd import CrowdPlatform
from repro.datasets import load_dataset
from repro.eval import evaluate_matches


def _graph(n=120, edges=400, seed=3):
    rng = random.Random(seed)
    graph = ProbabilisticERGraph()
    for _ in range(edges):
        i, j = rng.randrange(n), rng.randrange(n)
        if i != j:
            graph.set_edge((f"v{i}", ""), (f"v{j}", ""), rng.uniform(0.9, 1.0))
    return graph


def test_ablation_discovery_floyd_warshall(benchmark):
    """The paper's Algorithm 2; compare its timing against Dijkstra below."""
    graph = _graph()
    sources = [(f"v{i}", "") for i in range(120)]
    sets = benchmark(floyd_warshall_inferred_sets, graph, sources, 0.9)
    reference = dijkstra_inferred_sets(graph, sources, 0.9)
    assert {s: set(d) for s, d in sets.items()} == {
        s: set(d) for s, d in reference.items()
    }


def test_ablation_discovery_dijkstra(benchmark):
    graph = _graph()
    sources = [(f"v{i}", "") for i in range(120)]
    sets = benchmark(dijkstra_inferred_sets, graph, sources, 0.9)
    assert len(sets) == 120


def test_ablation_marginal_group_cap(benchmark):
    """Exact marginalization cap: smaller caps trade accuracy for speed."""
    group = {(f"a{i}", f"b{j}") for i in range(6) for j in range(6)}
    priors = {p: (0.9 if p[0][1:] == p[1][1:] else 0.3) for p in group}
    consistency = Consistency(0.9, 0.9, 10)

    def run_both():
        tight = neighbor_marginals(
            group, priors, consistency, RempConfig(max_exact_pairs=8)
        )
        loose = neighbor_marginals(
            group, priors, consistency, RempConfig(max_exact_pairs=16)
        )
        return tight, loose

    tight, loose = benchmark(run_both)
    # Diagonal pairs dominate under both caps.
    for i in range(6):
        assert tight[(f"a{i}", f"b{i}")] > 0.4
        assert loose[(f"a{i}", f"b{i}")] > 0.4


def test_ablation_one_to_one_demotion(benchmark):
    """The 1:1 demotion rule: turning it off costs questions and precision."""
    bundle = load_dataset("iimb", seed=0, scale=0.4)

    def run_pair():
        results = {}
        for enforce in (True, False):
            platform = CrowdPlatform.with_oracle(bundle.gold_matches)
            config = RempConfig(enforce_one_to_one=enforce)
            result = Remp(config).run(bundle.kb1, bundle.kb2, platform)
            quality = evaluate_matches(result.matches, bundle.gold_matches)
            results[enforce] = (quality.f1, result.questions_asked)
        return results

    results = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    print()
    for enforce, (f1, questions) in results.items():
        print(f"  enforce_one_to_one={enforce}: F1={f1:.1%} #Q={questions}")
    assert results[True][0] > 0.7
