"""Benchmark: tracing overhead of the run-scoped observability layer.

Runs the full human–machine loop on a clustered world twice — once with
tracing enabled (the default) and once under ``REPRO_NO_TRACE=1`` — and
grades the relative wall-clock overhead of span collection.  Tracing is
on by default precisely because it is supposed to be nearly free; this
bench holds that claim to **<= 3%** overhead.

The comparison self-gates the same way ``bench_prepare`` does: when the
untraced baseline is too fast to time reliably (tiny CI smoke scales)
the bar is skipped and only harness correctness — byte-identical
results between the two modes — is asserted.  Each mode is measured
best-of-``REPRO_BENCH_OBS_ROUNDS`` (default 3) to shave scheduler noise.

Scale knobs (environment):

``REPRO_BENCH_OBS_CLUSTERS``   clusters in the workload (default 16)
``REPRO_BENCH_OBS_MOVIES``     movies per cluster (default 12)
``REPRO_BENCH_OBS_ROUNDS``     timing rounds per mode (default 3)

A second test grades the **sampling profiler** the same way (``<= 5%``
overhead over the unprofiled run, byte-identical results) and writes
the folded stacks to ``BENCH_obs_profile.folded`` — a ready-made
flamegraph input CI uploads as an artifact.

Every run writes ``BENCH_obs.json`` (overridable via
``REPRO_BENCH_OBS_TRAJECTORY``) in the run-artifact metrics shape
(:func:`repro.obs.benchmark_metrics_doc`), so CI uploads a
machine-readable overhead record even when the bar is skipped, and
appends each sample to the unified ``BENCH_history.jsonl`` trajectory
(:func:`repro.obs.append_bench_history`) that ``repro bench compare``
diffs across CI runs.
"""

import json
import os
import time
from pathlib import Path

import pytest

from repro.core import Remp
from repro.crowd import CrowdPlatform
from repro.datasets import clustered_bundle
from repro.obs import (
    MetricsRegistry,
    RunScope,
    append_bench_history,
    benchmark_metrics_doc,
)
from repro.obs.profile import folded_text
from repro.store.serialize import result_to_doc

CLUSTERS = int(os.environ.get("REPRO_BENCH_OBS_CLUSTERS", "16"))
MOVIES = int(os.environ.get("REPRO_BENCH_OBS_MOVIES", "12"))
ROUNDS = int(os.environ.get("REPRO_BENCH_OBS_ROUNDS", "3"))
ERROR_RATE = 0.05

#: Maximum tolerated tracing overhead, relative to the untraced run.
MAX_OVERHEAD = 0.03

#: Maximum tolerated sampling-profiler overhead (the acceptance bar).
MAX_PROFILE_OVERHEAD = 0.05

#: Untraced wall-clock below which an overhead ratio is noise, not signal.
MIN_MEASURABLE_SECONDS = 2.0

TRAJECTORY_PATH = Path(
    os.environ.get("REPRO_BENCH_OBS_TRAJECTORY", "BENCH_obs.json")
)

FLAMEGRAPH_PATH = Path(
    os.environ.get("REPRO_BENCH_OBS_FLAMEGRAPH", "BENCH_obs_profile.folded")
)


def _bundle():
    return clustered_bundle(
        num_clusters=CLUSTERS,
        movies_per_cluster=MOVIES,
        seed=0,
        label_noise=0.5,
    )


def _timed_run(bundle, traced: bool, profiled: bool = False):
    """(best wall seconds, result doc, scope of the best round)."""
    best = float("inf")
    doc = None
    best_scope = None
    for _ in range(ROUNDS):
        scope = RunScope("bench-obs", trace=traced, profile=profiled)
        platform = CrowdPlatform.with_simulated_workers(
            bundle.gold_matches, error_rate=ERROR_RATE, seed=0
        )
        start = time.perf_counter()
        with scope.activate():
            result = Remp().run(bundle.kb1, bundle.kb2, platform)
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best = elapsed
            doc = result_to_doc(result)
            best_scope = scope
    return best, doc, best_scope


def test_tracing_overhead():
    """Traced vs untraced full run: byte-identical results, <= 3% slower."""
    bundle = _bundle()
    # Warm caches (dataset generation, normalize memo) outside the clock.
    _timed_run(bundle, traced=False)
    t_off, doc_off, _ = _timed_run(bundle, traced=False)
    t_on, doc_on, scope = _timed_run(bundle, traced=True)
    span_count = len(scope.tracer.spans())
    assert json.dumps(doc_on, sort_keys=True) == json.dumps(
        doc_off, sort_keys=True
    ), "tracing perturbed the run result"
    assert span_count > 0, "traced run collected no spans"
    overhead = (t_on - t_off) / t_off if t_off else 0.0
    print(
        f"\nobs overhead ({CLUSTERS}x{MOVIES}): traced {t_on:.3f}s, "
        f"untraced {t_off:.3f}s -> {overhead:+.2%} "
        f"({span_count} spans)"
    )

    meta = {
        "bench": "obs",
        "clusters": CLUSTERS,
        "movies": MOVIES,
        "rounds": ROUNDS,
        "measurable": t_off >= MIN_MEASURABLE_SECONDS,
    }
    registry = MetricsRegistry()
    registry.count("bench.spans", span_count)
    registry.gauge("bench.traced_seconds", round(t_on, 4))
    registry.gauge("bench.untraced_seconds", round(t_off, 4))
    registry.gauge("bench.overhead", round(overhead, 4))
    TRAJECTORY_PATH.write_text(
        json.dumps(
            benchmark_metrics_doc(meta, registry.as_doc()),
            indent=1,
            sort_keys=True,
        )
    )
    append_bench_history(
        "obs",
        meta=meta,
        metrics=registry.as_doc(),
        stages={"obs.traced_run": t_on, "obs.untraced_run": t_off},
    )

    if t_off < MIN_MEASURABLE_SECONDS:
        pytest.skip(
            f"untraced run too fast to grade ({t_off:.2f}s < "
            f"{MIN_MEASURABLE_SECONDS:.0f}s); measured {overhead:+.2%}"
        )
    assert overhead <= MAX_OVERHEAD, (
        f"tracing overhead {overhead:+.2%} exceeds {MAX_OVERHEAD:.0%}"
    )


def test_profiler_overhead():
    """Profiled vs unprofiled full run: identical results, <= 5% slower.

    Always emits ``BENCH_obs_profile.folded`` (flamegraph input) so CI
    uploads a profile artifact even at unmeasurable smoke scales.
    """
    bundle = _bundle()
    _timed_run(bundle, traced=False)
    t_off, doc_off, _ = _timed_run(bundle, traced=False)
    t_on, doc_on, scope = _timed_run(bundle, traced=False, profiled=True)
    assert json.dumps(doc_on, sort_keys=True) == json.dumps(
        doc_off, sort_keys=True
    ), "profiling perturbed the run result"
    assert scope.profiler is not None, "profiled run never started the sampler"
    profile = scope.profiler.as_doc()
    FLAMEGRAPH_PATH.write_text(folded_text(profile))
    overhead = (t_on - t_off) / t_off if t_off else 0.0
    print(
        f"\nprofiler overhead ({CLUSTERS}x{MOVIES}): profiled {t_on:.3f}s, "
        f"plain {t_off:.3f}s -> {overhead:+.2%} "
        f"({profile['samples']} samples, {len(profile['stacks'])} stacks)"
    )
    append_bench_history(
        "obs_profile",
        meta={
            "bench": "obs_profile",
            "clusters": CLUSTERS,
            "movies": MOVIES,
            "samples": profile["samples"],
            "measurable": t_off >= MIN_MEASURABLE_SECONDS,
        },
        stages={"obs.profiled_run": t_on, "obs.unprofiled_run": t_off},
    )
    if t_off < MIN_MEASURABLE_SECONDS:
        pytest.skip(
            f"unprofiled run too fast to grade ({t_off:.2f}s < "
            f"{MIN_MEASURABLE_SECONDS:.0f}s); measured {overhead:+.2%}"
        )
    assert profile["samples"] > 0, "profiler collected no samples"
    assert overhead <= MAX_PROFILE_OVERHEAD, (
        f"profiler overhead {overhead:+.2%} exceeds {MAX_PROFILE_OVERHEAD:.0%}"
    )
