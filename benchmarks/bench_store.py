"""Benchmark the prepared-state cache against recomputing ``prepare``.

The whole point of :mod:`repro.store` is that a cache hit (SQLite read +
document deserialization) beats rerunning the offline stages.  These
benches measure both sides on the same dataset so the ratio is visible in
one ``pytest benchmarks/ --benchmark-only`` report.
"""

import pytest

from repro.core import Remp
from repro.datasets import load_dataset
from repro.store import RunStore

SCALE = 0.4


@pytest.fixture(scope="module")
def bundle():
    return load_dataset("iimb", seed=0, scale=SCALE)


def test_prepare_cold(benchmark, bundle):
    state = benchmark.pedantic(
        lambda: Remp().prepare(bundle.kb1, bundle.kb2), rounds=3, iterations=1
    )
    assert state.retained


def test_prepared_state_cache_hit(benchmark, bundle, tmp_path):
    store = RunStore(tmp_path / "bench.db")
    state = Remp().prepare(bundle.kb1, bundle.kb2)
    store.save_prepared("iimb", 0, SCALE, None, state)
    loaded = benchmark.pedantic(
        lambda: store.load_prepared("iimb", 0, SCALE, None), rounds=3, iterations=1
    )
    assert loaded is not None
    assert loaded.retained == state.retained
    assert loaded.priors == state.priors
    store.close()
