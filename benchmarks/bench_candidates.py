"""Micro-benchmark for candidate generation (Section IV-B).

``generate_candidates`` used to re-run full Jaccard set algebra —
build the intersection and union sets — for every (entity1, entity2)
surfaced by the inverted token index.  The shipped implementation
accumulates intersection *counts* directly off the index, one pass per
entity, and finishes the coefficient arithmetically.  The ``naive``
variant below reproduces the old inner loop on the same data for
comparison; both must agree exactly.
"""

import random

from repro.core.candidates import _token_index, generate_candidates
from repro.kb import KnowledgeBase
from repro.text.similarity import jaccard

ENTITIES = 1500
VOCABULARY = 220
TOKENS_PER_LABEL = (2, 5)
THRESHOLD = 0.3


def _kbs() -> tuple[KnowledgeBase, KnowledgeBase]:
    rng = random.Random(7)
    words = [f"token{i:03d}" for i in range(VOCABULARY)]
    kb1, kb2 = KnowledgeBase("kb1"), KnowledgeBase("kb2")
    for kb, prefix in ((kb1, "a"), (kb2, "b")):
        for i in range(ENTITIES):
            count = rng.randint(*TOKENS_PER_LABEL)
            kb.add_entity(f"{prefix}{i}", label=" ".join(rng.sample(words, count)))
    return kb1, kb2


def _naive_generate(kb1, kb2, threshold):
    """The pre-optimization inner loop: one jaccard() per blocked pair."""
    tokens1, _ = _token_index(kb1)
    tokens2, inverted2 = _token_index(kb2)
    priors = {}
    for entity1, tset1 in tokens1.items():
        seen = set()
        for token in tset1:
            seen.update(inverted2.get(token, ()))
        for entity2 in seen:
            sim = jaccard(tset1, tokens2[entity2])
            if sim >= threshold:
                priors[(entity1, entity2)] = sim
    return priors


def test_candidates_inverted_index(benchmark):
    kb1, kb2 = _kbs()
    result = benchmark(generate_candidates, kb1, kb2, THRESHOLD)
    assert result.pairs


def test_candidates_naive_jaccard(benchmark):
    kb1, kb2 = _kbs()
    priors = benchmark(_naive_generate, kb1, kb2, THRESHOLD)
    assert priors


def test_both_paths_agree():
    kb1, kb2 = _kbs()
    fast = generate_candidates(kb1, kb2, THRESHOLD)
    naive = _naive_generate(kb1, kb2, THRESHOLD)
    assert fast.priors == naive
