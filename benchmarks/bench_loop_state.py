"""Micro-benchmark for the distant-propagation hot spot.

``LoopState.propagate`` used to recompute ``unresolved()`` — a set
difference over every retained pair — inside the inner distant-propagation
loop, making the phase O(labels × inferred × retained).  The loop state
now maintains the unresolved set incrementally, so the membership test is
O(1).  The two benchmarks below run the exact inner loop both ways on the
same snapshot; the ``incremental`` variant is the shipped code path.
"""

from repro.core import Remp
from repro.core.pipeline import LoopState
from repro.datasets import load_dataset

SCALE = 0.6


def _labeled_loop_state() -> tuple[LoopState, dict, dict]:
    """A loop state with half the gold matches labeled and inferred sets built.

    The snapshot is taken *before* propagation, so each benchmark round
    restores to a state where every inferred resolution is still pending.
    """
    bundle = load_dataset("iimb", seed=0, scale=SCALE)
    remp = Remp()
    state = remp.prepare(bundle.kb1, bundle.kb2)
    loop_state = remp._make_loop_state(state)
    for pair in sorted(bundle.gold_matches)[::2]:
        if pair in state.retained:
            loop_state.labeled_matches.add(pair)
    snapshot = loop_state.snapshot()
    loop_state.propagate(bundle.kb1, bundle.kb2)
    return loop_state, snapshot, dict(loop_state._inferred_sets)


def _distant_naive(loop_state: LoopState) -> int:
    """The pre-fix inner loop: a full set difference per membership test."""
    resolved = 0
    for match in sorted(loop_state.labeled_matches & loop_state.state.retained):
        for pair in loop_state._inferred_sets.get(match, ()):
            unresolved = (
                loop_state.state.retained
                - loop_state.resolved_matches
                - loop_state.resolved_non_matches
            )
            if pair in unresolved:
                loop_state.resolve_match(pair, labeled=False)
                resolved += 1
    return resolved


def _distant_incremental(loop_state: LoopState) -> int:
    """The shipped inner loop: O(1) membership in the maintained set."""
    resolved = 0
    for match in sorted(loop_state.labeled_matches & loop_state.state.retained):
        for pair in loop_state._inferred_sets.get(match, ()):
            if pair in loop_state._unresolved:
                loop_state.resolve_match(pair, labeled=False)
                resolved += 1
    return resolved


def _bench(benchmark, body):
    loop_state, snapshot, inferred = _labeled_loop_state()

    def setup():
        loop_state.restore(snapshot)
        loop_state._inferred_sets = inferred
        return (loop_state,), {}

    return benchmark.pedantic(body, setup=setup, rounds=3, iterations=1)


def test_distant_propagation_incremental(benchmark):
    assert _bench(benchmark, _distant_incremental) > 0


def test_distant_propagation_naive(benchmark):
    assert _bench(benchmark, _distant_naive) > 0


def test_both_variants_resolve_identically():
    loop_state, snapshot, inferred = _labeled_loop_state()
    _distant_incremental(loop_state)
    fast = set(loop_state.inferred_matches)
    loop_state.restore(snapshot)
    loop_state._inferred_sets = inferred
    _distant_naive(loop_state)
    assert set(loop_state.inferred_matches) == fast
