"""Benchmark: the fault plane's cost — and the cost of surviving faults.

Two acceptance bars, both self-gated the way ``bench_partition`` gates:

* **overhead** — a partitioned run with an *armed but never-matching*
  fault plan (every ``faults.check`` probe consults the plan, no rule
  fires) must stay within 3% of the same run with no plan at all.  This
  pins the price of keeping the fault plane compiled into every
  execution path instead of behind a build flag.
* **recovery** — a run whose deepest-checkpointing shard's worker is
  SIGKILLed mid-shard (lease expiry → requeue from checkpoint → pool
  replenishment) must finish within 2x the fault-free wall clock.

Byte-identity is asserted in every mode, always — the armed-plan run,
the killed-worker run and the fault-free baseline produce identical
result documents and identical billed ``questions_asked`` — so the
smoke-scale CI run checks correctness even when the timing bars gate
themselves off.

Scale knobs (environment):

``REPRO_BENCH_FAULT_CLUSTERS``  components in the world (default 24)
``REPRO_BENCH_FAULT_MOVIES``    movies per cluster (default 24)
``REPRO_BENCH_WORKERS``         pool size (default 2)
``REPRO_BENCH_FAULT_ROUNDS``    timing repetitions, best-of (default 3)

Every sample lands in the unified ``BENCH_history.jsonl`` trajectory
(:func:`repro.obs.append_bench_history`) that ``repro bench compare``
diffs across CI runs.
"""

import json
import os
import time

import pytest

from repro.core import Remp
from repro.datasets import clustered_bundle
from repro.faults import ENV_VAR
from repro.obs import append_bench_history
from repro.partition import CrowdSpec, ParallelRunner
from repro.store.serialize import result_to_doc

CLUSTERS = int(os.environ.get("REPRO_BENCH_FAULT_CLUSTERS", "24"))
MOVIES = int(os.environ.get("REPRO_BENCH_FAULT_MOVIES", "24"))
WORKERS = int(os.environ.get("REPRO_BENCH_WORKERS", "2"))
ROUNDS = int(os.environ.get("REPRO_BENCH_FAULT_ROUNDS", "3"))
ERROR_RATE = 0.05

#: Fault-free wall-clock below which a timing ratio is noise, not signal.
MIN_MEASURABLE_SECONDS = 1.0

OVERHEAD_BAR = 1.03
RECOVERY_BAR = 2.0

#: Armed but inert: matches the probe *site* on every mid-shard check,
#: so the plan is consulted at full frequency, but the ``where`` filter
#: can never pass (shard ids are non-negative).
INERT_PLAN = json.dumps(
    [{"site": "*", "action": "error", "times": None, "where": {"shard_id": -1}}]
)


def _world():
    bundle = clustered_bundle(
        num_clusters=CLUSTERS, movies_per_cluster=MOVIES, seed=0
    )
    state = Remp().prepare(bundle.kb1, bundle.kb2)
    crowd = CrowdSpec(truth=bundle.gold_matches, error_rate=ERROR_RATE, seed=0)
    return state, crowd


def _run(state, crowd, events=None):
    runner = ParallelRunner(
        workers=WORKERS,
        target_shards=CLUSTERS,
        on_event=events.append if events is not None else None,
    )
    return runner.run(state, crowd)


def _timed(fn, rounds=ROUNDS):
    """(best-of-``rounds`` seconds, last result) — min is the standard
    noise filter for wall-clock ratios at small scales."""
    best, result = float("inf"), None
    for _ in range(rounds):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _doc(result) -> str:
    return json.dumps(result_to_doc(result), sort_keys=True)


def _with_env_plan(plan_json, fn):
    previous = os.environ.get(ENV_VAR)
    os.environ[ENV_VAR] = plan_json
    try:
        return fn()
    finally:
        if previous is None:
            del os.environ[ENV_VAR]
        else:
            os.environ[ENV_VAR] = previous


def test_fault_plane_overhead():
    """Armed-but-inert plan vs no plan: ≤ 3% overhead, identical bytes."""
    state, crowd = _world()
    t_off, baseline = _timed(lambda: _run(state, crowd))
    t_on, armed = _timed(
        lambda: _with_env_plan(INERT_PLAN, lambda: _run(state, crowd))
    )

    assert _doc(armed) == _doc(baseline)
    assert armed.questions_asked == baseline.questions_asked

    ratio = t_on / t_off if t_off else float("inf")
    print(
        f"\n{CLUSTERS} components x {MOVIES} movies, {WORKERS} workers: "
        f"fault plane off {t_off:.2f}s, armed-inert {t_on:.2f}s "
        f"-> {ratio:.3f}x overhead"
    )
    append_bench_history(
        "faults",
        meta={
            "bench": "faults",
            "clusters": CLUSTERS,
            "movies": MOVIES,
            "workers": WORKERS,
            "overhead": round(ratio, 4),
        },
        stages={"faults.plane_off": t_off, "faults.plane_armed": t_on},
    )
    if t_off >= MIN_MEASURABLE_SECONDS:
        assert ratio <= OVERHEAD_BAR, (
            f"expected <= {OVERHEAD_BAR}x with an inert plan, "
            f"measured {ratio:.3f}x"
        )
    else:
        pytest.skip(
            f"fault-free run took {t_off:.3f}s (< {MIN_MEASURABLE_SECONDS}s); "
            f"overhead bar needs a larger scale (measured {ratio:.3f}x)"
        )


def test_killed_worker_recovery_cost():
    """SIGKILL the deepest shard's worker mid-shard: byte-identical
    result via lease/requeue, within 2x the fault-free wall clock."""
    state, crowd = _world()
    events = []
    t_clean, baseline = _timed(lambda: _run(state, crowd, events))

    loops = {}
    for event in events:
        if event.kind == "checkpointed":
            loops[event.shard_id] = max(event.loops, loops.get(event.shard_id, 0))
    assert loops, "no shard checkpointed; nothing to kill"
    victim = max(loops, key=lambda shard_id: (loops[shard_id], -shard_id))

    kill_plan = json.dumps(
        [
            {
                "site": "worker.mid_shard",
                "action": "kill",
                "where": {"shard_id": victim, "attempt": 0},
            }
        ]
    )
    # One round only: each timed repetition must inject exactly one kill,
    # and the env plan's counters reset per distinct raw value, not per run.
    t_killed, recovered = _timed(
        lambda: _with_env_plan(kill_plan, lambda: _run(state, crowd)), rounds=1
    )

    assert _doc(recovered) == _doc(baseline)
    assert recovered.questions_asked == baseline.questions_asked

    slowdown = t_killed / t_clean if t_clean else float("inf")
    print(
        f"\nshard {victim} worker killed mid-shard: fault-free {t_clean:.2f}s, "
        f"recovered {t_killed:.2f}s -> {slowdown:.2f}x"
    )
    append_bench_history(
        "faults",
        meta={
            "bench": "faults",
            "clusters": CLUSTERS,
            "movies": MOVIES,
            "workers": WORKERS,
            "victim": victim,
            "recovery_slowdown": round(slowdown, 3),
        },
        stages={"faults.fault_free": t_clean, "faults.killed_worker": t_killed},
    )
    if t_clean >= MIN_MEASURABLE_SECONDS:
        assert slowdown <= RECOVERY_BAR, (
            f"expected <= {RECOVERY_BAR}x after a mid-shard kill, "
            f"measured {slowdown:.2f}x"
        )
    else:
        pytest.skip(
            f"fault-free run took {t_clean:.3f}s (< {MIN_MEASURABLE_SECONDS}s); "
            f"recovery bar needs a larger scale (measured {slowdown:.2f}x)"
        )
