"""Bench for Figure 4: pair completeness w.r.t. the pruning parameter k."""

from repro.experiments import figure4


def test_figure4(benchmark, show):
    result = benchmark.pedantic(
        figure4.run, kwargs={"scale": 0.6, "seed": 0}, rounds=1, iterations=1
    )
    show(result)
    assert len(result.rows) == 4
    # Shape check: pair completeness is non-decreasing in k.
    for series in result.raw.values():
        values = [series[k] for k in sorted(series)]
        assert all(b >= a - 1e-9 for a, b in zip(values, values[1:]))
