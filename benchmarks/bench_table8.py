"""Bench for Table VIII: isolated-pair inference quality."""

from repro.experiments import table8

SCALE = 0.6


def test_table8(benchmark, show):
    result = benchmark.pedantic(
        table8.run, kwargs={"scale": SCALE, "seed": 0}, rounds=1, iterations=1
    )
    show(result)
    assert len(result.rows) == 4
    shares = {d: v["isolated_share"] for d, v in result.raw.items()}
    # Shape check: isolated share ordering matches Table II's profile design.
    assert shares["iimb"] < shares["imdb_yago"] < shares["dbpedia_yago"]
    # The forest only becomes competitive where isolated matches dominate.
    assert result.raw["dbpedia_yago"]["forest_f1"] > result.raw["iimb"]["forest_f1"] - 0.2
