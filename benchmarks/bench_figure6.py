"""Bench for Figure 6: scaling of Algorithms 1–3 with the pair count."""

from repro.experiments import figure6


def test_figure6(benchmark, show):
    result = benchmark.pedantic(
        figure6.run, kwargs={"scale": 1.0, "seed": 0}, rounds=1, iterations=1
    )
    show(result)
    assert len(result.rows) == 4
    # Shape check: Algorithm 1 time grows with the candidate portion.
    alg1 = result.raw["alg1"]
    portions = sorted(alg1)
    assert alg1[portions[-1]] >= alg1[portions[0]]
