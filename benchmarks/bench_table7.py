"""Bench for Table VII: varying the questions-per-loop threshold µ."""

from repro.experiments import table7

SCALE = 0.4


def test_table7(benchmark, show):
    result = benchmark.pedantic(
        table7.run, kwargs={"scale": SCALE, "seed": 0}, rounds=1, iterations=1
    )
    show(result)
    assert len(result.rows) == 4
    for cells in result.raw.values():
        f1_1, q_1, loops_1 = cells[1]
        f1_20, q_20, loops_20 = cells[20]
        # Shape checks: F1 stable in mu; loop count drops sharply with mu.
        assert abs(f1_1 - f1_20) < 0.2
        assert loops_20 <= loops_1
