"""Benchmark: the PR-10 kernel floor — ER-graph build, exact marginals,
candidate scoring.

Times the three kernels against their pure-Python references
(``REPRO_NO_ACCEL=1`` semantics via ``force_accel``) on workloads shaped
to stress exactly what each kernel indexes away:

* **er_graph** — a hub world (each hub publishes many papers) where the
  reference probes the full ``|N1| x |N2|`` value-set product per hub
  vertex while the kernel walks partner lists (>= 3x bar);
* **marginals** — mixed matching groups at ``max_exact_pairs``-sized
  scale (contested values plus singleton pairs, the shape
  ``_reduce_group`` emits), where the permanent DP collapses the
  reference's exponential leaf walk (>= 4x bar);
* **candidates** — a blocking-stress world whose labels mix identity
  tokens with a small shared vocabulary: the inverted-index join
  generates many near-miss hits but few surviving pairs, so the
  reference pays per-hit dict work the vectorized join folds into one
  ``np.unique`` (>= 2x bar on the ``candidates.score`` stage).

All three assert byte-identical results between the two modes even when
the speedup bars self-gate (fallback too fast to grade at CI smoke
scales, same policy as ``bench_prepare``).

Scale knobs (environment):

``REPRO_BENCH_KERNEL_HUBS``      hubs in the er_graph world (default 16)
``REPRO_BENCH_KERNEL_PAPERS``    papers per hub at top scale (default 1500)
``REPRO_BENCH_KERNEL_GROUPS``    marginal groups at top scale (default 900)
``REPRO_BENCH_KERNEL_ENTITIES``  entities per side at top scale (default 3000)

Every run appends machine-readable per-stage timings to
``BENCH_kernels.json`` and mirrors each sample into the unified
``BENCH_history.jsonl`` trajectory (:func:`repro.obs.append_bench_history`)
that ``repro bench compare`` diffs across CI runs.
"""

import json
import os
import random
import time
from pathlib import Path

import pytest

from repro.accel.runtime import TIMINGS, force_accel
from repro.core.candidates import generate_candidates
from repro.core.er_graph import build_er_graph
from repro.core.propagation import _marginals_exact
from repro.kb.model import KnowledgeBase
from repro.obs import append_bench_history
from repro.text import normalize

HUBS = int(os.environ.get("REPRO_BENCH_KERNEL_HUBS", "16"))
PAPERS = int(os.environ.get("REPRO_BENCH_KERNEL_PAPERS", "1500"))
GROUPS = int(os.environ.get("REPRO_BENCH_KERNEL_GROUPS", "900"))
ENTITIES = int(os.environ.get("REPRO_BENCH_KERNEL_ENTITIES", "3000"))

#: Fallback wall-clock below which a speedup ratio is noise, not signal.
MIN_MEASURABLE_SECONDS = 2.0

TRAJECTORY_PATH = Path(
    os.environ.get("REPRO_BENCH_KERNELS_TRAJECTORY", "BENCH_kernels.json")
)


def _append_trajectory(entry: dict) -> None:
    """Append one record to the machine-readable perf trajectory."""
    trajectory = []
    if TRAJECTORY_PATH.exists():
        try:
            trajectory = json.loads(TRAJECTORY_PATH.read_text())
        except json.JSONDecodeError:
            trajectory = []
    trajectory.append(entry)
    TRAJECTORY_PATH.write_text(json.dumps(trajectory, indent=1, sort_keys=True))

    stages = {
        f"{entry['bench']}.accel": entry["accel_seconds"],
        f"{entry['bench']}.fallback": entry["fallback_seconds"],
    }
    for prefix, key in (("accel", "stages_accel"), ("fallback", "stages_fallback")):
        for name, doc in entry.get(key, {}).items():
            stages[f"{prefix}.{name}"] = doc
    meta = {k: v for k, v in entry.items() if not k.startswith("stages")}
    append_bench_history(entry["bench"], meta=meta, stages=stages)


def _ramp(top: int) -> list[int]:
    """Geometric ramp up to the configured top scale."""
    return sorted({max(1, scale) for scale in (top // 4, top // 2, top)})


def _grade(bench: str, rows: list[tuple], bar: float) -> None:
    """Apply the self-gating speedup bar to the top-scale measurement."""
    top_scale, _, top_fallback, top_speedup = rows[-1]
    if top_fallback < MIN_MEASURABLE_SECONDS:
        pytest.skip(
            f"fallback {bench} too fast to grade at scale {top_scale} "
            f"({top_fallback:.2f}s < {MIN_MEASURABLE_SECONDS:.0f}s); "
            f"measured {top_speedup:.2f}x"
        )
    assert top_speedup >= bar, (
        f"expected >= {bar:.0f}x {bench} speedup at scale {top_scale}, "
        f"measured {top_speedup:.2f}x"
    )


# ----------------------------------------------------------------------
# ER-graph build
# ----------------------------------------------------------------------
def _hub_world(hubs: int, papers: int):
    """Aligned hub KBs: each hub publishes ``papers`` papers.

    Every hub vertex carries a ``papers x papers`` value-set product —
    the quadratic cell the reference probes exhaustively and the
    adjacency-indexed kernel never materializes.
    """
    kb1, kb2 = KnowledgeBase("hub1"), KnowledgeBase("hub2")
    vertices = set()
    for h in range(hubs):
        kb1.add_entity(f"ah{h}")
        kb2.add_entity(f"bh{h}")
        vertices.add((f"ah{h}", f"bh{h}"))
        for p in range(papers):
            e1, e2 = f"ap{h}_{p}", f"bp{h}_{p}"
            kb1.add_entity(e1)
            kb2.add_entity(e2)
            kb1.add_relationship_triple(f"ah{h}", "published", e1)
            kb2.add_relationship_triple(f"bh{h}", "published", e2)
            vertices.add((e1, e2))
    return kb1, kb2, vertices


def _timed_er_graph(kb1, kb2, vertices, accel: bool):
    TIMINGS.reset()
    with force_accel(accel):
        start = time.perf_counter()
        graph = build_er_graph(kb1, kb2, vertices)
        elapsed = time.perf_counter() - start
    return elapsed, graph, TIMINGS.as_doc()


def test_er_graph_build_speedup():
    """Adjacency-indexed ER-graph build, byte-identical and >= 3x."""
    rows = []
    for papers in _ramp(PAPERS):
        kb1, kb2, vertices = _hub_world(HUBS, papers)
        t_accel, g_accel, stages_accel = _timed_er_graph(kb1, kb2, vertices, True)
        t_fallback, g_fallback, stages_fallback = _timed_er_graph(
            kb1, kb2, vertices, False
        )
        assert g_accel.groups == g_fallback.groups, (
            f"er_graph drift at {papers} papers"
        )
        assert list(g_accel.groups) == list(g_fallback.groups)
        assert all(
            list(g_accel.groups[v]) == list(g_fallback.groups[v])
            for v in g_fallback.groups
        )
        speedup = t_fallback / t_accel if t_accel else float("inf")
        rows.append((papers, t_accel, t_fallback, speedup))
        print(
            f"\ner_graph hubs={HUBS} papers={papers}: accel {t_accel:.2f}s, "
            f"fallback {t_fallback:.2f}s -> {speedup:.2f}x "
            f"({g_accel.num_edges} edges)"
        )
        _append_trajectory(
            {
                "bench": "kernel_er_graph",
                "hubs": HUBS,
                "papers": papers,
                "accel_seconds": round(t_accel, 4),
                "fallback_seconds": round(t_fallback, 4),
                "speedup": round(speedup, 3),
                "stages_accel": stages_accel,
                "stages_fallback": stages_fallback,
            }
        )
    _grade("er_graph", rows, 3.0)


# ----------------------------------------------------------------------
# Exact marginals
# ----------------------------------------------------------------------
def _mixed_groups(count: int):
    """``max_exact_pairs``-sized groups in the shape ``_reduce_group`` emits.

    Two contested right values holding two pairs each, plus eight
    singleton pairs — twelve pairs per group, priors drawn from a small
    tie-heavy palette.
    """
    rng = random.Random(0x5EED)
    palette = (0.3, 0.5, 0.5, 0.7, 0.9)
    groups = []
    for g in range(count):
        pairs = [(f"g{g}l{i}", f"g{g}r{i // 2}") for i in range(4)]
        pairs += [(f"g{g}l{4 + i}", f"g{g}s{i}") for i in range(8)]
        priors = {pair: rng.choice(palette) for pair in pairs}
        groups.append((pairs, priors, rng.choice((0.6, 1.0, 1.8))))
    return groups


def _timed_marginals(groups, accel: bool):
    TIMINGS.reset()
    with force_accel(accel):
        start = time.perf_counter()
        results = [
            _marginals_exact(pairs, priors, gamma) for pairs, priors, gamma in groups
        ]
        elapsed = time.perf_counter() - start
    return elapsed, results, TIMINGS.as_doc()


def test_exact_marginals_speedup():
    """Permanent-DP exact marginals, bitwise-identical and >= 4x."""
    rows = []
    for count in _ramp(GROUPS):
        groups = _mixed_groups(count)
        t_accel, r_accel, stages_accel = _timed_marginals(groups, True)
        t_fallback, r_fallback, stages_fallback = _timed_marginals(groups, False)
        assert all(
            accel_map[pair].hex() == fallback_map[pair].hex()
            for accel_map, fallback_map in zip(r_accel, r_fallback)
            for pair in fallback_map
        ), f"marginal drift at {count} groups"
        assert [sorted(m) for m in r_accel] == [sorted(m) for m in r_fallback]
        speedup = t_fallback / t_accel if t_accel else float("inf")
        rows.append((count, t_accel, t_fallback, speedup))
        print(
            f"\nmarginals groups={count} (n=12): accel {t_accel:.2f}s, "
            f"fallback {t_fallback:.2f}s -> {speedup:.2f}x"
        )
        _append_trajectory(
            {
                "bench": "kernel_marginals",
                "groups": count,
                "pairs_per_group": 12,
                "accel_seconds": round(t_accel, 4),
                "fallback_seconds": round(t_fallback, 4),
                "speedup": round(speedup, 3),
                "stages_accel": stages_accel,
                "stages_fallback": stages_fallback,
            }
        )
    _grade("marginals", rows, 4.0)


# ----------------------------------------------------------------------
# Candidate scoring
# ----------------------------------------------------------------------
def _stress_labels(entities: int, seed: int = 0):
    """Blocking-stress KBs: identity tokens plus a small shared vocabulary.

    Cross pairs share only common tokens (near-misses the threshold
    rejects); aligned pairs share their identity tokens and survive.
    The reference pays one dict operation per posting hit; the kernel
    folds the whole hit stream into array work.
    """
    rng = random.Random(seed)
    common = [f"common{c}" for c in range(12)]
    kb1, kb2 = KnowledgeBase("stress1"), KnowledgeBase("stress2")
    for i in range(entities):
        ident = [f"id{i}w{t}" for t in range(6)]
        kb1.add_entity(f"a{i}", " ".join(ident + rng.sample(common, 5)))
        kb2.add_entity(f"b{i}", " ".join(ident + rng.sample(common, 5)))
    return kb1, kb2


def _timed_candidates(kb1, kb2, accel: bool):
    """(candidates.score stage seconds, result, stage timings)."""
    TIMINGS.reset()
    normalize.normalize_label.cache_clear()
    with force_accel(accel):
        result = generate_candidates(kb1, kb2)
    snapshot = TIMINGS.snapshot()
    return snapshot["candidates.score"][0], result, TIMINGS.as_doc()


def test_candidate_scoring_speedup():
    """Vectorized candidates.score stage, byte-identical and >= 2x."""
    rows = []
    for entities in _ramp(ENTITIES):
        kb1, kb2 = _stress_labels(entities)
        t_accel, c_accel, stages_accel = _timed_candidates(kb1, kb2, True)
        t_fallback, c_fallback, stages_fallback = _timed_candidates(kb1, kb2, False)
        assert c_accel.pairs == c_fallback.pairs, (
            f"candidate pair drift at {entities} entities"
        )
        assert c_accel.initial_matches == c_fallback.initial_matches
        assert c_accel.priors.keys() == c_fallback.priors.keys()
        assert all(
            c_accel.priors[pair].hex() == c_fallback.priors[pair].hex()
            for pair in c_fallback.priors
        ), f"prior drift at {entities} entities"
        speedup = t_fallback / t_accel if t_accel else float("inf")
        rows.append((entities, t_accel, t_fallback, speedup))
        print(
            f"\ncandidates entities={entities}: score accel {t_accel:.2f}s, "
            f"fallback {t_fallback:.2f}s -> {speedup:.2f}x "
            f"({len(c_accel.pairs)} pairs)"
        )
        _append_trajectory(
            {
                "bench": "kernel_candidates",
                "entities": entities,
                "accel_seconds": round(t_accel, 4),
                "fallback_seconds": round(t_fallback, 4),
                "speedup": round(speedup, 3),
                "stages_accel": stages_accel,
                "stages_fallback": stages_fallback,
            }
        )
    _grade("candidates.score", rows, 2.0)


# ----------------------------------------------------------------------
# pytest-benchmark smokes (tiny scale, wired into CI's bench smoke)
# ----------------------------------------------------------------------
def test_er_graph_accel_benchmark(benchmark):
    kb1, kb2, vertices = _hub_world(4, max(4, PAPERS // 16))
    result = benchmark.pedantic(
        _timed_er_graph, args=(kb1, kb2, vertices, True), rounds=1, iterations=1
    )
    assert result[1].num_edges


def test_marginals_accel_benchmark(benchmark):
    groups = _mixed_groups(max(2, GROUPS // 16))
    result = benchmark.pedantic(
        _timed_marginals, args=(groups, True), rounds=1, iterations=1
    )
    assert result[1]
