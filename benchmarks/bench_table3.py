"""Bench for Table III: Remp vs HIKE/POWER/Corleone with real-quality workers."""

from repro.experiments import table3

SCALE = 0.4


def test_table3(benchmark, show):
    result = benchmark.pedantic(
        table3.run, kwargs={"scale": SCALE, "seed": 0}, rounds=1, iterations=1
    )
    show(result)
    assert len(result.rows) == 4
    # Shape check: Remp asks fewer questions than Corleone on every dataset.
    for cells in result.raw.values():
        assert cells["Remp"][1] <= cells["Corleone"][1]
