"""Bench for Table IV: attribute matching with vs without the 1:1 constraint."""

from repro.experiments import table4


def test_table4(benchmark, show):
    result = benchmark.pedantic(
        table4.run, kwargs={"scale": 1.0, "seed": 0}, rounds=1, iterations=1
    )
    show(result)
    assert len(result.rows) == 2
    # Shape check: the 1:1 constraint never hurts precision.
    for values in result.raw.values():
        assert values["with"].precision >= values["without"].precision - 1e-9
