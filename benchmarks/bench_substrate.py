"""Benchmark: the shared prepare substrate vs per-session kernel rebuilds.

What the substrate (:mod:`repro.substrate`) amortizes is the cost of
turning a stored prepared state back into a *loop-ready* one — the
packed dominance matrix, the literal-interning arenas, the token
indexes.  Without sharing, every session (and historically every pool
worker) rebuilt those from scratch; with it, the first session on a
``(KB pair, config)`` key pays once and every later session adopts.

``test_second_session_speedup`` times exactly that boundary for a
*second* session on the same ``(KB pair, config)`` key, three ways:

* **unshared** — private store, private substrate cache: the session
  recomputes and re-packs everything (the fully isolated baseline);
* **blob** — shared store, fresh substrate cache: a *new process*
  loading the prepared state and adopting the persisted packed blob;
* **hot** — shared store and same-process substrate cache: pointer
  adoption from the live arena.

The hot path must beat unshared by the ≥ 1.5x acceptance bar (and the
cold-process blob path by ≥ 1.1x); the assertion self-gates the same
way ``bench_prepare`` gates — when the unshared measurement is too
small to time reliably (tiny CI smoke scales) the bar is skipped and
only harness correctness is checked.
Byte-identity is asserted in every mode, always: two concurrent shared
sessions, an isolated unshared session, a ``REPRO_NO_ACCEL=1`` session,
and a ``workers``-wide partitioned run all produce identical results.

Scale knobs (environment):

``REPRO_BENCH_SUBSTRATE_DATASET``  registry dataset (default dbpedia_yago)
``REPRO_BENCH_SUBSTRATE_SCALE``    dataset scale (default 2.0)
``REPRO_BENCH_WORKERS``            pool size for the partitioned case (default 4)

Every sample lands in the unified ``BENCH_history.jsonl`` trajectory
(:func:`repro.obs.append_bench_history`) that ``repro bench compare``
diffs across CI runs.
"""

import gc
import os
import time

import pytest

from repro.accel.runtime import force_accel
from repro.obs import append_bench_history
from repro.service import MatchingService
from repro.store import RunStore
from repro.substrate import SubstrateCache

DATASET = os.environ.get("REPRO_BENCH_SUBSTRATE_DATASET", "dbpedia_yago")
SCALE = float(os.environ.get("REPRO_BENCH_SUBSTRATE_SCALE", "2.0"))
WORKERS = int(os.environ.get("REPRO_BENCH_WORKERS", "4"))

#: Unshared wall-clock below which a speedup ratio is noise, not signal.
MIN_MEASURABLE_SECONDS = 1.0

HOT_SPEEDUP_BAR = 1.5
BLOB_SPEEDUP_BAR = 1.1


def _service(store, cache=None):
    # `is None`, not `or`: an *empty* SubstrateCache is falsy (len 0).
    cache = SubstrateCache() if cache is None else cache
    return MatchingService(store, substrate_cache=cache)


def _loop_ready(path, cache=None):
    """(seconds, vectors, packed) for one fresh session to reach a
    loop-ready packed state.  ``gc.collect()`` first so earlier modes'
    released states don't tax this one's allocations."""
    gc.collect()
    with _service(RunStore(path), cache) as service:
        start = time.perf_counter()
        state = service.prepared(DATASET, scale=SCALE)
        packed = state.vector_index.packed()
        elapsed = time.perf_counter() - start
    return elapsed, state.vector_index.vectors, packed


def test_second_session_speedup(tmp_path):
    shared_path = tmp_path / "shared.db"
    cache = SubstrateCache()
    with _service(RunStore(shared_path), cache) as service:
        start = time.perf_counter()
        first = service.prepared(DATASET, scale=SCALE)
        t_first = time.perf_counter() - start

    # A cold process on the shared store (fresh arena cache, blob adopt),
    # then a sibling session in this process (live arena, pointer adopt),
    # then the fully isolated baseline (private store: full recompute).
    t_blob, v_blob, _ = _loop_ready(shared_path)
    t_hot, v_hot, p_hot = _loop_ready(shared_path, cache=cache)
    t_unshared, v_unshared, _ = _loop_ready(tmp_path / "isolated.db")

    # Harness correctness in every mode, regardless of timings.
    assert v_blob == v_hot == v_unshared == first.vector_index.vectors
    assert p_hot is first.vector_index._packed

    blob_speedup = t_unshared / t_blob if t_blob else float("inf")
    hot_speedup = t_unshared / t_hot if t_hot else float("inf")
    print(
        f"\n{DATASET} x{SCALE}: first session {t_first:.2f}s; second session "
        f"loop-ready unshared {t_unshared:.2f}s, blob {t_blob:.2f}s "
        f"({blob_speedup:.2f}x), hot {t_hot:.2f}s ({hot_speedup:.2f}x)"
    )
    append_bench_history(
        "substrate",
        meta={
            "bench": "substrate",
            "dataset": DATASET,
            "scale": SCALE,
            "blob_speedup": round(blob_speedup, 3),
            "hot_speedup": round(hot_speedup, 3),
        },
        stages={
            "substrate.first_session": t_first,
            "substrate.second_unshared": t_unshared,
            "substrate.second_blob": t_blob,
            "substrate.second_hot": t_hot,
        },
    )
    if t_unshared >= MIN_MEASURABLE_SECONDS:
        assert hot_speedup >= HOT_SPEEDUP_BAR, (
            f"expected >= {HOT_SPEEDUP_BAR}x via hot arena, measured {hot_speedup:.2f}x"
        )
        assert blob_speedup >= BLOB_SPEEDUP_BAR, (
            f"expected >= {BLOB_SPEEDUP_BAR}x via store blob, measured {blob_speedup:.2f}x"
        )
    else:
        pytest.skip(
            f"unshared rebuild took {t_unshared:.3f}s "
            f"(< {MIN_MEASURABLE_SECONDS}s); speedup bar needs a larger scale"
        )


def test_concurrent_sessions_identical_in_every_mode(tmp_path):
    """Two shared sessions == isolated session == pure-Python session."""
    cache = SubstrateCache()
    shared_results = []
    for name in ("a", "b"):
        with _service(RunStore(tmp_path / f"{name}.db"), cache) as service:
            shared_results.append(
                service.result(service.submit(DATASET, scale=SCALE, background=False))
            )
    with _service(RunStore(tmp_path / "isolated.db")) as service:
        isolated = service.result(
            service.submit(DATASET, scale=SCALE, background=False)
        )
    with force_accel(False):
        with _service(RunStore(tmp_path / "fallback.db")) as service:
            fallback = service.result(
                service.submit(DATASET, scale=SCALE, background=False)
            )
    for result in (*shared_results, fallback):
        assert result.matches == isolated.matches
        assert result.questions_asked == isolated.questions_asked
        assert result.history == isolated.history


def test_partitioned_pool_shares_the_parent_matrix(tmp_path):
    """A ``workers``-wide run adopts the pre-forked pack — and matches."""
    cache = SubstrateCache()
    with _service(RunStore(tmp_path / "mono.db"), cache) as service:
        mono = service.result(
            service.submit("evolving", scale=1.0, background=False)
        )
    with _service(RunStore(tmp_path / "pool.db"), cache) as service:
        start = time.perf_counter()
        run_id = service.submit(
            "evolving", scale=1.0, workers=WORKERS, background=False
        )
        pooled = service.result(run_id)
        t_pool = time.perf_counter() - start
        counters = service.store.load_run_obs(run_id)["metrics"]["counters"]
    assert pooled.matches == mono.matches
    assert pooled.questions_asked == mono.questions_asked
    assert counters.get("substrate.worker.attach", 0) >= 1
    assert "substrate.worker.base_unpacked" not in counters
    print(f"\n{WORKERS}-worker partitioned run: {t_pool:.2f}s, no worker re-packed")
    append_bench_history(
        "substrate",
        meta={"bench": "substrate", "workers": WORKERS},
        stages={"substrate.pool": t_pool},
    )
