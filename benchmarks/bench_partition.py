"""Benchmark: partitioned parallel execution vs sequential execution.

The clustered dataset decomposes into one entity-closure component per
studio cluster, so the partition layer can fan the human–machine loop
across a process pool.  ``test_partition_speedup`` times prepare+loop
end-to-end for ``workers=1`` and ``workers=N`` and prints the wall-clock
speedup; on a machine with ≥ 4 usable cores it asserts the ≥ 2x
acceptance bar.  The pytest-benchmark cases time each mode individually.

Scale knobs (environment):

``REPRO_BENCH_CLUSTERS``  number of clusters/components (default 24)
``REPRO_BENCH_MOVIES``    movies per cluster (default 16)
``REPRO_BENCH_WORKERS``   pool size for the parallel case (default 4)

CI runs this file at tiny scale (see the workflow's bench-smoke step) to
keep the harness itself honest; the speedup assertion self-gates on the
available cores, so the smoke run checks correctness, not throughput.
"""

import os
import time

import pytest

from repro.core import Remp
from repro.datasets import clustered_bundle
from repro.eval import evaluate_matches
from repro.obs import append_bench_history
from repro.partition import CrowdSpec, ParallelRunner, partition_state

CLUSTERS = int(os.environ.get("REPRO_BENCH_CLUSTERS", "24"))
MOVIES = int(os.environ.get("REPRO_BENCH_MOVIES", "16"))
WORKERS = int(os.environ.get("REPRO_BENCH_WORKERS", "4"))
LABEL_NOISE = 0.5
ERROR_RATE = 0.05


def _bundle():
    return clustered_bundle(
        num_clusters=CLUSTERS,
        movies_per_cluster=MOVIES,
        seed=0,
        label_noise=LABEL_NOISE,
    )


def _crowd(bundle):
    return CrowdSpec(truth=bundle.gold_matches, error_rate=ERROR_RATE, seed=0)


def _prepare_and_run(bundle, workers):
    """The full pipeline one shard-parallel run amortizes: prepare + loop."""
    state = Remp().prepare(bundle.kb1, bundle.kb2)
    runner = ParallelRunner(workers=workers, target_shards=CLUSTERS)
    return runner.run(state, _crowd(bundle))


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def test_partition_prepare_and_loop_sequential(benchmark):
    bundle = _bundle()
    result = benchmark.pedantic(
        _prepare_and_run, args=(bundle, 1), rounds=1, iterations=1
    )
    assert result.matches


def test_partition_prepare_and_loop_pool(benchmark):
    bundle = _bundle()
    result = benchmark.pedantic(
        _prepare_and_run, args=(bundle, WORKERS), rounds=1, iterations=1
    )
    assert result.matches


def test_partition_speedup():
    """Prepare+loop wall clock, sequential vs pool, with ≥ 8 components."""
    bundle = _bundle()
    state = Remp().prepare(bundle.kb1, bundle.kb2)
    plan = partition_state(state, target_shards=CLUSTERS)
    assert plan.num_components >= min(8, CLUSTERS)

    start = time.perf_counter()
    sequential = _prepare_and_run(bundle, 1)
    t_sequential = time.perf_counter() - start
    start = time.perf_counter()
    pooled = _prepare_and_run(bundle, WORKERS)
    t_pooled = time.perf_counter() - start

    assert pooled.matches == sequential.matches
    assert pooled.questions_asked == sequential.questions_asked
    quality = evaluate_matches(pooled.matches, bundle.gold_matches)
    speedup = t_sequential / t_pooled if t_pooled else float("inf")
    cores = _usable_cores()
    print(
        f"\n{CLUSTERS} components x {MOVIES} movies, {WORKERS} workers, "
        f"{cores} usable cores: sequential {t_sequential:.2f}s, "
        f"pool {t_pooled:.2f}s -> {speedup:.2f}x speedup "
        f"({quality.as_row()}, {pooled.questions_asked} questions)"
    )
    append_bench_history(
        "partition",
        meta={
            "bench": "partition",
            "clusters": CLUSTERS,
            "movies": MOVIES,
            "workers": WORKERS,
            "cores": cores,
            "speedup": round(speedup, 3),
        },
        stages={
            "partition.sequential": t_sequential,
            "partition.pool": t_pooled,
        },
    )
    if cores >= 4 and WORKERS >= 4:
        assert speedup >= 2.0, (
            f"expected >= 2x on {cores} cores, measured {speedup:.2f}x"
        )
    else:
        pytest.skip(
            f"speedup assertion needs >= 4 usable cores (have {cores}); "
            f"measured {speedup:.2f}x"
        )
