"""Sampling wall-clock profiler: folded-stack flamegraphs per run.

A :class:`SamplingProfiler` is a daemon thread that periodically grabs
the target thread's Python stack via ``sys._current_frames()`` and
accumulates *folded stacks* — ``root;child;leaf`` frame paths mapped to
sample counts, the input format of every flamegraph renderer
(Brendan Gregg's ``flamegraph.pl``, speedscope, inferno).

Activation is per :class:`~repro.obs.runtime.RunScope`: when profiling
is enabled (``REPRO_PROFILE=1`` or an explicit ``profile=True``), each
``scope.activate()`` samples the activating thread for the duration of
the activation, and samples accumulate across activations (a service
session activates once per step).  Shard pool workers run their own
scope; their folded stacks ship back with the shard outcome and the
parent absorbs them, so a partitioned run's profile covers the workers
too.

Sampling is read-only observation of foreign frames — it cannot alter
control flow, so profiled runs stay byte-identical (same contract as
tracing).  Overhead at the default 5 ms interval is bounded by the
bench_obs self-gating bar (≤ 5%).
"""

from __future__ import annotations

import os
import sys
import threading
from collections import Counter

_TRUTHY = ("1", "true", "yes", "on")

#: Default seconds between samples (``REPRO_PROFILE_INTERVAL`` overrides).
DEFAULT_INTERVAL = 0.005

#: Frames from these runtime modules carry no signal — drop them from
#: the leaf end so flamegraphs show pipeline code, not the profiler.
_SKIP_MODULES = ("repro.obs.profile",)


def profiling_enabled() -> bool:
    """Whether the ``REPRO_PROFILE`` environment gate is on."""
    return os.environ.get("REPRO_PROFILE", "").strip().lower() in _TRUTHY


def profile_interval() -> float:
    """Sampling interval in seconds (``REPRO_PROFILE_INTERVAL`` gate)."""
    raw = os.environ.get("REPRO_PROFILE_INTERVAL", "").strip()
    try:
        value = float(raw)
    except ValueError:
        return DEFAULT_INTERVAL
    return value if value > 0 else DEFAULT_INTERVAL


def _frame_label(frame) -> str:
    code = frame.f_code
    module = frame.f_globals.get("__name__", "?")
    qualname = getattr(code, "co_qualname", code.co_name)
    return f"{module}.{qualname}"


def fold_stack(frame) -> str | None:
    """Render one captured frame chain as a root-first folded stack."""
    labels = []
    while frame is not None:
        label = _frame_label(frame)
        if not label.startswith(_SKIP_MODULES):
            labels.append(label)
        frame = frame.f_back
    if not labels:
        return None
    labels.reverse()
    return ";".join(labels)


class SamplingProfiler:
    """Periodically sample one thread's stack into folded-stack counts."""

    def __init__(self, interval: float | None = None):
        self.interval = interval if interval is not None else profile_interval()
        self.stacks: Counter[str] = Counter()
        self.samples = 0
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._target_ident: int | None = None

    # ------------------------------------------------------------------
    def start(self, target_ident: int | None = None) -> None:
        """Begin sampling the target thread (default: the caller)."""
        if self._thread is not None:
            return
        self._target_ident = (
            target_ident if target_ident is not None else threading.get_ident()
        )
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-profiler", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Stop sampling; accumulated stacks survive for the next start."""
        thread = self._thread
        if thread is None:
            return
        self._stop.set()
        thread.join(timeout=2.0)
        self._thread = None

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            frame = sys._current_frames().get(self._target_ident)
            if frame is None:
                continue
            folded = fold_stack(frame)
            if folded is None:
                continue
            with self._lock:
                self.stacks[folded] += 1
                self.samples += 1

    # ------------------------------------------------------------------
    def absorb(self, doc: dict) -> None:
        """Fold another profiler's exported document into this one."""
        with self._lock:
            self.samples += doc.get("samples", 0)
            for stack, count in doc.get("stacks", {}).items():
                self.stacks[stack] += count

    def as_doc(self) -> dict:
        """JSON-able snapshot: interval, total samples, folded stacks."""
        with self._lock:
            return {
                "interval": self.interval,
                "samples": self.samples,
                "stacks": dict(sorted(self.stacks.items())),
            }


def folded_text(doc: dict) -> str:
    """Render a profile document as ``stack count`` flamegraph lines."""
    lines = [
        f"{stack} {count}"
        for stack, count in sorted(doc.get("stacks", {}).items())
    ]
    return "\n".join(lines) + ("\n" if lines else "")


def top_stacks(doc: dict, limit: int = 10) -> list[tuple[str, int]]:
    """The heaviest folded stacks, for textual summaries."""
    ranked = sorted(
        doc.get("stacks", {}).items(), key=lambda kv: (-kv[1], kv[0])
    )
    return ranked[:limit]


__all__ = [
    "DEFAULT_INTERVAL",
    "SamplingProfiler",
    "fold_stack",
    "folded_text",
    "profile_interval",
    "profiling_enabled",
    "top_stacks",
]
