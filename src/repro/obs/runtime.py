"""The run scope: one observability container per run (or shard task).

A :class:`RunScope` bundles the three collectors — a
:class:`~repro.obs.trace.Tracer`, a
:class:`~repro.obs.metrics.MetricsRegistry` and a private
:class:`~repro.accel.runtime.KernelTimings` — and activates them via
the :mod:`repro.obs.context` context variable.  While a scope is
active, every :data:`repro.accel.runtime.TIMINGS` stage automatically
lands in the scope's own timings *and* emits a span, and the module
helpers below (:func:`count`, :func:`gauge`, :func:`span`,
:func:`event`) route to the scope; outside any activation they are
no-ops, so library code can instrument unconditionally.

This replaces the snapshot/diff dance against the global ``TIMINGS``
singleton: a session persists ``scope.timings`` — only what ran under
its own activations — so concurrent sessions can no longer contaminate
each other's profiles.
"""

from __future__ import annotations

import time
from contextlib import contextmanager

from repro.accel.runtime import KernelTimings, stages_doc
from repro.obs.context import current_scope, pop_scope, push_scope
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import SamplingProfiler, profiling_enabled
from repro.obs.trace import NO_SPAN, Tracer


class RunScope:
    """Per-run collectors plus the activation context manager."""

    def __init__(
        self,
        run_id: str | None = None,
        *,
        shard_id: int | None = None,
        stream_step: int | None = None,
        trace: bool | None = None,
        profile: bool | None = None,
    ):
        self.run_id = run_id
        self.tracer = Tracer(
            run_id, shard_id=shard_id, stream_step=stream_step, enabled=trace
        )
        self.metrics = MetricsRegistry()
        self.timings = KernelTimings()
        # The wall-clock sampler is created lazily on the first profiled
        # activation; ``None`` for ``profile`` defers to the
        # ``REPRO_PROFILE`` environment gate at each activation, so a
        # scope built before the gate flips still honours it.
        self._profile = profile
        self.profiler: SamplingProfiler | None = None

    @property
    def profiling(self) -> bool:
        return profiling_enabled() if self._profile is None else self._profile

    @contextmanager
    def activate(self):
        """Make this the current scope for the calling context.

        A profiled scope samples the activating thread's wall-clock
        stacks for the duration of the activation; samples accumulate
        across activations (a session activates once per step).
        """
        token = push_scope(self)
        profiler = None
        if self.profiling:
            if self.profiler is None:
                self.profiler = SamplingProfiler()
            profiler = self.profiler
            profiler.start()
        try:
            yield self
        finally:
            if profiler is not None:
                profiler.stop()
            pop_scope(token)

    # ------------------------------------------------------------------
    def publish(self, kind: str, **fields) -> None:
        """Post one progress event onto the process-wide telemetry bus.

        The event carries the scope's correlation fields (run_id /
        shard_id / stream_step) plus ``fields``; a subscribed
        :class:`~repro.obs.live.StoreEventWriter` persists it so other
        processes can tail the run.  Progress events are operational —
        like counters, they stay on under ``REPRO_NO_TRACE``.
        """
        from repro.obs.live import BUS

        event = {"kind": kind, "ts": time.time()}
        if self.run_id is not None:
            event["run_id"] = self.run_id
        event.update(self.tracer.correlation)
        event.update(fields)
        BUS.publish(event)

    # ------------------------------------------------------------------
    def absorb(
        self,
        *,
        spans: list | None = None,
        metrics: dict | None = None,
        profile: dict | None = None,
    ) -> None:
        """Fold a child scope's exported spans/metrics/profile into this one.

        Shard timings travel separately (``TIMINGS.merge`` routes to the
        active scope), mirroring how the pool has always shipped deltas.
        """
        if spans:
            self.tracer.add_spans(spans)
        if metrics:
            self.metrics.merge(metrics)
        if profile and profile.get("samples"):
            if self.profiler is None:
                self.profiler = SamplingProfiler(
                    interval=profile.get("interval")
                )
            self.profiler.absorb(profile)

    def export(self) -> dict:
        """JSON-able document of everything the scope collected."""
        doc = {
            "metrics": self.metrics.as_doc(),
            "timings": stages_doc(self.timings.snapshot()),
            "trace": self.tracer.spans(),
        }
        if self.tracer.dropped:
            doc["trace_dropped"] = self.tracer.dropped
        if self.profiler is not None and self.profiler.samples:
            doc["profile"] = self.profiler.as_doc()
        return doc


# ----------------------------------------------------------------------
# Scope-routed module helpers (no-ops outside an activation)
# ----------------------------------------------------------------------
def count(name: str, value: float = 1) -> None:
    scope = current_scope()
    if scope is not None:
        scope.metrics.count(name, value)


def gauge(name: str, value: float) -> None:
    scope = current_scope()
    if scope is not None:
        scope.metrics.gauge(name, value)


def span(name: str, **fields):
    scope = current_scope()
    if scope is None or not scope.tracer.enabled:
        return NO_SPAN
    return scope.tracer.span(name, **fields)


def event(name: str, **fields) -> None:
    scope = current_scope()
    if scope is not None:
        scope.tracer.event(name, **fields)


def publish(kind: str, **fields) -> None:
    """Post a progress event onto the telemetry bus via the active scope."""
    scope = current_scope()
    if scope is not None:
        scope.publish(kind, **fields)


def absorb(
    *,
    spans: list | None = None,
    metrics: dict | None = None,
    profile: dict | None = None,
) -> None:
    """Fold child spans/metrics/profile into the active scope, if any."""
    scope = current_scope()
    if scope is not None:
        scope.absorb(spans=spans, metrics=metrics, profile=profile)
