"""``repro.obs`` — structured tracing, run metrics, run artifacts.

A process-wide but run-scoped observability layer:

* :class:`RunScope` — one container per run (tracer + metrics registry +
  private stage timings), activated via a context variable so concurrent
  sessions never contaminate each other's profiles.
* :class:`Tracer` / :class:`MetricsRegistry` — the collectors; spans are
  gated by ``REPRO_NO_TRACE=1`` and never perturb results.
* :func:`count` / :func:`gauge` / :func:`span` / :func:`event` — module
  helpers that route to the active scope and no-op outside one, so
  library code instruments unconditionally.
* :func:`export_run_artifacts` — the ``runs/<run_id>/`` artifact
  contract (``meta.json`` + ``trace.jsonl`` + ``metrics.json`` +
  ``cost_ledger.json`` + ``result.json``).
* :func:`get_logger` — stdlib logging for the serving layers, gated by
  ``REPRO_LOG=<level>``.

Exports resolve lazily (PEP 562): :mod:`repro.accel.runtime` imports
:mod:`repro.obs.context` from the very bottom of the dependency graph,
which runs this ``__init__`` — an eager import of the artifact helpers
here would re-enter :mod:`repro.core` mid-initialisation.
"""

from importlib import import_module

#: Public name -> defining submodule (resolved on first attribute access).
_EXPORTS = {
    "ARTIFACT_FILES": "repro.obs.artifacts",
    "benchmark_metrics_doc": "repro.obs.artifacts",
    "export_run_artifacts": "repro.obs.artifacts",
    "fallback_cost_ledger": "repro.obs.artifacts",
    "run_meta": "repro.obs.artifacts",
    "current_scope": "repro.obs.context",
    "append_bench_history": "repro.obs.export",
    "chrome_trace": "repro.obs.export",
    "filter_spans": "repro.obs.export",
    "load_bench_history": "repro.obs.export",
    "prometheus_text": "repro.obs.export",
    "validate_chrome_trace": "repro.obs.export",
    "BUS": "repro.obs.live",
    "RunWatch": "repro.obs.live",
    "StoreEventWriter": "repro.obs.live",
    "TelemetryBus": "repro.obs.live",
    "render_top": "repro.obs.live",
    "get_logger": "repro.obs.logging",
    "MetricsRegistry": "repro.obs.metrics",
    "SamplingProfiler": "repro.obs.profile",
    "folded_text": "repro.obs.profile",
    "profiling_enabled": "repro.obs.profile",
    "RunScope": "repro.obs.runtime",
    "absorb": "repro.obs.runtime",
    "count": "repro.obs.runtime",
    "event": "repro.obs.runtime",
    "gauge": "repro.obs.runtime",
    "publish": "repro.obs.runtime",
    "span": "repro.obs.runtime",
    "compare": "repro.obs.sentinel",
    "load_snapshot": "repro.obs.sentinel",
    "render_report": "repro.obs.sentinel",
    "Tracer": "repro.obs.trace",
    "tracing_enabled": "repro.obs.trace",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    try:
        module = _EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    value = getattr(import_module(module), name)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
