"""Structured tracing: nested spans with run/shard/stream correlation.

A :class:`Tracer` collects *spans* — plain JSON-able dicts with a name,
an epoch start timestamp, a duration and optional free-form fields —
cheaply enough to stay on by default (see ``benchmarks/bench_obs.py``
for the self-gating overhead bar).  Nesting is tracked per thread, so a
span opened inside another span records its parent id; shard workers
run their own tracer and the parent absorbs their spans with the shard
correlation fields already stamped.

``REPRO_NO_TRACE=1`` disables span collection process-wide: ``span()``
degrades to a shared no-op context manager and ``event()`` to a no-op
call.  Tracing never influences control flow, so results are
byte-identical either way (pinned by ``tests/test_obs.py``).
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from contextlib import contextmanager, nullcontext

_TRUTHY = ("1", "true", "yes", "on")

#: Shared do-nothing context manager returned when tracing is off.
NO_SPAN = nullcontext()

#: Hard cap on buffered spans per tracer — a backstop against unbounded
#: memory on pathological runs, never hit by realistic workloads.  The
#: overflow is *not* silent: ``dropped`` counts what the cap discarded.
MAX_SPANS = 100_000


def tracing_enabled() -> bool:
    """Whether span collection is active (``REPRO_NO_TRACE`` gate)."""
    return os.environ.get("REPRO_NO_TRACE", "").strip().lower() not in _TRUTHY


class Tracer:
    """Run-scoped span collector.

    Parameters
    ----------
    run_id, shard_id, stream_step:
        Correlation fields stamped on every span (omitted when ``None``).
    enabled:
        Overrides the ``REPRO_NO_TRACE`` environment gate (tests, benches).
    """

    def __init__(
        self,
        run_id: str | None = None,
        *,
        shard_id: int | None = None,
        stream_step: int | None = None,
        enabled: bool | None = None,
    ):
        self.enabled = tracing_enabled() if enabled is None else enabled
        self.correlation = {}
        if run_id is not None:
            self.correlation["run_id"] = run_id
        if shard_id is not None:
            self.correlation["shard_id"] = shard_id
        if stream_step is not None:
            self.correlation["stream_step"] = stream_step
        self.dropped = 0
        self._spans: list[dict] = []
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._local = threading.local()

    # ------------------------------------------------------------------
    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _append(self, span: dict) -> None:
        with self._lock:
            if len(self._spans) >= MAX_SPANS:
                self.dropped += 1
                return
            self._spans.append(span)

    @contextmanager
    def span(self, name: str, **fields):
        """Record one timed span; nests under any enclosing span."""
        if not self.enabled:
            yield None
            return
        span = {"name": name, "id": next(self._ids), "ts": time.time()}
        stack = self._stack()
        if stack:
            span["parent_id"] = stack[-1]["id"]
        span.update(self.correlation)
        if fields:
            span.update(fields)
        stack.append(span)
        start = time.perf_counter()
        try:
            yield span
        finally:
            span["dur"] = round(time.perf_counter() - start, 6)
            stack.pop()
            self._append(span)

    def event(self, name: str, **fields) -> None:
        """Record a zero-duration span (a point-in-time marker)."""
        if not self.enabled:
            return
        span = {"name": name, "id": next(self._ids), "ts": time.time(), "dur": 0.0}
        stack = self._stack()
        if stack:
            span["parent_id"] = stack[-1]["id"]
        span.update(self.correlation)
        if fields:
            span.update(fields)
        self._append(span)

    # ------------------------------------------------------------------
    def add_spans(self, spans: list[dict]) -> None:
        """Absorb a child tracer's exported spans (shard workers)."""
        for span in spans:
            self._append(dict(span))

    def spans(self) -> list[dict]:
        """All recorded spans, in start order."""
        with self._lock:
            return sorted(self._spans, key=lambda s: (s["ts"], s["id"]))
