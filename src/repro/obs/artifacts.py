"""The per-run artifact contract: ``runs/<run_id>/``.

Every stored run exports one directory with a fixed layout, so benches,
CI and serving front ends all read the same shape:

``meta.json``
    Run identity and provenance: config hash, dataset/seed/scale, accel
    flag, package version, strategy, pool size, stream lineage fields.
``trace.jsonl``
    One span per line (start order) from the run's tracer.
``metrics.json``
    ``{"counters": {...}, "gauges": {...}}`` — the run's registry.
``cost_ledger.json``
    ``{"total": N, "items": [...]}`` itemising billed questions by
    loop, shard or stream unit; ``total`` equals the stored result's
    ``questions_asked``.
``result.json``
    The final :class:`~repro.core.RempResult` document.
``profile.folded``
    Optional: folded-stack wall-clock samples (flamegraph input), only
    for runs executed with profiling on (``REPRO_PROFILE=1``).

Benchmarks reuse the metrics shape through
:func:`benchmark_metrics_doc` (``BENCH_obs.json``), and the CLI verbs
``runs trace`` / ``runs metrics`` / ``runs export-artifacts`` read it.
Runs persisted before the obs layer still export: meta falls back to
the ledger row and the cost ledger collapses to one run-level item.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.store.serialize import result_to_doc


def _package_version() -> str:
    # Imported lazily: this module is loaded while ``repro/__init__`` is
    # still executing (service -> obs), before ``__version__`` is bound.
    from repro import __version__

    return __version__

#: File names of the contract, in the order they are written.
ARTIFACT_FILES = (
    "meta.json",
    "trace.jsonl",
    "metrics.json",
    "cost_ledger.json",
    "result.json",
)


def run_meta(record, *, accel: bool | None = None, extra: dict | None = None) -> dict:
    """The ``meta.json`` document for a ledger row."""
    meta = {
        "run_id": record.run_id,
        "dataset": record.dataset,
        "seed": record.seed,
        "scale": record.scale,
        "config_hash": record.config_hash,
        "strategy": record.strategy,
        "error_rate": record.error_rate,
        "status": record.status,
        "workers": record.workers,
        "parent_run_id": record.parent_run_id,
        "stream_step": record.stream_step,
        "kb_fingerprint": record.kb_fingerprint,
        "created_at": record.created_at,
        "updated_at": record.updated_at,
        "repro_version": _package_version(),
    }
    if accel is not None:
        meta["accel"] = accel
    if extra:
        meta.update(extra)
    return meta


def fallback_cost_ledger(record) -> dict:
    """A one-item ledger for runs that predate the obs layer.

    The invariant still holds: the total equals the ledger row's
    question count (which ``finish_run`` copies from the result).
    """
    return {
        "total": record.questions_asked,
        "items": [
            {
                "scope": "run",
                "key": record.run_id,
                "questions": record.questions_asked,
            }
        ],
    }


def _dump(path: Path, doc) -> None:
    path.write_text(json.dumps(doc, indent=1, sort_keys=True) + "\n")


def export_run_artifacts(
    store, run_id: str, root: str | Path = "runs", *, force: bool = False
) -> Path:
    """Materialise ``<root>/<run_id>/`` from the store; returns the dir.

    ``store`` is a :class:`repro.store.RunStore` (or anything exposing
    ``get_run`` / ``load_run_obs`` / ``load_run_timings`` /
    ``get_result``).  Raises :class:`KeyError` for an unknown run, and
    :class:`FileExistsError` when the destination already exists unless
    ``force`` — a previous export (possibly of a *different* store's
    run under the same id) is never silently overwritten.
    """
    record = store.get_run(run_id)
    if record is None:
        raise KeyError(f"unknown run {run_id!r}")
    obs_doc = store.load_run_obs(run_id) or {}
    timings = store.load_run_timings(run_id)

    dest = Path(root) / run_id
    if dest.exists() and any(dest.iterdir()) and not force:
        raise FileExistsError(
            f"{dest} already exists; pass force=True (--force) to overwrite"
        )
    dest.mkdir(parents=True, exist_ok=True)

    meta = obs_doc.get("meta") or run_meta(
        record, accel=None if timings is None else bool(timings.get("accel"))
    )
    if timings is not None and "stage_timings" not in meta:
        meta["stage_timings"] = timings.get("stages", {})
    _dump(dest / "meta.json", meta)

    spans = obs_doc.get("trace", [])
    with (dest / "trace.jsonl").open("w") as sink:
        for span in spans:
            sink.write(json.dumps(span, sort_keys=True) + "\n")

    _dump(dest / "metrics.json", obs_doc.get("metrics") or {"counters": {}, "gauges": {}})
    _dump(dest / "cost_ledger.json", obs_doc.get("cost_ledger") or fallback_cost_ledger(record))

    result = store.get_result(run_id)
    if result is not None:
        _dump(dest / "result.json", result_to_doc(result))

    profile = obs_doc.get("profile")
    if profile and profile.get("stacks"):
        from repro.obs.profile import folded_text

        (dest / "profile.folded").write_text(folded_text(profile))
    return dest


def benchmark_metrics_doc(meta: dict, metrics: dict) -> dict:
    """The ``BENCH_*.json`` shape: run-artifact meta + metrics documents.

    ``metrics`` is a :meth:`~repro.obs.metrics.MetricsRegistry.as_doc`
    document — the exact shape ``metrics.json`` carries per run — so
    trajectory tooling parses bench artifacts and run artifacts alike.
    """
    return {"meta": dict(meta), "metrics": dict(metrics)}
