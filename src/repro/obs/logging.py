"""Stdlib logging for the serving layers, gated by ``REPRO_LOG``.

``REPRO_LOG=<level>`` (``debug``/``info``/``warning``/…) attaches one
stderr handler to the ``repro`` logger tree at that level; unset, the
tree gets a :class:`logging.NullHandler` and stays silent — library
code must never spam a host application's root logger.  The progress
printer keeps its own stderr line (it is a UI, not a log); everything
else in ``service``/``partition``/``stream`` logs through here.
"""

from __future__ import annotations

import logging
import os
import sys

LOG_ENV = "REPRO_LOG"

#: The env value the handler currently reflects (None = not configured).
_applied: str | None = None


def _configure() -> None:
    """(Re)apply the ``REPRO_LOG`` setting to the ``repro`` logger tree.

    Idempotent per env value, and cheap when nothing changed — safe to
    call on every :func:`get_logger`.  Tests (and long-lived hosts) may
    flip the variable between calls; the handler follows.
    """
    global _applied
    value = os.environ.get(LOG_ENV, "").strip()
    if value == _applied:
        return
    root = logging.getLogger("repro")
    for handler in list(root.handlers):
        root.removeHandler(handler)
    if value:
        level = getattr(logging, value.upper(), None)
        if not isinstance(level, int):
            level = logging.INFO
        handler = logging.StreamHandler(sys.stderr)
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(levelname)s %(name)s: %(message)s")
        )
        root.addHandler(handler)
        root.setLevel(level)
    else:
        root.addHandler(logging.NullHandler())
        root.setLevel(logging.WARNING)
    _applied = value


def get_logger(name: str) -> logging.Logger:
    """A logger under the ``repro`` tree, configured per ``REPRO_LOG``."""
    _configure()
    if not name.startswith("repro"):
        name = f"repro.{name}"
    return logging.getLogger(name)
