"""Run-scoped metrics: named counters and gauges.

A :class:`MetricsRegistry` is the numeric half of :mod:`repro.obs`:
counters accumulate (questions billed, cache hits, pruning discards,
shard lifecycle transitions, stream unit reuse), gauges hold the last
observed value (reuse rate, shard count).  Registries merge — shard
workers ship their registry document back with the shard outcome and
the parent folds it in, exactly like the pool timing deltas.
"""

from __future__ import annotations

import threading


class MetricsRegistry:
    """Thread-safe counter/gauge registry with a stable JSON document."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}

    # ------------------------------------------------------------------
    def count(self, name: str, value: float = 1) -> None:
        """Add ``value`` to the named counter (created at zero)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        """Set the named gauge to its latest observation."""
        with self._lock:
            self._gauges[name] = value

    def counter(self, name: str) -> float:
        with self._lock:
            return self._counters.get(name, 0)

    # ------------------------------------------------------------------
    def merge(self, doc: "MetricsRegistry | dict") -> None:
        """Fold another registry (or its document) into this one.

        Counters add; gauges take the element-wise **maximum**.  Direct
        :meth:`gauge` writes stay last-write-wins (a session observing
        its own signal over time), but merges absorb *sibling* scopes —
        shard workers whose absorption order depends on pool scheduling
        — so the combining operator must be commutative and associative
        for the merged document to be order-independent.  Max is, and it
        matches what the gauges mean (high-water marks: shard counts,
        loop indexes, reuse rates of the final layout).  Pinned by
        ``tests/test_obs.py`` with a hypothesis property.
        """
        if isinstance(doc, MetricsRegistry):
            doc = doc.as_doc()
        with self._lock:
            for name, value in doc.get("counters", {}).items():
                self._counters[name] = self._counters.get(name, 0) + value
            for name, value in doc.get("gauges", {}).items():
                if name in self._gauges:
                    self._gauges[name] = max(self._gauges[name], value)
                else:
                    self._gauges[name] = value

    def as_doc(self) -> dict:
        """JSON-able snapshot: ``{"counters": {...}, "gauges": {...}}``."""
        with self._lock:
            return {
                "counters": dict(sorted(self._counters.items())),
                "gauges": dict(sorted(self._gauges.items())),
            }

    @classmethod
    def from_doc(cls, doc: dict) -> "MetricsRegistry":
        registry = cls()
        registry.merge(doc)
        return registry
