"""The cross-run regression sentinel behind ``repro bench compare``.

Benchmarks (and run artifacts) accumulate per-stage timings; the
sentinel diffs two snapshots of them and flags slowdowns that exceed a
*noise-modelled* threshold, so CI can fail on a real regression without
flapping on timer jitter:

* :func:`load_snapshot` normalises any of the artifact shapes this repo
  produces — a ``runs/<id>/`` artifact directory, a
  ``BENCH_history.jsonl`` trajectory (multiple samples per stage), a
  single ``BENCH_*.json`` document — into
  ``{"stages": {name: [seconds, ...]}, "gauges": {...}}``.
* :func:`compare` models each baseline stage as mean ± std across its
  samples and allows ``mean * (1 + max(max_slowdown, z * cv))`` before
  flagging; stages faster than ``min_seconds`` in either snapshot are
  skipped entirely (self-gating — micro-stages are pure noise).
* :func:`render_report` is the human-readable table the CLI prints.

An identical re-run therefore always passes (ratio 1.0 against a ≥ 1.5x
allowance), while a genuine 2x stage slowdown on a measurable stage is
always flagged — the acceptance contract pinned by
``tests/test_sentinel.py``.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path

#: Stages (or gauges) below this many seconds are never compared.
MIN_SECONDS = 0.05

#: Minimum tolerated slowdown before a flag is even possible (50%).
MAX_SLOWDOWN = 0.5

#: Noise multiplier: allowance grows to ``z``× the baseline's
#: coefficient of variation when its samples are noisy.
NOISE_Z = 3.0

#: Gauge names containing one of these fragments are treated as
#: time-like and compared alongside stages.
_TIME_GAUGE_FRAGMENTS = ("seconds", "_time", "duration")


@dataclass
class Snapshot:
    """Normalised perf snapshot: per-stage samples + latest gauges."""

    source: str
    stages: dict[str, list[float]] = field(default_factory=dict)
    gauges: dict[str, float] = field(default_factory=dict)

    def add_stage(self, name: str, seconds: float) -> None:
        self.stages.setdefault(name, []).append(float(seconds))


@dataclass
class Finding:
    """One compared stage (or time-like gauge) and its verdict."""

    name: str
    baseline: float
    current: float
    allowed: float
    flagged: bool
    samples: int = 1

    @property
    def ratio(self) -> float:
        return self.current / self.baseline if self.baseline else math.inf


# ----------------------------------------------------------------------
# Snapshot loading
# ----------------------------------------------------------------------
def load_snapshot(path: str | Path) -> Snapshot:
    """Normalise any supported artifact at ``path`` into a snapshot.

    Accepts a run artifact directory (``meta.json`` stage timings +
    ``metrics.json`` gauges), a ``.jsonl`` benchmark history, or a
    single ``.json`` document (run-artifact metrics shape, or the
    ``BENCH_prepare.json`` trajectory list).
    """
    target = Path(path)
    if not target.exists():
        raise FileNotFoundError(f"no snapshot at {target}")
    snapshot = Snapshot(source=str(target))
    if target.is_dir():
        _load_artifact_dir(target, snapshot)
    elif target.suffix == ".jsonl":
        for entry in _read_jsonl(target):
            _load_entry(entry, snapshot)
    else:
        doc = json.loads(target.read_text(encoding="utf-8"))
        if isinstance(doc, list):
            for entry in doc:
                _load_entry(entry, snapshot)
        else:
            _load_entry(doc, snapshot)
    return snapshot


def _read_jsonl(path: Path) -> list[dict]:
    entries = []
    with path.open(encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                entries.append(json.loads(line))
    return entries


def _load_artifact_dir(root: Path, snapshot: Snapshot) -> None:
    meta_path = root / "meta.json"
    if meta_path.exists():
        meta = json.loads(meta_path.read_text(encoding="utf-8"))
        _absorb_stages(meta.get("stage_timings", {}), snapshot)
    metrics_path = root / "metrics.json"
    if metrics_path.exists():
        metrics = json.loads(metrics_path.read_text(encoding="utf-8"))
        _absorb_metrics(metrics, snapshot)


def _load_entry(entry: dict, snapshot: Snapshot) -> None:
    """Fold one JSON document of any supported shape into the snapshot."""
    if not isinstance(entry, dict):
        return
    _absorb_stages(entry.get("stages", {}), snapshot)
    # bench_prepare trajectory entries carry two stage dicts per sample.
    _absorb_stages(entry.get("stages_accel", {}), snapshot, prefix="accel.")
    _absorb_stages(entry.get("stages_fallback", {}), snapshot, prefix="fallback.")
    meta = entry.get("meta", {})
    if isinstance(meta, dict):
        _absorb_stages(meta.get("stage_timings", {}), snapshot)
    metrics = entry.get("metrics", entry if "gauges" in entry else {})
    _absorb_metrics(metrics, snapshot)


def _absorb_stages(stages: dict, snapshot: Snapshot, prefix: str = "") -> None:
    if not isinstance(stages, dict):
        return
    for name, doc in stages.items():
        seconds = doc.get("seconds") if isinstance(doc, dict) else doc
        if isinstance(seconds, (int, float)):
            snapshot.add_stage(prefix + name, seconds)


def _absorb_metrics(metrics: dict, snapshot: Snapshot) -> None:
    if not isinstance(metrics, dict):
        return
    for name, value in metrics.get("gauges", {}).items():
        if isinstance(value, (int, float)):
            snapshot.gauges[name] = float(value)


# ----------------------------------------------------------------------
# Comparison
# ----------------------------------------------------------------------
def _mean_std(samples: list[float]) -> tuple[float, float]:
    mean = sum(samples) / len(samples)
    if len(samples) < 2:
        return mean, 0.0
    variance = sum((x - mean) ** 2 for x in samples) / (len(samples) - 1)
    return mean, math.sqrt(variance)


def compare(
    baseline: Snapshot,
    current: Snapshot,
    *,
    max_slowdown: float = MAX_SLOWDOWN,
    min_seconds: float = MIN_SECONDS,
    z: float = NOISE_Z,
) -> list[Finding]:
    """Diff two snapshots; returns one finding per comparable series.

    A stage flags when the current mean exceeds
    ``baseline_mean * (1 + max(max_slowdown, z * cv))`` where ``cv`` is
    the baseline's coefficient of variation — noisy baselines earn wider
    allowances automatically.  Series under ``min_seconds`` on either
    side are skipped (self-gating), as are stages present in only one
    snapshot (no basis for comparison).
    """
    findings: list[Finding] = []
    for name in sorted(set(baseline.stages) & set(current.stages)):
        base_samples = baseline.stages[name]
        cur_samples = current.stages[name]
        base_mean, base_std = _mean_std(base_samples)
        cur_mean, _ = _mean_std(cur_samples)
        if base_mean < min_seconds or cur_mean < min_seconds:
            continue
        cv = base_std / base_mean if base_mean else 0.0
        allowance = max(max_slowdown, z * cv)
        allowed = base_mean * (1.0 + allowance)
        findings.append(
            Finding(
                name=name,
                baseline=base_mean,
                current=cur_mean,
                allowed=allowed,
                flagged=cur_mean > allowed,
                samples=len(base_samples),
            )
        )
    for name in sorted(set(baseline.gauges) & set(current.gauges)):
        if not any(fragment in name for fragment in _TIME_GAUGE_FRAGMENTS):
            continue
        base = baseline.gauges[name]
        cur = current.gauges[name]
        if base < min_seconds or cur < min_seconds:
            continue
        allowed = base * (1.0 + max_slowdown)
        findings.append(
            Finding(
                name=f"gauge:{name}",
                baseline=base,
                current=cur,
                allowed=allowed,
                flagged=cur > allowed,
            )
        )
    return findings


def flagged(findings: list[Finding]) -> list[Finding]:
    return [finding for finding in findings if finding.flagged]


def render_report(
    baseline: Snapshot, current: Snapshot, findings: list[Finding]
) -> str:
    """The ``repro bench compare`` report (no trailing newline)."""
    lines = [
        f"baseline: {baseline.source}",
        f"current:  {current.source}",
    ]
    if not findings:
        lines.append("no comparable stages above the noise floor")
        return "\n".join(lines)
    lines.append(
        f"{'STAGE':<40} {'BASE':>9} {'CURRENT':>9} {'RATIO':>7} "
        f"{'ALLOWED':>9}  VERDICT"
    )
    for finding in findings:
        verdict = "REGRESSION" if finding.flagged else "ok"
        lines.append(
            f"{finding.name[:40]:<40} {finding.baseline:>8.3f}s "
            f"{finding.current:>8.3f}s {finding.ratio:>6.2f}x "
            f"{finding.allowed:>8.3f}s  {verdict}"
        )
    bad = flagged(findings)
    if bad:
        lines.append(
            f"{len(bad)} regression(s) flagged out of {len(findings)} compared"
        )
    else:
        lines.append(f"all {len(findings)} compared stages within allowance")
    return "\n".join(lines)


__all__ = [
    "Finding",
    "MAX_SLOWDOWN",
    "MIN_SECONDS",
    "NOISE_Z",
    "Snapshot",
    "compare",
    "flagged",
    "load_snapshot",
    "render_report",
]
