"""Standard-format exporters for run telemetry.

Three interchange formats, all derived from the documents the rest of
:mod:`repro.obs` already produces:

* :func:`chrome_trace` — the span list (``trace.jsonl`` rows) as a
  Chrome ``trace_event`` JSON object, loadable in Perfetto /
  ``chrome://tracing``; :func:`validate_chrome_trace` checks the
  structural schema so CI can assert exports stay loadable.
* :func:`prometheus_text` — a metrics document in the Prometheus text
  exposition format (``# TYPE`` lines, ``_total`` counter suffix,
  escaped labels), for scraping or pushgateway upload.
* :func:`append_bench_history` / :func:`load_bench_history` — the
  unified ``BENCH_history.jsonl`` trajectory every benchmark appends
  to, which the regression sentinel (:mod:`repro.obs.sentinel`) diffs
  across CI runs.

Plus :func:`filter_spans`, the server-side ``--span``/``--shard``
filter behind ``repro runs trace``.
"""

from __future__ import annotations

import json
import os
import re
from pathlib import Path

#: Default history file; ``REPRO_BENCH_HISTORY`` overrides.
DEFAULT_HISTORY = "BENCH_history.jsonl"

#: The trace_event phases this exporter emits.
_COMPLETE, _INSTANT, _METADATA = "X", "i", "M"


# ----------------------------------------------------------------------
# Chrome trace_event
# ----------------------------------------------------------------------
def chrome_trace(spans: list[dict]) -> dict:
    """Convert tracer spans to a Chrome ``trace_event`` JSON object.

    Timestamps rebase to the earliest span and convert to microseconds
    (the format's unit).  Timed spans become complete (``"X"``) events;
    zero-duration events become thread-scoped instants (``"i"``).  The
    session maps to tid 0 and each shard to ``shard_id + 1``, with
    ``thread_name`` metadata so Perfetto labels the rows.
    """
    events: list[dict] = []
    if not spans:
        return {"traceEvents": events, "displayTimeUnit": "ms"}
    base = min(span["ts"] for span in spans)
    tids: dict[int, str] = {}
    for span in spans:
        shard_id = span.get("shard_id")
        tid = 0 if shard_id is None else shard_id + 1
        tids.setdefault(tid, "session" if shard_id is None else f"shard {shard_id}")
        dur_us = int(round(span.get("dur", 0.0) * 1e6))
        event = {
            "name": span["name"],
            "ph": _COMPLETE if dur_us > 0 else _INSTANT,
            "ts": int(round((span["ts"] - base) * 1e6)),
            "pid": 1,
            "tid": tid,
        }
        if dur_us > 0:
            event["dur"] = dur_us
        else:
            event["s"] = "t"
        args = {
            key: value
            for key, value in span.items()
            if key not in ("name", "ts", "dur")
        }
        if args:
            event["args"] = args
        events.append(event)
    for tid, name in sorted(tids.items()):
        events.append(
            {
                "name": "thread_name",
                "ph": _METADATA,
                "pid": 1,
                "tid": tid,
                "args": {"name": name},
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def validate_chrome_trace(doc: dict) -> list[str]:
    """Structural schema check of a trace document; returns error strings.

    Covers what Perfetto's importer actually requires: the
    ``traceEvents`` array, per-event ``name``/``ph``/``pid``/``tid``,
    numeric non-negative ``ts``, a ``dur`` on complete events and a
    scope on instant events.  An empty list means the export is valid.
    """
    errors: list[str] = []
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents must be a list"]
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            errors.append(f"{where}: not an object")
            continue
        for key in ("name", "ph", "pid", "tid"):
            if key not in event:
                errors.append(f"{where}: missing {key!r}")
        phase = event.get("ph")
        if phase == _COMPLETE:
            ts = event.get("ts")
            if not isinstance(ts, (int, float)) or ts < 0:
                errors.append(f"{where}: bad ts {ts!r}")
            if not isinstance(event.get("dur"), (int, float)):
                errors.append(f"{where}: complete event missing numeric dur")
        elif phase == _INSTANT:
            if event.get("s") not in ("g", "p", "t"):
                errors.append(f"{where}: instant event missing scope 's'")
        elif phase != _METADATA:
            errors.append(f"{where}: unknown phase {phase!r}")
    return errors


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------
_NAME_SANITIZE = re.compile(r"[^a-zA-Z0-9_:]")


def _metric_name(prefix: str, name: str) -> str:
    full = f"{prefix}_{name}" if prefix else name
    full = _NAME_SANITIZE.sub("_", full)
    if full and full[0].isdigit():
        full = "_" + full
    return full


def _label_text(labels: dict | None) -> str:
    if not labels:
        return ""
    pairs = []
    for key, value in sorted(labels.items()):
        escaped = str(value).replace("\\", r"\\").replace('"', r"\"")
        pairs.append(f'{_NAME_SANITIZE.sub("_", key)}="{escaped}"')
    return "{" + ",".join(pairs) + "}"


def prometheus_text(
    metrics_doc: dict,
    *,
    prefix: str = "repro",
    labels: dict | None = None,
    timings: dict | None = None,
) -> str:
    """Render a metrics document in Prometheus text exposition format.

    Counters gain the conventional ``_total`` suffix; gauges export
    as-is; stage timings (the ``runs show`` shape) become a pair of
    ``_stage_seconds`` / ``_stage_calls`` families labeled by stage.
    """
    label_text = _label_text(labels)
    lines: list[str] = []
    for name, value in metrics_doc.get("counters", {}).items():
        metric = _metric_name(prefix, name) + "_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric}{label_text} {value}")
    for name, value in metrics_doc.get("gauges", {}).items():
        metric = _metric_name(prefix, name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric}{label_text} {value}")
    if timings:
        seconds_metric = _metric_name(prefix, "stage_seconds")
        calls_metric = _metric_name(prefix, "stage_calls")
        lines.append(f"# TYPE {seconds_metric} gauge")
        lines.append(f"# TYPE {calls_metric} gauge")
        for stage, doc in sorted(timings.items()):
            stage_labels = _label_text({**(labels or {}), "stage": stage})
            lines.append(f"{seconds_metric}{stage_labels} {doc['seconds']}")
            lines.append(f"{calls_metric}{stage_labels} {doc['calls']}")
    return "\n".join(lines) + ("\n" if lines else "")


# ----------------------------------------------------------------------
# Unified benchmark history
# ----------------------------------------------------------------------
def history_path(path: str | Path | None = None) -> Path:
    """Resolve the history file: explicit > ``REPRO_BENCH_HISTORY`` > cwd."""
    if path is not None:
        return Path(path)
    return Path(os.environ.get("REPRO_BENCH_HISTORY", "") or DEFAULT_HISTORY)


def append_bench_history(
    bench: str,
    *,
    meta: dict | None = None,
    metrics: dict | None = None,
    stages: dict | None = None,
    path: str | Path | None = None,
) -> Path:
    """Append one benchmark sample to the unified history JSONL.

    Every benchmark writes through this one appender so the regression
    sentinel sees a single cross-bench trajectory: ``bench`` names the
    sample source, ``stages`` maps stage name to seconds (or a
    ``{"seconds": ...}`` doc), ``metrics``/``meta`` travel verbatim.
    """
    target = history_path(path)
    entry: dict = {"bench": bench}
    if meta:
        entry["meta"] = meta
    if metrics:
        entry["metrics"] = metrics
    if stages:
        entry["stages"] = {
            name: (doc["seconds"] if isinstance(doc, dict) else doc)
            for name, doc in stages.items()
        }
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("a", encoding="utf-8") as handle:
        handle.write(json.dumps(entry, sort_keys=True) + "\n")
    return target


def load_bench_history(path: str | Path | None = None) -> list[dict]:
    """All samples from a history JSONL (missing file → empty list)."""
    target = history_path(path)
    if not target.exists():
        return []
    entries = []
    with target.open(encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                entries.append(json.loads(line))
    return entries


# ----------------------------------------------------------------------
# Server-side span filtering (``repro runs trace --span/--shard``)
# ----------------------------------------------------------------------
def filter_spans(
    spans: list[dict],
    *,
    name: str | None = None,
    shard_id: int | None = None,
) -> list[dict]:
    """Subset of ``spans`` matching a name substring and/or shard id."""
    selected = spans
    if name is not None:
        selected = [span for span in selected if name in span.get("name", "")]
    if shard_id is not None:
        selected = [span for span in selected if span.get("shard_id") == shard_id]
    return selected


__all__ = [
    "DEFAULT_HISTORY",
    "append_bench_history",
    "chrome_trace",
    "filter_spans",
    "history_path",
    "load_bench_history",
    "prometheus_text",
    "validate_chrome_trace",
]
