"""The active run scope, as a :mod:`contextvars` variable.

This module is the bottom of the observability dependency graph: it
imports nothing from :mod:`repro`, so the low-level accel runtime (which
everything else imports) can consult the current scope without a cycle.

A *scope* is any object exposing ``timings`` (a
:class:`repro.accel.runtime.KernelTimings`), ``tracer`` (a
:class:`repro.obs.trace.Tracer`) and ``metrics`` (a
:class:`repro.obs.metrics.MetricsRegistry`) — in practice always a
:class:`repro.obs.runtime.RunScope`.  Context variables give exact
attribution: each service thread (and each activation on the main
thread) sees only the scope it activated, so two concurrent sessions can
no longer contaminate each other's persisted profiles.
"""

from __future__ import annotations

from contextvars import ContextVar

_SCOPE: ContextVar = ContextVar("repro_obs_scope", default=None)


def current_scope():
    """The active run scope, or ``None`` outside any activation."""
    return _SCOPE.get()


def push_scope(scope):
    """Activate ``scope``; returns a token for :func:`pop_scope`."""
    return _SCOPE.set(scope)


def pop_scope(token) -> None:
    _SCOPE.reset(token)


def clear_scope() -> None:
    """Drop any inherited scope (used by the after-fork hook).

    A pool worker forked mid-run inherits the parent's context — and
    with it the parent's scope object, whose buffers the child must not
    write into (they would double-count once the shard delta ships back).
    """
    _SCOPE.set(None)
