"""The live telemetry plane: bus, store writer, and watch/top models.

Post-hoc observability (:mod:`repro.obs.runtime` + the ``run_obs``
table) answers "what happened"; this module answers "what is happening
*right now*":

* :class:`TelemetryBus` — a process-wide publish/subscribe fan-out.
  :func:`repro.obs.runtime.publish` stamps the active scope's
  correlation fields (run_id / shard_id / stream_step) on a progress
  event and posts it here; subscribers are plain callables.  Publishing
  never raises into the pipeline — a broken subscriber is detached and
  logged, results stay byte-identical.
* :class:`StoreEventWriter` — the bridge from bus to the append-only
  ``run_events`` store table.  A :class:`~repro.service.MatchingSession`
  subscribes one per execution path, filtered to its own run id, so a
  *second process* can tail the run through the shared SQLite file.
* :class:`RunWatch` — folds a tailed event stream into the per-shard /
  loop / stream progress model behind ``repro runs watch``.
* :func:`render_top` — the one-line-per-run table behind ``repro top``.

Everything here is write-path-passive: no subscriber ever feeds back
into pipeline control flow, so the live plane inherits the tracing
layer's byte-identity guarantee (``REPRO_NO_TRACE`` does not disable
progress events — they are operational, like counters).
"""

from __future__ import annotations

import threading

from repro.obs.logging import get_logger

log = get_logger("obs.live")

#: Event kinds that mean a shard will do no further work (mirrors
#: :mod:`repro.partition.progress`).
SHARD_TERMINAL = ("finished", "restored", "failed", "quarantined")

#: Event field names persisted as dedicated ``run_events`` columns.
_COLUMN_FIELDS = ("run_id", "ts", "kind", "shard_id", "stream_step")


class TelemetryBus:
    """Process-wide fan-out of live progress events.

    Subscribers are callables receiving one event dict each.  The bus is
    deliberately dumb: no buffering, no replay — durability is the
    :class:`StoreEventWriter`'s job.  A subscriber that raises is
    detached (and the error logged once) rather than allowed to poison
    the publishing pipeline.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._subscribers: dict[int, callable] = {}
        self._next_token = 0

    def subscribe(self, callback) -> int:
        """Register ``callback`` for every future event; returns a token."""
        with self._lock:
            token = self._next_token
            self._next_token += 1
            self._subscribers[token] = callback
        return token

    def unsubscribe(self, token: int) -> None:
        with self._lock:
            self._subscribers.pop(token, None)

    def subscriber_count(self) -> int:
        with self._lock:
            return len(self._subscribers)

    def publish(self, event: dict) -> None:
        """Deliver ``event`` to every subscriber; never raises."""
        with self._lock:
            subscribers = list(self._subscribers.items())
        for token, callback in subscribers:
            try:
                callback(event)
            except Exception:
                log.exception("telemetry subscriber failed; detaching")
                self.unsubscribe(token)


#: The process-wide bus every :class:`~repro.obs.runtime.RunScope`
#: publishes onto.
BUS = TelemetryBus()


class StoreEventWriter:
    """Bus subscriber persisting one run's events to ``run_events``.

    Used as a context manager around an execution path::

        with StoreEventWriter(store, run_id):
            ...  # everything published under this run id lands in SQLite

    Events carrying a different ``run_id`` (another session on the same
    bus) are ignored.  The writer is thread-safe by delegation — the
    store serialises access behind its own lock.
    """

    def __init__(self, store, run_id: str, bus: TelemetryBus | None = None):
        self._store = store
        self._run_id = run_id
        self._bus = bus if bus is not None else BUS
        self._token: int | None = None

    def __enter__(self) -> "StoreEventWriter":
        self._token = self._bus.subscribe(self)
        return self

    def __exit__(self, *exc) -> None:
        if self._token is not None:
            self._bus.unsubscribe(self._token)
            self._token = None

    def __call__(self, event: dict) -> None:
        if event.get("run_id") != self._run_id:
            return
        payload = {k: v for k, v in event.items() if k not in _COLUMN_FIELDS}
        self._store.append_run_event(
            self._run_id,
            event["kind"],
            payload,
            ts=event.get("ts"),
            shard_id=event.get("shard_id"),
            stream_step=event.get("stream_step"),
        )


# ----------------------------------------------------------------------
# Watch model: fold a tailed event stream into renderable progress
# ----------------------------------------------------------------------
class RunWatch:
    """Incremental progress model for ``repro runs watch``.

    Feed it batches of events tailed from the store (oldest first); it
    keeps per-shard states (monotone, like the in-process progress
    printer), the latest loop heartbeat, the latest stream summary and
    the last session status transition, and renders a multi-line frame.
    """

    def __init__(self) -> None:
        self.last_seq = 0
        self.status: str | None = None
        self.shards: dict[int, dict] = {}
        self.loop: dict | None = None
        self.stream: dict | None = None
        self.events = 0

    # ------------------------------------------------------------------
    def feed(self, events: list[dict]) -> bool:
        """Fold new events in; returns whether anything changed."""
        changed = False
        for event in events:
            self.last_seq = max(self.last_seq, event.get("seq", 0))
            self.events += 1
            changed = True
            kind = event.get("kind", "")
            if kind.startswith("status."):
                self.status = kind.split(".", 1)[1]
            elif kind.startswith("shard."):
                self._feed_shard(kind.split(".", 1)[1], event)
            elif kind == "loop.checkpointed":
                self.loop = event
            elif kind == "stream.summary":
                self.stream = event
        return changed

    def _feed_shard(self, state: str, event: dict) -> None:
        shard_id = event.get("shard_id")
        if shard_id is None:
            return
        shard = self.shards.setdefault(
            shard_id, {"state": "started", "loops": 0, "questions": 0, "matches": 0}
        )
        shard["state"] = state
        shard["phase"] = event.get("phase", shard.get("phase", "graph"))
        shard["loops"] = max(shard["loops"], event.get("loops", 0))
        shard["questions"] = max(shard["questions"], event.get("questions", 0))
        if state in SHARD_TERMINAL:
            shard["matches"] = event.get("matches", shard["matches"])

    # ------------------------------------------------------------------
    @property
    def questions(self) -> int:
        """Questions billed so far, from the freshest signal available."""
        if self.shards:
            return sum(s["questions"] for s in self.shards.values())
        if self.loop is not None:
            return self.loop.get("questions", 0)
        return 0

    def render(self, record=None, timings: dict | None = None) -> str:
        """A multi-line watch frame (no trailing newline)."""
        lines = []
        header = []
        if record is not None:
            header.append(f"run {record.run_id}")
            header.append(record.status)
            header.append(f"dataset={record.dataset}")
            if record.workers and record.workers > 1:
                header.append(f"workers={record.workers}")
        elif self.status is not None:
            header.append(self.status)
        header.append(f"questions {self.questions}")
        header.append(f"events {self.events}")
        lines.append(" · ".join(header))
        if self.loop is not None and not self.shards:
            lines.append(
                f"  loop {self.loop.get('loops', 0)}"
                f" · {self.loop.get('questions', 0)} questions"
            )
        for shard_id in sorted(self.shards):
            shard = self.shards[shard_id]
            line = (
                f"  shard {shard_id:>3} [{shard.get('phase', 'graph'):>8}]"
                f" {shard['state']:<12} loops={shard['loops']:<4}"
                f" questions={shard['questions']:<5}"
            )
            if shard["state"] in SHARD_TERMINAL:
                line += f" matches={shard['matches']}"
            lines.append(line)
        if self.shards:
            done = sum(
                1 for s in self.shards.values() if s["state"] in SHARD_TERMINAL
            )
            lines.append(f"  shards {done}/{len(self.shards)} done")
        if self.stream is not None:
            lines.append(
                f"  stream: units={self.stream.get('units', 0)}"
                f" reused={self.stream.get('reused', 0)}"
                f" executed={self.stream.get('executed', 0)}"
                f" questions_new={self.stream.get('questions_new', 0)}"
            )
        if timings:
            top = sorted(
                timings.items(), key=lambda kv: kv[1]["seconds"], reverse=True
            )[:5]
            lines.append("  stages: " + ", ".join(
                f"{name} {doc['seconds']:.3f}s" for name, doc in top
            ))
        return "\n".join(lines)


def render_top(rows: list[tuple]) -> str:
    """The ``repro top`` table: one line per in-flight run.

    ``rows`` pairs each active :class:`~repro.store.RunRecord` with its
    latest event dict (or ``None`` when nothing has been published yet).
    """
    if not rows:
        return "no runs in flight"
    lines = [
        f"{'RUN':<14} {'STATUS':<10} {'DATASET':<18} {'WORKERS':>7} "
        f"{'QUESTIONS':>9}  LAST EVENT"
    ]
    for record, last in rows:
        if last is None:
            activity = "-"
            questions = record.questions_asked or 0
        else:
            activity = last.get("kind", "-")
            if last.get("shard_id") is not None:
                activity += f" (shard {last['shard_id']})"
            questions = last.get("questions", record.questions_asked or 0)
        lines.append(
            f"{record.run_id[:12]:<14} {record.status:<10} "
            f"{record.dataset[:16]:<18} {record.workers or 1:>7} "
            f"{questions:>9}  {activity}"
        )
    return "\n".join(lines)


__all__ = [
    "BUS",
    "RunWatch",
    "SHARD_TERMINAL",
    "StoreEventWriter",
    "TelemetryBus",
    "render_top",
]
