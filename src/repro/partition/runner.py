"""Parallel execution of a partitioned Remp run.

:class:`ParallelRunner` executes a :class:`~repro.partition.partitioner.PartitionPlan`
in two phases:

1. **Graph shards** run the full human–machine loop concurrently on a
   ``multiprocessing`` pool (or inline for ``workers=1``).  Each shard
   gets a :class:`CrowdPlatform` derived deterministically from
   ``(seed, shard_id)`` and a slice of the question budget, so its
   execution is a pure function of the shard — independent of pool size
   or scheduling order.
2. **Isolated shards** classify the propagation-unreachable pairs against
   the *merged* phase-1 resolutions — the same training data the
   monolithic isolated-pair classifier sees.

A deterministic merger reassembles the shard results into one
:class:`RempResult`; because shard executions are order-independent, the
merged result is identical for every worker count.  With a
:class:`repro.store.RunStore` attached, every labeling round checkpoints
under a partition-aware key ``(run_id, shard_id)`` and finished shards
persist their results, so a killed run resumes shard-by-shard without
re-asking a single question.

Lifecycle events (started / checkpointed / finished / restored / failed,
with loop and question counts) stream to an ``on_event`` callback — the
CLI renders them as a live per-partition status line.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import multiprocessing.connection
import os
import random
import sys
import time
import traceback
from dataclasses import dataclass, field, replace

from repro import faults
from repro.accel.runtime import TIMINGS, accel_enabled
from repro.core.config import RempConfig
from repro.obs import runtime as obs
from repro.obs.logging import get_logger
from repro.core.pipeline import (
    LoopCheckpoint,
    PreparedState,
    Remp,
    RempResult,
    assemble_result,
    merge_loop_snapshots,
)
from repro.crowd.interfaces import CrowdUnavailableError
from repro.crowd.platform import CrowdPlatform
from repro.partition.partitioner import (
    DEFAULT_TARGET_SHARDS,
    GRAPH,
    PartitionPlan,
    Shard,
    partition_state,
)

Pair = tuple[str, str]

log = get_logger("partition")


class PartialResult(RuntimeError):
    """A degraded partitioned run: some shards were quarantined.

    Raised instead of a blanket ``RuntimeError`` when one or more poison
    shards exhausted their retry budget while the remaining shards
    completed.  ``result`` merges every healthy shard's outcome;
    ``quarantined`` lists one dict per abandoned shard (``shard_id``,
    ``kind``, ``attempts``, ``error``).  Being a ``RuntimeError`` keeps
    callers that only catch the blanket failure working unchanged.
    """

    def __init__(self, result: "RempResult", quarantined: list[dict]):
        ids = ", ".join(str(entry["shard_id"]) for entry in quarantined)
        super().__init__(
            f"partitioned run degraded: {len(quarantined)} shard(s)"
            f" quarantined after retries: [{ids}]"
        )
        self.result = result
        self.quarantined = quarantined


def shard_seed(seed: int, shard_id: int) -> int:
    """Stable 63-bit seed derived from the run seed and a shard id."""
    key = f"{seed}\x1f{shard_id}".encode()
    return int.from_bytes(hashlib.blake2b(key, digest_size=8).digest(), "big") >> 1


def unit_content_key(vertices) -> str:
    """Content identity of a shard: a digest of its sorted vertex list.

    Positional shard ids shift whenever the partition layout does; the
    content key survives any layout change that leaves the shard's
    vertex set intact, which is what lets :mod:`repro.stream` match a
    clean shard against a record from an earlier run of a *different*
    prepared state.
    """
    blob = "\x1e".join(f"{left}\x1f{right}" for left, right in sorted(vertices))
    return hashlib.blake2b(blob.encode(), digest_size=16).hexdigest()


def content_seed(seed: int, key: str) -> int:
    """Stable 63-bit seed derived from the run seed and a content key."""
    blob = f"{seed}\x1f{key}".encode()
    return int.from_bytes(hashlib.blake2b(blob, digest_size=8).digest(), "big") >> 1


@dataclass(slots=True)
class CrowdSpec:
    """A picklable recipe for building per-shard crowd platforms.

    Shard workers run in separate processes, so they receive the *recipe*
    for a platform rather than the platform itself; :meth:`build` derives
    the worker-assignment seed from ``(seed, shard_id)``.  An
    ``error_rate`` of 0 yields a perfect oracle (mirroring
    :mod:`repro.service`).
    """

    truth: set[Pair]
    error_rate: float = 0.0
    seed: int = 0
    num_workers: int = 50
    workers_per_question: int = 5

    def build(self, shard_id: int) -> CrowdPlatform:
        if self.error_rate <= 0.0:
            return CrowdPlatform.with_oracle(set(self.truth))
        return CrowdPlatform.with_simulated_workers(
            set(self.truth),
            num_workers=self.num_workers,
            error_rate=self.error_rate,
            workers_per_question=self.workers_per_question,
            seed=shard_seed(self.seed, shard_id),
        )

    def build_seeded(self, platform_seed: int) -> CrowdPlatform:
        """Like :meth:`build`, but from a pre-derived platform seed.

        Used by the stream layer, whose per-unit seeds derive from shard
        *content* rather than position so they survive layout changes.
        """
        if self.error_rate <= 0.0:
            return CrowdPlatform.with_oracle(set(self.truth))
        return CrowdPlatform.with_simulated_workers(
            set(self.truth),
            num_workers=self.num_workers,
            error_rate=self.error_rate,
            workers_per_question=self.workers_per_question,
            seed=platform_seed,
        )


@dataclass(slots=True)
class ShardEvent:
    """One lifecycle/progress notification from a shard execution."""

    shard_id: int
    #: "started" | "checkpointed" | "finished" | "restored" | "failed"
    #: | "retried" | "quarantined"
    kind: str
    phase: str  # "graph" | "isolated"
    pairs: int = 0
    loops: int = 0
    questions: int = 0
    matches: int = 0
    #: Execution attempt the event belongs to (retry/quarantine kinds).
    attempt: int = 0


def split_budget(total: int | None, weights: list[int]) -> list[int | None]:
    """Largest-remainder split of a question budget across graph shards.

    Proportional to each shard's pair count; every unit of a finite
    budget is handed to exactly one shard.  ``None`` (unlimited) passes
    through unchanged.
    """
    if total is None:
        return [None] * len(weights)
    if not weights:
        return []
    weight_sum = sum(weights) or len(weights)
    exact = [total * w / weight_sum for w in weights]
    floors = [int(x) for x in exact]
    remainder = total - sum(floors)
    by_fraction = sorted(
        range(len(weights)), key=lambda i: (floors[i] - exact[i], i)
    )
    for index in by_fraction[:remainder]:
        floors[index] += 1
    return floors


@dataclass(slots=True)
class _ShardTask:
    """Everything a worker process needs to execute one shard."""

    shard: Shard
    config: RempConfig
    strategy: str
    seed: int
    checkpoint: LoopCheckpoint | None = None
    merged_snapshot: dict | None = None  # isolated shards only
    #: Content-derived seed overrides (stream mode); ``None`` falls back
    #: to the positional ``shard_seed(seed, shard_id)`` derivation.
    remp_seed: int | None = None
    platform_seed: int | None = None
    #: Restrict the slice's candidate set to the shard's entities.
    localize: bool = False
    #: Execution attempt, bumped by the supervisor on every requeue.  The
    #: fault plane's ``where`` filters key on it, so cross-process rules
    #: stay deterministic even though spawn workers hold fresh counters.
    attempt: int = 0


@dataclass(slots=True)
class _ShardOutcome:
    """A finished shard: its partial result, loop snapshot and answer log."""

    shard_id: int
    kind: str
    result: RempResult
    snapshot: dict = field(default_factory=dict)
    answer_log: list = field(default_factory=list)
    #: Kernel-timing delta the shard produced (pool workers only — the
    #: parent merges it into its own registry; inline execution already
    #: accumulates in-process).
    timings: dict = field(default_factory=dict)
    #: Spans and metrics the shard's worker-side run scope buffered
    #: (pool workers only — inline execution writes straight into the
    #: session scope).  The parent absorbs both in ``_finish_shard``.
    spans: list = field(default_factory=list)
    metrics: dict = field(default_factory=dict)
    #: Folded-stack wall-clock samples from the worker's profiler
    #: (``REPRO_PROFILE=1`` only) — absorbed into the session scope so a
    #: partitioned run's flamegraph covers its pool workers.
    profile: dict = field(default_factory=dict)


@dataclass(slots=True)
class UnitRecord:
    """One shard's durable outcome, addressed by content key.

    The stream layer persists these per run; a later incremental run
    reuses a record verbatim when the shard's content key still matches
    and none of its pairs are dirty.  ``answer_log`` carries the crowd
    labels the shard collected, so new-spend accounting can tell a
    replayed question from a genuinely new one.
    """

    key: str
    kind: str
    result: RempResult
    snapshot: dict = field(default_factory=dict)
    answer_log: list = field(default_factory=list)
    reused: bool = False


def _execute_shard(
    task: _ShardTask, base_state: PreparedState, crowd: CrowdSpec, emit
) -> _ShardOutcome:
    """Run one shard to completion (worker-process entry point).

    ``base_state`` and ``crowd`` are shared by every shard of a run —
    inherited by worker processes at fork time (or pickled once per
    worker under spawn) rather than shipped per task, so a queued task
    costs only its vertex list.  ``emit`` receives
    ``("event", ShardEvent)`` and, after each labeling round,
    ``("checkpoint", shard_id, LoopCheckpoint)`` messages; the parent
    persists checkpoints so children never touch the store.
    """
    shard = task.shard
    with obs.span(
        "shard.execute", shard=shard.shard_id, phase=shard.kind, pairs=shard.num_pairs
    ):
        return _run_shard(task, base_state, crowd, emit)


def _run_shard(
    task: _ShardTask, base_state: PreparedState, crowd: CrowdSpec, emit
) -> _ShardOutcome:
    shard = task.shard
    phase = shard.kind
    shard_state = shard.slice(base_state, localize=task.localize)
    remp_seed = (
        task.remp_seed
        if task.remp_seed is not None
        else shard_seed(task.seed, shard.shard_id)
    )
    remp = Remp(task.config, seed=remp_seed)
    platform = (
        crowd.build_seeded(task.platform_seed)
        if task.platform_seed is not None
        else crowd.build(shard.shard_id)
    )
    emit(
        (
            "event",
            ShardEvent(shard.shard_id, "started", phase, pairs=shard.num_pairs),
        )
    )
    if shard.kind == GRAPH:
        resume = task.checkpoint
        if resume is not None:
            platform.load_answer_log(resume.answer_log)

        def on_checkpoint(checkpoint: LoopCheckpoint) -> None:
            # Probe BEFORE the checkpoint ships: a mid-shard kill here
            # loses the round, and the retry must reproduce it exactly
            # from the previous checkpoint (labels are a pure function
            # of the platform seed, so it does).
            faults.check(
                "worker.mid_shard",
                shard_id=shard.shard_id,
                attempt=task.attempt,
                loop=checkpoint.next_loop_index,
            )
            emit(("checkpoint", shard.shard_id, checkpoint))
            emit(
                (
                    "event",
                    ShardEvent(
                        shard.shard_id,
                        "checkpointed",
                        phase,
                        pairs=shard.num_pairs,
                        loops=checkpoint.next_loop_index,
                        questions=checkpoint.questions_asked,
                    ),
                )
            )

        loop_state, history, questions = remp.run_loop_phase(
            shard_state,
            platform,
            task.strategy,
            resume_from=resume,
            on_checkpoint=on_checkpoint,
        )
        result = assemble_result(loop_state, set(), questions, history)
        outcome = _ShardOutcome(
            shard.shard_id,
            shard.kind,
            result,
            loop_state.snapshot(),
            answer_log=platform.export_answer_log(),
        )
    else:
        # Classifier-only shard: restore the merged phase-1 resolutions
        # and let the monolithic isolated-pair path do the rest.  The
        # shard result carries only the *delta* this shard produced.
        loop_state = remp._make_loop_state(shard_state)
        loop_state.restore(task.merged_snapshot or loop_state.snapshot())
        base_labeled = set(loop_state.labeled_matches)
        base_non_matches = set(loop_state.resolved_non_matches)
        isolated_matches, _ = remp._classify_isolated(shard_state, loop_state, platform)
        labeled_delta = loop_state.labeled_matches - base_labeled
        result = RempResult(
            matches=labeled_delta | isolated_matches,
            questions_asked=platform.questions_asked,
            num_loops=0,
            labeled_matches=labeled_delta,
            isolated_matches=isolated_matches,
            non_matches=loop_state.resolved_non_matches - base_non_matches,
        )
        outcome = _ShardOutcome(
            shard.shard_id,
            shard.kind,
            result,
            answer_log=platform.export_answer_log(),
        )
    emit(
        (
            "event",
            ShardEvent(
                shard.shard_id,
                "finished",
                phase,
                pairs=shard.num_pairs,
                loops=result.num_loops,
                questions=result.questions_asked,
                matches=len(result.matches),
            ),
        )
    )
    return outcome


def _worker_main(base_state, crowd, conn, worker_index=0) -> None:
    """Pool worker: execute assigned shard tasks until the ``None`` sentinel.

    ``base_state`` and ``crowd`` arrive through the process arguments:
    free under the ``fork`` start method (copy-on-write memory), pickled
    once per worker — never once per shard — under ``spawn`` (where the
    packed dominance matrix travels as a shared-memory segment name, so
    all workers map one physical copy).

    ``conn`` is this worker's *private* duplex pipe to the supervisor.
    A per-worker pipe — instead of one shared event queue — is what
    makes the pool kill-safe: a shared ``multiprocessing.Queue`` guards
    its write end with a cross-process lock, so a worker SIGKILLed while
    its feeder thread holds that lock wedges every other worker's sends
    forever.  Here each pipe has exactly one writer, writing
    synchronously from the worker's only thread, so a kill can never
    strand a lock — the supervisor just sees a dead process and a closed
    pipe.
    """
    try:
        faults.check("worker.start", worker=worker_index)
    except faults.InjectedFault:
        # An injected startup failure: die quietly with a nonzero exit
        # code, exactly like a worker whose interpreter never came up.
        sys.exit(1)
    # The readiness handshake: the supervisor assigns tasks only to
    # workers that survived startup, so a stillborn worker never burns a
    # shard's retry budget.
    conn.send(("ready", worker_index))
    attached = False
    while True:
        try:
            task = conn.recv()
        except (EOFError, OSError):
            return  # supervisor vanished; nothing sane left to do
        if task is None:
            return
        try:
            # A per-task run scope gives exact attribution: the worker's
            # stages/spans/metrics land in the scope's private buffers
            # (stamped with the shard id) and ship back with the outcome
            # — no snapshot/diff against the process-wide registry.
            scope = obs.RunScope(shard_id=task.shard.shard_id)
            with scope.activate():
                if not attached:
                    # Once per worker, on its first task's scope: the
                    # substrate contract is that the parent pre-packed
                    # the base state, so a worker that would have to
                    # re-pack is a regression — base_unpacked flags it.
                    attached = True
                    obs.count("substrate.worker.attach")
                    prepacked = base_state.vector_index._packed is not None
                    if accel_enabled() and not prepacked:
                        obs.count("substrate.worker.base_unpacked")
                    obs.event("substrate.worker.attach", prepacked=prepacked)
                outcome = _execute_shard(task, base_state, crowd, conn.send)
            outcome.timings = scope.timings.snapshot()
            outcome.spans = scope.tracer.spans()
            outcome.metrics = scope.metrics.as_doc()
            if scope.profiler is not None and scope.profiler.samples:
                outcome.profile = scope.profiler.as_doc()
            conn.send(("done", task.shard.shard_id, outcome))
        except Exception:
            conn.send(("error", task.shard.shard_id, traceback.format_exc()))


@dataclass(slots=True)
class _PoolWorker:
    """The supervisor's view of one pool worker."""

    process: object
    conn: object  # parent end of the worker's private pipe
    index: int
    #: Task currently assigned to this worker (``None`` = idle).  The
    #: supervisor — not the worker — is the source of truth for what to
    #: requeue when the process dies.
    task: _ShardTask | None = None
    #: Whether the readiness handshake arrived (assignable).
    ready: bool = False


def merge_shard_results(results: list[tuple[int, RempResult]]) -> RempResult:
    """Deterministically reassemble shard results into one result.

    Resolution sets are unioned (a match recorded by any shard wins over
    a competitor demotion from another), questions and loops are summed
    — shards ask about disjoint pair sets, so distinct-question billing
    is additive — and histories concatenate in shard-id order with the
    loop index rewritten to a single global sequence.
    """
    merged = RempResult(matches=set(), questions_asked=0, num_loops=0)
    for _, result in sorted(results, key=lambda item: item[0]):
        merged.matches |= result.matches
        merged.labeled_matches |= result.labeled_matches
        merged.inferred_matches |= result.inferred_matches
        merged.isolated_matches |= result.isolated_matches
        merged.non_matches |= result.non_matches
        merged.questions_asked += result.questions_asked
        for record in result.history:
            merged.history.append(replace(record, loop_index=len(merged.history)))
    merged.non_matches -= merged.matches
    merged.num_loops = len(merged.history)
    return merged


class ParallelRunner:
    """Partition a prepared state and run its shards on a worker pool.

    Parameters
    ----------
    config, seed, strategy:
        Forwarded to the per-shard :class:`Remp` instances (each shard's
        effective seed is derived from ``(seed, shard_id)``).
    workers:
        Pool size.  ``1`` executes shards inline in deterministic order —
        the reference semantics every pool size must reproduce.
    max_shard_size, target_shards, isolated_shards:
        Partition parameters (see :func:`partition_state`).  Independent
        of ``workers`` by design.
    store, run_id:
        Optional :class:`repro.store.RunStore` (or compatible) plus run
        id; enables per-shard checkpointing and :meth:`run` resume.
    on_event:
        Callback receiving every :class:`ShardEvent`.
    localize, content_seeds, dirty, reuse, collect_records:
        The stream-mode knobs (:mod:`repro.stream`).  ``localize``
        restricts each graph shard's candidate set to its own entities;
        ``content_seeds`` derives per-shard Remp and crowd seeds from the
        shard's *content key* instead of its positional id; ``dirty``
        (a pair set) plus ``reuse`` (content-keyed :class:`UnitRecord`
        map from a previous run) let clean shards restore a recorded
        outcome instead of executing; ``collect_records`` populates
        :attr:`unit_records` with every shard's durable outcome.
    """

    def __init__(
        self,
        config: RempConfig | None = None,
        *,
        seed: int = 0,
        workers: int = 1,
        strategy: str = "remp",
        max_shard_size: int | None = None,
        target_shards: int = DEFAULT_TARGET_SHARDS,
        isolated_shards: int = 1,
        store=None,
        run_id: str | None = None,
        on_event=None,
        localize: bool = False,
        content_seeds: bool = False,
        dirty: set[Pair] | None = None,
        reuse: dict[str, UnitRecord] | None = None,
        collect_records: bool = False,
        max_shard_retries: int | None = None,
        lease_ttl: float | None = None,
    ):
        if workers < 1:
            raise ValueError("workers must be positive")
        if store is not None and run_id is None:
            raise ValueError("run_id is required when a store is attached")
        if (dirty is not None or reuse) and not content_seeds:
            raise ValueError(
                "dirty/reuse require content_seeds: positional seeds change "
                "with the layout, so a reused record would not match"
            )
        self.config = config or RempConfig()
        self.seed = seed
        self.workers = workers
        self.strategy = strategy
        self.max_shard_size = max_shard_size
        self.target_shards = target_shards
        self.isolated_shards = isolated_shards
        self._store = store
        self._run_id = run_id
        self._on_event = on_event
        self._localize = localize
        self._content_seeds = content_seeds
        self._dirty = dirty
        self._reuse = reuse or {}
        self._collect_records = collect_records
        #: Content-keyed durable outcomes of the last :meth:`run`
        #: (populated when ``collect_records`` is set).
        self.unit_records: dict[str, UnitRecord] = {}
        #: Content keys restored from ``reuse`` during the last run.
        self.reused_keys: set[str] = set()
        #: Per-shard billing items from the last :meth:`run` — the
        #: service's cost ledger for partitioned runs.  Shards ask about
        #: disjoint pair sets, so the item questions sum to the merged
        #: result's ``questions_asked`` exactly.
        self.shard_costs: list[dict] = []
        #: How often a failing shard is requeued before quarantine.
        self.max_shard_retries = (
            max_shard_retries
            if max_shard_retries is not None
            else max(0, int(os.environ.get("REPRO_SHARD_RETRIES", "2")))
        )
        #: Lease duration the supervisor grants per claimed shard.
        self._lease_ttl = (
            lease_ttl
            if lease_ttl is not None
            else float(os.environ.get("REPRO_SHARD_LEASE_TTL", "30"))
        )
        #: Quarantine records of the last :meth:`run` (poison shards).
        self.quarantined: list[dict] = []
        #: Latest checkpoint seen per shard — the requeue resume point.
        self._last_checkpoints: dict[int, LoopCheckpoint] = {}
        #: Current lease owner per claimed shard (heartbeat identity).
        self._lease_owners: dict[int, str] = {}
        self._backoff_rng = random.Random(0xFA17)  # never the global RNG

    # ------------------------------------------------------------------
    def plan(self, state: PreparedState) -> PartitionPlan:
        """The deterministic shard layout for ``state``."""
        return partition_state(
            state,
            max_shard_size=self.max_shard_size,
            target_shards=self.target_shards,
            isolated_shards=self.isolated_shards,
        )

    def run(self, state: PreparedState, crowd: CrowdSpec) -> RempResult:
        """Execute the partitioned pipeline and merge the shard results."""
        plan = self.plan(state)
        stored = self._load_shard_records()
        outcomes: dict[int, _ShardOutcome] = {}
        self.unit_records = {}
        self.reused_keys = set()
        self.shard_costs = []
        self.quarantined = []
        self._last_checkpoints = {}
        self._lease_owners = {}
        keys = self._shard_keys(plan)
        obs.gauge("partition.shards", len(plan.shards))
        log.info(
            "partition plan: %d graph + %d isolated shards, workers=%d",
            len(plan.graph_shards),
            len(plan.isolated_shards),
            self.workers,
        )

        if accel_enabled():
            # Materialize the packed dominance matrix in the parent
            # BEFORE any worker exists: forked workers then share the
            # float64 pages copy-on-write (and spawn ships one
            # shared-memory segment) instead of each shard's first
            # min_rank call lazily re-packing a private copy per worker.
            with TIMINGS.timed("partition.prepack"):
                state.vector_index.packed()

        graph_shards = plan.graph_shards
        # Weight by loop pairs: rider isolated pairs can never consume a
        # question, so they must not attract budget either.
        budgets = split_budget(
            self.config.budget, [shard.num_loop_pairs for shard in graph_shards]
        )
        tasks: list[_ShardTask] = []
        for shard, budget in zip(graph_shards, budgets):
            task = self._make_task(
                shard, replace(self.config, budget=budget), keys[shard.shard_id]
            )
            if self._restore_outcome(shard, stored, outcomes):
                continue
            if self._reuse_outcome(shard, keys[shard.shard_id], outcomes):
                continue
            record = stored.get(shard.shard_id)
            if record is not None and record[0] == "loop":
                task.checkpoint = record[1]
            tasks.append(task)
        self._execute(tasks, state, crowd, outcomes)
        if self.quarantined:
            # A quarantined graph shard means the merged snapshot would
            # be missing training data — degrade now rather than let the
            # isolated phase classify against partial resolutions.
            self._raise_partial(outcomes)

        merged_snapshot = merge_loop_snapshots(
            state,
            [
                outcomes[shard.shard_id].snapshot
                for shard in graph_shards
                if shard.shard_id in outcomes
            ],
        )
        isolated_tasks: list[_ShardTask] = []
        for shard in plan.isolated_shards:
            if not self._restore_outcome(shard, stored, outcomes):
                task = self._make_task(shard, self.config, keys[shard.shard_id])
                task.merged_snapshot = merged_snapshot
                isolated_tasks.append(task)
        self._execute(isolated_tasks, state, crowd, outcomes)
        if self.quarantined:
            self._raise_partial(outcomes)

        if self._collect_records:
            for shard in plan.shards:
                outcome = outcomes.get(shard.shard_id)
                if outcome is None:
                    continue
                key = keys[shard.shard_id]
                self.unit_records[key] = UnitRecord(
                    key=key,
                    kind=shard.kind,
                    result=outcome.result,
                    snapshot=outcome.snapshot,
                    answer_log=outcome.answer_log,
                    reused=key in self.reused_keys,
                )

        self.shard_costs = [
            {
                "scope": "shard",
                "key": str(shard_id),
                "kind": outcome.kind,
                "questions": outcome.result.questions_asked,
            }
            for shard_id, outcome in sorted(outcomes.items())
        ]
        return merge_shard_results(
            [(shard_id, outcome.result) for shard_id, outcome in outcomes.items()]
        )

    def _shard_keys(self, plan: PartitionPlan) -> dict[int, str]:
        """Content keys per shard id (isolated shards keyed by position)."""
        keys: dict[int, str] = {}
        for shard in plan.graph_shards:
            keys[shard.shard_id] = unit_content_key(shard.vertices)
        for index, shard in enumerate(plan.isolated_shards):
            keys[shard.shard_id] = f"isolated\x1f{index}"
        return keys

    def _make_task(self, shard: Shard, config: RempConfig, key: str) -> _ShardTask:
        task = _ShardTask(
            shard=shard,
            config=config,
            strategy=self.strategy,
            seed=self.seed,
            localize=self._localize and shard.kind == GRAPH,
        )
        if self._content_seeds:
            task.remp_seed = content_seed(self.seed, key)
            task.platform_seed = content_seed(self.seed, "crowd\x1f" + key)
        return task

    def _reuse_outcome(
        self, shard: Shard, key: str, outcomes: dict[int, _ShardOutcome]
    ) -> bool:
        """Restore a clean shard from a previous run's content-keyed record.

        A shard qualifies only when a dirty set was provided, none of its
        pairs are in it, and the reuse map holds its exact content key —
        equal key means equal vertex set, and a clean vertex set means an
        identical slice, so the recorded outcome is what execution would
        reproduce bit for bit.
        """
        if self._dirty is None:
            return False
        record = self._reuse.get(key)
        if record is None or self._dirty.intersection(shard.vertices):
            return False
        outcomes[shard.shard_id] = _ShardOutcome(
            shard.shard_id,
            shard.kind,
            record.result,
            record.snapshot,
            answer_log=record.answer_log,
        )
        self.reused_keys.add(key)
        if self._store is not None:
            self._store.save_shard_result(
                self._run_id,
                shard.shard_id,
                record.result,
                record.snapshot,
                answer_log=record.answer_log,
            )
        self._emit(
            ShardEvent(
                shard.shard_id,
                "restored",
                shard.kind,
                pairs=shard.num_pairs,
                loops=record.result.num_loops,
                questions=record.result.questions_asked,
                matches=len(record.result.matches),
            )
        )
        return True

    # ------------------------------------------------------------------
    # Resume bookkeeping
    # ------------------------------------------------------------------
    def _load_shard_records(self) -> dict[int, tuple]:
        if self._store is None:
            return {}
        return self._store.load_shard_records(self._run_id)

    def _restore_outcome(
        self, shard: Shard, stored: dict[int, tuple], outcomes: dict[int, _ShardOutcome]
    ) -> bool:
        """Reuse a persisted finished shard; emits a ``restored`` event."""
        record = stored.get(shard.shard_id)
        if record is None or record[0] != "done":
            return False
        _, result, snapshot, answer_log = record
        outcomes[shard.shard_id] = _ShardOutcome(
            shard.shard_id, shard.kind, result, snapshot, answer_log=answer_log
        )
        self._emit(
            ShardEvent(
                shard.shard_id,
                "restored",
                shard.kind,
                pairs=shard.num_pairs,
                loops=result.num_loops,
                questions=result.questions_asked,
                matches=len(result.matches),
            )
        )
        return True

    # ------------------------------------------------------------------
    # Execution backends
    # ------------------------------------------------------------------
    def _execute(
        self,
        tasks: list[_ShardTask],
        state: PreparedState,
        crowd: CrowdSpec,
        outcomes: dict[int, _ShardOutcome],
    ) -> None:
        if not tasks:
            return
        if self.workers == 1 or len(tasks) == 1:
            self._execute_inline(tasks, state, crowd, outcomes)
            return
        self._execute_pool(tasks, state, crowd, outcomes)

    def _execute_inline(
        self,
        tasks: list[_ShardTask],
        state: PreparedState,
        crowd: CrowdSpec,
        outcomes: dict[int, _ShardOutcome],
    ) -> None:
        """Reference semantics, now with the same retry/quarantine loop.

        Only fault-plane failures (injected faults, an exhausted crowd)
        are retried — a raising ``on_event`` sink or store failure is a
        parent-side problem and propagates unchanged, mirroring the pool
        supervisor's split between worker errors and parent errors.
        """
        owner = f"pid:{os.getpid()}"
        for task in tasks:
            while True:
                self._acquire_lease(task.shard.shard_id, owner)
                try:
                    outcome = _execute_shard(task, state, crowd, self._handle_message)
                except (faults.InjectedFault, CrowdUnavailableError) as exc:
                    if self._note_retry(task, f"{type(exc).__name__}: {exc}"):
                        continue
                    break
                self._finish_shard(outcome, outcomes)
                self._release_lease(task.shard.shard_id)
                break

    def _execute_pool(
        self,
        tasks: list[_ShardTask],
        state: PreparedState,
        crowd: CrowdSpec,
        outcomes: dict[int, _ShardOutcome],
    ) -> None:
        # Prefer fork on Linux: the base state is inherited copy-on-write
        # instead of pickled, and our children touch only inherited data
        # plus the two queues.  Elsewhere (notably macOS, where fork is
        # advertised but unsafe) stay with the platform default — under
        # spawn the state is pickled once per worker via the process args.
        # REPRO_START_METHOD overrides the choice (tests pin ``spawn`` to
        # exercise the shared-memory transport on Linux).
        method = os.environ.get("REPRO_START_METHOD", "").strip().lower()
        if method:
            context = multiprocessing.get_context(method)
        elif sys.platform.startswith("linux") and (
            "fork" in multiprocessing.get_all_start_methods()
        ):
            context = multiprocessing.get_context("fork")
        else:
            context = multiprocessing.get_context()
        shared_packed = None
        if context.get_start_method() != "fork":
            packed = state.vector_index._packed
            # Non-fork workers receive the state by pickle; exporting the
            # packed matrix into shared memory first makes each worker's
            # pickle carry a segment *name* instead of an n×d float64
            # copy, and every worker maps the same physical pages.
            if packed is not None and packed.export_shared():
                shared_packed = packed
                obs.count("substrate.shm.exported")
        workers: list[_PoolWorker] = []
        next_worker_index = 0

        def spawn_worker() -> None:
            nonlocal next_worker_index
            parent_conn, child_conn = context.Pipe(duplex=True)
            process = context.Process(
                target=_worker_main,
                args=(state, crowd, child_conn, next_worker_index),
                daemon=True,
            )
            next_worker_index += 1
            process.start()
            # The parent must not hold the child's pipe end: one writer
            # per end is the kill-safety invariant.
            child_conn.close()
            workers.append(_PoolWorker(process, parent_conn, next_worker_index - 1))

        for _ in range(min(self.workers, len(tasks))):
            spawn_worker()
        backlog: list[_ShardTask] = list(tasks)
        pending = {task.shard.shard_id: task for task in tasks}
        clean_exit = False
        try:
            while pending:
                self._assign_tasks(workers, backlog)
                ready = multiprocessing.connection.wait(
                    [worker.conn for worker in workers], timeout=0.2
                )
                for worker in [w for w in workers if w.conn in ready]:
                    self._drain_worker(worker, pending, backlog, outcomes)
                self._reap_dead_workers(workers, pending, backlog, spawn_worker)
            clean_exit = True
        finally:
            self._shutdown_pool(workers, graceful=clean_exit)
            if shared_packed is not None:
                # Workers have joined; nobody maps the segment any more.
                shared_packed.release_shared()

    def _assign_tasks(self, workers: list[_PoolWorker], backlog: list) -> None:
        """Hand backlog tasks to idle, ready workers (supervisor-side)."""
        for worker in workers:
            if not backlog:
                return
            if worker.task is not None or not worker.ready:
                continue
            if not worker.process.is_alive():
                continue
            task = backlog.pop(0)
            worker.task = task
            self._acquire_lease(task.shard.shard_id, f"pid:{worker.process.pid}")
            try:
                worker.conn.send(task)
            except (BrokenPipeError, OSError):
                # Died between the liveness check and the send: the reaper
                # books the retry; the task goes back to the backlog head.
                worker.task = None
                self._release_lease(task.shard.shard_id)
                backlog.insert(0, task)
                return

    def _drain_worker(
        self, worker: _PoolWorker, pending: dict, backlog: list, outcomes: dict
    ) -> None:
        """Read every complete message the worker's pipe holds."""
        while True:
            try:
                if not worker.conn.poll():
                    return
                message = worker.conn.recv()
            except (EOFError, OSError):
                return  # closed pipe; the reaper handles the death
            kind = message[0]
            if kind == "ready":
                worker.ready = True
            elif kind == "done":
                _, shard_id, outcome = message
                worker.task = None
                # Guard against a duplicate completion: a shard requeued
                # after a presumed-dead worker may finish twice,
                # byte-identically — keep the first.
                if shard_id in pending:
                    self._finish_shard(outcome, outcomes)
                    del pending[shard_id]
                    self._release_lease(shard_id)
            elif kind == "error":
                _, shard_id, trace = message
                worker.task = None
                task = pending.get(shard_id)
                if task is not None:
                    if self._note_retry(task, trace):
                        backlog.append(task)
                    else:
                        del pending[shard_id]
            else:
                # Checkpoint/event traffic: a raising on_event sink or
                # a store failure propagates — parent-side problems are
                # fatal, and the finally clause tears the pool down so
                # no worker outlives the failed run.
                self._handle_message(message)

    def _reap_dead_workers(
        self, workers: list[_PoolWorker], pending: dict, backlog: list, spawn_worker
    ) -> None:
        """Requeue the shards of dead workers and replenish the pool."""
        dead = [
            worker
            for worker in workers
            if not worker.process.is_alive()
            and worker.process.exitcode not in (0, None)
        ]
        for worker in dead:
            workers.remove(worker)
            obs.count("fault.worker_death")
            log.warning(
                "shard worker pid %d died with exit code %s",
                worker.process.pid,
                worker.process.exitcode,
            )
            worker.conn.close()
            task = worker.task
            if task is not None and task.shard.shard_id in pending:
                reason = (
                    f"worker pid {worker.process.pid} died with exit code"
                    f" {worker.process.exitcode} while executing shard"
                    f" {task.shard.shard_id}"
                )
                if self._note_retry(task, reason):
                    backlog.append(task)
                else:
                    del pending[task.shard.shard_id]
        if dead:
            while pending and len(workers) < min(self.workers, len(pending)):
                spawn_worker()

    def _note_retry(self, task: _ShardTask, reason: str) -> bool:
        """Book a shard failure: retry (True) or quarantine (False).

        On retry the task resumes from the latest checkpoint the parent
        saw, after a capped, jittered exponential backoff; on quarantine
        the shard is recorded and the run degrades to a
        :class:`PartialResult` once the healthy shards finish.
        """
        shard = task.shard
        task.attempt += 1
        if self._store is not None and hasattr(self._store, "bump_shard_attempts"):
            self._store.bump_shard_attempts(self._run_id, shard.shard_id)
        self._release_lease(shard.shard_id)
        if task.attempt <= self.max_shard_retries:
            checkpoint = self._last_checkpoints.get(shard.shard_id)
            if checkpoint is not None:
                task.checkpoint = checkpoint
            obs.count("fault.shard_retry")
            log.warning(
                "shard %d attempt %d failed, requeueing: %s",
                shard.shard_id,
                task.attempt,
                reason.strip().splitlines()[-1] if reason.strip() else reason,
            )
            self._emit(
                ShardEvent(
                    shard.shard_id,
                    "retried",
                    shard.kind,
                    pairs=shard.num_pairs,
                    attempt=task.attempt,
                )
            )
            delay = min(2.0, 0.05 * (2 ** (task.attempt - 1)))
            time.sleep(delay * (0.5 + self._backoff_rng.random()))
            return True
        obs.count("fault.quarantine")
        log.error(
            "shard %d quarantined after %d attempts:\n%s",
            shard.shard_id,
            task.attempt,
            reason,
        )
        self._emit(
            ShardEvent(
                shard.shard_id,
                "quarantined",
                shard.kind,
                pairs=shard.num_pairs,
                attempt=task.attempt,
            )
        )
        self.quarantined.append(
            {
                "shard_id": shard.shard_id,
                "kind": shard.kind,
                "attempts": task.attempt,
                "error": reason,
            }
        )
        return False

    def _raise_partial(self, outcomes: dict[int, _ShardOutcome]) -> None:
        result = merge_shard_results(
            [(shard_id, outcome.result) for shard_id, outcome in outcomes.items()]
        )
        raise PartialResult(result, list(self.quarantined))

    def _shutdown_pool(self, workers: list[_PoolWorker], *, graceful: bool) -> None:
        """Orderly pool teardown on every exit path.

        Graceful exits hand each worker a sentinel; fatal exits (a
        parent-side exception) terminate outright.  Either way each pipe
        is drained *while* joining — a child blocked on a full pipe can
        then flush and exit — and any straggler is escalated
        terminate → kill, so no worker process outlives the run.
        """
        terminated: set[int] = set()
        for worker in workers:
            if not worker.process.is_alive():
                continue
            if graceful:
                try:
                    worker.conn.send(None)
                except (BrokenPipeError, OSError):
                    pass
            else:
                worker.process.terminate()
                terminated.add(worker.index)
        deadline = time.monotonic() + 10.0
        for worker in workers:
            process = worker.process
            while process.is_alive() and time.monotonic() < deadline:
                try:
                    while worker.conn.poll():
                        worker.conn.recv()
                except (EOFError, OSError):
                    pass
                process.join(timeout=0.1)
            if process.is_alive():
                process.terminate()
                terminated.add(worker.index)
                process.join(timeout=2.0)
            if process.is_alive():
                process.kill()
                process.join(timeout=2.0)
            worker.conn.close()
            if worker.index not in terminated and process.exitcode not in (0, None):
                # A worker that died on its own but whose death the run
                # never had to react to — e.g. a slow-spawning worker
                # whose startup probe killed it after the last shard
                # finished — is still a death the telemetry must show.
                obs.count("fault.worker_death")
                log.warning(
                    "shard worker pid %d died with exit code %s during shutdown",
                    process.pid,
                    process.exitcode,
                )

    # ------------------------------------------------------------------
    # Parent-side message handling (events + checkpoint persistence)
    # ------------------------------------------------------------------
    def _handle_message(self, message: tuple) -> None:
        if message[0] == "event":
            self._emit(message[1])
        elif message[0] == "checkpoint":
            _, shard_id, checkpoint = message
            self._last_checkpoints[shard_id] = checkpoint
            if self._store is not None:
                self._store.save_shard_checkpoint(self._run_id, shard_id, checkpoint)
                # Every checkpoint doubles as a heartbeat: the lease stays
                # fresh exactly as long as the shard keeps making progress.
                owner = self._lease_owners.get(shard_id)
                if owner is not None and hasattr(self._store, "heartbeat_shard_lease"):
                    self._store.heartbeat_shard_lease(
                        self._run_id, shard_id, owner, ttl=self._lease_ttl
                    )

    def _acquire_lease(self, shard_id: int, owner: str) -> None:
        self._lease_owners[shard_id] = owner
        if self._store is not None and hasattr(self._store, "acquire_shard_lease"):
            self._store.acquire_shard_lease(
                self._run_id, shard_id, owner, ttl=self._lease_ttl
            )

    def _release_lease(self, shard_id: int) -> None:
        self._lease_owners.pop(shard_id, None)
        if self._store is not None and hasattr(self._store, "release_shard_lease"):
            self._store.release_shard_lease(self._run_id, shard_id)

    def _finish_shard(
        self, outcome: _ShardOutcome, outcomes: dict[int, _ShardOutcome]
    ) -> None:
        outcomes[outcome.shard_id] = outcome
        if outcome.timings:
            # Fold a pool worker's kernel timings into the parent registry
            # so partitioned runs report a complete timing profile (merge
            # routes to the active session scope as well).
            TIMINGS.merge(outcome.timings)
        if outcome.spans or outcome.metrics or outcome.profile:
            obs.absorb(
                spans=outcome.spans,
                metrics=outcome.metrics,
                profile=outcome.profile,
            )
        if self._store is not None:
            self._store.save_shard_result(
                self._run_id,
                outcome.shard_id,
                outcome.result,
                outcome.snapshot,
                answer_log=outcome.answer_log,
            )

    def _emit(self, event: ShardEvent) -> None:
        obs.count(f"partition.shard.{event.kind}")
        # Shard lifecycle heartbeats for the live plane: _emit always
        # runs in the parent (workers funnel through the event queue),
        # so the session scope is active and its event writer persists
        # the row with the shard id as a dedicated column.
        obs.publish(
            f"shard.{event.kind}",
            shard_id=event.shard_id,
            phase=event.phase,
            pairs=event.pairs,
            loops=event.loops,
            questions=event.questions,
            matches=event.matches,
            attempt=event.attempt,
        )
        log.debug(
            "shard %d %s (%s): pairs=%d loops=%d questions=%d",
            event.shard_id,
            event.kind,
            event.phase,
            event.pairs,
            event.loops,
            event.questions,
        )
        if self._on_event is not None:
            self._on_event(event)


# Re-exported for the service/CLI layers.
__all__ = [
    "CrowdSpec",
    "ParallelRunner",
    "PartialResult",
    "ShardEvent",
    "UnitRecord",
    "content_seed",
    "merge_shard_results",
    "shard_seed",
    "split_budget",
    "unit_content_key",
]
