"""Parallel execution of a partitioned Remp run.

:class:`ParallelRunner` executes a :class:`~repro.partition.partitioner.PartitionPlan`
in two phases:

1. **Graph shards** run the full human–machine loop concurrently on a
   ``multiprocessing`` pool (or inline for ``workers=1``).  Each shard
   gets a :class:`CrowdPlatform` derived deterministically from
   ``(seed, shard_id)`` and a slice of the question budget, so its
   execution is a pure function of the shard — independent of pool size
   or scheduling order.
2. **Isolated shards** classify the propagation-unreachable pairs against
   the *merged* phase-1 resolutions — the same training data the
   monolithic isolated-pair classifier sees.

A deterministic merger reassembles the shard results into one
:class:`RempResult`; because shard executions are order-independent, the
merged result is identical for every worker count.  With a
:class:`repro.store.RunStore` attached, every labeling round checkpoints
under a partition-aware key ``(run_id, shard_id)`` and finished shards
persist their results, so a killed run resumes shard-by-shard without
re-asking a single question.

Lifecycle events (started / checkpointed / finished / restored / failed,
with loop and question counts) stream to an ``on_event`` callback — the
CLI renders them as a live per-partition status line.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import queue as queue_module
import sys
import traceback
from dataclasses import dataclass, field, replace

from repro.accel.runtime import TIMINGS, accel_enabled
from repro.core.config import RempConfig
from repro.obs import runtime as obs
from repro.obs.logging import get_logger
from repro.core.pipeline import (
    LoopCheckpoint,
    PreparedState,
    Remp,
    RempResult,
    assemble_result,
    merge_loop_snapshots,
)
from repro.crowd.platform import CrowdPlatform
from repro.partition.partitioner import (
    DEFAULT_TARGET_SHARDS,
    GRAPH,
    PartitionPlan,
    Shard,
    partition_state,
)

Pair = tuple[str, str]

log = get_logger("partition")


def shard_seed(seed: int, shard_id: int) -> int:
    """Stable 63-bit seed derived from the run seed and a shard id."""
    key = f"{seed}\x1f{shard_id}".encode()
    return int.from_bytes(hashlib.blake2b(key, digest_size=8).digest(), "big") >> 1


def unit_content_key(vertices) -> str:
    """Content identity of a shard: a digest of its sorted vertex list.

    Positional shard ids shift whenever the partition layout does; the
    content key survives any layout change that leaves the shard's
    vertex set intact, which is what lets :mod:`repro.stream` match a
    clean shard against a record from an earlier run of a *different*
    prepared state.
    """
    blob = "\x1e".join(f"{left}\x1f{right}" for left, right in sorted(vertices))
    return hashlib.blake2b(blob.encode(), digest_size=16).hexdigest()


def content_seed(seed: int, key: str) -> int:
    """Stable 63-bit seed derived from the run seed and a content key."""
    blob = f"{seed}\x1f{key}".encode()
    return int.from_bytes(hashlib.blake2b(blob, digest_size=8).digest(), "big") >> 1


@dataclass(slots=True)
class CrowdSpec:
    """A picklable recipe for building per-shard crowd platforms.

    Shard workers run in separate processes, so they receive the *recipe*
    for a platform rather than the platform itself; :meth:`build` derives
    the worker-assignment seed from ``(seed, shard_id)``.  An
    ``error_rate`` of 0 yields a perfect oracle (mirroring
    :mod:`repro.service`).
    """

    truth: set[Pair]
    error_rate: float = 0.0
    seed: int = 0
    num_workers: int = 50
    workers_per_question: int = 5

    def build(self, shard_id: int) -> CrowdPlatform:
        if self.error_rate <= 0.0:
            return CrowdPlatform.with_oracle(set(self.truth))
        return CrowdPlatform.with_simulated_workers(
            set(self.truth),
            num_workers=self.num_workers,
            error_rate=self.error_rate,
            workers_per_question=self.workers_per_question,
            seed=shard_seed(self.seed, shard_id),
        )

    def build_seeded(self, platform_seed: int) -> CrowdPlatform:
        """Like :meth:`build`, but from a pre-derived platform seed.

        Used by the stream layer, whose per-unit seeds derive from shard
        *content* rather than position so they survive layout changes.
        """
        if self.error_rate <= 0.0:
            return CrowdPlatform.with_oracle(set(self.truth))
        return CrowdPlatform.with_simulated_workers(
            set(self.truth),
            num_workers=self.num_workers,
            error_rate=self.error_rate,
            workers_per_question=self.workers_per_question,
            seed=platform_seed,
        )


@dataclass(slots=True)
class ShardEvent:
    """One lifecycle/progress notification from a shard execution."""

    shard_id: int
    kind: str  # "started" | "checkpointed" | "finished" | "restored" | "failed"
    phase: str  # "graph" | "isolated"
    pairs: int = 0
    loops: int = 0
    questions: int = 0
    matches: int = 0


def split_budget(total: int | None, weights: list[int]) -> list[int | None]:
    """Largest-remainder split of a question budget across graph shards.

    Proportional to each shard's pair count; every unit of a finite
    budget is handed to exactly one shard.  ``None`` (unlimited) passes
    through unchanged.
    """
    if total is None:
        return [None] * len(weights)
    if not weights:
        return []
    weight_sum = sum(weights) or len(weights)
    exact = [total * w / weight_sum for w in weights]
    floors = [int(x) for x in exact]
    remainder = total - sum(floors)
    by_fraction = sorted(
        range(len(weights)), key=lambda i: (floors[i] - exact[i], i)
    )
    for index in by_fraction[:remainder]:
        floors[index] += 1
    return floors


@dataclass(slots=True)
class _ShardTask:
    """Everything a worker process needs to execute one shard."""

    shard: Shard
    config: RempConfig
    strategy: str
    seed: int
    checkpoint: LoopCheckpoint | None = None
    merged_snapshot: dict | None = None  # isolated shards only
    #: Content-derived seed overrides (stream mode); ``None`` falls back
    #: to the positional ``shard_seed(seed, shard_id)`` derivation.
    remp_seed: int | None = None
    platform_seed: int | None = None
    #: Restrict the slice's candidate set to the shard's entities.
    localize: bool = False


@dataclass(slots=True)
class _ShardOutcome:
    """A finished shard: its partial result, loop snapshot and answer log."""

    shard_id: int
    kind: str
    result: RempResult
    snapshot: dict = field(default_factory=dict)
    answer_log: list = field(default_factory=list)
    #: Kernel-timing delta the shard produced (pool workers only — the
    #: parent merges it into its own registry; inline execution already
    #: accumulates in-process).
    timings: dict = field(default_factory=dict)
    #: Spans and metrics the shard's worker-side run scope buffered
    #: (pool workers only — inline execution writes straight into the
    #: session scope).  The parent absorbs both in ``_finish_shard``.
    spans: list = field(default_factory=list)
    metrics: dict = field(default_factory=dict)
    #: Folded-stack wall-clock samples from the worker's profiler
    #: (``REPRO_PROFILE=1`` only) — absorbed into the session scope so a
    #: partitioned run's flamegraph covers its pool workers.
    profile: dict = field(default_factory=dict)


@dataclass(slots=True)
class UnitRecord:
    """One shard's durable outcome, addressed by content key.

    The stream layer persists these per run; a later incremental run
    reuses a record verbatim when the shard's content key still matches
    and none of its pairs are dirty.  ``answer_log`` carries the crowd
    labels the shard collected, so new-spend accounting can tell a
    replayed question from a genuinely new one.
    """

    key: str
    kind: str
    result: RempResult
    snapshot: dict = field(default_factory=dict)
    answer_log: list = field(default_factory=list)
    reused: bool = False


def _execute_shard(
    task: _ShardTask, base_state: PreparedState, crowd: CrowdSpec, emit
) -> _ShardOutcome:
    """Run one shard to completion (worker-process entry point).

    ``base_state`` and ``crowd`` are shared by every shard of a run —
    inherited by worker processes at fork time (or pickled once per
    worker under spawn) rather than shipped per task, so a queued task
    costs only its vertex list.  ``emit`` receives
    ``("event", ShardEvent)`` and, after each labeling round,
    ``("checkpoint", shard_id, LoopCheckpoint)`` messages; the parent
    persists checkpoints so children never touch the store.
    """
    shard = task.shard
    with obs.span(
        "shard.execute", shard=shard.shard_id, phase=shard.kind, pairs=shard.num_pairs
    ):
        return _run_shard(task, base_state, crowd, emit)


def _run_shard(
    task: _ShardTask, base_state: PreparedState, crowd: CrowdSpec, emit
) -> _ShardOutcome:
    shard = task.shard
    phase = shard.kind
    shard_state = shard.slice(base_state, localize=task.localize)
    remp_seed = (
        task.remp_seed
        if task.remp_seed is not None
        else shard_seed(task.seed, shard.shard_id)
    )
    remp = Remp(task.config, seed=remp_seed)
    platform = (
        crowd.build_seeded(task.platform_seed)
        if task.platform_seed is not None
        else crowd.build(shard.shard_id)
    )
    emit(
        (
            "event",
            ShardEvent(shard.shard_id, "started", phase, pairs=shard.num_pairs),
        )
    )
    if shard.kind == GRAPH:
        resume = task.checkpoint
        if resume is not None:
            platform.load_answer_log(resume.answer_log)

        def on_checkpoint(checkpoint: LoopCheckpoint) -> None:
            emit(("checkpoint", shard.shard_id, checkpoint))
            emit(
                (
                    "event",
                    ShardEvent(
                        shard.shard_id,
                        "checkpointed",
                        phase,
                        pairs=shard.num_pairs,
                        loops=checkpoint.next_loop_index,
                        questions=checkpoint.questions_asked,
                    ),
                )
            )

        loop_state, history, questions = remp.run_loop_phase(
            shard_state,
            platform,
            task.strategy,
            resume_from=resume,
            on_checkpoint=on_checkpoint,
        )
        result = assemble_result(loop_state, set(), questions, history)
        outcome = _ShardOutcome(
            shard.shard_id,
            shard.kind,
            result,
            loop_state.snapshot(),
            answer_log=platform.export_answer_log(),
        )
    else:
        # Classifier-only shard: restore the merged phase-1 resolutions
        # and let the monolithic isolated-pair path do the rest.  The
        # shard result carries only the *delta* this shard produced.
        loop_state = remp._make_loop_state(shard_state)
        loop_state.restore(task.merged_snapshot or loop_state.snapshot())
        base_labeled = set(loop_state.labeled_matches)
        base_non_matches = set(loop_state.resolved_non_matches)
        isolated_matches, _ = remp._classify_isolated(shard_state, loop_state, platform)
        labeled_delta = loop_state.labeled_matches - base_labeled
        result = RempResult(
            matches=labeled_delta | isolated_matches,
            questions_asked=platform.questions_asked,
            num_loops=0,
            labeled_matches=labeled_delta,
            isolated_matches=isolated_matches,
            non_matches=loop_state.resolved_non_matches - base_non_matches,
        )
        outcome = _ShardOutcome(
            shard.shard_id,
            shard.kind,
            result,
            answer_log=platform.export_answer_log(),
        )
    emit(
        (
            "event",
            ShardEvent(
                shard.shard_id,
                "finished",
                phase,
                pairs=shard.num_pairs,
                loops=result.num_loops,
                questions=result.questions_asked,
                matches=len(result.matches),
            ),
        )
    )
    return outcome


def _worker_main(base_state, crowd, task_queue, event_queue) -> None:
    """Pool worker: execute shard tasks until the ``None`` sentinel.

    ``base_state`` and ``crowd`` arrive through the process arguments:
    free under the ``fork`` start method (copy-on-write memory), pickled
    once per worker — never once per shard — under ``spawn`` (where the
    packed dominance matrix travels as a shared-memory segment name, so
    all workers map one physical copy).
    """
    attached = False
    while True:
        task = task_queue.get()
        if task is None:
            return
        try:
            # A per-task run scope gives exact attribution: the worker's
            # stages/spans/metrics land in the scope's private buffers
            # (stamped with the shard id) and ship back with the outcome
            # — no snapshot/diff against the process-wide registry.
            scope = obs.RunScope(shard_id=task.shard.shard_id)
            with scope.activate():
                if not attached:
                    # Once per worker, on its first task's scope: the
                    # substrate contract is that the parent pre-packed
                    # the base state, so a worker that would have to
                    # re-pack is a regression — base_unpacked flags it.
                    attached = True
                    obs.count("substrate.worker.attach")
                    prepacked = base_state.vector_index._packed is not None
                    if accel_enabled() and not prepacked:
                        obs.count("substrate.worker.base_unpacked")
                    obs.event("substrate.worker.attach", prepacked=prepacked)
                outcome = _execute_shard(task, base_state, crowd, event_queue.put)
            outcome.timings = scope.timings.snapshot()
            outcome.spans = scope.tracer.spans()
            outcome.metrics = scope.metrics.as_doc()
            if scope.profiler is not None and scope.profiler.samples:
                outcome.profile = scope.profiler.as_doc()
            event_queue.put(("done", task.shard.shard_id, outcome))
        except Exception:
            event_queue.put(("error", task.shard.shard_id, traceback.format_exc()))


def merge_shard_results(results: list[tuple[int, RempResult]]) -> RempResult:
    """Deterministically reassemble shard results into one result.

    Resolution sets are unioned (a match recorded by any shard wins over
    a competitor demotion from another), questions and loops are summed
    — shards ask about disjoint pair sets, so distinct-question billing
    is additive — and histories concatenate in shard-id order with the
    loop index rewritten to a single global sequence.
    """
    merged = RempResult(matches=set(), questions_asked=0, num_loops=0)
    for _, result in sorted(results, key=lambda item: item[0]):
        merged.matches |= result.matches
        merged.labeled_matches |= result.labeled_matches
        merged.inferred_matches |= result.inferred_matches
        merged.isolated_matches |= result.isolated_matches
        merged.non_matches |= result.non_matches
        merged.questions_asked += result.questions_asked
        for record in result.history:
            merged.history.append(replace(record, loop_index=len(merged.history)))
    merged.non_matches -= merged.matches
    merged.num_loops = len(merged.history)
    return merged


class ParallelRunner:
    """Partition a prepared state and run its shards on a worker pool.

    Parameters
    ----------
    config, seed, strategy:
        Forwarded to the per-shard :class:`Remp` instances (each shard's
        effective seed is derived from ``(seed, shard_id)``).
    workers:
        Pool size.  ``1`` executes shards inline in deterministic order —
        the reference semantics every pool size must reproduce.
    max_shard_size, target_shards, isolated_shards:
        Partition parameters (see :func:`partition_state`).  Independent
        of ``workers`` by design.
    store, run_id:
        Optional :class:`repro.store.RunStore` (or compatible) plus run
        id; enables per-shard checkpointing and :meth:`run` resume.
    on_event:
        Callback receiving every :class:`ShardEvent`.
    localize, content_seeds, dirty, reuse, collect_records:
        The stream-mode knobs (:mod:`repro.stream`).  ``localize``
        restricts each graph shard's candidate set to its own entities;
        ``content_seeds`` derives per-shard Remp and crowd seeds from the
        shard's *content key* instead of its positional id; ``dirty``
        (a pair set) plus ``reuse`` (content-keyed :class:`UnitRecord`
        map from a previous run) let clean shards restore a recorded
        outcome instead of executing; ``collect_records`` populates
        :attr:`unit_records` with every shard's durable outcome.
    """

    def __init__(
        self,
        config: RempConfig | None = None,
        *,
        seed: int = 0,
        workers: int = 1,
        strategy: str = "remp",
        max_shard_size: int | None = None,
        target_shards: int = DEFAULT_TARGET_SHARDS,
        isolated_shards: int = 1,
        store=None,
        run_id: str | None = None,
        on_event=None,
        localize: bool = False,
        content_seeds: bool = False,
        dirty: set[Pair] | None = None,
        reuse: dict[str, UnitRecord] | None = None,
        collect_records: bool = False,
    ):
        if workers < 1:
            raise ValueError("workers must be positive")
        if store is not None and run_id is None:
            raise ValueError("run_id is required when a store is attached")
        if (dirty is not None or reuse) and not content_seeds:
            raise ValueError(
                "dirty/reuse require content_seeds: positional seeds change "
                "with the layout, so a reused record would not match"
            )
        self.config = config or RempConfig()
        self.seed = seed
        self.workers = workers
        self.strategy = strategy
        self.max_shard_size = max_shard_size
        self.target_shards = target_shards
        self.isolated_shards = isolated_shards
        self._store = store
        self._run_id = run_id
        self._on_event = on_event
        self._localize = localize
        self._content_seeds = content_seeds
        self._dirty = dirty
        self._reuse = reuse or {}
        self._collect_records = collect_records
        #: Content-keyed durable outcomes of the last :meth:`run`
        #: (populated when ``collect_records`` is set).
        self.unit_records: dict[str, UnitRecord] = {}
        #: Content keys restored from ``reuse`` during the last run.
        self.reused_keys: set[str] = set()
        #: Per-shard billing items from the last :meth:`run` — the
        #: service's cost ledger for partitioned runs.  Shards ask about
        #: disjoint pair sets, so the item questions sum to the merged
        #: result's ``questions_asked`` exactly.
        self.shard_costs: list[dict] = []

    # ------------------------------------------------------------------
    def plan(self, state: PreparedState) -> PartitionPlan:
        """The deterministic shard layout for ``state``."""
        return partition_state(
            state,
            max_shard_size=self.max_shard_size,
            target_shards=self.target_shards,
            isolated_shards=self.isolated_shards,
        )

    def run(self, state: PreparedState, crowd: CrowdSpec) -> RempResult:
        """Execute the partitioned pipeline and merge the shard results."""
        plan = self.plan(state)
        stored = self._load_shard_records()
        outcomes: dict[int, _ShardOutcome] = {}
        self.unit_records = {}
        self.reused_keys = set()
        self.shard_costs = []
        keys = self._shard_keys(plan)
        obs.gauge("partition.shards", len(plan.shards))
        log.info(
            "partition plan: %d graph + %d isolated shards, workers=%d",
            len(plan.graph_shards),
            len(plan.isolated_shards),
            self.workers,
        )

        if accel_enabled():
            # Materialize the packed dominance matrix in the parent
            # BEFORE any worker exists: forked workers then share the
            # float64 pages copy-on-write (and spawn ships one
            # shared-memory segment) instead of each shard's first
            # min_rank call lazily re-packing a private copy per worker.
            with TIMINGS.timed("partition.prepack"):
                state.vector_index.packed()

        graph_shards = plan.graph_shards
        # Weight by loop pairs: rider isolated pairs can never consume a
        # question, so they must not attract budget either.
        budgets = split_budget(
            self.config.budget, [shard.num_loop_pairs for shard in graph_shards]
        )
        tasks: list[_ShardTask] = []
        for shard, budget in zip(graph_shards, budgets):
            task = self._make_task(
                shard, replace(self.config, budget=budget), keys[shard.shard_id]
            )
            if self._restore_outcome(shard, stored, outcomes):
                continue
            if self._reuse_outcome(shard, keys[shard.shard_id], outcomes):
                continue
            record = stored.get(shard.shard_id)
            if record is not None and record[0] == "loop":
                task.checkpoint = record[1]
            tasks.append(task)
        self._execute(tasks, state, crowd, outcomes)

        merged_snapshot = merge_loop_snapshots(
            state,
            [
                outcomes[shard.shard_id].snapshot
                for shard in graph_shards
                if shard.shard_id in outcomes
            ],
        )
        isolated_tasks: list[_ShardTask] = []
        for shard in plan.isolated_shards:
            if not self._restore_outcome(shard, stored, outcomes):
                task = self._make_task(shard, self.config, keys[shard.shard_id])
                task.merged_snapshot = merged_snapshot
                isolated_tasks.append(task)
        self._execute(isolated_tasks, state, crowd, outcomes)

        if self._collect_records:
            for shard in plan.shards:
                outcome = outcomes.get(shard.shard_id)
                if outcome is None:
                    continue
                key = keys[shard.shard_id]
                self.unit_records[key] = UnitRecord(
                    key=key,
                    kind=shard.kind,
                    result=outcome.result,
                    snapshot=outcome.snapshot,
                    answer_log=outcome.answer_log,
                    reused=key in self.reused_keys,
                )

        self.shard_costs = [
            {
                "scope": "shard",
                "key": str(shard_id),
                "kind": outcome.kind,
                "questions": outcome.result.questions_asked,
            }
            for shard_id, outcome in sorted(outcomes.items())
        ]
        return merge_shard_results(
            [(shard_id, outcome.result) for shard_id, outcome in outcomes.items()]
        )

    def _shard_keys(self, plan: PartitionPlan) -> dict[int, str]:
        """Content keys per shard id (isolated shards keyed by position)."""
        keys: dict[int, str] = {}
        for shard in plan.graph_shards:
            keys[shard.shard_id] = unit_content_key(shard.vertices)
        for index, shard in enumerate(plan.isolated_shards):
            keys[shard.shard_id] = f"isolated\x1f{index}"
        return keys

    def _make_task(self, shard: Shard, config: RempConfig, key: str) -> _ShardTask:
        task = _ShardTask(
            shard=shard,
            config=config,
            strategy=self.strategy,
            seed=self.seed,
            localize=self._localize and shard.kind == GRAPH,
        )
        if self._content_seeds:
            task.remp_seed = content_seed(self.seed, key)
            task.platform_seed = content_seed(self.seed, "crowd\x1f" + key)
        return task

    def _reuse_outcome(
        self, shard: Shard, key: str, outcomes: dict[int, _ShardOutcome]
    ) -> bool:
        """Restore a clean shard from a previous run's content-keyed record.

        A shard qualifies only when a dirty set was provided, none of its
        pairs are in it, and the reuse map holds its exact content key —
        equal key means equal vertex set, and a clean vertex set means an
        identical slice, so the recorded outcome is what execution would
        reproduce bit for bit.
        """
        if self._dirty is None:
            return False
        record = self._reuse.get(key)
        if record is None or self._dirty.intersection(shard.vertices):
            return False
        outcomes[shard.shard_id] = _ShardOutcome(
            shard.shard_id,
            shard.kind,
            record.result,
            record.snapshot,
            answer_log=record.answer_log,
        )
        self.reused_keys.add(key)
        if self._store is not None:
            self._store.save_shard_result(
                self._run_id,
                shard.shard_id,
                record.result,
                record.snapshot,
                answer_log=record.answer_log,
            )
        self._emit(
            ShardEvent(
                shard.shard_id,
                "restored",
                shard.kind,
                pairs=shard.num_pairs,
                loops=record.result.num_loops,
                questions=record.result.questions_asked,
                matches=len(record.result.matches),
            )
        )
        return True

    # ------------------------------------------------------------------
    # Resume bookkeeping
    # ------------------------------------------------------------------
    def _load_shard_records(self) -> dict[int, tuple]:
        if self._store is None:
            return {}
        return self._store.load_shard_records(self._run_id)

    def _restore_outcome(
        self, shard: Shard, stored: dict[int, tuple], outcomes: dict[int, _ShardOutcome]
    ) -> bool:
        """Reuse a persisted finished shard; emits a ``restored`` event."""
        record = stored.get(shard.shard_id)
        if record is None or record[0] != "done":
            return False
        _, result, snapshot, answer_log = record
        outcomes[shard.shard_id] = _ShardOutcome(
            shard.shard_id, shard.kind, result, snapshot, answer_log=answer_log
        )
        self._emit(
            ShardEvent(
                shard.shard_id,
                "restored",
                shard.kind,
                pairs=shard.num_pairs,
                loops=result.num_loops,
                questions=result.questions_asked,
                matches=len(result.matches),
            )
        )
        return True

    # ------------------------------------------------------------------
    # Execution backends
    # ------------------------------------------------------------------
    def _execute(
        self,
        tasks: list[_ShardTask],
        state: PreparedState,
        crowd: CrowdSpec,
        outcomes: dict[int, _ShardOutcome],
    ) -> None:
        if not tasks:
            return
        if self.workers == 1 or len(tasks) == 1:
            for task in tasks:
                outcome = _execute_shard(task, state, crowd, self._handle_message)
                self._finish_shard(outcome, outcomes)
            return
        self._execute_pool(tasks, state, crowd, outcomes)

    def _execute_pool(
        self,
        tasks: list[_ShardTask],
        state: PreparedState,
        crowd: CrowdSpec,
        outcomes: dict[int, _ShardOutcome],
    ) -> None:
        # Prefer fork on Linux: the base state is inherited copy-on-write
        # instead of pickled, and our children touch only inherited data
        # plus the two queues.  Elsewhere (notably macOS, where fork is
        # advertised but unsafe) stay with the platform default — under
        # spawn the state is pickled once per worker via the process args.
        # REPRO_START_METHOD overrides the choice (tests pin ``spawn`` to
        # exercise the shared-memory transport on Linux).
        method = os.environ.get("REPRO_START_METHOD", "").strip().lower()
        if method:
            context = multiprocessing.get_context(method)
        elif sys.platform.startswith("linux") and (
            "fork" in multiprocessing.get_all_start_methods()
        ):
            context = multiprocessing.get_context("fork")
        else:
            context = multiprocessing.get_context()
        shared_packed = None
        if context.get_start_method() != "fork":
            packed = state.vector_index._packed
            # Non-fork workers receive the state by pickle; exporting the
            # packed matrix into shared memory first makes each worker's
            # pickle carry a segment *name* instead of an n×d float64
            # copy, and every worker maps the same physical pages.
            if packed is not None and packed.export_shared():
                shared_packed = packed
                obs.count("substrate.shm.exported")
        task_queue = context.Queue()
        event_queue = context.Queue()
        pool_size = min(self.workers, len(tasks))
        processes = [
            context.Process(
                target=_worker_main,
                args=(state, crowd, task_queue, event_queue),
                daemon=True,
            )
            for _ in range(pool_size)
        ]
        for process in processes:
            process.start()
        for task in tasks:
            task_queue.put(task)
        for _ in processes:
            task_queue.put(None)
        failure: tuple[int, str] | None = None
        pending = len(tasks)
        clean_exit = False
        try:
            while pending and failure is None:
                try:
                    message = event_queue.get(timeout=1.0)
                except queue_module.Empty:
                    dead = [p for p in processes if not p.is_alive() and p.exitcode]
                    if dead:
                        failure = (-1, f"shard worker died with exit code {dead[0].exitcode}")
                    continue
                if message[0] == "done":
                    self._finish_shard(message[2], outcomes)
                    pending -= 1
                elif message[0] == "error":
                    failure = (message[1], message[2])
                else:
                    self._handle_message(message)
            clean_exit = failure is None
        finally:
            # Terminate on a child failure AND on any parent-side
            # exception (a raising on_event sink, a failing store write):
            # otherwise the daemon workers keep running shards whose
            # checkpoints nobody persists, and join() blocks on them.
            if not clean_exit:
                for process in processes:
                    process.terminate()
            for process in processes:
                process.join(timeout=10.0)
            if shared_packed is not None:
                # Workers have joined; nobody maps the segment any more.
                shared_packed.release_shared()
        if failure is not None:
            shard_id, trace = failure
            phases = {task.shard.shard_id: task.shard.kind for task in tasks}
            log.error("shard %d failed:\n%s", shard_id, trace)
            self._emit(ShardEvent(shard_id, "failed", phases.get(shard_id, GRAPH)))
            raise RuntimeError(f"shard {shard_id} failed:\n{trace}")

    # ------------------------------------------------------------------
    # Parent-side message handling (events + checkpoint persistence)
    # ------------------------------------------------------------------
    def _handle_message(self, message: tuple) -> None:
        if message[0] == "event":
            self._emit(message[1])
        elif message[0] == "checkpoint":
            _, shard_id, checkpoint = message
            if self._store is not None:
                self._store.save_shard_checkpoint(self._run_id, shard_id, checkpoint)

    def _finish_shard(
        self, outcome: _ShardOutcome, outcomes: dict[int, _ShardOutcome]
    ) -> None:
        outcomes[outcome.shard_id] = outcome
        if outcome.timings:
            # Fold a pool worker's kernel timings into the parent registry
            # so partitioned runs report a complete timing profile (merge
            # routes to the active session scope as well).
            TIMINGS.merge(outcome.timings)
        if outcome.spans or outcome.metrics or outcome.profile:
            obs.absorb(
                spans=outcome.spans,
                metrics=outcome.metrics,
                profile=outcome.profile,
            )
        if self._store is not None:
            self._store.save_shard_result(
                self._run_id,
                outcome.shard_id,
                outcome.result,
                outcome.snapshot,
                answer_log=outcome.answer_log,
            )

    def _emit(self, event: ShardEvent) -> None:
        obs.count(f"partition.shard.{event.kind}")
        # Shard lifecycle heartbeats for the live plane: _emit always
        # runs in the parent (workers funnel through the event queue),
        # so the session scope is active and its event writer persists
        # the row with the shard id as a dedicated column.
        obs.publish(
            f"shard.{event.kind}",
            shard_id=event.shard_id,
            phase=event.phase,
            pairs=event.pairs,
            loops=event.loops,
            questions=event.questions,
            matches=event.matches,
        )
        log.debug(
            "shard %d %s (%s): pairs=%d loops=%d questions=%d",
            event.shard_id,
            event.kind,
            event.phase,
            event.pairs,
            event.loops,
            event.questions,
        )
        if self._on_event is not None:
            self._on_event(event)


# Re-exported for the service/CLI layers.
__all__ = [
    "CrowdSpec",
    "ParallelRunner",
    "ShardEvent",
    "UnitRecord",
    "content_seed",
    "merge_shard_results",
    "shard_seed",
    "split_budget",
    "unit_content_key",
]
