"""Partitioned parallel execution of the Remp pipeline.

The ER graph decomposes into weakly-connected components that relational
match propagation can never bridge; this package shards a prepared state
along that structure and runs the shards concurrently:

* :mod:`repro.partition.partitioner` — component discovery, size-capped
  packing into balanced graph shards, and the classifier-only shard for
  isolated pairs.
* :mod:`repro.partition.runner` — :class:`ParallelRunner`: a
  ``multiprocessing`` pool with per-shard crowd platforms derived from
  ``(seed, shard_id)``, budget splitting, per-shard checkpointing through
  :mod:`repro.store`, and a deterministic merger whose output is
  identical for every worker count.
* :mod:`repro.partition.progress` — live per-partition status rendering
  for the CLI.
"""

from repro.partition.partitioner import (
    DEFAULT_TARGET_SHARDS,
    PartitionPlan,
    Shard,
    entity_closure_components,
    pack_components,
    partition_state,
)
from repro.partition.progress import ShardProgressPrinter
from repro.partition.runner import (
    CrowdSpec,
    ParallelRunner,
    PartialResult,
    ShardEvent,
    UnitRecord,
    content_seed,
    merge_shard_results,
    shard_seed,
    split_budget,
    unit_content_key,
)

__all__ = [
    "DEFAULT_TARGET_SHARDS",
    "CrowdSpec",
    "ParallelRunner",
    "PartialResult",
    "PartitionPlan",
    "Shard",
    "ShardEvent",
    "ShardProgressPrinter",
    "UnitRecord",
    "content_seed",
    "entity_closure_components",
    "merge_shard_results",
    "pack_components",
    "partition_state",
    "shard_seed",
    "split_budget",
    "unit_content_key",
]
