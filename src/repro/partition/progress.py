"""Live per-partition progress rendering for shard events.

:class:`ShardProgressPrinter` consumes :class:`~repro.partition.runner.ShardEvent`
notifications and keeps a one-line status summary up to date.  On a TTY
the line is redrawn in place (carriage return, no scroll-back spam); on a
pipe each state *change* prints as its own plain line, so logs stay
greppable.  The printer is the CLI's ``on_event`` sink but is plain
enough to unit-test against a ``StringIO``.
"""

from __future__ import annotations

import sys
from typing import TextIO

from repro.partition.runner import ShardEvent

#: Event kinds that mean a shard will do no further work.
_TERMINAL = ("finished", "restored", "failed", "quarantined")


class ShardProgressPrinter:
    """Render shard lifecycle events as a per-partition status line."""

    def __init__(self, stream: TextIO | None = None, live: bool | None = None):
        self.stream = stream if stream is not None else sys.stderr
        if live is None:
            live = bool(getattr(self.stream, "isatty", lambda: False)())
        self.live = live
        self._status: dict[int, str] = {}
        self._loops: dict[int, int] = {}
        self._questions: dict[int, int] = {}
        self._matches: dict[int, int] = {}
        self._closed = False

    # ------------------------------------------------------------------
    def __call__(self, event: ShardEvent) -> None:
        self._status[event.shard_id] = event.kind
        self._loops[event.shard_id] = max(
            event.loops, self._loops.get(event.shard_id, 0)
        )
        self._questions[event.shard_id] = max(
            event.questions, self._questions.get(event.shard_id, 0)
        )
        if event.kind in _TERMINAL:
            self._matches[event.shard_id] = event.matches
        if self.live:
            self.stream.write("\r\x1b[2K" + self.render())
        else:
            self.stream.write(self._event_line(event) + "\n")
        self.stream.flush()

    def close(self) -> None:
        """Write the final summary line once the run is over.

        On a TTY this finishes the live line (newline); on a pipe the
        same summary prints as one extra plain line, so piped logs end
        with the run's totals instead of the last raw event.
        """
        if not self._closed and self._status:
            if self.live:
                self.stream.write("\r\x1b[2K" + self.render() + "\n")
            else:
                self.stream.write(self.render() + "\n")
            self.stream.flush()
        self._closed = True

    # ------------------------------------------------------------------
    def render(self) -> str:
        """The one-line summary for the current shard states."""
        total = len(self._status)
        done = sum(1 for s in self._status.values() if s in _TERMINAL)
        running = total - done
        parts = [f"partitions {done}/{total} done"]
        if running:
            parts.append(f"{running} running")
        failed = sum(1 for s in self._status.values() if s == "failed")
        if failed:
            parts.append(f"{failed} FAILED")
        quarantined = sum(1 for s in self._status.values() if s == "quarantined")
        if quarantined:
            parts.append(f"{quarantined} QUARANTINED")
        parts.append(f"questions {sum(self._questions.values())}")
        if self._matches:
            parts.append(f"matches {sum(self._matches.values())}")
        return " · ".join(parts)

    def _event_line(self, event: ShardEvent) -> str:
        line = (
            f"shard {event.shard_id} [{event.phase} {event.pairs} pairs] {event.kind}"
        )
        if event.kind == "checkpointed":
            line += f": loop {event.loops}, {event.questions} questions"
        elif event.kind in ("finished", "restored"):
            line += (
                f": {event.matches} matches, {event.questions} questions, "
                f"{event.loops} loops"
            )
        return line
