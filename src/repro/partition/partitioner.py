"""Sharding the ER graph into independently-runnable partitions.

Two mechanisms couple candidate pairs during the human–machine loop:

* **relational match propagation**, which only ever flows along ER-graph
  edges — so weakly-connected components are propagation-independent;
* **the 1:1 competitor demotion**, which resolves every pair *sharing a
  KB entity* with a confirmed match as a non-match — and entity-sharing
  pairs may sit in different graph components.

A partition is therefore only closed under the loop when it unions graph
components up to their *entity closure*: a union–find links pairs that
are graph-adjacent, share their KB1 entity, or share their KB2 entity.
The partitioner:

* puts every entity-closure component whole into exactly one **graph
  shard**, packing small components together (longest-processing-time
  greedy, capped at a maximum shard size) so shards come out balanced;
  isolated pairs that share an entity with a component ride along in the
  shard's retained set — competitor demotion must be able to reach them
  — but are never classified there;
* routes **all isolated pairs** (riders and the truly disconnected rest)
  into classifier-only shards that run after the graph shards, training
  on the merged resolutions — the same data the monolithic isolated-pair
  classifier sees.

The layout is a pure function of the prepared state and the partition
parameters — never of the worker count — which is what makes a
partitioned run reproducible across pool sizes (``workers=4`` merges to
the same result as ``workers=1``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.core.candidates import CandidateSet
from repro.core.pipeline import PreparedState

Pair = tuple[str, str]

#: Shard kinds.
GRAPH = "graph"
ISOLATED = "isolated"

#: Default number of graph shards the packer aims for.  Deliberately a
#: constant rather than the worker count: the partition layout must not
#: depend on pool size, or results would change with it.
DEFAULT_TARGET_SHARDS = 8


class _UnionFind:
    """Path-halving union–find over candidate pairs."""

    def __init__(self) -> None:
        self._parent: dict[Pair, Pair] = {}

    def find(self, item: Pair) -> Pair:
        parent = self._parent.setdefault(item, item)
        while parent != item:
            grandparent = self._parent[parent]
            self._parent[item] = grandparent
            item, parent = parent, self._parent.setdefault(grandparent, grandparent)
        return item

    def union(self, a: Pair, b: Pair) -> None:
        root_a, root_b = self.find(a), self.find(b)
        if root_a != root_b:
            # Deterministic root choice keeps grouping order-independent.
            if root_b < root_a:
                root_a, root_b = root_b, root_a
            self._parent[root_b] = root_a


def entity_closure_components(state: PreparedState) -> list[set[Pair]]:
    """Partition the retained pairs into loop-independent groups.

    Pairs land in the same group when connected through any chain of
    ER-graph edges or shared KB entities.  Groups are the finest
    partition the human–machine loop cannot leak across: propagation
    follows edges, competitor demotion follows shared entities.
    """
    uf = _UnionFind()
    by_left: dict[str, Pair] = {}
    by_right: dict[str, Pair] = {}
    for pair in state.retained:
        uf.find(pair)
        for key, bucket in ((pair[0], by_left), (pair[1], by_right)):
            anchor = bucket.setdefault(key, pair)
            if anchor != pair:
                uf.union(anchor, pair)
    for vertex, by_label in state.graph.groups.items():
        for members in by_label.values():
            for neighbor in members:
                uf.union(vertex, neighbor)
    groups: dict[Pair, set[Pair]] = {}
    for pair in state.retained:
        groups.setdefault(uf.find(pair), set()).add(pair)
    return list(groups.values())


@dataclass(slots=True)
class Shard:
    """A lightweight descriptor of one partition.

    ``kind`` is :data:`GRAPH` (runs the human–machine loop) or
    :data:`ISOLATED` (classifier-only, executed after the graph shards).
    Shards deliberately carry no :class:`PreparedState`: worker
    processes inherit the base state once (for free under ``fork``) and
    materialize their slice locally via :meth:`slice`, so shipping a
    shard across a process boundary costs only its vertex list.
    """

    shard_id: int
    kind: str
    vertices: tuple[Pair, ...]
    num_components: int
    num_edges: int = 0
    #: Isolated pairs riding along in a graph shard (entity-linked, so
    #: competitor demotion must reach them); never askable here, and
    #: classified later by an isolated shard.
    num_riders: int = 0

    @property
    def num_pairs(self) -> int:
        return len(self.vertices)

    @property
    def num_loop_pairs(self) -> int:
        """Pairs the human–machine loop can actually work on."""
        return len(self.vertices) - self.num_riders

    def slice(self, state: PreparedState, *, localize: bool = False) -> PreparedState:
        """Materialize this shard's self-contained state slice.

        Graph shards restrict the base state to their vertices (with no
        isolated pairs — classification happens in phase 2); isolated
        shards keep the full retained set, vectors and signatures (the
        classifier's neighborhoods span all retained pairs) with
        ``isolated`` cut down to this shard's pairs.

        With ``localize`` (the stream layer's setting) a graph shard's
        candidate set — in particular the initial matches ``M_in`` that
        seed consistency estimation — is restricted to the shard's own
        entities.  That makes the shard's execution a pure function of
        its slice: a KB edit elsewhere cannot shift its relationship
        statistics, which is what lets :mod:`repro.stream` reuse a clean
        shard's recorded outcome verbatim.
        """
        if self.kind != GRAPH:
            return replace(state, isolated=set(self.vertices))
        sliced = state.restrict(set(self.vertices), isolated=set())
        if localize:
            left = {pair[0] for pair in self.vertices}
            right = {pair[1] for pair in self.vertices}
            candidates = state.candidates
            pairs = {
                pair
                for pair in candidates.pairs
                if pair[0] in left and pair[1] in right
            }
            sliced.candidates = CandidateSet(
                pairs=pairs,
                priors={pair: candidates.priors[pair] for pair in pairs},
                initial_matches={
                    pair for pair in candidates.initial_matches if pair in pairs
                },
            )
        return sliced


@dataclass(slots=True)
class PartitionPlan:
    """The full shard layout for one prepared state."""

    shards: list[Shard]
    num_components: int
    num_graph_pairs: int
    num_isolated_pairs: int
    max_shard_size: int

    @property
    def graph_shards(self) -> list[Shard]:
        return [s for s in self.shards if s.kind == GRAPH]

    @property
    def isolated_shards(self) -> list[Shard]:
        return [s for s in self.shards if s.kind == ISOLATED]

    def describe(self) -> str:
        """Human-readable summary for ``repro partition info``.

        ``PAIRS`` counts each shard's vertices; isolated pairs that ride
        along in a graph shard (``RIDERS``) reappear in a classifier
        shard, so the header reports the disjoint loop/isolated split.
        """
        lines = [
            f"{len(self.graph_shards)} graph shard(s) over {self.num_components} "
            f"entity-closure component(s), {self.num_graph_pairs} loop pair(s); "
            f"{self.num_isolated_pairs} isolated pair(s) in "
            f"{len(self.isolated_shards)} classifier shard(s); "
            f"max shard size {self.max_shard_size}",
            f"{'SHARD':>5} {'KIND':<9} {'PAIRS':>6} {'RIDERS':>7} "
            f"{'COMPONENTS':>11} {'EDGES':>7}",
        ]
        for shard in self.shards:
            lines.append(
                f"{shard.shard_id:>5} {shard.kind:<9} {shard.num_pairs:>6} "
                f"{shard.num_riders:>7} {shard.num_components:>11} "
                f"{shard.num_edges:>7}"
            )
        return "\n".join(lines)


def pack_components(
    components: list[set[Pair]], max_shard_size: int
) -> list[list[set[Pair]]]:
    """Greedy LPT packing of components into size-capped bins.

    Components are placed largest-first into the least-loaded bin that
    still has room; a component bigger than the cap gets a bin of its own
    (components are never split — they are the unit of independence).
    Deterministic: ties break on bin index, and the component order is
    fixed by (size, smallest vertex).
    """
    ordered = sorted(components, key=lambda c: (-len(c), min(c)))
    bins: list[tuple[int, list[set[Pair]]]] = []
    for component in ordered:
        candidates = [
            (load, index)
            for index, (load, _) in enumerate(bins)
            if load + len(component) <= max_shard_size
        ]
        if candidates and len(component) <= max_shard_size:
            load, index = min(candidates)
            bins[index] = (load + len(component), bins[index][1] + [component])
        else:
            bins.append((len(component), [component]))
    return [members for _, members in bins]


def partition_state(
    state: PreparedState,
    *,
    max_shard_size: int | None = None,
    target_shards: int = DEFAULT_TARGET_SHARDS,
    isolated_shards: int = 1,
) -> PartitionPlan:
    """Compute the shard layout for ``state``.

    ``max_shard_size`` caps the number of pairs per graph shard; when
    omitted it is derived as ``ceil(loop pairs / target_shards)``.
    ``isolated_shards`` splits the isolated pairs into that many
    classifier shards (1 keeps classification closest to the monolithic
    run, where signature groups can share seed labels).
    """
    if target_shards < 1:
        raise ValueError("target_shards must be positive")
    if isolated_shards < 1:
        raise ValueError("isolated_shards must be positive")
    isolated = set(state.isolated)
    # Pure-isolated groups have no graph vertex at all: nothing for the
    # loop to do, so they go straight to the classifier phase.
    components = [
        component
        for component in entity_closure_components(state)
        if not component <= isolated
    ]
    total_graph_pairs = sum(len(c) for c in components)
    if max_shard_size is None:
        max_shard_size = max(1, math.ceil(total_graph_pairs / target_shards))
    elif max_shard_size < 1:
        raise ValueError("max_shard_size must be positive")

    shards: list[Shard] = []
    for members in pack_components(components, max_shard_size):
        vertices: set[Pair] = set().union(*members)
        # Graph edges never leave an entity-closure component, so every
        # neighbor group of a shard vertex lies wholly inside the shard.
        edges = sum(
            len(group)
            for vertex in vertices
            for group in state.graph.groups.get(vertex, {}).values()
        )
        shards.append(
            Shard(
                shard_id=0,  # assigned after the deterministic sort below
                kind=GRAPH,
                vertices=tuple(sorted(vertices)),
                num_components=len(members),
                num_edges=edges,
                num_riders=len(vertices & isolated),
            )
        )
    # Stable shard ids: order graph shards by their smallest vertex so the
    # layout (and thus every per-shard seed) survives set-iteration order.
    shards.sort(key=lambda s: s.vertices[0] if s.vertices else ("", ""))

    if isolated:
        ordered = sorted(isolated)
        chunk = math.ceil(len(ordered) / isolated_shards)
        for start in range(0, len(ordered), chunk):
            subset = ordered[start : start + chunk]
            shards.append(
                Shard(
                    shard_id=0,
                    kind=ISOLATED,
                    vertices=tuple(subset),
                    num_components=len(subset),
                )
            )
    for index, shard in enumerate(shards):
        shard.shard_id = index
    return PartitionPlan(
        shards=shards,
        num_components=len(components),
        # Loop pairs only: riders are counted once, under num_isolated.
        num_graph_pairs=sum(s.num_loop_pairs for s in shards if s.kind == GRAPH),
        num_isolated_pairs=len(isolated),
        max_shard_size=max_shard_size,
    )
