"""Dirty-region-aware loop propagation (incremental ``LoopState.propagate``).

The reference loop rebuilds the whole probabilistic ER graph and re-runs a
ζ-bounded Dijkstra from *every* source on *every* crowd-loop iteration,
although one labeling round only moves a handful of priors.  This module
maintains the derived state across iterations and recomputes exactly the
regions the last round could have influenced:

* **Consistencies** — the estimation set only grows; new matches add
  observations and can only bump the ``observed`` lower bound of
  existing observations whose value sets contain them (found through the
  KB relation indexes).  A label whose observations did not change keeps
  its cached :class:`~repro.core.consistency.Consistency` verbatim.
* **Edges** — a neighbor group's Eq. 9 marginals are recomputed only
  when its label's consistency changed or a member pair's effective
  prior did; a vertex's edge/length rows are rebuilt only from dirty
  groups, preserving the reference construction order (labels in group
  order, members sorted) so downstream float accumulations see the
  same operand order.
* **Dijkstra** — a cached per-source distance map stays valid while its
  reachable region is disjoint from the vertices whose length rows
  changed: any path from the source either uses no changed row (same
  distance as cached) or reaches a changed row's vertex through
  unchanged edges — impossible when the cached reachable set avoids all
  changed vertices.

Equivalence with the full rebuild is pinned by the accel test suite: the
incremental maps must be ``==`` *and* iterate in the same order (benefit
sums are float accumulations over map order).
"""

from __future__ import annotations

from repro.accel.runtime import TIMINGS
from repro.core.config import RempConfig
from repro.core.consistency import (
    Consistency,
    _Observation,
    _observed_match_count,
    estimate_consistency,
)
from repro.core.discovery import bounded_dijkstra, edge_length_row, zeta_from_tau
from repro.core.er_graph import INVERSE_PREFIX, ERGraph, RelPair, value_sets
from repro.core.propagation import _marginals_exact, _reduce_group, combined_edge_row
from repro.kb.model import KnowledgeBase

Pair = tuple[str, str]
DistanceMap = dict[Pair, float]
GroupKey = tuple[Pair, RelPair]


def _containing_entities(kb: KnowledgeBase, entity: str, rel: str) -> set[str]:
    """Entities whose ``rel`` value set contains ``entity``.

    For a forward relationship the value set is ``relation_values``, so
    the containers are the relation *sources* of ``entity``; inverse
    labels flip the direction.
    """
    if rel.startswith(INVERSE_PREFIX):
        return kb.relation_values(entity, rel[len(INVERSE_PREFIX):])
    return kb.relation_sources(entity, rel)


class IncrementalPropagator:
    """Caches the derived propagation state of one :class:`LoopState`.

    The returned distance maps are shared with the internal cache and
    must be treated as read-only by callers (the pipeline only reads
    them; ``restricted_inferred_sets`` copies).
    """

    def __init__(
        self,
        graph: ERGraph,
        kb1: KnowledgeBase,
        kb2: KnowledgeBase,
        config: RempConfig,
    ):
        self._graph = graph
        self._kb1 = kb1
        self._kb2 = kb2
        self._config = config
        self._zeta = zeta_from_tau(config.tau)
        self._labels = {
            label for by_label in graph.groups.values() for label in by_label
        }
        # Static reverse indexes: which groups a pair / a label touches.
        self._pair_groups: dict[Pair, list[GroupKey]] = {}
        self._label_vertices: dict[RelPair, list[Pair]] = {}
        for vertex, by_label in graph.groups.items():
            for label, group in by_label.items():
                self._label_vertices.setdefault(label, []).append(vertex)
                for member in group:
                    self._pair_groups.setdefault(member, []).append((vertex, label))
        # Consistency estimation state.
        self._folded: set[Pair] = set()
        self._observations: dict[RelPair, dict[Pair, _Observation]] = {
            label: {} for label in self._labels
        }
        self._consistencies: dict[RelPair, Consistency] = {}
        # Edge / Dijkstra state.
        self._primed = False
        self._last_consistencies: dict[RelPair, Consistency] = {}
        self._last_priors: dict[Pair, float] = {}
        self._marginals: dict[GroupKey, dict[Pair, float]] = {}
        self._lengths: dict[Pair, DistanceMap] = {}
        self._maps: dict[Pair, DistanceMap] = {}
        # Structural marginal memo: Eq. 9 marginals depend only on γ, the
        # reduced pairs' priors and their 1:1 collision pattern — not on
        # the entity names.  Repetitive graphs (and re-estimated γs that
        # leave a group's inputs unchanged) hit this cache hard.
        self._marginal_memo: dict[tuple, tuple[float, ...]] = {}
        # Per-group (sorted pairs, reduced pairs, γ-free signature),
        # valid until a member pair's effective prior changes — γ-only
        # re-estimations (every crowd loop) skip the sort + reduction.
        self._group_cache: dict[GroupKey, tuple] = {}

    # ------------------------------------------------------------------
    # Incremental consistency estimation
    # ------------------------------------------------------------------
    def estimate_consistencies(self, matches: set[Pair]) -> dict[RelPair, Consistency]:
        """Mirror of ``estimate_all_consistencies`` over a growing match set."""
        with TIMINGS.timed("loop.consistency"):
            if self._folded - matches:
                # The estimation set shrank (never happens in the loop, but
                # correctness first): rebuild from scratch.
                self._folded = set()
                self._observations = {label: {} for label in self._labels}
                self._consistencies = {}
            new_matches = matches - self._folded
            for label in self._labels:
                if self._update_label_observations(label, new_matches, matches):
                    self._consistencies[label] = self._estimate_label(label)
                elif label not in self._consistencies:
                    self._consistencies[label] = self._estimate_label(label)
            self._folded = set(matches)
            return dict(self._consistencies)

    def _update_label_observations(
        self, label: RelPair, new_matches: set[Pair], matches: set[Pair]
    ) -> bool:
        """Fold ``new_matches`` into one label's observations; True if changed."""
        kb1, kb2 = self._kb1, self._kb2
        observations = self._observations[label]
        r1, r2 = label
        changed = False
        # Existing observations whose value sets contain a new match can
        # see their observed lower bound rise.
        affected: set[Pair] = set()
        for entity1, entity2 in new_matches:
            containers1 = _containing_entities(kb1, entity1, r1)
            if not containers1:
                continue
            containers2 = _containing_entities(kb2, entity2, r2)
            if not containers2:
                continue
            for e1 in containers1:
                for e2 in containers2:
                    if (e1, e2) in observations:
                        affected.add((e1, e2))
        for pair in affected:
            values1, values2 = value_sets(kb1, kb2, pair[0], pair[1], label)
            observation = _Observation(
                len(values1),
                len(values2),
                _observed_match_count(values1, values2, matches),
            )
            if observation != observations[pair]:
                observations[pair] = observation
                changed = True
        # New matched pairs contribute observations of their own.
        for pair in new_matches:
            values1, values2 = value_sets(kb1, kb2, pair[0], pair[1], label)
            if not values1 and not values2:
                continue
            observations[pair] = _Observation(
                len(values1),
                len(values2),
                _observed_match_count(values1, values2, matches),
            )
            changed = True
        return changed

    def _estimate_label(self, label: RelPair) -> Consistency:
        config = self._config
        observations = list(self._observations[label].values())
        informative = [o for o in observations if o.n1 and o.n2]
        if len(informative) < config.min_consistency_support:
            return Consistency(
                config.epsilon_default, config.epsilon_default, len(informative)
            )
        return estimate_consistency(
            observations, config.epsilon_floor, config.epsilon_ceiling
        )

    # ------------------------------------------------------------------
    # Incremental edges + Dijkstra
    # ------------------------------------------------------------------
    def update(
        self,
        effective_priors: dict[Pair, float],
        consistencies: dict[RelPair, Consistency],
        sources: set[Pair],
    ) -> dict[Pair, DistanceMap]:
        """Inferred sets for ``sources``, recomputing only dirty regions."""
        fallback = Consistency(
            self._config.epsilon_default, self._config.epsilon_default, 0
        )
        with TIMINGS.timed("loop.edges"):
            dirty_groups, prior_dirty = self._dirty_groups(
                effective_priors, consistencies
            )
            for key in dirty_groups:
                vertex, label = key
                consistency = consistencies.get(label, fallback)
                self._marginals[key] = self._group_marginals(
                    key,
                    effective_priors,
                    consistency.gamma(),
                    rebuild_signature=key in prior_dirty,
                )
            dirty_vertices = self._rebuild_rows({v for v, _ in dirty_groups})
        with TIMINGS.timed("loop.dijkstra"):
            if dirty_vertices:
                for source in list(self._maps):
                    if not dirty_vertices.isdisjoint(self._maps[source]):
                        del self._maps[source]
            result: dict[Pair, DistanceMap] = {}
            for source in sources:
                cached = self._maps.get(source)
                if cached is None:
                    cached = bounded_dijkstra(self._lengths, source, self._zeta)
                    self._maps[source] = cached
                result[source] = cached
        self._last_consistencies = dict(consistencies)
        self._last_priors = dict(effective_priors)
        self._primed = True
        return result

    def _group_marginals(
        self,
        key: GroupKey,
        priors: dict[Pair, float],
        gamma: float,
        rebuild_signature: bool,
    ) -> dict[Pair, float]:
        """Mirror of ``neighbor_marginals`` with two layers of caching.

        The reduction and the exact DFS read nothing but the reduced
        pairs' priors, their left/right collision pattern and γ, so the
        marginals (by position) are memoizable under that signature —
        and the γ-free part of the signature itself (sort + reduction)
        stays valid until a member pair's prior moves, which γ-only
        re-estimation rounds never do.
        """
        cached = None if rebuild_signature else self._group_cache.get(key)
        if cached is None:
            config = self._config
            pairs = sorted(self._graph.groups[key[0]][key[1]])
            reduced = _reduce_group(
                pairs, priors, config.max_exact_pairs, config.max_candidates_per_value
            )
            left_index: dict[str, int] = {}
            right_index: dict[str, int] = {}
            signature = tuple(
                (
                    left_index.setdefault(left, len(left_index)),
                    right_index.setdefault(right, len(right_index)),
                    priors.get((left, right), 0.5),
                )
                for left, right in reduced
            )
            cached = (pairs, reduced, signature)
            self._group_cache[key] = cached
        pairs, reduced, signature = cached
        memo_key = (gamma, signature)
        values = self._marginal_memo.get(memo_key)
        if values is None:
            exact = _marginals_exact(reduced, priors, gamma)
            values = tuple(exact[pair] for pair in reduced)
            self._marginal_memo[memo_key] = values
        if len(reduced) == len(pairs):
            # No reduction happened: values align with pairs positionally.
            return dict(zip(pairs, values))
        by_pair = dict(zip(reduced, values))
        return {pair: by_pair.get(pair, 0.0) for pair in pairs}

    def _dirty_groups(
        self,
        effective_priors: dict[Pair, float],
        consistencies: dict[RelPair, Consistency],
    ) -> tuple[set[GroupKey], set[GroupKey]]:
        """(all dirty groups, groups dirty because a member prior moved)."""
        if not self._primed:
            every = {
                (vertex, label)
                for vertex, by_label in self._graph.groups.items()
                for label in by_label
            }
            return every, every
        prior_dirty: set[GroupKey] = set()
        old_priors = self._last_priors
        for pair, groups in self._pair_groups.items():
            if effective_priors.get(pair) != old_priors.get(pair):
                prior_dirty.update(groups)
        dirty = set(prior_dirty)
        previous = self._last_consistencies
        for label in self._labels:
            if consistencies.get(label) != previous.get(label):
                for vertex in self._label_vertices.get(label, ()):
                    dirty.add((vertex, label))
        return dirty, prior_dirty

    def _rebuild_rows(self, vertices: set[Pair]) -> set[Pair]:
        """Rebuild length rows for ``vertices``; return those that changed.

        Row construction replays ``build_probabilistic_graph`` +
        ``edge_lengths`` exactly: iterate the vertex's labels in group
        order (marginals are already sorted per group), keep the maximum
        probability per target, drop self-edges and non-positive
        probabilities, then −log-transform under the ζ budget.  Insertion
        order is structural (independent of the values), so an unchanged
        row is unchanged *including order* and can be kept verbatim.
        """
        changed: set[Pair] = set()
        for vertex in vertices:
            row = combined_edge_row(
                vertex,
                (
                    self._marginals[(vertex, label)]
                    for label in self._graph.groups[vertex]
                ),
            )
            lengths = edge_length_row(row, self._zeta)
            if lengths != self._lengths.get(vertex, {}):
                changed.add(vertex)
                if lengths:
                    self._lengths[vertex] = lengths
                else:
                    self._lengths.pop(vertex, None)
        return changed
