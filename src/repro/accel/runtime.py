"""Accel runtime: feature gating and kernel timing collection.

The accel layer is an *optimization*, never a semantics change: every
kernel has a pure-Python fallback that produces byte-identical results
(dominance is exact boolean work; simL/Jaccard are ratios of small
integers, which IEEE-754 doubles represent identically however they are
computed).  Two independent switches select the implementation:

* ``REPRO_NO_ACCEL=1`` (environment) disables the whole layer — the
  interning/caching paths *and* the NumPy kernels — restoring the
  original reference code paths.  The equivalence suite runs both modes
  against each other.
* NumPy availability gates only the packed-array kernels; the
  interning, memoization and incremental-propagation paths are pure
  Python and work without it.

:data:`TIMINGS` aggregates wall-clock per named stage/kernel so the
service can persist per-run timing profiles (surfaced by
``repro runs show``).  Accumulation is lock-protected.  Attribution to
a run is exact when a :class:`repro.obs.RunScope` is active: the global
registry *routes* — every stage lands in the process-wide totals and in
the activated scope's private timings, and ``timed()`` additionally
emits a trace span — so concurrent sessions persist only their own work
instead of diffing a shared singleton.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from threading import Lock

from repro.obs.context import clear_scope, current_scope

_TRUTHY = ("1", "true", "yes", "on")

try:  # NumPy is an existing dependency (ml/, core/isolated), but the
    import numpy as _np  # accel layer degrades gracefully without it.
except ImportError:  # pragma: no cover - image always ships numpy
    _np = None


def accel_enabled() -> bool:
    """Whether the accelerated code paths are active (env-controlled)."""
    return os.environ.get("REPRO_NO_ACCEL", "").strip().lower() not in _TRUTHY


def numpy_or_none():
    """The NumPy module when packed kernels may be used, else ``None``."""
    return _np if accel_enabled() else None


@contextmanager
def force_accel(enabled: bool):
    """Temporarily force the accel layer on or off (tests/benchmarks)."""
    previous = os.environ.get("REPRO_NO_ACCEL")
    if enabled:
        os.environ.pop("REPRO_NO_ACCEL", None)
    else:
        os.environ["REPRO_NO_ACCEL"] = "1"
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop("REPRO_NO_ACCEL", None)
        else:
            os.environ["REPRO_NO_ACCEL"] = previous


class KernelTimings:
    """Thread-safe accumulator of ``name -> (seconds, calls)``."""

    def __init__(self) -> None:
        self._lock = Lock()
        self._data: dict[str, list] = {}

    def add(self, name: str, seconds: float, calls: int = 1) -> None:
        with self._lock:
            entry = self._data.setdefault(name, [0.0, 0])
            entry[0] += seconds
            entry[1] += calls

    @contextmanager
    def timed(self, name: str):
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add(name, time.perf_counter() - start)

    def snapshot(self) -> dict[str, tuple[float, int]]:
        with self._lock:
            return {name: (entry[0], entry[1]) for name, entry in self._data.items()}

    def diff(self, before: dict[str, tuple[float, int]]) -> dict[str, tuple[float, int]]:
        """Per-stage delta since a :meth:`snapshot` (drops empty entries)."""
        delta: dict[str, tuple[float, int]] = {}
        for name, (seconds, calls) in self.snapshot().items():
            base_s, base_c = before.get(name, (0.0, 0))
            if calls > base_c or seconds > base_s:
                delta[name] = (seconds - base_s, calls - base_c)
        return delta

    def merge(self, delta: dict[str, tuple[float, int]]) -> None:
        for name, (seconds, calls) in delta.items():
            self.add(name, seconds, calls)

    def reset(self) -> None:
        with self._lock:
            self._data.clear()

    def as_doc(self) -> dict[str, dict[str, float]]:
        """JSON-able view of the full snapshot, most expensive first."""
        snap = self.snapshot()
        return stages_doc(
            dict(sorted(snap.items(), key=lambda item: -item[1][0]))
        )


def stages_doc(stages: dict[str, tuple[float, int]]) -> dict[str, dict[str, float]]:
    """The one JSON shape for persisted stage timings.

    Shared by :meth:`KernelTimings.as_doc` (benchmark trajectories) and
    the service's per-run profiles so the two documents never diverge.
    """
    return {
        name: {"seconds": round(seconds, 6), "calls": calls}
        for name, (seconds, calls) in stages.items()
    }


class _RoutedTimings(KernelTimings):
    """The process-wide registry, scope-aware.

    Every :meth:`add` also lands in the active
    :class:`repro.obs.RunScope`'s private timings (exact per-run
    attribution), and :meth:`timed` opens a span on the scope's tracer —
    which is how the prepare stages, accel kernels, stream splices and
    loop propagation show up in ``trace.jsonl`` without any call-site
    changes.  ``merge`` routes too, so shard timing deltas shipped back
    from pool workers fold into the owning session's scope.
    """

    def add(self, name: str, seconds: float, calls: int = 1) -> None:
        super().add(name, seconds, calls)
        scope = current_scope()
        if scope is not None:
            scope.timings.add(name, seconds, calls)

    @contextmanager
    def timed(self, name: str):
        scope = current_scope()
        tracer = scope.tracer if scope is not None and scope.tracer.enabled else None
        if tracer is None:
            start = time.perf_counter()
            try:
                yield
            finally:
                self.add(name, time.perf_counter() - start)
            return
        with tracer.span(name):
            start = time.perf_counter()
            try:
                yield
            finally:
                self.add(name, time.perf_counter() - start)


#: Process-wide timing registry for the accel layer and pipeline stages.
TIMINGS = _RoutedTimings()


def _reset_after_fork() -> None:  # pragma: no cover - exercised via pools
    """Re-arm the registry (and detach any scope) in forked children.

    A pool worker may fork while another service thread holds the
    timing lock (it would be inherited held, deadlocking the child's
    first snapshot), and inherited counters would double-count once the
    child ships its delta back to the parent.  Fresh lock, zero
    counters; the inherited run scope is dropped for the same reason —
    the child buffers into its own scope and ships the export back.
    """
    TIMINGS._lock = Lock()
    TIMINGS._data = {}
    clear_scope()


if hasattr(os, "register_at_fork"):
    os.register_at_fork(after_in_child=_reset_after_fork)
