"""Vectorized candidate scoring and interned signatures (accel kernels).

**Scoring** (``kernel.candidates``): the reference ``candidates.score``
loop counts shared tokens per candidate pair with one Python dict
operation per (entity, token, partner) posting hit.  The kernel turns
the same join into array work: token postings become int64 id arrays,
the full (entity1, partner) hit stream is materialized per chunk, and
one ``np.unique`` over combined keys yields every pair's intersection
count.  The Jaccard coefficient ``shared / (|T1| + |T2| − shared)`` is
a ratio of small integers — IEEE-754 doubles represent it identically
however it is computed — and the serializers sort candidate docs, so
equal contents are byte-identical documents.

**Signatures** (``kernel.signatures``): the reference signature loop
calls both KBs' attribute accessors once per (retained pair, attribute
match).  The kernel computes one presence bitmask per *entity* and
side (entities repeat across many pairs), ANDs two masks per pair, and
interns one frozenset per distinct mask — identical frozensets, shared
instead of duplicated.
"""

from __future__ import annotations

from repro.accel.runtime import TIMINGS, accel_enabled, numpy_or_none
from repro.kb.model import KnowledgeBase

Pair = tuple[str, str]

#: Below this many labeled entities on either side the Python loop wins.
_MIN_ENTITIES = 64

#: Join hits buffered per chunk before flushing through ``np.unique``.
_CHUNK_HITS = 1 << 21


def score_candidates(
    tokens1: dict[str, frozenset[str]],
    tokens2: dict[str, frozenset[str]],
    inverted2: dict[str, set[str]],
    threshold: float,
    min_entities: int = _MIN_ENTITIES,
) -> dict[Pair, float] | None:
    """Scored ``{(entity1, entity2): sim}`` map, or ``None`` to fall back.

    Entries come out grouped by ``tokens1`` iteration order; the caller's
    containers (a set and a dict) make entry order immaterial.
    ``min_entities`` exists for the equivalence suite, which exercises
    the kernel on worlds below the production cutoff.
    """
    np = numpy_or_none()
    if np is None or len(tokens1) < min_entities or len(tokens2) < min_entities:
        return None
    with TIMINGS.timed("kernel.candidates"):
        entities1 = list(tokens1)
        entities2 = list(tokens2)
        index2 = {entity: j for j, entity in enumerate(entities2)}
        sizes1 = np.fromiter(
            (len(tokens) for tokens in tokens1.values()), np.int64, count=len(tokens1)
        )
        sizes2 = np.fromiter(
            (len(tokens) for tokens in tokens2.values()), np.int64, count=len(tokens2)
        )
        postings = {
            token: np.fromiter((index2[e] for e in members), np.int64, count=len(members))
            for token, members in inverted2.items()
        }

        width = len(entities2)
        results: dict[Pair, float] = {}

        def flush(owner_ids: list[int], owner_hits: list[int], chunks: list) -> None:
            hits2 = np.concatenate(chunks)
            hits1 = np.repeat(
                np.asarray(owner_ids, np.int64), np.asarray(owner_hits, np.int64)
            )
            keys, shared = np.unique(hits1 * width + hits2, return_counts=True)
            i = keys // width
            j = keys - i * width
            sims = shared / (sizes1[i] + sizes2[j] - shared)
            keep = np.nonzero(sims >= threshold)[0]
            # ``tolist`` materializes native ints/floats in one pass —
            # float64 → Python float is exact, so sims keep their bits —
            # and the map/zip/update chain keeps the fill loop in C.
            pairs = zip(
                map(entities1.__getitem__, i[keep].tolist()),
                map(entities2.__getitem__, j[keep].tolist()),
            )
            results.update(zip(pairs, sims[keep].tolist()))

        owner_ids: list[int] = []
        owner_hits: list[int] = []
        chunks: list = []
        pending = 0
        for i1, tokens in enumerate(tokens1.values()):
            hits = 0
            for token in tokens:
                arr = postings.get(token)
                if arr is not None and arr.size:
                    chunks.append(arr)
                    hits += arr.size
            if hits:
                owner_ids.append(i1)
                owner_hits.append(hits)
                pending += hits
            if pending >= _CHUNK_HITS:
                flush(owner_ids, owner_hits, chunks)
                owner_ids, owner_hits, chunks, pending = [], [], [], 0
        if pending:
            flush(owner_ids, owner_hits, chunks)
        return results


def intern_signatures(
    kb1: KnowledgeBase,
    kb2: KnowledgeBase,
    retained,
    attribute_matches,
) -> dict[Pair, frozenset[int]] | None:
    """Signature map over ``retained``, or ``None`` when accel is off.

    Key order follows ``retained`` iteration order — the same order the
    reference loop produces.
    """
    if not accel_enabled():
        return None
    with TIMINGS.timed("kernel.signatures"):
        masks1: dict[str, int] = {}
        masks2: dict[str, int] = {}
        for pair in retained:
            masks1.setdefault(pair[0], 0)
            masks2.setdefault(pair[1], 0)
        for i, match in enumerate(attribute_matches):
            bit = 1 << i
            for entity in masks1:
                if kb1.attribute_values(entity, match.attr1):
                    masks1[entity] |= bit
            for entity in masks2:
                if kb2.attribute_values(entity, match.attr2):
                    masks2[entity] |= bit
        interned: dict[int, frozenset[int]] = {}
        signatures: dict[Pair, frozenset[int]] = {}
        for pair in retained:
            mask = masks1[pair[0]] & masks2[pair[1]]
            signature = interned.get(mask)
            if signature is None:
                signature = interned[mask] = frozenset(
                    i for i in range(len(attribute_matches)) if mask >> i & 1
                )
            signatures[pair] = signature
        return signatures
