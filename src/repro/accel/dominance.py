"""Packed strict-dominance kernels for similarity-vector blocks.

A block ``B`` is the list of similarity vectors of all candidate pairs
sharing one entity (Algorithm 1's unit of work).  The reference code
answers "how many vectors of ``B`` strictly dominate ``v``" with an
O(|B|²·d) Python loop; here the block is packed into a ``float64``
matrix and the counts come from broadcast comparisons.

Strict dominance is exact boolean work, so the kernel's counts equal the
reference loop's by construction.  A sort-by-component-sum prefilter
bounds the comparisons: ``s ≻ t`` implies ``sum(s) >= sum(t)`` even
under floating-point rounding (each partial add is monotone in its
operands), so after sorting by descending sum only the prefix with
``sum >= sum(t)`` can contain dominators of ``t``; strictness is then
restored with an explicit any-greater test, which also rejects exact
duplicates sharing the prefix.
"""

from __future__ import annotations

from typing import Sequence

from repro.accel.runtime import TIMINGS, numpy_or_none

Vector = tuple[float, ...]

#: Below this block size the NumPy call overhead beats the Python loop.
_MIN_NUMPY_BLOCK = 24

#: Comparison-element budget per broadcast chunk (bounds peak memory).
_CHUNK_BUDGET = 1 << 22


def _counts_python(vectors: Sequence[Vector], cap: int | None) -> list[int]:
    """Reference loop: per vector, dominators counted (clipped at ``cap``)."""
    counts = []
    for vector in vectors:
        rank = 0
        for other in vectors:
            if other != vector and all(x >= y for x, y in zip(other, vector)):
                rank += 1
                if cap is not None and rank >= cap:
                    break
        counts.append(rank)
    return counts


def _counts_numpy(np, matrix, cap: int | None, weights=None) -> list[int]:
    """Broadcast dominance counts over a packed (n, d) float64 block.

    ``weights`` (int64, optional) carries row multiplicities: row ``j``'s
    count is the weighted number of rows strictly dominating it.  Used by
    the dedup path — identical vectors share one row, and a dominator's
    multiplicity is how many originals it stands for.
    """
    n = len(matrix)
    if weights is None:
        weights = np.ones(n, dtype=np.int64)
    if n * n * max(matrix.shape[1], 1) <= _CHUNK_BUDGET // 4:
        # Small block: one direct broadcast beats the sort prefilter's
        # fixed overhead (argsort + searchsorted + masking).
        candidates = matrix[:, None, :]
        targets = matrix[None, :, :]
        dominates = (candidates >= targets).all(axis=-1) & (
            candidates > targets
        ).any(axis=-1)
        counts = (dominates * weights[:, None]).sum(axis=0)
        if cap is not None:
            np.minimum(counts, cap, out=counts)
        return counts.tolist()
    sums = matrix.sum(axis=1)
    order = np.argsort(-sums, kind="stable")
    packed = matrix[order]
    packed_weights = weights[order]
    neg_sorted_sums = -sums[order]  # ascending
    # prefix[i]: number of rows whose sum is >= the i-th sorted row's
    # (rows past it cannot dominate it, see module docstring).
    prefix = np.searchsorted(neg_sorted_sums, neg_sorted_sums, side="right")
    counts = np.zeros(n, dtype=np.int64)
    width = matrix.shape[1]
    start = 0
    while start < n:
        pmax = int(prefix[start])
        budget = max(pmax * width, 1)
        stop = min(n, start + max(1, _CHUNK_BUDGET // budget))
        # prefix grows over the chunk (later rows see more candidates);
        # re-shrink until the actual prefix at the chunk end fits the
        # budget, or a single row remains (which may legitimately need
        # the whole prefix).
        while (
            stop > start + 1
            and int(prefix[stop - 1]) * (stop - start) * max(width, 1)
            > _CHUNK_BUDGET
        ):
            stop = start + max(1, (stop - start) // 2)
        pmax = int(prefix[stop - 1])
        candidates = packed[:pmax, None, :]
        targets = packed[None, start:stop, :]
        ge_all = (candidates >= targets).all(axis=-1)
        gt_any = (candidates > targets).any(axis=-1)
        in_prefix = np.arange(pmax)[:, None] < prefix[start:stop][None, :]
        counts[start:stop] = (
            (ge_all & gt_any & in_prefix) * packed_weights[:pmax, None]
        ).sum(axis=0)
        start = stop
    if cap is not None:
        np.minimum(counts, cap, out=counts)
    result = np.empty(n, dtype=np.int64)
    result[order] = counts
    return result.tolist()


def strict_dominance_counts(
    vectors: Sequence[Vector], cap: int | None = None
) -> list[int]:
    """For each vector, how many *other* vectors strictly dominate it.

    Duplicates never dominate each other (strictness requires one
    strictly larger component).  With ``cap`` the counts are clipped at
    ``cap`` — callers that only compare against a threshold ``k`` pass
    ``cap=k`` so the fallback loop can stop early; both paths return
    ``min(count, cap)``.
    """
    n = len(vectors)
    if n <= 1:
        return [0] * n
    np = numpy_or_none()
    if np is None or n < _MIN_NUMPY_BLOCK:
        return _counts_python(vectors, cap)
    with TIMINGS.timed("kernel.dominance"):
        return _counts_numpy(np, np.asarray(vectors, dtype=np.float64), cap)


class PackedVectors:
    """A whole vector index packed once into a ``float64`` matrix.

    Per-block kernels then slice by row index instead of re-converting
    Python tuples — the conversion, not the comparisons, dominates the
    kernel cost on realistic block sizes.  ``available`` is ``False``
    when NumPy is absent or the accel layer is off; callers fall back to
    the reference loops.

    A packed instance is self-contained (it carries its own pair→row map
    and vector dict), so one matrix can be *shared* by every
    equal-content ``VectorIndex`` — that is what the substrate layer
    (:mod:`repro.substrate`) does across sessions.  It also pickles:
    normally by shipping the matrix bytes, or — after
    :meth:`export_shared` — by shipping a ``multiprocessing.shared_memory``
    segment name, so a spawn-started pool maps one physical copy instead
    of deserializing one per worker.
    """

    __slots__ = ("_np", "_shm", "_vectors", "matrix", "row")

    def __init__(self, vectors: dict):
        np = numpy_or_none()
        self._np = np
        self._shm = None
        self._vectors = vectors
        self.row: dict = {}
        self.matrix = None
        if np is None or not vectors:
            return
        self.row = {pair: i for i, pair in enumerate(vectors)}
        matrix = np.asarray(tuple(vectors.values()), dtype=np.float64)
        if matrix.ndim == 1:  # zero-width vectors (no attribute matches)
            matrix = matrix.reshape(len(vectors), 0)
        self.matrix = matrix

    @property
    def available(self) -> bool:
        return self.matrix is not None

    def same_content(self, vectors: dict) -> bool:
        """Whether this packing is valid for ``vectors`` (full equality)."""
        return self._vectors == vectors

    # -- sharing --------------------------------------------------------
    def sorted_blob(self) -> tuple[int, int, bytes] | None:
        """``(rows, cols, payload)`` with rows in sorted-pair order.

        Sorted order is the canonical on-disk layout: a freshly prepared
        index and a store-loaded one enumerate their pairs differently,
        so the blob must not depend on either insertion order.
        """
        if self.matrix is None:
            return None
        np = self._np
        order = [self.row[pair] for pair in sorted(self.row)]
        payload = np.ascontiguousarray(self.matrix[order]).tobytes()
        return len(order), int(self.matrix.shape[1]), payload

    @classmethod
    def from_sorted_blob(
        cls, vectors: dict, rows: int, cols: int, payload: bytes
    ) -> "PackedVectors | None":
        """Rebuild a packing for ``vectors`` from a sorted-row blob.

        Returns ``None`` when NumPy is unavailable or the blob does not
        fit the index — wrong pair count / vector width / byte length,
        or rows whose floats disagree with the index's actual vectors
        (a blob saved under a colliding key, since the store key
        truncates the KB fingerprints to 64 bits).  The caller falls
        back to packing from the tuples.  The row check is a strided
        sample: full verification would cost exactly the re-pack the
        blob exists to skip, while ~64 rows of a colliding pair's
        matrix agreeing with this pair's by chance is negligible.
        """
        np = numpy_or_none()
        if np is None or not vectors:
            return None
        width = len(next(iter(vectors.values())))
        if rows != len(vectors) or cols != width or len(payload) != rows * cols * 8:
            return None
        order = sorted(vectors)
        matrix = np.frombuffer(payload, dtype=np.float64).reshape(rows, cols)
        stride = max(1, rows // 64)
        for i in {*range(0, rows, stride), rows - 1}:
            if tuple(matrix[i]) != tuple(vectors[order[i]]):
                return None
        packed = cls.__new__(cls)
        packed._np = np
        packed._shm = None
        packed._vectors = vectors
        packed.row = {pair: i for i, pair in enumerate(order)}
        packed.matrix = matrix.copy()
        return packed

    def export_shared(self) -> bool:
        """Copy the matrix into a shared-memory segment for pickling.

        The in-process matrix is untouched (so releasing the segment can
        never corrupt the exporter); only *pickles* made while the
        export is live reference the segment.  Returns ``False`` when
        there is nothing to export or the platform refuses.
        """
        if self.matrix is None:
            return False
        if self._shm is not None:
            return True
        try:
            from multiprocessing import shared_memory

            shm = shared_memory.SharedMemory(
                create=True, size=max(self.matrix.nbytes, 1)
            )
        except Exception:  # pragma: no cover - platform without shm
            return False
        np = self._np
        view = np.ndarray(self.matrix.shape, dtype=np.float64, buffer=shm.buf)
        view[...] = self.matrix
        self._shm = shm
        return True

    def release_shared(self) -> None:
        """Close and unlink the exported segment (after workers joined)."""
        shm = self._shm
        if shm is None:
            return
        self._shm = None
        for step in (shm.close, shm.unlink):
            try:
                step()
            except Exception:  # pragma: no cover - already reaped
                pass

    def __getstate__(self):
        state = {"vectors": self._vectors, "row": self.row}
        if self.matrix is not None:
            if self._shm is not None:
                state["shm"] = (self._shm.name, tuple(self.matrix.shape))
            else:
                state["shape"] = tuple(self.matrix.shape)
                state["data"] = self.matrix.tobytes()
        return state

    def __setstate__(self, state):
        self._np = np = numpy_or_none()
        self._shm = None
        self._vectors = state["vectors"]
        self.row = state["row"]
        self.matrix = None
        if np is None:
            return
        if "shm" in state:
            from multiprocessing import shared_memory

            name, shape = state["shm"]
            shm = shared_memory.SharedMemory(name=name)
            try:
                # The exporter owns the segment's lifetime; stop this
                # process's resource tracker from unlinking it at exit.
                from multiprocessing import resource_tracker

                resource_tracker.unregister(shm._name, "shared_memory")
            except Exception:  # pragma: no cover - tracker internals moved
                pass
            self._shm = shm  # hold the handle: keeps the mapping alive
            self.matrix = np.ndarray(shape, dtype=np.float64, buffer=shm.buf)
        elif "data" in state:
            matrix = np.frombuffer(state["data"], dtype=np.float64)
            self.matrix = matrix.reshape(state["shape"]).copy()

    def counts(self, pairs: Sequence, cap: int | None = None) -> list[int]:
        """Strict-dominance counts for the block formed by ``pairs``.

        Identical vectors are merged first (ambiguous blocks are full of
        ties, and equal vectors never strictly dominate each other): the
        kernel runs on the distinct rows with multiplicity weights, and
        every original pair reads its distinct row's weighted count.
        """
        with TIMINGS.timed("kernel.dominance"):
            vectors = self._vectors
            slots: dict = {}
            first_rows: list[int] = []
            multiplicity: list[int] = []
            slot_of: list[int] = []
            for pair in pairs:
                vector = vectors[pair]
                slot = slots.get(vector)
                if slot is None:
                    slot = len(first_rows)
                    slots[vector] = slot
                    first_rows.append(self.row[pair])
                    multiplicity.append(0)
                multiplicity[slot] += 1
                slot_of.append(slot)
            if len(first_rows) <= 1:
                # One distinct vector: ties all around, nothing dominates.
                return [0] * len(pairs)
            np = self._np
            unique_counts = _counts_numpy(
                np,
                self.matrix[first_rows],
                cap,
                np.asarray(multiplicity, dtype=np.int64),
            )
            return [unique_counts[slot] for slot in slot_of]

    def any_dominator(self, targets: Sequence, candidates: Sequence) -> list[bool]:
        """Per target pair, whether any candidate pair strictly dominates it."""
        np = self._np
        if not targets:
            return []
        if not candidates:
            return [False] * len(targets)
        with TIMINGS.timed("kernel.dominance"):
            target_matrix = self.matrix[[self.row[p] for p in targets]]
            candidate_matrix = self.matrix[[self.row[p] for p in candidates]]
            return _any_dominator_numpy(np, target_matrix, candidate_matrix)


def _any_dominator_python(
    targets: Sequence[Vector], candidates: Sequence[Vector]
) -> list[bool]:
    flags = []
    for vector in targets:
        flags.append(
            any(
                other != vector and all(x >= y for x, y in zip(other, vector))
                for other in candidates
            )
        )
    return flags


def _any_dominator_numpy(np, target_matrix, candidate_matrix) -> list[bool]:
    m, width = candidate_matrix.shape
    flags = np.zeros(len(target_matrix), dtype=bool)
    chunk = max(1, _CHUNK_BUDGET // max(m * width, 1))
    for start in range(0, len(target_matrix), chunk):
        block = target_matrix[None, start : start + chunk, :]
        ge_all = (candidate_matrix[:, None, :] >= block).all(axis=-1)
        gt_any = (candidate_matrix[:, None, :] > block).any(axis=-1)
        flags[start : start + chunk] = (ge_all & gt_any).any(axis=0)
    return flags.tolist()


def any_strict_dominator(
    targets: Sequence[Vector], candidates: Sequence[Vector]
) -> list[bool]:
    """Per target, whether *any* candidate strictly dominates it."""
    if not targets:
        return []
    if not candidates:
        return [False] * len(targets)
    np = numpy_or_none()
    if np is None or len(targets) * len(candidates) < _MIN_NUMPY_BLOCK**2:
        return _any_dominator_python(targets, candidates)

    with TIMINGS.timed("kernel.dominance"):
        return _any_dominator_numpy(
            np,
            np.asarray(targets, dtype=np.float64),
            np.asarray(candidates, dtype=np.float64),
        )
