"""Interned-literal scoring: batched ``simL`` without per-pair set algebra.

The reference ``literal_set_similarity`` re-normalizes and re-compares
raw literals for every candidate pair, although a KB holds few distinct
literals and each entity participates in many pairs.  The scorer interns
every literal once — classifying it as a number or a packed, sorted
token-id array — and memoizes both the pairwise literal similarities and
the greedy set-level matches, so each distinct comparison is computed
exactly once per prepare.

Equivalence with the reference is by construction:

* numbers go through the *same* ``numeric_similarity`` function;
* token Jaccard is ``|A∩B| / (|A|+|B|−|A∩B|)`` with integer counts off a
  merge over sorted id arrays — the identical ratio of identical
  integers the reference's set algebra produces;
* the greedy set matching replays the reference loop literal-for-literal
  (ids preserve input order), so tie-breaking is bit-identical.
"""

from __future__ import annotations

from typing import Collection

from repro.text.literal import _as_number
from repro.text.normalize import normalize_label
from repro.text.similarity import numeric_similarity


def _sorted_token_ids(
    tokens: Collection[str], token_ids: dict[str, int]
) -> tuple[int, ...]:
    ids = []
    for token in tokens:
        token_id = token_ids.get(token)
        if token_id is None:
            token_id = len(token_ids)
            token_ids[token] = token_id
        ids.append(token_id)
    ids.sort()
    return tuple(ids)


def _intersection_count(a: tuple[int, ...], b: tuple[int, ...]) -> int:
    """|a ∩ b| by a linear merge over two sorted id arrays."""
    i = j = count = 0
    len_a, len_b = len(a), len(b)
    while i < len_a and j < len_b:
        x, y = a[i], b[j]
        if x == y:
            count += 1
            i += 1
            j += 1
        elif x < y:
            i += 1
        else:
            j += 1
    return count


class LiteralScorer:
    """Per-KB-pair literal interning with memoized simL scoring.

    One scorer serves one ``(kb1, kb2, threshold)`` scoring pass (a
    prepare, an attribute-matching round, an incremental splice); its
    caches are content-addressed, so sharing one across passes over the
    same KBs is also sound.
    """

    __slots__ = (
        "threshold",
        "_ids",
        "_numbers",
        "_tokens",
        "_raw",
        "_token_ids",
        "_pair_sims",
        "_set_sims",
    )

    def __init__(self, threshold: float):
        self.threshold = threshold
        self._ids: dict[tuple[bool, object], int] = {}
        self._numbers: list[float | None] = []
        self._tokens: list[tuple[int, ...] | None] = []
        self._raw: list[object] = []
        self._token_ids: dict[str, int] = {}
        self._pair_sims: dict[tuple[int, int], float] = {}
        self._set_sims: dict[tuple[tuple[int, ...], tuple[int, ...]], float] = {}

    def snapshot(self) -> "LiteralScorer":
        """An independent scorer seeded with this one's caches.

        Arena derivation must not alias a scorer across arenas: each
        arena serializes its passes under its *own* lock, so a scorer
        shared by two arenas could be interned into by two threads at
        once (``intern``'s check-then-append is not atomic).  The copy
        is shallow — every cached payload (ids, tuples, floats) is
        immutable — and the caller snapshots under the parent arena's
        lock, so no pass is mutating these containers mid-copy.
        """
        clone = LiteralScorer(self.threshold)
        clone._ids = dict(self._ids)
        clone._numbers = list(self._numbers)
        clone._tokens = list(self._tokens)
        clone._raw = list(self._raw)
        clone._token_ids = dict(self._token_ids)
        clone._pair_sims = dict(self._pair_sims)
        clone._set_sims = dict(self._set_sims)
        return clone

    # -- interning ------------------------------------------------------
    def intern(self, value: object) -> int:
        # bool participates in the key: True == 1 would otherwise collide
        # with the integer 1, which *is* a number while True is not.
        key = (isinstance(value, bool), value)
        literal_id = self._ids.get(key)
        if literal_id is None:
            literal_id = len(self._numbers)
            self._ids[key] = literal_id
            self._numbers.append(_as_number(value))
            self._tokens.append(None)  # tokenized lazily (numbers never are)
            self._raw.append(value)
        return literal_id

    def _token_set(self, literal_id: int) -> tuple[int, ...]:
        tokens = self._tokens[literal_id]
        if tokens is None:
            tokens = _sorted_token_ids(
                normalize_label(str(self._raw[literal_id])), self._token_ids
            )
            self._tokens[literal_id] = tokens
        return tokens

    # -- scoring --------------------------------------------------------
    def literal_similarity(self, id_a: int, id_b: int) -> float:
        """Mirror of ``repro.text.literal.literal_similarity``.

        Numeric comparisons are cheaper than a cache probe, so only the
        token-Jaccard results (tokenization + merge) are memoized.
        """
        num_a, num_b = self._numbers[id_a], self._numbers[id_b]
        if num_a is not None:
            if num_b is not None:
                return numeric_similarity(num_a, num_b)
            return 0.0
        if num_b is not None:
            return 0.0
        key = (id_a, id_b) if id_a <= id_b else (id_b, id_a)
        sim = self._pair_sims.get(key)
        if sim is not None:
            return sim
        tokens_a = self._token_set(id_a)
        tokens_b = self._token_set(id_b)
        if not tokens_a and not tokens_b:
            sim = 1.0
        else:
            inter = _intersection_count(tokens_a, tokens_b)
            sim = inter / (len(tokens_a) + len(tokens_b) - inter)
        self._pair_sims[key] = sim
        return sim

    def _intern_values(self, values: Collection[object]) -> tuple[int, ...]:
        # Deliberately NOT memoized per collection object: an id()-keyed
        # memo must hold a strong reference to stay sound (ids recycle),
        # and that pins every KB a long-lived shared scorer ever saw.
        # Interning is a dict probe per literal — cheap — and iterating
        # the collection here mirrors the reference's per-call order.
        return tuple(self.intern(v) for v in values)

    def set_similarity(
        self, values_a: Collection[object], values_b: Collection[object]
    ) -> float:
        """Extended Jaccard simL, replaying the reference greedy matching."""
        if not values_a or not values_b:
            return 0.0
        ids_a = self._intern_values(values_a)
        ids_b = self._intern_values(values_b)
        if len(ids_a) == 1 and len(ids_b) == 1:
            # Singleton sets (the common case): matched is 0 or 1, so the
            # Jaccard form collapses to 1.0 / 0.0 — skip the greedy scan.
            sim = self.literal_similarity(ids_a[0], ids_b[0])
            return 1.0 if sim >= self.threshold else 0.0
        key = (ids_a, ids_b)
        cached = self._set_sims.get(key)
        if cached is not None:
            return cached
        threshold = self.threshold
        matched_b = [False] * len(ids_b)
        matched = 0
        for id_a in ids_a:
            best_j, best_sim = -1, threshold
            for j, id_b in enumerate(ids_b):
                if matched_b[j]:
                    continue
                sim = self.literal_similarity(id_a, id_b)
                if sim >= best_sim:
                    best_j, best_sim = j, sim
            if best_j >= 0:
                matched_b[best_j] = True
                matched += 1
        result = matched / (len(ids_a) + len(ids_b) - matched)
        self._set_sims[key] = result
        return result
