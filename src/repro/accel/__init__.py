"""Vectorized/incremental kernels behind the Remp hot paths.

Everything here is gated by ``REPRO_NO_ACCEL=1`` (see
:mod:`repro.accel.runtime`) and guaranteed byte-identical to the pure
Python reference paths it replaces — the accel equivalence suite and the
stream/partition byte-equality oracles pin that contract.
"""

from repro.accel.candidates import intern_signatures, score_candidates
from repro.accel.dominance import any_strict_dominator, strict_dominance_counts
from repro.accel.er_graph import accel_groups, relation_adjacency
from repro.accel.literals import LiteralScorer
from repro.accel.marginals import exact_marginal_map, matching_plan
from repro.accel.propagation import IncrementalPropagator
from repro.accel.runtime import TIMINGS, KernelTimings, accel_enabled, force_accel

__all__ = [
    "TIMINGS",
    "IncrementalPropagator",
    "KernelTimings",
    "LiteralScorer",
    "accel_enabled",
    "accel_groups",
    "any_strict_dominator",
    "exact_marginal_map",
    "force_accel",
    "intern_signatures",
    "matching_plan",
    "relation_adjacency",
    "score_candidates",
    "strict_dominance_counts",
]
