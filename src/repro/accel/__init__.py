"""Vectorized/incremental kernels behind the Remp hot paths.

Everything here is gated by ``REPRO_NO_ACCEL=1`` (see
:mod:`repro.accel.runtime`) and guaranteed byte-identical to the pure
Python reference paths it replaces — the accel equivalence suite and the
stream/partition byte-equality oracles pin that contract.
"""

from repro.accel.dominance import any_strict_dominator, strict_dominance_counts
from repro.accel.literals import LiteralScorer
from repro.accel.propagation import IncrementalPropagator
from repro.accel.runtime import TIMINGS, KernelTimings, accel_enabled, force_accel

__all__ = [
    "TIMINGS",
    "IncrementalPropagator",
    "KernelTimings",
    "LiteralScorer",
    "accel_enabled",
    "any_strict_dominator",
    "force_accel",
    "strict_dominance_counts",
]
