"""Exact Eq. 9 marginals as a bitmask weighted permanent (accel kernel).

The marginal of a candidate pair over all partial 1:1 matchings is a
ratio of two matching-polynomial sums — a weighted-permanent problem.
The reference DFS enumerates every matching (2^n leaves); this kernel
evaluates the *same sum* as a dynamic program over value groups:

* pairs are grouped by the side with **more** distinct values (so the
  mask covers the smaller side), in first-occurrence order;
* ``S(g, mask)`` — the weight of all matchings using only groups
  ``g..`` whose small-side values avoid ``mask`` — satisfies::

      S(g, mask) = S(g+1, mask)
                 + Σ_{i ∈ group g, bit_i ∉ mask} odds_i · S(g+1, mask|bit_i)

  (exclude branch first, then group members in input order — the pinned
  float accumulation order);
* the total is ``S(0, ∅)`` and the numerator of pair *i*'s marginal is
  ``odds_i · S(0, bit_i)`` evaluated with pair *i*'s whole group
  skipped (its large-side value is consumed by *i* itself).

Both implementations below — the unmemoized reference recursion and the
memoized DP — walk the identical expression tree in the identical
order; memoization only collapses *repeated subtrees*, whose floats are
pure functions of ``(g, mask)``, so the two paths are byte-identical by
construction (the accel equivalence suite pins it).  The DP visits at
most ``groups · 2^min(|L|,|R|)`` states instead of every matching.
"""

from __future__ import annotations

from repro.accel.runtime import TIMINGS, accel_enabled

Pair = tuple[str, str]


class MatchingPlan:
    """Group/bit layout of one pair list, reusable across evaluations."""

    __slots__ = ("groups", "pair_group", "pair_bits")

    def __init__(
        self,
        groups: list[list[int]],
        pair_group: list[int],
        pair_bits: list[int],
    ) -> None:
        self.groups = groups
        self.pair_group = pair_group
        self.pair_bits = pair_bits


def matching_plan(pairs: list[Pair]) -> MatchingPlan:
    """Group pairs by the larger value side; bit-index the smaller side.

    Group order and within-group order both follow first occurrence in
    ``pairs``, which fixes the summation order of every evaluation.
    """
    lefts: dict[str, int] = {}
    rights: dict[str, int] = {}
    left_count: dict[str, int] = {}
    right_count: dict[str, int] = {}
    for left, right in pairs:
        lefts.setdefault(left, len(lefts))
        rights.setdefault(right, len(rights))
        left_count[left] = left_count.get(left, 0) + 1
        right_count[right] = right_count.get(right, 0) + 1
    if len(rights) <= len(lefts):
        group_index, mask_count, mask_side = lefts, right_count, 1
    else:
        group_index, mask_count, mask_side = rights, left_count, 0
    # A mask-side value held by a single pair can never conflict, so it
    # gets bit 0: ``mask & 0`` is always false and ``mask | 0`` is
    # ``mask`` — the evaluated expressions are float-identical to giving
    # it a private bit (which no other pair would ever test), while the
    # memoized DP collapses the states that private bit would split.
    bit_index: dict[str, int] = {}
    groups: list[list[int]] = [[] for _ in range(len(group_index))]
    pair_group: list[int] = []
    pair_bits: list[int] = []
    for i, pair in enumerate(pairs):
        group = group_index[pair[1 - mask_side]]
        groups[group].append(i)
        pair_group.append(group)
        value = pair[mask_side]
        if mask_count[value] < 2:
            pair_bits.append(0)
        else:
            bit = bit_index.get(value)
            if bit is None:
                bit = bit_index[value] = 1 << len(bit_index)
            pair_bits.append(bit)
    return MatchingPlan(groups, pair_group, pair_bits)


def _sum_reference(
    plan: MatchingPlan, odds: list[float], skip: int, seed_mask: int
) -> float:
    """``S(0, seed_mask)`` with group ``skip`` left out — unmemoized."""
    groups, pair_bits = plan.groups, plan.pair_bits
    num_groups = len(groups)

    def sum_from(g: int, mask: int) -> float:
        if g == num_groups:
            return 1.0
        if g == skip:
            return sum_from(g + 1, mask)
        acc = sum_from(g + 1, mask)
        for i in groups[g]:
            bit = pair_bits[i]
            if not mask & bit:
                acc = acc + odds[i] * sum_from(g + 1, mask | bit)
        return acc

    return sum_from(0, seed_mask)


def _sum_dp(
    plan: MatchingPlan,
    odds: list[float],
    skip: int,
    seed_mask: int,
    memo: dict[tuple[int, int], float],
) -> float:
    """Same recursion, memoized on ``(g, mask)``.

    ``memo`` is valid for one ``skip`` value (the state value depends on
    it) and is shared across seed masks — every pair in a skipped group
    reuses the subtrees of its siblings.
    """
    groups, pair_bits = plan.groups, plan.pair_bits
    num_groups = len(groups)

    def sum_from(g: int, mask: int) -> float:
        if g == num_groups:
            return 1.0
        if g == skip:
            return sum_from(g + 1, mask)
        key = (g, mask)
        value = memo.get(key)
        if value is None:
            acc = sum_from(g + 1, mask)
            for i in groups[g]:
                bit = pair_bits[i]
                if not mask & bit:
                    acc = acc + odds[i] * sum_from(g + 1, mask | bit)
            memo[key] = value = acc
        return value

    return sum_from(0, seed_mask)


def _marginals_reference(pairs: list[Pair], odds: list[float]) -> dict[Pair, float]:
    """Pure-Python reference: the recursion above, no memoization."""
    plan = matching_plan(pairs)
    total = _sum_reference(plan, odds, -1, 0)
    if total <= 0.0:
        return {p: 0.0 for p in pairs}
    return {
        pair: odds[i] * _sum_reference(plan, odds, plan.pair_group[i], plan.pair_bits[i]) / total
        for i, pair in enumerate(pairs)
    }


def _marginals_dp(pairs: list[Pair], odds: list[float]) -> dict[Pair, float]:
    """Memoized permanent DP — byte-identical to the reference."""
    plan = matching_plan(pairs)
    total = _sum_dp(plan, odds, -1, 0, {})
    if total <= 0.0:
        return {p: 0.0 for p in pairs}
    memo_by_skip: dict[int, dict[tuple[int, int], float]] = {}
    result: dict[Pair, float] = {}
    for i, pair in enumerate(pairs):
        skip = plan.pair_group[i]
        memo = memo_by_skip.setdefault(skip, {})
        numerator = _sum_dp(plan, odds, skip, plan.pair_bits[i], memo)
        result[pair] = odds[i] * numerator / total
    return result


def exact_marginal_map(pairs: list[Pair], odds: list[float]) -> dict[Pair, float]:
    """Marginal ``Pr[p ∈ M]`` per pair, given each pair's prior odds.

    Dispatches between the memoized DP and the unmemoized reference on
    the accel gate; both produce bit-equal floats (see module docstring).
    """
    if not pairs:
        return {}
    with TIMINGS.timed("kernel.marginals"):
        if accel_enabled():
            return _marginals_dp(pairs, odds)
        return _marginals_reference(pairs, odds)
