"""Adjacency-indexed ER-graph construction (accel kernel).

The reference ``build_er_graph`` forms, for every vertex and every
relationship-pair label, the full value-set product ``N^{r1}_{u1} ×
N^{r2}_{u2}`` and filters it against the vertex set — a candidate pair
is probed once per product cell, which blows up on high-degree inverse
relations (every reviewer of a popular movie × every reviewer of its
counterpart).  This kernel inverts the membership test: two partner
indexes map each KB-1 / KB-2 entity to the vertices it appears in, and
a group's members are gathered by walking the *smaller* value set
through its partner lists and checking the other side's set — each
vertex is touched O(shared relations) times instead of once per cell.

Byte-identity with the reference is structural: the vertex iteration
order and the per-vertex label order (forward ``rels1 × rels2`` then
inverse, in KB insertion order) are replayed exactly — those dict
orders feed downstream float accumulation (``combined_edge_row``,
edge-row relaxation) — and member *sets* carry no order, so identical
contents make identical graphs.

The per-KB adjacency snapshot (entity → its relation rows, forward and
inverse) is memoized in the substrate arena like ``token_index`` when
one is active, so sessions and pool workers on the same KB pair build
it once.
"""

from __future__ import annotations

from repro.accel.runtime import TIMINGS, accel_enabled
from repro.core.er_graph import INVERSE_PREFIX
from repro.kb.model import KnowledgeBase

Pair = tuple[str, str]
RelPair = tuple[str, str]

#: entity → tuple of ``(relation, target-set)`` rows, forward and inverse.
Adjacency = tuple[dict[str, tuple], dict[str, tuple]]


def relation_adjacency(kb: KnowledgeBase) -> Adjacency:
    """Snapshot a KB's relation rows in accessor iteration order.

    The tuples hold references to the KB's live target sets (KBs are
    copy-on-delta, never mutated in place, so identity-keyed arena
    entries stay sound — the same convention ``token_index`` relies on).
    """
    forward: dict[str, tuple] = {}
    inverse: dict[str, tuple] = {}
    for entity in kb.entities:
        rels = kb.entity_relations(entity)
        if rels:
            forward[entity] = tuple(rels.items())
        inv = kb.entity_inverse_relations(entity)
        if inv:
            inverse[entity] = tuple(inv.items())
    return forward, inverse


def accel_groups(
    kb1: KnowledgeBase,
    kb2: KnowledgeBase,
    vertices,
) -> dict[Pair, dict[RelPair, set[Pair]]] | None:
    """The ER graph's ``groups`` map, or ``None`` when accel is off."""
    if not accel_enabled():
        return None
    from repro.substrate import current_substrate

    with TIMINGS.timed("kernel.er_graph"):
        substrate = current_substrate()
        if substrate is not None:
            fwd1, inv1 = substrate.er_adjacency(1, kb1, relation_adjacency)
            fwd2, inv2 = substrate.er_adjacency(2, kb2, relation_adjacency)
        else:
            fwd1, inv1 = relation_adjacency(kb1)
            fwd2, inv2 = relation_adjacency(kb2)

        by_entity1: dict[str, list[Pair]] = {}
        by_entity2: dict[str, list[Pair]] = {}
        for vertex in vertices:
            by_entity1.setdefault(vertex[0], []).append(vertex)
            by_entity2.setdefault(vertex[1], []).append(vertex)

        empty: tuple = ()
        groups: dict[Pair, dict[RelPair, set[Pair]]] = {}
        for vertex in vertices:
            entity1, entity2 = vertex
            by_label: dict[RelPair, set[Pair]] = {}
            for rels1, rels2, prefix in (
                (fwd1.get(entity1, empty), fwd2.get(entity2, empty), ""),
                (inv1.get(entity1, empty), inv2.get(entity2, empty), INVERSE_PREFIX),
            ):
                if not rels1 or not rels2:
                    continue
                for r1, targets1 in rels1:
                    for r2, targets2 in rels2:
                        if len(targets1) <= len(targets2):
                            members = {
                                w
                                for t1 in targets1
                                for w in by_entity1.get(t1, empty)
                                if w[1] in targets2
                            }
                        else:
                            members = {
                                w
                                for t2 in targets2
                                for w in by_entity2.get(t2, empty)
                                if w[0] in targets1
                            }
                        if members:
                            by_label[(prefix + r1, prefix + r2)] = members
            if by_label:
                groups[vertex] = by_label
        return groups
