"""Evaluation metrics and table formatting for the experiments."""

from repro.eval.metrics import (
    MatchQuality,
    evaluate_matches,
    f1_score,
    pair_completeness,
    reduction_ratio,
)

__all__ = [
    "MatchQuality",
    "evaluate_matches",
    "f1_score",
    "pair_completeness",
    "reduction_ratio",
]
