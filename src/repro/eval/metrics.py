"""Standard ER evaluation metrics.

Precision / recall / F1 for match sets, and the blocking metrics of
Table V: reduction ratio (fraction of candidates pruned) and pair
completeness (fraction of true matches preserved).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Collection

Pair = tuple[str, str]


@dataclass(frozen=True, slots=True)
class MatchQuality:
    """Precision/recall/F1 with the underlying counts."""

    precision: float
    recall: float
    f1: float
    true_positives: int
    predicted: int
    actual: int

    def as_row(self) -> str:
        return (
            f"P={self.precision:6.1%}  R={self.recall:6.1%}  F1={self.f1:6.1%}  "
            f"(tp={self.true_positives}, predicted={self.predicted}, gold={self.actual})"
        )


def f1_score(precision: float, recall: float) -> float:
    """Harmonic mean, 0.0 when both inputs are 0."""
    if precision + recall == 0.0:
        return 0.0
    return 2.0 * precision * recall / (precision + recall)


def evaluate_matches(predicted: Collection[Pair], gold: Collection[Pair]) -> MatchQuality:
    """Compare a predicted match set against the gold standard."""
    predicted_set = set(predicted)
    gold_set = set(gold)
    tp = len(predicted_set & gold_set)
    precision = tp / len(predicted_set) if predicted_set else 0.0
    recall = tp / len(gold_set) if gold_set else 0.0
    return MatchQuality(
        precision=precision,
        recall=recall,
        f1=f1_score(precision, recall),
        true_positives=tp,
        predicted=len(predicted_set),
        actual=len(gold_set),
    )


def reduction_ratio(num_before: int, num_after: int) -> float:
    """Fraction of pairs removed by a pruning step."""
    if num_before == 0:
        return 0.0
    return 1.0 - num_after / num_before


def pair_completeness(retained: Collection[Pair], gold: Collection[Pair]) -> float:
    """Fraction of true matches surviving in a candidate/retained set."""
    gold_set = set(gold)
    if not gold_set:
        return 0.0
    return len(set(retained) & gold_set) / len(gold_set)
