"""ASCII line plots for the figure drivers.

Rough terminal rendering of the paper's figure panels so the shapes can be
eyeballed without matplotlib (offline environment).
"""

from __future__ import annotations

_MARKERS = "ox+*#@%&"


def ascii_plot(
    series: dict[str, list[float]],
    x_labels: list[str],
    height: int = 12,
    title: str = "",
    y_format: str = "{:.2f}",
) -> str:
    """Render named series of equal length as an ASCII chart.

    Each series gets a marker from :data:`_MARKERS`; collisions show the
    later series' marker.  Values are scaled to the joint min/max.
    """
    if not series:
        return title
    lengths = {len(v) for v in series.values()}
    if lengths != {len(x_labels)}:
        raise ValueError("all series must match the length of x_labels")
    values = [v for vs in series.values() for v in vs]
    low, high = min(values), max(values)
    span = (high - low) or 1.0

    width = len(x_labels)
    grid = [[" "] * width for _ in range(height)]
    for index, (name, ys) in enumerate(sorted(series.items())):
        marker = _MARKERS[index % len(_MARKERS)]
        for x, y in enumerate(ys):
            row = int(round((high - y) / span * (height - 1)))
            grid[row][x] = marker

    lines = []
    if title:
        lines.append(title)
    axis_width = max(len(y_format.format(high)), len(y_format.format(low)))
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = y_format.format(high)
        elif row_index == height - 1:
            label = y_format.format(low)
        else:
            label = ""
        lines.append(f"{label:>{axis_width}} |" + "  ".join(row))
    lines.append(" " * axis_width + " +" + "-" * (3 * width - 2))
    lines.append(" " * axis_width + "  " + "  ".join(f"{x[:2]:2s}" for x in x_labels))
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]}={name}" for i, name in enumerate(sorted(series))
    )
    lines.append(legend)
    return "\n".join(lines)
