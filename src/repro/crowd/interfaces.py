"""Question interfaces beyond the pairwise one (Related Work, Section II-A).

The paper follows the *pairwise* interface throughout, but discusses the
*multi-item* interface of Marcus et al. and CrowdER's question packing:
one task shows up to ``k`` entities and workers group the duplicates,
amortizing the per-question fee over several pairs.

This module provides:

* :class:`MultiItemQuestion` — a task over up to ``k`` entities whose
  answer is a partition into same-object groups;
* :func:`pack_questions` — CrowdER-style greedy packing of a pair set into
  the minimum number of multi-item questions (each question at most ``k``
  entities, every pair covered by some question);
* :class:`MultiItemCrowd` — a simulated crowd answering multi-item tasks
  with per-pair error, plus cost accounting comparable to the pairwise
  platform.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

Pair = tuple[str, str]


class CrowdUnavailableError(RuntimeError):
    """Raised when a platform keeps failing past its retry budget."""


@dataclass(frozen=True, slots=True)
class CrowdRetryPolicy:
    """How a platform reacts to slow or failing label collection.

    ``attempts`` bounds how often one question is retried before
    :class:`CrowdUnavailableError` propagates; ``backoff`` is the base of
    the exponential sleep between attempts; answers slower than
    ``slow_threshold`` seconds count as degraded (``crowd.slow``).
    Retries never re-bill: labels are generated deterministically and
    cached only after a successful attempt, so ``questions_asked`` counts
    each distinct question exactly once no matter how many attempts it
    took.
    """

    attempts: int = 3
    backoff: float = 0.05
    slow_threshold: float = 1.0

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError("attempts must be positive")
        if self.backoff < 0 or self.slow_threshold < 0:
            raise ValueError("backoff and slow_threshold must be non-negative")

    def delay(self, attempt: int) -> float:
        """Sleep before retry number ``attempt`` (0-based)."""
        return self.backoff * (2**attempt)


@dataclass(frozen=True, slots=True)
class MultiItemQuestion:
    """One multi-item task: a small set of entities to be grouped."""

    entities: frozenset[str]

    def covers(self, pair: Pair) -> bool:
        return pair[0] in self.entities and pair[1] in self.entities


def pack_questions(pairs: list[Pair], k: int) -> list[MultiItemQuestion]:
    """Greedy pair packing: cover every pair with ≤k-entity questions.

    Wang et al. (CrowdER) show minimizing the number of multi-item
    questions is NP-hard and use a greedy heuristic; this is the same
    idea: keep adding the pair that introduces the fewest new entities to
    the current question, opening a new question when ``k`` is reached.
    """
    if k < 2:
        raise ValueError("a multi-item question needs room for at least 2 entities")
    remaining = sorted(set(pairs))
    questions: list[MultiItemQuestion] = []
    while remaining:
        current: set[str] = set()
        progressed = True
        while progressed:
            progressed = False
            best_index = -1
            best_new = k + 1
            for i, pair in enumerate(remaining):
                new = len({pair[0], pair[1]} - current)
                if len(current) + new <= k and new < best_new:
                    best_index, best_new = i, new
                    if new == 0:
                        break
            if best_index >= 0:
                pair = remaining.pop(best_index)
                current.update(pair)
                progressed = True
        if not current:  # k too small to even hold one pair's entities
            pair = remaining.pop(0)
            current = {pair[0], pair[1]}
        questions.append(MultiItemQuestion(frozenset(current)))
    return questions


@dataclass(slots=True)
class MultiItemCrowd:
    """Simulated workers for multi-item questions.

    Each within-question pair is judged independently with the given error
    rate; the answer is the partition induced by the (possibly wrong)
    positive judgments.  One question costs one unit regardless of the
    number of entities shown, which is the interface's selling point.
    """

    truth: set[Pair]
    error_rate: float = 0.0
    seed: int = 0
    questions_asked: int = field(default=0, init=False)
    _rng: random.Random = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if not 0.0 <= self.error_rate < 1.0:
            raise ValueError("error_rate must be in [0, 1)")
        self._rng = random.Random(self.seed)

    def _pair_is_match(self, a: str, b: str) -> bool:
        truth = (a, b) in self.truth or (b, a) in self.truth
        if self._rng.random() < self.error_rate:
            return not truth
        return truth

    def answer(self, question: MultiItemQuestion) -> list[set[str]]:
        """Return the partition a worker produces for ``question``."""
        self.questions_asked += 1
        entities = sorted(question.entities)
        groups: list[set[str]] = []
        for entity in entities:
            for group in groups:
                representative = sorted(group)[0]
                if self._pair_is_match(entity, representative):
                    group.add(entity)
                    break
            else:
                groups.append({entity})
        return groups

    def matched_pairs(self, question: MultiItemQuestion) -> set[Pair]:
        """Pairs co-grouped in the worker's answer (both orders)."""
        result: set[Pair] = set()
        for group in self.answer(question):
            members = sorted(group)
            for i, a in enumerate(members):
                for b in members[i + 1:]:
                    result.add((a, b))
                    result.add((b, a))
        return result


def pairwise_cost(pairs: list[Pair]) -> int:
    """Cost of labeling the pair set through the pairwise interface."""
    return len(set(pairs))


def multi_item_cost(pairs: list[Pair], k: int) -> int:
    """Cost of labeling the pair set through ≤k-entity multi-item tasks."""
    return len(pack_questions(pairs, k))
