"""Simulated crowdsourcing platform.

Publishes pairwise questions to a pool of workers, assigns each question to
``workers_per_question`` distinct workers, records every label, and reuses
labels so that different ER approaches asking the same question receive
identical answers — exactly the protocol of the paper's real-worker
experiment ("we reuse the label to each question for all approaches").
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.crowd.worker import Oracle, SimulatedWorker, Worker

Question = tuple[str, str]


@dataclass(frozen=True, slots=True)
class LabelRecord:
    """One worker's label for one question."""

    question: Question
    worker_id: str
    label: bool
    worker_quality: float


class CrowdPlatform:
    """A micro-task market over a fixed worker pool.

    Parameters
    ----------
    workers:
        The worker pool; questions are assigned to random distinct subsets.
    truth:
        Gold standard used to generate worker answers — the set of matching
        pairs.  Any question not in the set is a true non-match.
    workers_per_question:
        Redundancy level (the paper uses 5).
    seed:
        Seed for worker assignment.
    """

    def __init__(
        self,
        workers: list[Worker],
        truth: set[Question],
        workers_per_question: int = 5,
        seed: int = 0,
    ):
        if not workers:
            raise ValueError("worker pool must not be empty")
        if workers_per_question < 1:
            raise ValueError("workers_per_question must be positive")
        self.workers = list(workers)
        self.truth = truth
        self.workers_per_question = min(workers_per_question, len(self.workers))
        self._rng = random.Random(seed)
        self._label_cache: dict[Question, list[LabelRecord]] = {}
        #: Total number of distinct questions ever published (billing unit).
        self.questions_asked = 0
        #: Total number of worker labels collected.
        self.labels_collected = 0

    # ------------------------------------------------------------------
    def ask(self, question: Question) -> list[LabelRecord]:
        """Publish ``question``; return its (possibly cached) labels.

        The first time a question is asked it is billed and assigned to
        ``workers_per_question`` distinct workers; subsequent asks reuse the
        recorded labels at no cost.
        """
        cached = self._label_cache.get(question)
        if cached is not None:
            return cached
        truth = question in self.truth
        assigned = self._rng.sample(self.workers, self.workers_per_question)
        records = [
            LabelRecord(question, w.worker_id, w.answer(question, truth), w.quality)
            for w in assigned
        ]
        self._label_cache[question] = records
        self.questions_asked += 1
        self.labels_collected += len(records)
        return records

    def ask_batch(self, questions: list[Question]) -> dict[Question, list[LabelRecord]]:
        """Publish a batch (one human–machine loop)."""
        return {q: self.ask(q) for q in questions}

    def majority_label(self, question: Question) -> bool:
        """Simple majority vote over the recorded labels for ``question``."""
        records = self.ask(question)
        positive = sum(1 for r in records if r.label)
        return positive * 2 > len(records)

    def reset_billing(self) -> None:
        """Zero the cost counters but keep cached labels (label reuse)."""
        self.questions_asked = 0
        self.labels_collected = 0

    # ------------------------------------------------------------------
    @classmethod
    def with_simulated_workers(
        cls,
        truth: set[Question],
        num_workers: int = 50,
        error_rate: float = 0.05,
        workers_per_question: int = 5,
        seed: int = 0,
    ) -> "CrowdPlatform":
        """Pool of fixed-error-rate workers (the Figure 3 setting)."""
        rng = random.Random(seed)
        workers: list[Worker] = [
            SimulatedWorker(f"w{i}", error_rate, seed=rng.randrange(2**31))
            for i in range(num_workers)
        ]
        return cls(workers, truth, workers_per_question, seed=rng.randrange(2**31))

    @classmethod
    def with_oracle(cls, truth: set[Question]) -> "CrowdPlatform":
        """Single perfect worker (ground-truth-label experiments)."""
        return cls([Oracle()], truth, workers_per_question=1)
