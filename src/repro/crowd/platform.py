"""Simulated crowdsourcing platform.

Publishes pairwise questions to a pool of workers, assigns each question to
``workers_per_question`` distinct workers, records every label, and reuses
labels so that different ER approaches asking the same question receive
identical answers — exactly the protocol of the paper's real-worker
experiment ("we reuse the label to each question for all approaches").

Labels are a pure function of ``(platform seed, question)``: worker
assignment and simulated-worker noise both draw from a per-question RNG
derived by stable hashing, so the answers to a question do not depend on
how many or in what order other questions were asked.  Together with the
exportable answer log this makes runs checkpoint/resume-safe — a resumed
run replays recorded answers and generates identical labels for new
questions, with no seed-reproducibility drift.
"""

from __future__ import annotations

import hashlib
import random
import time
from dataclasses import dataclass

from repro import faults
from repro.crowd.interfaces import CrowdRetryPolicy, CrowdUnavailableError
from repro.crowd.worker import Oracle, SimulatedWorker, Worker

Question = tuple[str, str]


def _question_seed(seed: int, question: Question) -> int:
    """Stable 64-bit RNG seed derived from the platform seed and question."""
    key = f"{seed}\x1f{question[0]}\x1f{question[1]}".encode()
    return int.from_bytes(hashlib.blake2b(key, digest_size=8).digest(), "big")


@dataclass(frozen=True, slots=True)
class LabelRecord:
    """One worker's label for one question."""

    question: Question
    worker_id: str
    label: bool
    worker_quality: float


class CrowdPlatform:
    """A micro-task market over a fixed worker pool.

    Parameters
    ----------
    workers:
        The worker pool; questions are assigned to random distinct subsets.
    truth:
        Gold standard used to generate worker answers — the set of matching
        pairs.  Any question not in the set is a true non-match.
    workers_per_question:
        Redundancy level (the paper uses 5).
    seed:
        Seed for worker assignment.
    retry_policy:
        Timeout/retry behaviour for label collection; the default retries
        a failing platform a couple of times with exponential backoff
        before raising :class:`CrowdUnavailableError`.
    """

    def __init__(
        self,
        workers: list[Worker],
        truth: set[Question],
        workers_per_question: int = 5,
        seed: int = 0,
        retry_policy: CrowdRetryPolicy | None = None,
    ):
        if not workers:
            raise ValueError("worker pool must not be empty")
        if workers_per_question < 1:
            raise ValueError("workers_per_question must be positive")
        self.workers = list(workers)
        self.truth = truth
        self.workers_per_question = min(workers_per_question, len(self.workers))
        self._seed = seed
        self.retry_policy = retry_policy or CrowdRetryPolicy()
        self._label_cache: dict[Question, list[LabelRecord]] = {}
        #: Total number of distinct questions ever published (billing unit).
        self.questions_asked = 0
        #: Total number of worker labels collected.
        self.labels_collected = 0

    # ------------------------------------------------------------------
    def _generate_labels(self, question: Question) -> list[LabelRecord]:
        """One attempt at collecting labels — a pure function of the seed."""
        truth = question in self.truth
        rng = random.Random(_question_seed(self._seed, question))
        assigned = rng.sample(self.workers, self.workers_per_question)
        return [
            LabelRecord(
                question,
                w.worker_id,
                w.answer(question, truth, rng=random.Random(rng.randrange(2**63))),
                w.quality,
            )
            for w in assigned
        ]

    def _labels_with_retry(self, question: Question) -> list[LabelRecord]:
        """Collect labels under the retry policy.

        Each attempt probes the ``crowd.answer`` fault site, so an
        injected platform failure exercises exactly this path.  Label
        generation is deterministic, so a retry reproduces the labels the
        failed attempt would have returned — recovery never changes
        answers, only latency.
        """
        from repro import obs

        policy = self.retry_policy
        last_error: Exception | None = None
        for attempt in range(policy.attempts):
            started = time.perf_counter()
            try:
                faults.check("crowd.answer", question=question, attempt=attempt)
                records = self._generate_labels(question)
            except faults.InjectedFault as exc:
                last_error = exc
                obs.count("crowd.retry")
                if attempt + 1 < policy.attempts:
                    time.sleep(policy.delay(attempt))
                continue
            if time.perf_counter() - started >= policy.slow_threshold:
                obs.count("crowd.slow")
            return records
        raise CrowdUnavailableError(
            f"crowd platform failed {policy.attempts} attempts for {question!r}"
        ) from last_error

    def ask(self, question: Question) -> list[LabelRecord]:
        """Publish ``question``; return its (possibly cached) labels.

        The first time a question is asked it is billed and assigned to
        ``workers_per_question`` distinct workers; subsequent asks reuse the
        recorded labels at no cost.  Recorded answers are never re-billed
        on retry: billing happens only after a successful collection.
        """
        cached = self._label_cache.get(question)
        if cached is not None:
            return cached
        records = self._labels_with_retry(question)
        self._label_cache[question] = records
        self.questions_asked += 1
        self.labels_collected += len(records)
        return records

    def ask_batch(self, questions: list[Question]) -> dict[Question, list[LabelRecord]]:
        """Publish a batch (one human–machine loop)."""
        return {q: self.ask(q) for q in questions}

    def majority_label(self, question: Question) -> bool:
        """Simple majority vote over the recorded labels for ``question``."""
        records = self.ask(question)
        positive = sum(1 for r in records if r.label)
        return positive * 2 > len(records)

    def reset_billing(self) -> None:
        """Zero the cost counters but keep cached labels (label reuse)."""
        self.questions_asked = 0
        self.labels_collected = 0

    # ------------------------------------------------------------------
    # Answer log (checkpoint/resume support)
    # ------------------------------------------------------------------
    @property
    def answer_log(self) -> dict[Question, list[LabelRecord]]:
        """Every recorded label so far, keyed by question (read-only view)."""
        return dict(self._label_cache)

    def export_answer_log(self) -> list[dict]:
        """JSON-able log of all recorded labels, ordered by question.

        Feed the result to :meth:`load_answer_log` on a fresh platform to
        replay past answers instead of re-sampling workers.
        """
        return [
            {
                "question": list(question),
                "worker_id": record.worker_id,
                "label": record.label,
                "worker_quality": record.worker_quality,
            }
            for question in sorted(self._label_cache)
            for record in self._label_cache[question]
        ]

    def load_answer_log(self, log: list[dict]) -> None:
        """Replay recorded labels into the cache without billing them.

        Questions already cached are left untouched (their recorded labels
        win), matching the label-reuse protocol.
        """
        replayed: dict[Question, list[LabelRecord]] = {}
        for entry in log:
            question = (entry["question"][0], entry["question"][1])
            replayed.setdefault(question, []).append(
                LabelRecord(
                    question,
                    entry["worker_id"],
                    bool(entry["label"]),
                    float(entry["worker_quality"]),
                )
            )
        for question, records in replayed.items():
            self._label_cache.setdefault(question, records)

    # ------------------------------------------------------------------
    @classmethod
    def with_simulated_workers(
        cls,
        truth: set[Question],
        num_workers: int = 50,
        error_rate: float = 0.05,
        workers_per_question: int = 5,
        seed: int = 0,
    ) -> "CrowdPlatform":
        """Pool of fixed-error-rate workers (the Figure 3 setting)."""
        rng = random.Random(seed)
        workers: list[Worker] = [
            SimulatedWorker(f"w{i}", error_rate, seed=rng.randrange(2**31))
            for i in range(num_workers)
        ]
        return cls(workers, truth, workers_per_question, seed=rng.randrange(2**31))

    @classmethod
    def with_oracle(cls, truth: set[Question]) -> "CrowdPlatform":
        """Single perfect worker (ground-truth-label experiments)."""
        return cls([Oracle()], truth, workers_per_question=1)
