"""Crowdsourcing substrate: simulated workers and a micro-task platform.

The paper evaluates with (a) real Amazon MTurk workers filtered by a 95%
approval qualification and (b) simulated workers that mislabel each question
with a fixed error rate (0.05 / 0.15 / 0.25, following HIKE).  This package
simulates both: :class:`SimulatedWorker` flips the true label with a
configured error rate, and :class:`CrowdPlatform` publishes questions to a
worker pool with redundant assignment, label reuse across approaches and
cost accounting.
"""

from repro.crowd.worker import Oracle, SimulatedWorker, Worker
from repro.crowd.interfaces import CrowdRetryPolicy, CrowdUnavailableError
from repro.crowd.platform import CrowdPlatform, LabelRecord

__all__ = [
    "Worker",
    "SimulatedWorker",
    "Oracle",
    "CrowdPlatform",
    "LabelRecord",
    "CrowdRetryPolicy",
    "CrowdUnavailableError",
]
