"""Worker models for the crowdsourcing simulation.

Each worker follows the *worker probability model* (Zheng et al., VLDB'17):
a single quality λ ∈ (0, 1] is the probability of labeling any question
correctly.  Crowd platforms expose the quality measured in a qualification
test; truth inference (Eq. 17) consumes it.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod


class Worker(ABC):
    """A crowd worker who answers pairwise match questions."""

    def __init__(self, worker_id: str, quality: float):
        if not 0.0 < quality <= 1.0:
            raise ValueError(f"quality must be in (0, 1], got {quality}")
        self.worker_id = worker_id
        #: Estimated probability of answering correctly (qualification test).
        self.quality = quality

    @abstractmethod
    def answer(
        self,
        question: tuple[str, str],
        truth: bool,
        rng: random.Random | None = None,
    ) -> bool:
        """Return this worker's label for ``question`` given its ``truth``.

        The simulation passes the gold answer; concrete workers corrupt it
        according to their own error model.  When ``rng`` is provided (the
        platform derives one per question), the worker draws from it
        instead of its own sequential stream, making the label a pure
        function of ``(platform seed, question)`` — the property that lets
        resumed runs replay identically.
        """

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.worker_id!r}, quality={self.quality:.2f})"


class SimulatedWorker(Worker):
    """Worker who flips the true label with probability ``error_rate``."""

    def __init__(self, worker_id: str, error_rate: float, seed: int = 0):
        if not 0.0 <= error_rate < 1.0:
            raise ValueError(f"error_rate must be in [0, 1), got {error_rate}")
        super().__init__(worker_id, quality=1.0 - error_rate)
        self.error_rate = error_rate
        self._rng = random.Random(seed)

    def answer(
        self,
        question: tuple[str, str],
        truth: bool,
        rng: random.Random | None = None,
    ) -> bool:
        if (rng or self._rng).random() < self.error_rate:
            return not truth
        return truth


class Oracle(Worker):
    """A perfect worker; used for the ground-truth-label experiments."""

    def __init__(self, worker_id: str = "oracle"):
        super().__init__(worker_id, quality=1.0)

    def answer(
        self,
        question: tuple[str, str],
        truth: bool,
        rng: random.Random | None = None,
    ) -> bool:
        return truth
