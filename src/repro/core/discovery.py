"""Inferred-match-set discovery — Algorithm 2 (Section VI-B).

With edge lengths ``length(v, v') = −log Pr[m_{v'} | m_v]``, the distant
propagation probability Pr[m_p | m_q] is ``exp(−dist(q, p))`` for the
shortest path distance, and the inferral condition Pr ≥ τ becomes
``dist(q, p) ≤ ζ = −log τ``.

Two interchangeable implementations are provided:

* :func:`dijkstra_inferred_sets` — a ζ-bounded Dijkstra from every source,
  asymptotically better on the sparse graphs propagation produces (default).
* :func:`floyd_warshall_inferred_sets` — the paper's modified
  Floyd–Warshall (Algorithm 2), maintaining per-vertex distance maps (the
  paper's "binary trees" are ordered maps; Python dicts give the same
  operations) and only iterating over the ζ-bounded neighborhoods.

Both return, for every candidate question ``q``, the map from inferred
pairs to their distances.
"""

from __future__ import annotations

import heapq
import math
from typing import Iterable

from repro.core.propagation import ProbabilisticERGraph

Pair = tuple[str, str]
DistanceMap = dict[Pair, float]


def zeta_from_tau(tau: float) -> float:
    """Distance budget ζ = −log τ for the precision threshold τ."""
    if not 0.0 < tau <= 1.0:
        raise ValueError("tau must be in (0, 1]")
    return -math.log(tau)


def edge_length_row(targets: DistanceMap, zeta: float) -> DistanceMap:
    """One vertex's −log edge lengths, keeping only edges within budget ζ.

    Shared by :func:`edge_lengths` and the incremental propagator
    (:mod:`repro.accel.propagation`), which splices rows vertex-by-vertex
    — one code path guarantees identical rounding and insertion order.
    """
    row: DistanceMap = {}
    for target, probability in targets.items():
        if probability <= 0.0:
            continue
        length = -math.log(min(1.0, probability))
        if length <= zeta:
            row[target] = length
    return row


def edge_lengths(graph: ProbabilisticERGraph, zeta: float) -> dict[Pair, DistanceMap]:
    """−log edge lengths, keeping only edges usable within budget ζ."""
    lengths: dict[Pair, DistanceMap] = {}
    for source, targets in graph.edge_probs.items():
        row = edge_length_row(targets, zeta)
        if row:
            lengths[source] = row
    return lengths


def bounded_dijkstra(
    lengths: dict[Pair, DistanceMap], source: Pair, zeta: float
) -> DistanceMap:
    """Shortest distances from ``source`` truncated at ζ (source included)."""
    distances: DistanceMap = {source: 0.0}
    heap: list[tuple[float, Pair]] = [(0.0, source)]
    while heap:
        dist, vertex = heapq.heappop(heap)
        if dist > distances.get(vertex, math.inf):
            continue
        for neighbor, length in lengths.get(vertex, {}).items():
            candidate = dist + length
            if candidate <= zeta and candidate < distances.get(neighbor, math.inf):
                distances[neighbor] = candidate
                heapq.heappush(heap, (candidate, neighbor))
    return distances


def dijkstra_inferred_sets(
    graph: ProbabilisticERGraph,
    sources: Iterable[Pair],
    tau: float,
) -> dict[Pair, DistanceMap]:
    """ζ-bounded single-source searches from every candidate question."""
    zeta = zeta_from_tau(tau)
    lengths = edge_lengths(graph, zeta)
    return {source: bounded_dijkstra(lengths, source, zeta) for source in sources}


def floyd_warshall_inferred_sets(
    graph: ProbabilisticERGraph,
    sources: Iterable[Pair],
    tau: float,
) -> dict[Pair, DistanceMap]:
    """Algorithm 2: dynamic-programming all-pairs discovery.

    ``bt[q]`` maps inferred pairs to distances (the paper's forward binary
    tree) and ``bt_inv[q]`` maps pairs that can infer ``q`` (the backward
    tree).  Relaxation combines a path into ``q`` with a path out of ``q``,
    keeping only combinations within ζ, mirroring Lines 6–11 of the paper.
    """
    zeta = zeta_from_tau(tau)
    lengths = edge_lengths(graph, zeta)

    vertices: set[Pair] = set(lengths)
    for row in lengths.values():
        vertices.update(row)
    vertices.update(sources)

    bt: dict[Pair, DistanceMap] = {v: {} for v in vertices}
    bt_inv: dict[Pair, DistanceMap] = {v: {} for v in vertices}
    for source, row in lengths.items():
        for target, length in row.items():
            if length <= zeta and source != target:
                bt[source][target] = min(length, bt[source].get(target, math.inf))
                bt_inv[target][source] = bt[source][target]

    for via in vertices:
        out_edges = list(bt[via].items())
        in_edges = list(bt_inv[via].items())
        for target, d_out in out_edges:
            for origin, d_in in in_edges:
                if origin == target:
                    continue
                total = d_in + d_out
                if total <= zeta and total < bt[origin].get(target, math.inf):
                    bt[origin][target] = total
                    bt_inv[target][origin] = total

    result: dict[Pair, DistanceMap] = {}
    for source in sources:
        distances = dict(bt.get(source, {}))
        distances[source] = 0.0
        result[source] = distances
    return result


def inferred_sets(
    graph: ProbabilisticERGraph,
    sources: Iterable[Pair],
    tau: float,
    use_dijkstra: bool = True,
) -> dict[Pair, DistanceMap]:
    """Dispatch between the two equivalent discovery implementations."""
    if use_dijkstra:
        return dijkstra_inferred_sets(graph, sources, tau)
    return floyd_warshall_inferred_sets(graph, sources, tau)
