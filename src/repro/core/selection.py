"""Multiple questions selection — Section VI, Algorithm 3.

``benefit(Q)`` (Eq. 16) is the expected number of pairs resolvable as
matches once the questions in ``Q`` are labeled: a pair ``p`` is inferred
if at least one labeled-as-match question infers it, so
``Pr[p ∈ inferred(H) | Q] = 1 − Π_{q: p∈inferred(q)} (1 − Pr[m_q])``.
The function is increasing and submodular (Theorem 2), so lazy greedy
selection gives a (1 − 1/e) approximation.

The MaxInf and MaxPr heuristics from the Figure 5 ablation are also
provided.
"""

from __future__ import annotations

import heapq
from typing import Mapping

Pair = tuple[str, str]
InferredSets = Mapping[Pair, Mapping[Pair, float]]


def benefit(
    questions: list[Pair],
    inferred: InferredSets,
    priors: Mapping[Pair, float],
) -> float:
    """Eq. 16: expected number of inferred matches for a question set."""
    miss: dict[Pair, float] = {}
    for question in questions:
        prior = priors.get(question, 0.0)
        for pair in inferred.get(question, ()):
            miss[pair] = miss.get(pair, 1.0) * (1.0 - prior)
    return sum(1.0 - m for m in miss.values())


def greedy_question_selection(
    candidates: list[Pair],
    inferred: InferredSets,
    priors: Mapping[Pair, float],
    mu: int,
) -> list[Pair]:
    """Algorithm 3: lazy greedy maximization of the benefit function.

    A max-heap holds stale upper bounds on each question's marginal gain;
    submodularity guarantees a recomputed gain that still tops the heap is
    exact, so most candidates are never re-evaluated.  Selection stops at
    ``mu`` questions or when no candidate has positive gain.
    """
    if mu < 1:
        raise ValueError("mu must be positive")
    # resolved_prob[p] = Pr[p ∈ inferred(H) | Q] for the selected Q so far.
    resolved_prob: dict[Pair, float] = {}

    def marginal_gain(question: Pair) -> float:
        prior = priors.get(question, 0.0)
        if prior <= 0.0:
            return 0.0
        return sum(
            (1.0 - resolved_prob.get(pair, 0.0)) * prior
            for pair in inferred.get(question, ())
        )

    heap: list[tuple[float, Pair]] = []
    for question in candidates:
        gain = marginal_gain(question)
        if gain > 0.0:
            heap.append((-gain, question))
    heapq.heapify(heap)

    selected: list[Pair] = []
    chosen: set[Pair] = set()
    while heap and len(selected) < mu:
        neg_gain, question = heapq.heappop(heap)
        if question in chosen:
            continue
        gain = marginal_gain(question)
        if gain <= 0.0:
            break
        if heap and gain < -heap[0][0] - 1e-12:
            heapq.heappush(heap, (-gain, question))  # stale bound; retry later
            continue
        selected.append(question)
        chosen.add(question)
        prior = priors.get(question, 0.0)
        for pair in inferred.get(question, ()):
            previous = resolved_prob.get(pair, 0.0)
            resolved_prob[pair] = previous + (1.0 - previous) * prior
    return selected


def max_inference_selection(
    candidates: list[Pair],
    inferred: InferredSets,
    mu: int,
) -> list[Pair]:
    """MaxInf baseline: the µ questions with the largest inferred sets."""
    ranked = sorted(candidates, key=lambda q: (-len(inferred.get(q, ())), q))
    return ranked[:mu]


def max_probability_selection(
    candidates: list[Pair],
    priors: Mapping[Pair, float],
    mu: int,
) -> list[Pair]:
    """MaxPr baseline: the µ questions with the highest prior."""
    ranked = sorted(candidates, key=lambda q: (-priors.get(q, 0.0), q))
    return ranked[:mu]
