"""Remp core: the paper's primary contribution.

The modules follow the paper's pipeline order:

* :mod:`repro.core.candidates` — candidate entity matches + initial matches
  (Section IV-B / IV-C prerequisites).
* :mod:`repro.core.attributes` — attribute matching with the global 1:1
  constraint (Section IV-C).
* :mod:`repro.core.vectors` — similarity vectors and the partial order
  (Section IV-D).
* :mod:`repro.core.pruning` — Algorithm 1, partial-order based pruning.
* :mod:`repro.core.er_graph` — the ER graph of Definition 2.
* :mod:`repro.core.consistency` — relationship-consistency MLE (Section V-A).
* :mod:`repro.core.propagation` — match propagation to neighbors and in
  distance (Sections V-B, V-C).
* :mod:`repro.core.discovery` — Algorithm 2, inferred-match-set discovery.
* :mod:`repro.core.selection` — Algorithm 3, greedy multiple questions
  selection, plus the MaxInf / MaxPr baselines (Section VI).
* :mod:`repro.core.truth` — error-tolerant truth inference (Section VII-A).
* :mod:`repro.core.isolated` — isolated-pair classification (Section VII-B).
* :mod:`repro.core.pipeline` — the full crowdsourced collective ER loop.
"""

from repro.core.config import RempConfig
from repro.core.pipeline import (
    LoopCheckpoint,
    LoopState,
    PreparedState,
    Remp,
    RempResult,
)

__all__ = [
    "RempConfig",
    "Remp",
    "RempResult",
    "PreparedState",
    "LoopState",
    "LoopCheckpoint",
]
