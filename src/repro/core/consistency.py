"""Relationship-consistency estimation (Section V-A).

For a relationship pair (r₁, r₂), the consistencies ε₁ and ε₂ are the
probabilities that a value of r₁ (resp. r₂) on a matched entity has a
matching counterpart in the other KB's value set.  They are estimated by
maximum likelihood over the matched pairs, where the number of matching
value pairs ``L`` is latent (Eqs. 4–5).

The paper optimizes the piecewise-continuous profile likelihood directly;
we use the equivalent coordinate-ascent form: given ε, the optimal integer
``L`` for each pair maximizes ``C(n₁,L)·C(n₂,L)·ζ^L`` (with
``ζ = ε₁ε₂ / ((1−ε₁)(1−ε₂))``), and given all ``L`` the binomial MLE is
``εᵢ = ΣL / Σnᵢ``.  Observed matches among the values give a lower bound on
each ``L``, anchoring the latent search.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.er_graph import RelPair, value_sets
from repro.kb.model import KnowledgeBase

Pair = tuple[str, str]


@dataclass(frozen=True, slots=True)
class Consistency:
    """Estimated (ε₁, ε₂) for one relationship-pair label."""

    epsilon1: float
    epsilon2: float
    support: int

    def gamma(self) -> float:
        """Odds product ζ = ε₁ε₂ / ((1−ε₁)(1−ε₂)) used in propagation."""
        return (self.epsilon1 * self.epsilon2) / (
            (1.0 - self.epsilon1) * (1.0 - self.epsilon2)
        )


@dataclass(frozen=True, slots=True)
class _Observation:
    """One matched pair's evidence: value-set sizes and observed matches."""

    n1: int
    n2: int
    observed: int  # lower bound on the latent L


def _observed_match_count(
    values1: set[str], values2: set[str], matches: set[Pair]
) -> int:
    """Size of a greedy 1:1 matching among known matches in N₁ × N₂."""
    used2: set[str] = set()
    count = 0
    for v1 in sorted(values1):
        for v2 in sorted(values2):
            if v2 not in used2 and (v1, v2) in matches:
                used2.add(v2)
                count += 1
                break
    return count


def _best_latent(n1: int, n2: int, lower: int, zeta: float) -> int:
    """argmax over L in [lower, min(n1, n2)] of C(n1,L)·C(n2,L)·ζ^L."""
    upper = min(n1, n2)
    if upper <= lower:
        return min(lower, upper)
    log_zeta = math.log(zeta) if zeta > 0 else -math.inf
    best_l, best_ll = lower, -math.inf
    for latent in range(lower, upper + 1):
        ll = (
            math.log(math.comb(n1, latent))
            + math.log(math.comb(n2, latent))
            + latent * log_zeta
        )
        if ll > best_ll:
            best_ll = ll
            best_l = latent
    return best_l


def estimate_consistency(
    observations: list[_Observation],
    epsilon_floor: float = 0.01,
    epsilon_ceiling: float = 0.99,
    max_iterations: int = 30,
) -> Consistency:
    """Coordinate-ascent MLE for one relationship pair.

    Alternates the closed-form latent assignment and the binomial ε update
    until the latent counts stabilize.
    """
    relevant = [o for o in observations if o.n1 > 0 or o.n2 > 0]
    if not relevant:
        return Consistency(0.5, 0.5, 0)
    b1 = sum(o.n1 for o in relevant)
    b2 = sum(o.n2 for o in relevant)

    def clamp(x: float) -> float:
        return min(epsilon_ceiling, max(epsilon_floor, x))

    total_observed = sum(o.observed for o in relevant)
    eps1 = clamp(total_observed / b1 if b1 else 0.5)
    eps2 = clamp(total_observed / b2 if b2 else 0.5)
    latents = [o.observed for o in relevant]
    for _ in range(max_iterations):
        zeta = (eps1 * eps2) / ((1.0 - eps1) * (1.0 - eps2))
        new_latents = [
            _best_latent(o.n1, o.n2, o.observed, zeta) if o.n1 and o.n2 else 0
            for o in relevant
        ]
        total = sum(new_latents)
        new_eps1 = clamp(total / b1 if b1 else 0.5)
        new_eps2 = clamp(total / b2 if b2 else 0.5)
        converged = new_latents == latents and (
            abs(new_eps1 - eps1) < 1e-9 and abs(new_eps2 - eps2) < 1e-9
        )
        latents, eps1, eps2 = new_latents, new_eps1, new_eps2
        if converged:
            break
    return Consistency(eps1, eps2, len(relevant))


def estimate_all_consistencies(
    kb1: KnowledgeBase,
    kb2: KnowledgeBase,
    labels: set[RelPair],
    matches: set[Pair],
    min_support: int = 2,
    epsilon_default: float = 0.5,
    epsilon_floor: float = 0.01,
    epsilon_ceiling: float = 0.99,
) -> dict[RelPair, Consistency]:
    """Estimate ε for every relationship-pair label from the current matches.

    ``matches`` plays the role of ``M_in`` on the first call and of the
    accumulated confirmed matches on later re-estimations (Section VII-A).
    Labels with fewer than ``min_support`` informative matched pairs fall
    back to a neutral default.
    """
    result: dict[RelPair, Consistency] = {}
    match_list = list(matches)
    for label in labels:
        observations = []
        for entity1, entity2 in match_list:
            values1, values2 = value_sets(kb1, kb2, entity1, entity2, label)
            if not values1 and not values2:
                continue
            observed = _observed_match_count(values1, values2, matches)
            observations.append(_Observation(len(values1), len(values2), observed))
        informative = [o for o in observations if o.n1 and o.n2]
        if len(informative) < min_support:
            result[label] = Consistency(epsilon_default, epsilon_default, len(informative))
        else:
            result[label] = estimate_consistency(
                observations, epsilon_floor, epsilon_ceiling
            )
    return result
