"""Hybrid ER: match propagation + partial-order inference (future work).

The paper's conclusion sketches a hybrid approach that combines the
transitive relation, the partial order and relational match propagation.
This module implements that extension: on top of the standard Remp loop,
every crowd label is also propagated through the *similarity partial
order* —

* a labeled **match** resolves every unresolved pair that dominates it
  **and shares an entity with it** (the conservative, error-localized form
  of monotonicity the paper advocates in Section VIII-B: "our partial
  order is restricted to neighbors of each entity pair, where errors do
  not propagate to the whole candidate match set");
* a labeled **non-match** resolves every unresolved pair it dominates on
  the same entity as a non-match.

Transitive closure under the 1:1 assumption is already part of the base
pipeline (competitor demotion).  The net effect is fewer questions for the
same F1 on datasets whose partial order is clean — see
``benchmarks/bench_hybrid.py``.
"""

from __future__ import annotations

from repro.core.pipeline import LoopState, PreparedState, Remp
from repro.core.truth import TruthInferenceResult
from repro.core.vectors import dominates

Pair = tuple[str, str]


def monotone_inferences(
    state: PreparedState,
    loop_state: LoopState,
    truth: TruthInferenceResult,
) -> tuple[set[Pair], set[Pair]]:
    """Pairs resolvable from ``truth`` by entity-local monotonicity."""
    vectors = state.vector_index.vectors
    inferred_matches: set[Pair] = set()
    inferred_non_matches: set[Pair] = set()

    def siblings(pair: Pair) -> list[Pair]:
        by_left = state.vector_index.by_left.get(pair[0], [])
        by_right = state.vector_index.by_right.get(pair[1], [])
        return [p for p in by_left + by_right if p != pair and p in state.retained]

    for question in sorted(truth.matches):
        if question not in vectors:
            continue
        base = vectors[question]
        for sibling in siblings(question):
            if dominates(vectors[sibling], base):
                inferred_matches.add(sibling)
    for question in sorted(truth.non_matches):
        if question not in vectors:
            continue
        base = vectors[question]
        for sibling in siblings(question):
            if dominates(base, vectors[sibling]):
                inferred_non_matches.add(sibling)
    unresolved = loop_state.unresolved()
    return inferred_matches & unresolved, inferred_non_matches & unresolved


class _HybridLoopState(LoopState):
    """Loop state that adds monotone inference after each labeling round."""

    def apply_truth(self, truth: TruthInferenceResult) -> None:
        super().apply_truth(truth)
        matches, non_matches = monotone_inferences(self.state, self, truth)
        for pair in sorted(matches):
            self.resolve_match(pair, labeled=False)
        for pair in sorted(non_matches):
            self.resolve_non_match(pair)


class HybridRemp(Remp):
    """Remp plus entity-local partial-order inference on every label.

    A drop-in replacement for :class:`repro.core.Remp`: the human–machine
    loop, question selection and isolated-pair handling are identical;
    only the per-label inference is extended.
    """

    def _make_loop_state(self, state: PreparedState) -> LoopState:
        return _HybridLoopState(state, self.config)
