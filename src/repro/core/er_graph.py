"""The ER graph (Definition 2) and its probabilistic counterpart.

Vertices are candidate entity pairs; a directed edge labeled with the
relationship pair (r₁, r₂) connects (u₁, u₂) to (u₁′, u₂′) whenever
``(u₁, r₁, u₁′)`` and ``(u₂, r₂, u₂′)`` are triples of the two KBs.  We also
materialize *inverse* edges (labels prefixed with ``~``) so that match
information can propagate against relationship direction — from a movie
match back to its director, for example.  Inverse labels get their own
consistency estimates, since functionality is direction-dependent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.kb.model import KnowledgeBase

Pair = tuple[str, str]
RelPair = tuple[str, str]

INVERSE_PREFIX = "~"


def inverse_label(rel_pair: RelPair) -> RelPair:
    """Flip a relationship-pair label between forward and inverse form."""
    r1, r2 = rel_pair
    if r1.startswith(INVERSE_PREFIX):
        return (r1[len(INVERSE_PREFIX):], r2[len(INVERSE_PREFIX):])
    return (INVERSE_PREFIX + r1, INVERSE_PREFIX + r2)


def value_sets(
    kb1: KnowledgeBase, kb2: KnowledgeBase, entity1: str, entity2: str, rel_pair: RelPair
) -> tuple[set[str], set[str]]:
    """The value sets ``N^{r1}_{u1}`` and ``N^{r2}_{u2}`` for an edge label.

    Inverse labels read the source sets instead of the target sets.
    """
    r1, r2 = rel_pair
    if r1.startswith(INVERSE_PREFIX):
        return (
            kb1.relation_sources(entity1, r1[len(INVERSE_PREFIX):]),
            kb2.relation_sources(entity2, r2[len(INVERSE_PREFIX):]),
        )
    return kb1.relation_values(entity1, r1), kb2.relation_values(entity2, r2)


@dataclass(slots=True)
class ERGraph:
    """Directed, edge-labeled multigraph over candidate entity pairs.

    ``groups[v][(r1, r2)]`` is the set of vertices reachable from ``v``
    through the relationship pair (r₁, r₂) — the candidates inside
    ``N^{r1}_{u1} × N^{r2}_{u2}``.  Edges appear once per label, so two
    vertices may be connected under several labels (a multigraph).
    """

    vertices: set[Pair] = field(default_factory=set)
    groups: dict[Pair, dict[RelPair, set[Pair]]] = field(default_factory=dict)

    def neighbor_groups(self, vertex: Pair) -> dict[RelPair, set[Pair]]:
        return self.groups.get(vertex, {})

    def neighbors(self, vertex: Pair) -> set[Pair]:
        """All vertices adjacent to ``vertex`` under any label (out-edges)."""
        out: set[Pair] = set()
        for members in self.groups.get(vertex, {}).values():
            out.update(members)
        return out

    def iter_edges(self) -> Iterator[tuple[Pair, RelPair, Pair]]:
        for vertex, by_label in self.groups.items():
            for label, members in by_label.items():
                for neighbor in members:
                    yield vertex, label, neighbor

    @property
    def num_edges(self) -> int:
        return sum(len(m) for by_label in self.groups.values() for m in by_label.values())

    def num_forward_edges(self) -> int:
        """Edges under forward (non-inverse) labels only — Definition 2 edges."""
        return sum(
            len(members)
            for by_label in self.groups.values()
            for label, members in by_label.items()
            if not label[0].startswith(INVERSE_PREFIX)
        )

    def degree(self, vertex: Pair) -> int:
        return sum(len(m) for m in self.groups.get(vertex, {}).values())

    def isolated_vertices(self) -> set[Pair]:
        """Vertices with no edges in either direction."""
        return {v for v in self.vertices if not self.groups.get(v)}

    def iter_components(self) -> Iterator[set[Pair]]:
        """Lazily yield the weakly-connected components of the graph.

        Components of the undirected view (inverse edges make adjacency
        symmetric, so a plain out-edge BFS suffices).  Isolated vertices
        come out as singleton components.  The yield order is unspecified;
        callers needing determinism sort the components themselves (see
        :mod:`repro.partition`).
        """
        remaining = set(self.vertices)
        while remaining:
            seed = remaining.pop()
            component = {seed}
            frontier = [seed]
            while frontier:
                vertex = frontier.pop()
                for neighbor in self.neighbors(vertex):
                    if neighbor in remaining:
                        remaining.discard(neighbor)
                        component.add(neighbor)
                        frontier.append(neighbor)
            yield component

    def connected_components(self) -> list[set[Pair]]:
        """All weakly-connected components (see :meth:`iter_components`)."""
        return list(self.iter_components())

    def subgraph(self, vertices: set[Pair]) -> "ERGraph":
        """The induced subgraph over ``vertices``.

        Neighbor groups are intersected with ``vertices``; groups that
        become empty are dropped.  When ``vertices`` is a union of whole
        components, every group survives intact, so the slice loses no
        propagation paths — the property :mod:`repro.partition` relies on.
        """
        kept = self.vertices & vertices
        sub = ERGraph(vertices=kept)
        for vertex in kept:
            by_label = {
                label: members & kept
                for label, members in self.groups.get(vertex, {}).items()
                if members & kept
            }
            if by_label:
                sub.groups[vertex] = by_label
        return sub


def build_er_graph(
    kb1: KnowledgeBase,
    kb2: KnowledgeBase,
    vertices: set[Pair],
) -> ERGraph:
    """Construct the ER graph over ``vertices`` (the retained matches).

    For every vertex and every combination of outgoing (and incoming)
    relationships of its two entities, the candidate pairs found inside the
    value-set product become a neighbor group.  Groups are kept per label
    because propagation reasons about one relationship pair at a time.

    The accel path (:mod:`repro.accel.er_graph`) builds the same map by
    joining per-KB adjacency through partner indexes instead of probing
    every value-set product cell; it replays this function's vertex and
    label iteration orders, so the graphs are identical either way.
    """
    # Imported lazily: the accel package imports this module back.
    from repro.accel.er_graph import accel_groups

    indexed = accel_groups(kb1, kb2, vertices)
    if indexed is not None:
        graph = ERGraph(vertices=set(vertices))
        graph.groups = indexed
        return graph

    graph = ERGraph(vertices=set(vertices))
    for vertex in vertices:
        entity1, entity2 = vertex
        by_label: dict[RelPair, set[Pair]] = {}
        directions = (
            (kb1.entity_relations(entity1), kb2.entity_relations(entity2), ""),
            (
                kb1.entity_inverse_relations(entity1),
                kb2.entity_inverse_relations(entity2),
                INVERSE_PREFIX,
            ),
        )
        for rels1, rels2, prefix in directions:
            for r1, targets1 in rels1.items():
                for r2, targets2 in rels2.items():
                    members = {
                        (t1, t2) for t1 in targets1 for t2 in targets2 if (t1, t2) in vertices
                    }
                    if members:
                        by_label[(prefix + r1, prefix + r2)] = members
        if by_label:
            graph.groups[vertex] = by_label
    return graph
