"""Candidate entity match generation (Section IV-B).

Entity labels are normalized and compared with the Jaccard coefficient; an
inverted token index keeps the comparison near-linear (a pair can only pass
the threshold if it shares at least one token).  Label similarities double
as prior match probabilities, and pairs with *identical* labels form the
initial entity matches ``M_in`` that seed attribute matching and
relationship-consistency estimation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.accel.candidates import score_candidates
from repro.accel.runtime import TIMINGS
from repro.kb.model import KnowledgeBase
from repro.substrate import current_substrate
from repro.text.normalize import normalize_label

Pair = tuple[str, str]


@dataclass(slots=True)
class CandidateSet:
    """Candidate matches ``M_c`` with priors, plus initial matches ``M_in``."""

    pairs: set[Pair] = field(default_factory=set)
    priors: dict[Pair, float] = field(default_factory=dict)
    initial_matches: set[Pair] = field(default_factory=set)

    def __len__(self) -> int:
        return len(self.pairs)

    def __contains__(self, pair: Pair) -> bool:
        return pair in self.pairs

    def prior(self, pair: Pair) -> float:
        return self.priors.get(pair, 0.0)


def _token_index(kb: KnowledgeBase) -> tuple[dict[str, frozenset[str]], dict[str, set[str]]]:
    """Normalize every labeled entity; return token sets and inverted index."""
    token_sets: dict[str, frozenset[str]] = {}
    inverted: dict[str, set[str]] = {}
    for entity in kb.entities:
        label = kb.label(entity)
        if label is None:
            continue
        tokens = normalize_label(label)
        if not tokens:
            continue
        token_sets[entity] = tokens
        for token in tokens:
            inverted.setdefault(token, set()).add(entity)
    return token_sets, inverted


def _labels_index(kb: KnowledgeBase) -> dict[str, set[str]]:
    """Raw label → entities carrying it (the ``M_in`` exact-label map)."""
    labels: dict[str, set[str]] = {}
    for entity in kb.entities:
        for label in kb.labels(entity):
            labels.setdefault(label, set()).add(entity)
    return labels


def generate_candidates(
    kb1: KnowledgeBase,
    kb2: KnowledgeBase,
    threshold: float = 0.3,
) -> CandidateSet:
    """Build the candidate set ``M_c`` between ``kb1`` and ``kb2``.

    A pair enters ``M_c`` when the Jaccard similarity of its normalized
    label token sets reaches ``threshold``; the similarity becomes the
    pair's prior match probability.  Pairs sharing an exactly equal raw
    label are additionally recorded as initial matches ``M_in`` — and an
    exact raw-label pair is admitted with prior 1.0 even when the label
    normalizes to an *empty* token set (all-punctuation or non-Latin
    labels), which token-based blocking alone would silently drop.

    The Jaccard scores are accumulated straight off the inverted index:
    one pass over an entity's postings counts ``|T1 ∩ T2|`` per partner,
    and ``|T1 ∪ T2| = |T1| + |T2| − |T1 ∩ T2|`` finishes the coefficient
    without materializing a set intersection/union per candidate pair.
    """
    with TIMINGS.timed("candidates.token_index"):
        substrate = current_substrate()
        if substrate is not None:
            # Arena-memoized per KB side, keyed by KB identity — a
            # different KB object (spliced, re-loaded) always rebuilds.
            tokens1, _ = substrate.token_index(1, kb1, _token_index)
            tokens2, inverted2 = substrate.token_index(2, kb2, _token_index)
        else:
            tokens1, _ = _token_index(kb1)
            tokens2, inverted2 = _token_index(kb2)

    if substrate is not None:
        labels2 = substrate.labels_index(2, kb2, _labels_index)
    else:
        labels2 = _labels_index(kb2)

    result = CandidateSet()
    with TIMINGS.timed("candidates.score"):
        scored = score_candidates(tokens1, tokens2, inverted2, threshold)
        if scored is not None:
            result.pairs.update(scored)
            result.priors.update(scored)
        else:
            for entity1, tset1 in tokens1.items():
                intersections: dict[str, int] = {}
                for token in tset1:
                    for entity2 in inverted2.get(token, ()):
                        intersections[entity2] = intersections.get(entity2, 0) + 1
                size1 = len(tset1)
                for entity2, shared in intersections.items():
                    sim = shared / (size1 + len(tokens2[entity2]) - shared)
                    if sim >= threshold:
                        pair = (entity1, entity2)
                        result.pairs.add(pair)
                        result.priors[pair] = sim

    for entity1 in kb1.entities:
        for label in kb1.labels(entity1):
            for entity2 in labels2.get(label, ()):
                pair = (entity1, entity2)
                if pair in result.pairs:
                    result.initial_matches.add(pair)
                elif entity1 not in tokens1 or entity2 not in tokens2:
                    # Identical raw labels that blocking never saw: at
                    # least one side normalizes to no tokens at all.
                    result.pairs.add(pair)
                    result.priors[pair] = 1.0
                    result.initial_matches.add(pair)
    return result
