"""The end-to-end Remp pipeline (Figure 2's workflow).

``prepare`` runs the offline stages: candidate generation, attribute
matching, similarity vectors, partial-order pruning and ER-graph
construction.  ``run`` executes the human–machine loop: consistency
estimation, probabilistic propagation, multiple questions selection, crowd
labeling and truth inference — iterating until no unresolved pair can be
inferred by relational match propagation — then resolves isolated pairs
with the random-forest classifier.

The loop is resumable: :class:`LoopState` snapshots its resolution sets to
a JSON-able document, ``run`` accepts a :class:`LoopCheckpoint` to continue
an interrupted run mid-loop, and an ``on_checkpoint`` callback receives a
fresh checkpoint after every batch of crowd answers (persisted by
:mod:`repro.store`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.accel.propagation import IncrementalPropagator
from repro.accel.runtime import TIMINGS, accel_enabled
from repro.obs import runtime as obs
from repro.core.attributes import AttributeMatch, match_attributes
from repro.core.candidates import CandidateSet, generate_candidates
from repro.core.config import RempConfig
from repro.core.consistency import estimate_all_consistencies
from repro.core.discovery import inferred_sets
from repro.core.er_graph import ERGraph, build_er_graph
from repro.core.isolated import IsolatedPairClassifier, Signature, build_signatures
from repro.core.propagation import build_probabilistic_graph
from repro.core.pruning import partial_order_pruning
from repro.core.selection import (
    greedy_question_selection,
    max_inference_selection,
    max_probability_selection,
)
from repro.core.truth import infer_truths
from repro.core.vectors import VectorIndex, build_similarity_vectors
from repro.crowd.platform import CrowdPlatform
from repro.kb.model import KnowledgeBase

Pair = tuple[str, str]

#: Effective prior given to already-resolved pairs during propagation.
_RESOLVED_MATCH_PRIOR = 0.99
_RESOLVED_NON_MATCH_PRIOR = 0.01


@dataclass(slots=True)
class PreparedState:
    """Artifacts of the offline stages, reused by the loop and experiments."""

    kb1: KnowledgeBase
    kb2: KnowledgeBase
    candidates: CandidateSet
    attribute_matches: list[AttributeMatch]
    vector_index: VectorIndex
    retained: set[Pair]
    graph: ERGraph
    signatures: dict[Pair, Signature]
    priors: dict[Pair, float]
    isolated: set[Pair]
    #: Content address of the shared kernel arena this state attached to
    #: (:mod:`repro.substrate`), or ``None`` when unattached / accel off.
    #: A plain string tuple — never the arena itself — so states stay
    #: picklable and serializable; slices (:meth:`restrict`) drop it.
    substrate_key: tuple[str, str, str] | None = None

    def restrict(self, vertices: set[Pair], *, isolated: set[Pair] | None = None) -> "PreparedState":
        """A self-contained slice of this state over ``vertices``.

        The KBs, candidate set and attribute matches are shared by
        reference (they are read-only for the loop, and consistency
        estimation deliberately keeps the *global* ``M_in`` so a slice
        sees the same relationship statistics as the whole).  The
        retained set, ER graph, vectors, signatures and priors are cut
        down to ``vertices``.  When ``vertices`` is a union of whole
        weakly-connected components the slice is closed under
        propagation — running the loop on it resolves exactly the pairs
        the monolithic loop could resolve through those components.
        """
        kept = self.retained & vertices
        # Index by the kept pairs (vectors/signatures/priors are total
        # maps over the retained set), so slicing S shards costs one
        # pass over the state rather than S full-dict scans.
        vectors = self.vector_index.vectors
        return PreparedState(
            kb1=self.kb1,
            kb2=self.kb2,
            candidates=self.candidates,
            attribute_matches=self.attribute_matches,
            vector_index=VectorIndex({pair: vectors[pair] for pair in kept}),
            retained=kept,
            graph=self.graph.subgraph(kept),
            signatures={pair: self.signatures[pair] for pair in kept},
            priors={pair: self.priors[pair] for pair in kept},
            isolated=set(isolated) if isolated is not None else self.isolated & kept,
        )


@dataclass(slots=True)
class LoopRecord:
    """Bookkeeping for one human–machine loop."""

    loop_index: int
    questions: list[Pair]
    labeled_matches: int
    labeled_non_matches: int
    unresolved_questions: int
    inferred_matches_so_far: int


@dataclass(slots=True)
class RempResult:
    """Final output of a Remp run."""

    matches: set[Pair]
    questions_asked: int
    num_loops: int
    history: list[LoopRecord] = field(default_factory=list)
    labeled_matches: set[Pair] = field(default_factory=set)
    inferred_matches: set[Pair] = field(default_factory=set)
    isolated_matches: set[Pair] = field(default_factory=set)
    non_matches: set[Pair] = field(default_factory=set)


@dataclass(slots=True)
class LoopCheckpoint:
    """Everything needed to resume an interrupted run mid-loop.

    ``loop_state`` is a :meth:`LoopState.snapshot` document and
    ``answer_log`` a :meth:`repro.crowd.CrowdPlatform.export_answer_log`
    record list — both plain JSON-able values, so a checkpoint can be
    persisted and reloaded by :mod:`repro.store` without pickling.
    """

    next_loop_index: int
    questions_asked: int
    history: list[LoopRecord]
    loop_state: dict
    answer_log: list[dict]


#: Callback invoked with a fresh checkpoint after each labeling round.
CheckpointSink = Callable[[LoopCheckpoint], None]


class Remp:
    """Crowdsourced collective entity resolution with match propagation.

    Examples
    --------
    >>> from repro.datasets import load_dataset
    >>> from repro.crowd import CrowdPlatform
    >>> bundle = load_dataset("iimb", seed=0, scale=0.2)
    >>> platform = CrowdPlatform.with_oracle(bundle.gold_matches)
    >>> result = Remp().run(bundle.kb1, bundle.kb2, platform)
    >>> len(result.matches) > 0
    True
    """

    def __init__(self, config: RempConfig | None = None, seed: int = 0):
        self.config = config or RempConfig()
        self.seed = seed

    # ------------------------------------------------------------------
    # Offline stages (Section IV)
    # ------------------------------------------------------------------
    def prepare(self, kb1: KnowledgeBase, kb2: KnowledgeBase) -> PreparedState:
        """Run ER-graph construction and return every intermediate artifact.

        Each stage is timed into :data:`repro.accel.TIMINGS` so the
        service can persist a per-run timing profile.
        """
        config = self.config
        with TIMINGS.timed("prepare.candidates"):
            candidates = generate_candidates(kb1, kb2, config.label_similarity_threshold)
        with TIMINGS.timed("prepare.attributes"):
            attribute_matches = match_attributes(
                kb1,
                kb2,
                candidates.initial_matches,
                literal_threshold=config.literal_threshold,
            )
        with TIMINGS.timed("prepare.vectors"):
            vectors = build_similarity_vectors(
                kb1, kb2, candidates.pairs, attribute_matches, config.literal_threshold
            )
            # The label similarity (= the prior) leads every vector: rdfs:label
            # is itself an attribute match, and it is the finest-grained
            # component, which keeps the partial order discriminative even when
            # the other attributes produce mostly 0/1 similarities.
            vectors = {
                pair: (candidates.priors.get(pair, 0.0),) + vector
                for pair, vector in vectors.items()
            }
        index = VectorIndex(vectors)
        with TIMINGS.timed("prepare.pruning"):
            retained = partial_order_pruning(candidates.pairs, index, config.k)
        obs.count("prepare.pruning.candidates", len(candidates.pairs))
        obs.count("prepare.pruning.retained", len(retained))
        obs.count("prepare.pruning.discarded", len(candidates.pairs) - len(retained))
        if candidates.pairs:
            obs.gauge(
                "prepare.pruning.discard_rate",
                round(1.0 - len(retained) / len(candidates.pairs), 6),
            )
        with TIMINGS.timed("prepare.graph"):
            graph = build_er_graph(kb1, kb2, retained)
        with TIMINGS.timed("prepare.signatures"):
            signatures = build_signatures(kb1, kb2, retained, attribute_matches)
        priors = {pair: candidates.priors.get(pair, config.default_prior) for pair in retained}
        return PreparedState(
            kb1=kb1,
            kb2=kb2,
            candidates=candidates,
            attribute_matches=attribute_matches,
            vector_index=index,
            retained=retained,
            graph=graph,
            signatures=signatures,
            priors=priors,
            isolated=graph.isolated_vertices(),
        )

    # ------------------------------------------------------------------
    # Online loop (Sections V–VII)
    # ------------------------------------------------------------------
    def run(
        self,
        kb1: KnowledgeBase,
        kb2: KnowledgeBase,
        platform: CrowdPlatform,
        strategy: str = "remp",
        state: PreparedState | None = None,
        resume_from: LoopCheckpoint | None = None,
        on_checkpoint: CheckpointSink | None = None,
    ) -> RempResult:
        """Execute the full crowdsourced collective ER workflow.

        ``strategy`` selects the question-selection policy: ``"remp"``
        (Algorithm 3), ``"maxinf"`` or ``"maxpr"`` (the Figure 5 baselines).
        A pre-computed ``state`` may be passed to share offline work across
        runs.  ``resume_from`` continues an interrupted run from a
        checkpoint (the caller must replay the checkpoint's answer log into
        ``platform`` so past questions are not re-billed); ``on_checkpoint``
        receives a fresh :class:`LoopCheckpoint` after every labeling round.

        ``questions_asked`` counts the *distinct* questions billed by the
        platform during the run (plus those recorded in ``resume_from``):
        a question whose labels are already recorded — re-selected because
        truth inference left it unresolved, re-used by the isolated-pair
        classifier, or replayed on resume — costs nothing extra.
        """
        state = state or self.prepare(kb1, kb2)
        loop_state, history, loop_questions = self.run_loop_phase(
            state, platform, strategy, resume_from=resume_from, on_checkpoint=on_checkpoint
        )
        billed_after_loop = platform.questions_asked
        isolated_matches, _ = self._classify_isolated(state, loop_state, platform)
        questions_asked = loop_questions + (platform.questions_asked - billed_after_loop)
        return assemble_result(loop_state, isolated_matches, questions_asked, history)

    def run_loop_phase(
        self,
        state: PreparedState,
        platform: CrowdPlatform,
        strategy: str = "remp",
        resume_from: LoopCheckpoint | None = None,
        on_checkpoint: CheckpointSink | None = None,
    ) -> tuple["LoopState", list[LoopRecord], int]:
        """Drive the human–machine loop to convergence (no isolated pairs).

        The loop half of :meth:`run`, exposed so :mod:`repro.partition`
        can execute it per shard and classify isolated pairs against the
        merged resolutions afterwards.  Ends with the final propagation
        pass for the last batch of labels; returns the finished loop
        state, the loop history and the questions billed so far
        (including those recorded in ``resume_from``).
        """
        config = self.config
        loop_state = self._make_loop_state(state)
        kb1, kb2 = state.kb1, state.kb2

        history: list[LoopRecord] = []
        base_questions = 0
        start_loop = 0
        if resume_from is not None:
            loop_state.restore(resume_from.loop_state)
            history = list(resume_from.history)
            base_questions = resume_from.questions_asked
            start_loop = resume_from.next_loop_index
        billed_at_start = platform.questions_asked

        for loop_index in range(start_loop, config.max_loops):
            questions_asked = base_questions + (platform.questions_asked - billed_at_start)
            remaining_budget = None
            if config.budget is not None:
                remaining_budget = config.budget - questions_asked
            record = self._loop_once(
                loop_state, platform, strategy, loop_index, remaining_budget
            )
            if record is None:
                break
            history.append(record)
            if on_checkpoint is not None:
                on_checkpoint(
                    LoopCheckpoint(
                        next_loop_index=loop_index + 1,
                        questions_asked=base_questions
                        + (platform.questions_asked - billed_at_start),
                        history=list(history),
                        loop_state=loop_state.snapshot(),
                        answer_log=platform.export_answer_log(),
                    )
                )
        # Final propagation pass for the last batch of labels.
        loop_state.propagate(kb1, kb2)
        questions_asked = base_questions + (platform.questions_asked - billed_at_start)
        return loop_state, history, questions_asked

    def _loop_once(
        self,
        loop_state: "LoopState",
        platform: CrowdPlatform,
        strategy: str,
        loop_index: int,
        remaining_budget: int | None,
    ) -> LoopRecord | None:
        """One human–machine loop: propagate, select, ask, infer truth.

        Returns ``None`` once the loop has converged (no askable question
        remains) or the budget is exhausted.  Shared by :meth:`run` and the
        stepwise sessions of :mod:`repro.service`.
        """
        config = self.config
        kb1, kb2 = loop_state.state.kb1, loop_state.state.kb2
        with obs.span("loop.iteration", loop=loop_index):
            loop_state.propagate(kb1, kb2)
            candidates = loop_state.askable_questions()
            if not candidates:
                return None
            if remaining_budget is not None and remaining_budget <= 0:
                return None
            batch = self._select(strategy, candidates, loop_state, remaining_budget)
            if not batch:
                return None
            billed_before = platform.questions_asked
            answers = platform.ask_batch(batch)
            truth = infer_truths(
                answers,
                loop_state.priors,
                config.match_posterior,
                config.non_match_posterior,
                config.default_prior,
            )
            loop_state.apply_truth(truth)
            obs.count("crowd.questions_billed", platform.questions_asked - billed_before)
            obs.count("loop.iterations")
            return LoopRecord(
                loop_index=loop_index,
                questions=batch,
                labeled_matches=len(truth.matches),
                labeled_non_matches=len(truth.non_matches),
                unresolved_questions=len(truth.unresolved),
                inferred_matches_so_far=len(loop_state.inferred_matches),
            )

    def propagate_only(
        self,
        kb1: KnowledgeBase,
        kb2: KnowledgeBase,
        seeds: set[Pair],
        state: PreparedState | None = None,
    ) -> set[Pair]:
        """Pure propagation from trusted seed matches (Table VI protocol).

        Seeds act as labeled matches; no questions are asked and the
        isolated-pair classifier is skipped.  Returns seeds plus every pair
        inferred at precision threshold τ.
        """
        state = state or self.prepare(kb1, kb2)
        loop_state = self._make_loop_state(state)
        for seed in seeds:
            if seed in state.retained:
                loop_state.resolve_match(seed, labeled=True)
            else:
                loop_state.labeled_matches.add(seed)
        loop_state.propagate(kb1, kb2)
        return set(loop_state.labeled_matches) | set(loop_state.inferred_matches)

    # ------------------------------------------------------------------
    def _make_loop_state(self, state: PreparedState) -> "LoopState":
        """Hook for subclasses that add inference rules (see core.hybrid)."""
        return LoopState(state, self.config)

    def _select(
        self,
        strategy: str,
        candidates: list[Pair],
        loop_state: "LoopState",
        remaining_budget: int | None,
    ) -> list[Pair]:
        mu = self.config.mu
        if remaining_budget is not None:
            mu = min(mu, remaining_budget)
        restricted = loop_state.restricted_inferred_sets()
        if strategy == "remp":
            return greedy_question_selection(candidates, restricted, loop_state.priors, mu)
        if strategy == "maxinf":
            return max_inference_selection(candidates, restricted, mu)
        if strategy == "maxpr":
            return max_probability_selection(candidates, loop_state.priors, mu)
        raise ValueError(f"unknown selection strategy {strategy!r}")

    def _classify_isolated(
        self,
        state: PreparedState,
        loop_state: "LoopState",
        platform: CrowdPlatform | None,
    ) -> tuple[set[Pair], int]:
        isolated_unresolved = sorted(
            pair
            for pair in state.isolated
            if pair not in loop_state.resolved_matches
            and pair not in loop_state.resolved_non_matches
        )
        if not isolated_unresolved:
            return set(), 0
        classifier = IsolatedPairClassifier(
            state.vector_index.vectors,
            state.signatures,
            loop_state.priors,
            self.config,
            self.seed,
        )

        ask = None
        if platform is not None:

            def ask(pair: Pair) -> bool | None:
                """Crowd-label one seed pair through truth inference."""
                answers = {pair: platform.ask(pair)}
                truth = infer_truths(
                    answers,
                    loop_state.priors,
                    self.config.match_posterior,
                    self.config.non_match_posterior,
                    self.config.default_prior,
                )
                if pair in truth.matches:
                    loop_state.resolve_match(pair, labeled=True)
                    return True
                if pair in truth.non_matches:
                    loop_state.resolve_non_match(pair)
                    return False
                loop_state.priors.update(truth.unresolved)
                return None

        with obs.span("loop.isolated_classify", pairs=len(isolated_unresolved)):
            predicted = classifier.classify(
                isolated_unresolved,
                loop_state.resolved_matches,
                loop_state.resolved_non_matches,
                ask=ask,
            )
        obs.count("crowd.questions_billed", classifier.questions_asked)
        return predicted, classifier.questions_asked


class LoopState:
    """Mutable state threaded through the human–machine loops.

    The currently-unresolved pair set is maintained incrementally (every
    resolution removes its pair), so membership checks inside propagation
    are O(1) instead of rebuilding a set difference over all retained
    pairs.  :meth:`snapshot` and :meth:`restore` round-trip the resolution
    state through a JSON-able document for checkpoint/resume.
    """

    def __init__(self, state: PreparedState, config: RempConfig):
        self.state = state
        self.config = config
        self.priors: dict[Pair, float] = dict(state.priors)
        self.labeled_matches: set[Pair] = set()
        self.inferred_matches: set[Pair] = set()
        self.resolved_matches: set[Pair] = set()
        self.resolved_non_matches: set[Pair] = set()
        self._unresolved: set[Pair] = set(state.retained)
        self._inferred_sets: dict[Pair, dict[Pair, float]] = {}
        self._by_left: dict[str, list[Pair]] = {}
        self._by_right: dict[str, list[Pair]] = {}
        #: Accel only: caches derived propagation state across loops.
        self._propagator: IncrementalPropagator | None = None
        for pair in state.retained:
            self._by_left.setdefault(pair[0], []).append(pair)
            self._by_right.setdefault(pair[1], []).append(pair)

    # -- resolution bookkeeping ---------------------------------------
    def resolve_match(self, pair: Pair, labeled: bool) -> None:
        if pair in self.resolved_matches:
            return
        # A positive label overrides an earlier competitor demotion.
        self.resolved_non_matches.discard(pair)
        self.resolved_matches.add(pair)
        self._unresolved.discard(pair)
        if labeled:
            self.labeled_matches.add(pair)
        else:
            self.inferred_matches.add(pair)
        if self.config.enforce_one_to_one:
            self._demote_competitors(pair)

    def resolve_non_match(self, pair: Pair) -> None:
        if pair not in self.resolved_matches:
            self.resolved_non_matches.add(pair)
            self._unresolved.discard(pair)

    def apply_truth(self, truth) -> None:
        """Fold one round of truth inference into the resolution state."""
        for question in sorted(truth.matches):
            self.resolve_match(question, labeled=True)
        for question in sorted(truth.non_matches):
            self.resolve_non_match(question)
        self.priors.update(truth.unresolved)

    def _demote_competitors(self, pair: Pair) -> None:
        """The 1:1 assumption: siblings of a resolved match are non-matches."""
        for sibling in self._by_left.get(pair[0], ()):
            if sibling != pair and sibling not in self.resolved_matches:
                self.resolved_non_matches.add(sibling)
                self._unresolved.discard(sibling)
        for sibling in self._by_right.get(pair[1], ()):
            if sibling != pair and sibling not in self.resolved_matches:
                self.resolved_non_matches.add(sibling)
                self._unresolved.discard(sibling)

    def unresolved(self) -> set[Pair]:
        """A copy of the currently-unresolved retained pairs."""
        return set(self._unresolved)

    # -- checkpointing --------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-able document capturing priors and all resolution sets.

        The inferred sets and the probabilistic graph are derived state
        and are rebuilt by the next :meth:`propagate` call after
        :meth:`restore`.
        """
        return {
            "priors": sorted([left, right, p] for (left, right), p in self.priors.items()),
            "labeled_matches": sorted(map(list, self.labeled_matches)),
            "inferred_matches": sorted(map(list, self.inferred_matches)),
            "resolved_matches": sorted(map(list, self.resolved_matches)),
            "resolved_non_matches": sorted(map(list, self.resolved_non_matches)),
        }

    def restore(self, snapshot: dict) -> None:
        """Reset this state to a previously captured :meth:`snapshot`."""
        self.priors = {(left, right): p for left, right, p in snapshot["priors"]}
        self.labeled_matches = {(l, r) for l, r in snapshot["labeled_matches"]}
        self.inferred_matches = {(l, r) for l, r in snapshot["inferred_matches"]}
        self.resolved_matches = {(l, r) for l, r in snapshot["resolved_matches"]}
        self.resolved_non_matches = {(l, r) for l, r in snapshot["resolved_non_matches"]}
        self._unresolved = (
            self.state.retained - self.resolved_matches - self.resolved_non_matches
        )
        self._inferred_sets = {}
        # The propagator's diffs assume continuous history; a restore
        # breaks it, so the next propagate re-primes from scratch.
        self._propagator = None

    # -- propagation ----------------------------------------------------
    def propagate(self, kb1: KnowledgeBase, kb2: KnowledgeBase) -> None:
        """Rebuild the probabilistic graph and infer from labeled matches.

        With the accel layer on (and Dijkstra discovery selected), the
        rebuild is *incremental*: an :class:`IncrementalPropagator`
        re-estimates only labels whose observations moved, recomputes
        only neighbor groups containing a pair whose effective prior (or
        label consistency) changed, and re-runs Dijkstra only from
        sources whose ζ-reachable region intersects the changed
        vertices.  The fallback path is the original full rebuild; both
        produce identical inferred sets (identical map contents *and*
        iteration order).
        """
        config = self.config
        matches_for_estimation = (
            self.state.candidates.initial_matches
            | self.labeled_matches
            | self.inferred_matches
        )
        incremental = accel_enabled() and config.use_dijkstra
        with TIMINGS.timed("loop.propagate"):
            if incremental:
                if self._propagator is None:
                    self._propagator = IncrementalPropagator(
                        self.state.graph, kb1, kb2, config
                    )
                consistencies = self._propagator.estimate_consistencies(
                    matches_for_estimation
                )
            else:
                labels = {
                    label
                    for by_label in self.state.graph.groups.values()
                    for label in by_label
                }
                consistencies = estimate_all_consistencies(
                    kb1,
                    kb2,
                    labels,
                    matches_for_estimation,
                    min_support=config.min_consistency_support,
                    epsilon_default=config.epsilon_default,
                    epsilon_floor=config.epsilon_floor,
                    epsilon_ceiling=config.epsilon_ceiling,
                )
            effective_priors = dict(self.priors)
            for pair in self.resolved_matches:
                effective_priors[pair] = _RESOLVED_MATCH_PRIOR
            for pair in self.resolved_non_matches:
                effective_priors[pair] = _RESOLVED_NON_MATCH_PRIOR
            sources = set(self.labeled_matches & self.state.retained)
            sources.update(
                q for q in self._unresolved if self.state.graph.groups.get(q)
            )
            if incremental:
                self._inferred_sets = self._propagator.update(
                    effective_priors, consistencies, sources
                )
            else:
                prob_graph = build_probabilistic_graph(
                    self.state.graph, kb1, kb2, effective_priors, consistencies, config
                )
                self._inferred_sets = inferred_sets(
                    prob_graph, sources, config.tau, config.use_dijkstra
                )
        # Distant propagation: everything within ζ of a labeled match.  The
        # incrementally-maintained unresolved set keeps the membership test
        # O(1); resolve_match (and its competitor demotions) updates it.
        for match in sorted(self.labeled_matches & self.state.retained):
            for pair in self._inferred_sets.get(match, ()):
                if pair in self._unresolved:
                    self.resolve_match(pair, labeled=False)

    # -- question candidates -------------------------------------------
    def restricted_inferred_sets(self) -> dict[Pair, dict[Pair, float]]:
        """Inferred sets restricted to currently unresolved pairs (Eq. 12)."""
        unresolved = self._unresolved
        return {
            question: {p: d for p, d in inferred.items() if p in unresolved}
            for question, inferred in self._inferred_sets.items()
            if question in unresolved
        }

    def askable_questions(self) -> list[Pair]:
        """Unresolved questions that can still infer something by relations.

        The paper stops "when there is no unresolved entity pair that can
        be inferred by relational match propagation": a question is worth
        asking only while its inferred set reaches beyond the question
        itself.
        """
        restricted = self.restricted_inferred_sets()
        return [
            question
            for question, inferred in restricted.items()
            if len(inferred) > 1 and self.priors.get(question, 0.0) > 0.0
        ]


def assemble_result(
    loop_state: LoopState,
    isolated_matches: set[Pair],
    questions_asked: int,
    history: list[LoopRecord],
) -> RempResult:
    """Package a finished loop state into a :class:`RempResult`.

    Shared by :meth:`Remp.run` and the stepwise sessions of
    :mod:`repro.service`, which finalize a loop state they advanced
    themselves.
    """
    matches = loop_state.labeled_matches | loop_state.inferred_matches | isolated_matches
    return RempResult(
        matches=matches,
        questions_asked=questions_asked,
        num_loops=len(history),
        history=history,
        labeled_matches=set(loop_state.labeled_matches),
        inferred_matches=set(loop_state.inferred_matches),
        isolated_matches=isolated_matches,
        non_matches=set(loop_state.resolved_non_matches),
    )


def merge_loop_snapshots(state: PreparedState, snapshots: list[dict]) -> dict:
    """Combine per-shard :meth:`LoopState.snapshot` documents into one.

    Priors start from the prepared state's and are overlaid with each
    snapshot's (shard priors cover disjoint retained subsets, so later
    snapshots never clobber earlier ones); the resolution sets are
    unioned, with resolved matches winning over a non-match recorded for
    the same pair by another shard.  The result restores into a
    :class:`LoopState` over the *full* ``state`` — the training input for
    the isolated-pair classification phase of :mod:`repro.partition`.
    """
    priors: dict[Pair, float] = dict(state.priors)
    labeled: set[Pair] = set()
    inferred: set[Pair] = set()
    resolved: set[Pair] = set()
    non_matches: set[Pair] = set()
    for snapshot in snapshots:
        priors.update({(left, right): p for left, right, p in snapshot["priors"]})
        labeled.update((l, r) for l, r in snapshot["labeled_matches"])
        inferred.update((l, r) for l, r in snapshot["inferred_matches"])
        resolved.update((l, r) for l, r in snapshot["resolved_matches"])
        non_matches.update((l, r) for l, r in snapshot["resolved_non_matches"])
    return {
        "priors": sorted([left, right, p] for (left, right), p in priors.items()),
        "labeled_matches": sorted(map(list, labeled)),
        "inferred_matches": sorted(map(list, inferred)),
        "resolved_matches": sorted(map(list, resolved)),
        "resolved_non_matches": sorted(map(list, non_matches - resolved)),
    }


#: Backward-compatible alias from before LoopState became public API.
_LoopState = LoopState
