"""Configuration for the Remp pipeline, defaulting to the paper's settings.

Section VIII, Setup: "we uniformly assign k = 4, τ = 0.9 and µ = 10, and use
0.3 as the label similarity threshold"; Section IV-C sets the literal
threshold to 0.9; Section VII-A uses posterior thresholds 0.8 / 0.2 and five
workers per question.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(slots=True)
class RempConfig:
    """Tunable parameters of the Remp pipeline (paper defaults)."""

    #: Label Jaccard threshold for candidate entity matches (Section IV-B).
    label_similarity_threshold: float = 0.3
    #: k-nearest-neighbor cut in partial-order pruning (Algorithm 1).
    k: int = 4
    #: Precision threshold τ for inferring matches (Section VI-A).
    tau: float = 0.9
    #: Questions per human–machine loop (µ in Eq. 14).
    mu: int = 10
    #: Internal literal similarity threshold for simL (Section IV-C).
    literal_threshold: float = 0.9
    #: Posterior thresholds classifying questions as matches / non-matches.
    match_posterior: float = 0.8
    non_match_posterior: float = 0.2
    #: Attribute-signature Jaccard threshold ψ for isolated pairs (VII-B).
    psi: float = 0.9
    #: Random-forest size for the isolated-pair classifier.
    forest_size: int = 100
    #: Seed questions asked per isolated signature group whose neighborhood
    #: has no positive labels yet (0 disables crowd seeding).
    isolated_seed_questions: int = 25
    #: Seeding stops early once this many positive labels exist in a group.
    isolated_seed_positive_target: int = 8
    #: Forest probability above which an isolated pair counts as a match.
    isolated_match_threshold: float = 0.35
    #: Exact-marginalization cap: neighbor groups with more candidate pairs
    #: than this are reduced to the top pairs by prior before enumerating.
    max_exact_pairs: int = 12
    #: Per-value candidate cap used by the reduction.
    max_candidates_per_value: int = 3
    #: Floor/ceiling for estimated relationship consistencies.
    epsilon_floor: float = 0.01
    epsilon_ceiling: float = 0.99
    #: Default consistency for relationship pairs with no support in M_in.
    epsilon_default: float = 0.5
    #: Minimum matched pairs required to trust an MLE estimate.
    min_consistency_support: int = 2
    #: Safety cap on human–machine loops (the paper stops when no benefit
    #: remains; this guards pathological configurations).
    max_loops: int = 200
    #: Hard budget on the number of questions (Definition 1); None = unlimited.
    budget: int | None = None
    #: When a pair is resolved as a match, resolve all competing candidate
    #: pairs sharing an entity as non-matches (the 1:1 ER assumption).
    enforce_one_to_one: bool = True
    #: Use Dijkstra (True) or the paper's modified Floyd–Warshall (False)
    #: for inferred-match-set discovery; both compute the same sets.
    use_dijkstra: bool = True
    #: Prior probability assigned to pairs whose label similarity is unknown.
    default_prior: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 < self.tau <= 1.0:
            raise ValueError("tau must be in (0, 1]")
        if self.k < 1:
            raise ValueError("k must be at least 1")
        if self.mu < 1:
            raise ValueError("mu must be at least 1")
        if not 0.0 <= self.non_match_posterior < self.match_posterior <= 1.0:
            raise ValueError("need 0 <= non_match_posterior < match_posterior <= 1")
