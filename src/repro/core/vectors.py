"""Similarity vectors and the natural partial order (Section IV-D).

Each candidate pair gets a vector of ``simL`` values, one per attribute
match.  The partial order is componentwise dominance: ``s ⪰ s'`` iff every
component of ``s`` is at least the corresponding component of ``s'``.
``min_rank`` (Eq. 2) counts, for each side of a pair, how many sibling
candidates strictly dominate it — the pair's best possible rank in any
linear extension.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.accel.dominance import PackedVectors, strict_dominance_counts
from repro.accel.literals import LiteralScorer
from repro.accel.runtime import TIMINGS, accel_enabled
from repro.core.attributes import AttributeMatch
from repro.kb.model import KnowledgeBase
from repro.obs import runtime as obs
from repro.substrate import current_substrate
from repro.text.literal import literal_set_similarity

Pair = tuple[str, str]
Vector = tuple[float, ...]


def build_similarity_vectors(
    kb1: KnowledgeBase,
    kb2: KnowledgeBase,
    pairs: set[Pair],
    attribute_matches: list[AttributeMatch],
    literal_threshold: float = 0.9,
) -> dict[Pair, Vector]:
    """Pre-compute the similarity vector of every candidate pair.

    With the accel layer on, literals are interned once and every
    distinct simL comparison is scored exactly once
    (:class:`repro.accel.LiteralScorer`) — same greedy matching, same
    integer ratios, byte-identical components.  Under an activated
    prepare substrate the scorer (and its interning caches) is shared
    with every other pass over the same KB pair.
    """
    if accel_enabled():
        substrate = current_substrate()
        scorer = (
            substrate.scorer(literal_threshold)
            if substrate is not None
            else LiteralScorer(literal_threshold)
        )

        def simL(values1, values2):
            return scorer.set_similarity(values1, values2)

    else:

        def simL(values1, values2):
            return literal_set_similarity(values1, values2, literal_threshold)

    vectors: dict[Pair, Vector] = {}
    with TIMINGS.timed("kernel.simL"):
        for entity1, entity2 in pairs:
            attrs1 = kb1.entity_attributes(entity1)
            attrs2 = kb2.entity_attributes(entity2)
            components = []
            for match in attribute_matches:
                values1 = attrs1.get(match.attr1, ())
                values2 = attrs2.get(match.attr2, ())
                if values1 and values2:
                    components.append(simL(values1, values2))
                else:
                    components.append(0.0)
            vectors[(entity1, entity2)] = tuple(components)
    return vectors


def dominates(s: Vector, t: Vector) -> bool:
    """``s ⪰ t``: every component of ``s`` at least matches ``t``."""
    return all(x >= y for x, y in zip(s, t))


def strictly_dominates(s: Vector, t: Vector) -> bool:
    """``s ≻ t``: dominance with at least one strictly larger component."""
    return s != t and dominates(s, t)


@dataclass(slots=True)
class VectorIndex:
    """Similarity vectors grouped by the entities they involve.

    ``by_left[u1]`` lists all candidate pairs containing ``u1`` on the KB1
    side, and symmetrically for ``by_right`` — the blocks ``B`` that
    Algorithm 1 iterates over.
    """

    vectors: dict[Pair, Vector]
    by_left: dict[str, list[Pair]] = field(default_factory=dict)
    by_right: dict[str, list[Pair]] = field(default_factory=dict)
    #: Lazily-filled per-block dominance counts (accel path only).
    _rank_cache: dict[tuple[int, str], dict[Pair, int]] = field(
        default_factory=dict, init=False, repr=False
    )
    #: Lazily-packed float64 matrix shared by the dominance kernels.
    _packed: PackedVectors | None = field(default=None, init=False, repr=False)

    def __post_init__(self) -> None:
        for pair in self.vectors:
            self.by_left.setdefault(pair[0], []).append(pair)
            self.by_right.setdefault(pair[1], []).append(pair)

    def packed(self) -> PackedVectors:
        """The index's vectors packed once for the dominance kernels.

        ``substrate.pack.builds`` counts actual packings: an index whose
        matrix was adopted from the shared substrate (or shipped to a
        pool worker pre-packed) never increments it.
        """
        if self._packed is None:
            self._packed = PackedVectors(self.vectors)
            obs.count("substrate.pack.builds")
        return self._packed

    def _block_ranks(self, side: int, entity: str) -> dict[Pair, int]:
        """Dominance counts of one whole block via the packed kernel."""
        ranks = self._rank_cache.get((side, entity))
        if ranks is None:
            block = (self.by_left if side == 0 else self.by_right).get(entity, [])
            packed = self.packed()
            if packed.available and len(block) > 1:
                counts = packed.counts(block)
            else:
                counts = strict_dominance_counts([self.vectors[p] for p in block])
            ranks = dict(zip(block, counts))
            self._rank_cache[(side, entity)] = ranks
        return ranks

    def min_rank_left(self, pair: Pair) -> int:
        """|{u2' : s(u1, u2') ≻ s(u1, u2)}| over candidates sharing u1."""
        if accel_enabled():
            return self._block_ranks(0, pair[0])[pair]
        vector = self.vectors[pair]
        return sum(
            1
            for other in self.by_left.get(pair[0], ())
            if other != pair and strictly_dominates(self.vectors[other], vector)
        )

    def min_rank_right(self, pair: Pair) -> int:
        """|{u1' : s(u1', u2) ≻ s(u1, u2)}| over candidates sharing u2."""
        if accel_enabled():
            return self._block_ranks(1, pair[1])[pair]
        vector = self.vectors[pair]
        return sum(
            1
            for other in self.by_right.get(pair[1], ())
            if other != pair and strictly_dominates(self.vectors[other], vector)
        )

    def min_rank(self, pair: Pair) -> int:
        """Eq. 2: the worse of the two one-sided minimal ranks."""
        return max(self.min_rank_left(pair), self.min_rank_right(pair))
