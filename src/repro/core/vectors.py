"""Similarity vectors and the natural partial order (Section IV-D).

Each candidate pair gets a vector of ``simL`` values, one per attribute
match.  The partial order is componentwise dominance: ``s ⪰ s'`` iff every
component of ``s`` is at least the corresponding component of ``s'``.
``min_rank`` (Eq. 2) counts, for each side of a pair, how many sibling
candidates strictly dominate it — the pair's best possible rank in any
linear extension.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.attributes import AttributeMatch
from repro.kb.model import KnowledgeBase
from repro.text.literal import literal_set_similarity

Pair = tuple[str, str]
Vector = tuple[float, ...]


def build_similarity_vectors(
    kb1: KnowledgeBase,
    kb2: KnowledgeBase,
    pairs: set[Pair],
    attribute_matches: list[AttributeMatch],
    literal_threshold: float = 0.9,
) -> dict[Pair, Vector]:
    """Pre-compute the similarity vector of every candidate pair."""
    vectors: dict[Pair, Vector] = {}
    for entity1, entity2 in pairs:
        attrs1 = kb1.entity_attributes(entity1)
        attrs2 = kb2.entity_attributes(entity2)
        components = []
        for match in attribute_matches:
            values1 = attrs1.get(match.attr1, ())
            values2 = attrs2.get(match.attr2, ())
            if values1 and values2:
                components.append(literal_set_similarity(values1, values2, literal_threshold))
            else:
                components.append(0.0)
        vectors[(entity1, entity2)] = tuple(components)
    return vectors


def dominates(s: Vector, t: Vector) -> bool:
    """``s ⪰ t``: every component of ``s`` at least matches ``t``."""
    return all(x >= y for x, y in zip(s, t))


def strictly_dominates(s: Vector, t: Vector) -> bool:
    """``s ≻ t``: dominance with at least one strictly larger component."""
    return s != t and dominates(s, t)


@dataclass(slots=True)
class VectorIndex:
    """Similarity vectors grouped by the entities they involve.

    ``by_left[u1]`` lists all candidate pairs containing ``u1`` on the KB1
    side, and symmetrically for ``by_right`` — the blocks ``B`` that
    Algorithm 1 iterates over.
    """

    vectors: dict[Pair, Vector]
    by_left: dict[str, list[Pair]] = field(default_factory=dict)
    by_right: dict[str, list[Pair]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for pair in self.vectors:
            self.by_left.setdefault(pair[0], []).append(pair)
            self.by_right.setdefault(pair[1], []).append(pair)

    def min_rank_left(self, pair: Pair) -> int:
        """|{u2' : s(u1, u2') ≻ s(u1, u2)}| over candidates sharing u1."""
        vector = self.vectors[pair]
        return sum(
            1
            for other in self.by_left.get(pair[0], ())
            if other != pair and strictly_dominates(self.vectors[other], vector)
        )

    def min_rank_right(self, pair: Pair) -> int:
        """|{u1' : s(u1', u2) ≻ s(u1, u2)}| over candidates sharing u2."""
        vector = self.vectors[pair]
        return sum(
            1
            for other in self.by_right.get(pair[1], ())
            if other != pair and strictly_dominates(self.vectors[other], vector)
        )

    def min_rank(self, pair: Pair) -> int:
        """Eq. 2: the worse of the two one-sided minimal ranks."""
        return max(self.min_rank_left(pair), self.min_rank_right(pair))
