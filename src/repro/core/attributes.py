"""Attribute matching with a global 1:1 constraint (Section IV-C).

For every attribute pair (a₁, a₂) the similarity is the average extended
Jaccard similarity ``simL`` of their value sets over the initial entity
matches ``M_in`` (Eq. 1), skipping pairs where both value sets are empty.
The 1:1 selection is a maximum-weight bipartite matching solved with the
Hungarian algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.accel.literals import LiteralScorer
from repro.accel.runtime import accel_enabled
from repro.assignment import hungarian_max
from repro.kb.model import LABEL_ATTRIBUTE, KnowledgeBase
from repro.substrate import current_substrate
from repro.text.literal import literal_set_similarity

Pair = tuple[str, str]


@dataclass(frozen=True, slots=True)
class AttributeMatch:
    """A matched attribute pair and its Eq. 1 similarity."""

    attr1: str
    attr2: str
    similarity: float


def attribute_similarity_matrix(
    kb1: KnowledgeBase,
    kb2: KnowledgeBase,
    initial_matches: set[Pair],
    literal_threshold: float = 0.9,
    include_label: bool = False,
) -> dict[tuple[str, str], float]:
    """Eq. 1 similarities for all attribute pairs with any support.

    Only attribute pairs observed together on at least one initial entity
    match get a score; everything else is implicitly zero.  ``rdfs:label``
    is excluded by default — it is handled by candidate generation.
    """
    if accel_enabled():
        substrate = current_substrate()
        scorer = (
            substrate.scorer(literal_threshold)
            if substrate is not None
            else LiteralScorer(literal_threshold)
        )

        def simL(values1, values2):
            return scorer.set_similarity(values1, values2)

    else:

        def simL(values1, values2):
            return literal_set_similarity(values1, values2, literal_threshold)

    sums: dict[tuple[str, str], float] = {}
    counts: dict[tuple[str, str], int] = {}
    for entity1, entity2 in initial_matches:
        attrs1 = kb1.entity_attributes(entity1)
        attrs2 = kb2.entity_attributes(entity2)
        for a1, values1 in attrs1.items():
            if not include_label and a1 == LABEL_ATTRIBUTE:
                continue
            for a2, values2 in attrs2.items():
                if not include_label and a2 == LABEL_ATTRIBUTE:
                    continue
                if not values1 and not values2:
                    continue
                key = (a1, a2)
                sums[key] = sums.get(key, 0.0) + simL(values1, values2)
                counts[key] = counts.get(key, 0) + 1
    return {key: sums[key] / counts[key] for key in sums}


def match_attributes(
    kb1: KnowledgeBase,
    kb2: KnowledgeBase,
    initial_matches: set[Pair],
    literal_threshold: float = 0.9,
    min_similarity: float = 0.1,
    one_to_one: bool = True,
) -> list[AttributeMatch]:
    """Find attribute matches between the two KBs.

    With ``one_to_one`` (the paper's setting) the Hungarian algorithm picks
    a maximum-total-similarity assignment; without it, every pair whose
    similarity reaches ``min_similarity`` is kept (the "w/o 1:1 matching"
    ablation of Table IV).
    """
    sims = attribute_similarity_matrix(kb1, kb2, initial_matches, literal_threshold)
    scored = {k: v for k, v in sims.items() if v >= min_similarity}
    if not scored:
        return []
    if not one_to_one:
        return sorted(
            (AttributeMatch(a1, a2, sim) for (a1, a2), sim in scored.items()),
            key=lambda m: -m.similarity,
        )
    attrs1 = sorted({a1 for a1, _ in scored})
    attrs2 = sorted({a2 for _, a2 in scored})
    index1 = {a: i for i, a in enumerate(attrs1)}
    index2 = {a: j for j, a in enumerate(attrs2)}
    profit = [[0.0] * len(attrs2) for _ in attrs1]
    for (a1, a2), sim in scored.items():
        profit[index1[a1]][index2[a2]] = sim
    matches = []
    for i, j in hungarian_max(profit):
        if profit[i][j] >= min_similarity:
            matches.append(AttributeMatch(attrs1[i], attrs2[j], profit[i][j]))
    return sorted(matches, key=lambda m: -m.similarity)
