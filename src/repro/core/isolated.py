"""Inference for isolated entity pairs — Section VII-B.

Pairs whose entities occur in no relationship triple cannot be reached by
match propagation.  Instead of polling the crowd pair by pair, a random
forest is trained on the resolved pairs whose *attribute signature* (the
set of attribute matches populated on both sides) is similar to the
isolated pair's — the neighborhood ``N_p`` with Jaccard ≥ ψ.  Unresolved
neighbors count as non-matches to balance the heavily-positive labels that
propagation produces.

Two practical extensions (documented in DESIGN.md):

* When a signature group has no positive labels at all — common when whole
  entity types are isolated — a small, bounded number of seed questions is
  asked about the group's most probable pairs, giving the forest something
  to learn from.  This keeps the paper's "avoid polling one by one" intent
  while making the classifier usable on datasets like I-Y and D-Y where
  isolated pairs dominate.
* The label-similarity prior is appended to the feature vector, so pairs
  with few shared attributes are still classifiable.
"""

from __future__ import annotations

import random
from typing import Callable

import numpy as np

from repro.core.config import RempConfig
from repro.ml import RandomForestClassifier
from repro.text.similarity import jaccard

Pair = tuple[str, str]
Signature = frozenset[int]
Vector = tuple[float, ...]

#: Callback for crowd-labeling one pair: returns True (match), False
#: (non-match) or None (labels were inconsistent / pair stays unresolved).
AskFn = Callable[[Pair], bool | None]


def attribute_signature(vector_presence: tuple[bool, ...]) -> Signature:
    """Indices of attribute matches populated on both sides of a pair."""
    return frozenset(i for i, present in enumerate(vector_presence) if present)


def build_signatures(kb1, kb2, retained, attribute_matches) -> dict[Pair, Signature]:
    """Attribute signature of every retained pair.

    The accel path (:mod:`repro.accel.candidates`) computes one presence
    bitmask per entity and side instead of probing the KB accessors per
    pair, and interns one frozenset per distinct signature; the contents
    — and the ``retained`` iteration order of the keys — are identical
    to this reference loop's.
    """
    from repro.accel.candidates import intern_signatures

    interned = intern_signatures(kb1, kb2, retained, attribute_matches)
    if interned is not None:
        return interned
    signatures: dict[Pair, Signature] = {}
    for pair in retained:
        presence = tuple(
            bool(kb1.attribute_values(pair[0], match.attr1))
            and bool(kb2.attribute_values(pair[1], match.attr2))
            for match in attribute_matches
        )
        signatures[pair] = attribute_signature(presence)
    return signatures


class IsolatedPairClassifier:
    """Random-forest resolution of isolated pairs.

    Parameters
    ----------
    vectors:
        Similarity vector of every retained pair.
    signatures:
        Attribute signature of every retained pair.
    priors:
        Label-similarity priors (extra feature + seed-question ordering).
    config:
        Supplies ψ, the forest size and seed-question budget.
    """

    def __init__(
        self,
        vectors: dict[Pair, Vector],
        signatures: dict[Pair, Signature],
        priors: dict[Pair, float],
        config: RempConfig | None = None,
        seed: int = 0,
    ):
        self._vectors = vectors
        self._signatures = signatures
        self._priors = priors
        self._config = config or RempConfig()
        self._seed = seed
        self.questions_asked = 0

    # ------------------------------------------------------------------
    def neighborhood(self, pair: Pair) -> list[Pair]:
        """``N_p``: retained pairs with attribute-signature Jaccard ≥ ψ."""
        signature = self._signatures[pair]
        psi = self._config.psi
        return sorted(
            other
            for other, other_sig in self._signatures.items()
            if other != pair and jaccard(signature, other_sig) >= psi
        )

    def _features(self, pair: Pair) -> list[float]:
        # The pipeline's vectors already lead with the label prior.
        return list(self._vectors[pair])

    # ------------------------------------------------------------------
    def classify(
        self,
        pairs: list[Pair],
        resolved_matches: set[Pair],
        resolved_non_matches: set[Pair],
        ask: AskFn | None = None,
    ) -> set[Pair]:
        """Predict which isolated ``pairs`` are matches.

        One forest is trained per distinct attribute signature (pairs with
        equal signatures share a neighborhood and therefore a model).  When
        ``ask`` is provided and a group's neighborhood lacks positive or
        negative labels, up to ``config.isolated_seed_questions`` of the
        group's highest-prior pairs are crowd-labeled first.  Groups that
        still cannot be trained yield no predictions.
        """
        predicted: set[Pair] = set()
        by_signature: dict[Signature, list[Pair]] = {}
        for pair in sorted(pairs):
            by_signature.setdefault(self._signatures[pair], []).append(pair)

        # Deterministic group order regardless of set-iteration order.
        for _, members in sorted(by_signature.items(), key=lambda kv: sorted(kv[0])):
            members = [p for p in members if p not in resolved_matches
                       and p not in resolved_non_matches]
            if not members:
                continue
            neighborhood = self.neighborhood(members[0])
            if ask is not None:
                self._seed_labels(
                    members, neighborhood, resolved_matches, resolved_non_matches, ask
                )
            members = [p for p in members if p not in resolved_matches
                       and p not in resolved_non_matches]
            if not members:
                continue
            model = self._train(neighborhood, resolved_matches, resolved_non_matches)
            if model is None:
                continue
            X = np.array([self._features(p) for p in members], dtype=float)
            proba = model.predict_proba(X)
            threshold = self._config.isolated_match_threshold
            predicted.update(p for p, score in zip(members, proba) if score >= threshold)
        return predicted

    # ------------------------------------------------------------------
    def _seed_labels(
        self,
        members: list[Pair],
        neighborhood: list[Pair],
        resolved_matches: set[Pair],
        resolved_non_matches: set[Pair],
        ask: AskFn,
    ) -> None:
        """Crowd-label a few high-prior pairs so the group becomes trainable."""
        budget = self._config.isolated_seed_questions
        positives = sum(1 for p in neighborhood if p in resolved_matches)
        if positives > 0 or budget <= 0:
            return
        target = self._config.isolated_seed_positive_target
        ranked = sorted(members, key=lambda p: -self._priors.get(p, 0.0))
        for pair in ranked[:budget]:
            answer = ask(pair)
            self.questions_asked += 1
            if answer is True:
                resolved_matches.add(pair)
            elif answer is False:
                resolved_non_matches.add(pair)
            enough_positive = (
                sum(1 for p in neighborhood if p in resolved_matches) >= target
            )
            has_negative = any(p in resolved_non_matches for p in neighborhood)
            if enough_positive and has_negative:
                break

    def _train(
        self,
        neighborhood: list[Pair],
        resolved_matches: set[Pair],
        resolved_non_matches: set[Pair],
    ) -> RandomForestClassifier | None:
        if not neighborhood:
            return None
        # Resolved non-matches and unresolved pairs both count as negatives
        # (Section VII-B's class balancing); resolved negatives are kept in
        # full, unlabeled negatives are subsampled so the handful of
        # positive labels is not drowned out.
        positives = [p for p in neighborhood if p in resolved_matches]
        known_negatives = [p for p in neighborhood if p in resolved_non_matches]
        unlabeled = [
            p
            for p in neighborhood
            if p not in resolved_matches and p not in resolved_non_matches
        ]
        if not positives:
            return None
        rng = random.Random(self._seed)
        negative_cap = max(5 * len(positives), 10)
        if len(known_negatives) > negative_cap:
            known_negatives = rng.sample(known_negatives, negative_cap)
        if known_negatives:
            # Trust crowd-confirmed negatives; unlabeled pairs may well be
            # matches in dense pools and would poison the training set.
            negatives = known_negatives
        else:
            room = max(0, negative_cap)
            if len(unlabeled) > room:
                unlabeled = rng.sample(unlabeled, room)
            negatives = unlabeled
        if not negatives:
            return None
        X = np.array(
            [self._features(p) for p in positives + negatives], dtype=float
        )
        y = np.array([1.0] * len(positives) + [0.0] * len(negatives))
        model = RandomForestClassifier(
            n_estimators=self._config.forest_size, seed=self._seed
        )
        return model.fit(X, y)
