"""Relational match propagation (Sections V-B and V-C).

**Neighbor propagation** (Eqs. 6–9).  Given a match (u₁, u₂) and a
relationship pair (r₁, r₂), the posterior that a candidate value pair
(u₁′, u₂′) matches is obtained by marginalizing over all partial 1:1
matchings ``M`` between the value sets.  Each matching's weight factorizes
(after dividing out constants shared by every matching) as::

    w(M) = γ^|M| · Π_{p∈M} odds(p),   γ = ε₁ε₂ / ((1−ε₁)(1−ε₂))

where ``odds(p)`` is the prior odds of pair ``p``.  The exact marginal is a
sum over matchings containing ``p`` divided by the sum over all matchings;
groups larger than the configured cap are first reduced to the strongest
candidates per value.

**Distant propagation** (Eq. 10) chains neighbor propagation along a path
under the Markov assumption, giving a lower bound whose maximum over paths
is found by shortest-path search in −log space (see
:mod:`repro.core.discovery`); this module builds the probabilistic ER graph
whose edges carry the one-hop conditional probabilities.
"""

from __future__ import annotations

from repro.core.config import RempConfig
from repro.core.consistency import Consistency
from repro.core.er_graph import ERGraph, RelPair
from repro.kb.model import KnowledgeBase

Pair = tuple[str, str]

_PRIOR_EPS = 1e-6


def _odds(prior: float) -> float:
    clamped = min(1.0 - _PRIOR_EPS, max(_PRIOR_EPS, prior))
    return clamped / (1.0 - clamped)


def _reduce_group(
    pairs: list[Pair],
    priors: dict[Pair, float],
    max_pairs: int,
    per_value: int,
) -> list[Pair]:
    """Shrink an oversized candidate group before exact enumeration.

    Keeps the ``per_value`` strongest candidates for every left and right
    value, then caps the total at ``max_pairs`` by prior.  This preserves
    the pairs whose marginals matter (weak candidates have near-zero
    posterior anyway).
    """
    if len(pairs) <= max_pairs:
        return pairs
    by_left: dict[str, list[Pair]] = {}
    by_right: dict[str, list[Pair]] = {}
    for pair in pairs:
        by_left.setdefault(pair[0], []).append(pair)
        by_right.setdefault(pair[1], []).append(pair)
    kept: set[Pair] = set()
    for bucket in list(by_left.values()) + list(by_right.values()):
        bucket.sort(key=lambda p: (-priors.get(p, 0.0), p))
        kept.update(bucket[:per_value])
    # Ties on prior break on the pair itself: ``kept`` is a set, and a
    # prior-only key would cut at ``max_pairs`` in hash-seed-dependent
    # iteration order — different processes would reduce differently.
    reduced = sorted(kept, key=lambda p: (-priors.get(p, 0.0), p))[:max_pairs]
    return reduced


def _marginals_exact(
    pairs: list[Pair],
    priors: dict[Pair, float],
    gamma: float,
) -> dict[Pair, float]:
    """Exact marginal Pr[p ∈ M] over all partial 1:1 matchings.

    The sums over matchings are weighted permanents, evaluated by
    :mod:`repro.accel.marginals` — a grouped recursion whose memoized
    form (the accel path) and unmemoized form (the ``REPRO_NO_ACCEL=1``
    reference) share one expression tree, so both modes return
    bit-equal floats.
    """
    from repro.accel.marginals import exact_marginal_map

    odds = [_odds(priors.get(p, 0.5)) * gamma for p in pairs]
    return exact_marginal_map(pairs, odds)


def neighbor_marginals(
    group: set[Pair],
    priors: dict[Pair, float],
    consistency: Consistency,
    config: RempConfig | None = None,
) -> dict[Pair, float]:
    """Eq. 9 posteriors for one neighbor group of a matched vertex.

    Pairs dropped by the size reduction get marginal 0.0 (they are weak
    candidates crowded out by stronger ones).
    """
    config = config or RempConfig()
    pairs = sorted(group)
    reduced = _reduce_group(pairs, priors, config.max_exact_pairs, config.max_candidates_per_value)
    marginals = _marginals_exact(reduced, priors, consistency.gamma())
    return {p: marginals.get(p, 0.0) for p in pairs}


class ProbabilisticERGraph:
    """ER graph whose directed edges carry Pr[m_{v'} | m_v].

    When several relationship-pair labels connect the same two vertices,
    the strongest evidence (maximum probability) is kept, matching the
    lower-bound semantics of distant propagation.
    """

    def __init__(self) -> None:
        self.edge_probs: dict[Pair, dict[Pair, float]] = {}

    def set_edge(self, source: Pair, target: Pair, probability: float) -> None:
        if probability <= 0.0 or source == target:
            return
        targets = self.edge_probs.setdefault(source, {})
        if probability > targets.get(target, 0.0):
            targets[target] = probability

    def probability(self, source: Pair, target: Pair) -> float:
        if source == target:
            return 1.0
        return self.edge_probs.get(source, {}).get(target, 0.0)

    def successors(self, source: Pair) -> dict[Pair, float]:
        return self.edge_probs.get(source, {})

    @property
    def num_edges(self) -> int:
        return sum(len(t) for t in self.edge_probs.values())


def combined_edge_row(vertex: Pair, label_marginals) -> dict[Pair, float]:
    """Max-combine per-label marginals into one vertex's out-edge row.

    Mirrors :meth:`ProbabilisticERGraph.set_edge` exactly — self-edges and
    non-positive probabilities are dropped, the strongest label wins — and
    preserves the first-encounter insertion order, which downstream float
    accumulations (shortest-path relaxation, benefit sums) observe.
    Shared with the incremental propagator
    (:mod:`repro.accel.propagation`), which rebuilds rows vertex-by-vertex:
    one code path guarantees identical rows either way.
    """
    row: dict[Pair, float] = {}
    for marginals in label_marginals:
        for target, probability in marginals.items():
            if probability <= 0.0 or target == vertex:
                continue
            if probability > row.get(target, 0.0):
                row[target] = probability
    return row


def build_probabilistic_graph(
    graph: ERGraph,
    kb1: KnowledgeBase,
    kb2: KnowledgeBase,
    priors: dict[Pair, float],
    consistencies: dict[RelPair, Consistency],
    config: RempConfig | None = None,
    default_consistency: Consistency | None = None,
) -> ProbabilisticERGraph:
    """Compute one-hop conditional probabilities for every ER-graph edge.

    For each vertex ``v``, each neighbor group is treated as if ``v`` were
    a match and Eq. 9 marginals become the edge probabilities ``v → p``.
    """
    config = config or RempConfig()
    fallback = default_consistency or Consistency(
        config.epsilon_default, config.epsilon_default, 0
    )
    prob_graph = ProbabilisticERGraph()
    for vertex, by_label in graph.groups.items():
        row = combined_edge_row(
            vertex,
            (
                neighbor_marginals(group, priors, consistencies.get(label, fallback), config)
                for label, group in by_label.items()
            ),
        )
        if row:
            prob_graph.edge_probs[vertex] = row
    return prob_graph
