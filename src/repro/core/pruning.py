"""Partial-order based pruning — Algorithm 1 (Section IV-D).

For each entity, candidates whose similarity vector is strictly dominated
by at least ``k`` sibling candidates cannot be among that entity's top-k
matches under *any* linear extension of the partial order, so they are
pruned.  Pruning is applied in both directions (KB1 entities, then KB2
entities); the survivors form the retained match set ``M_rd``.
"""

from __future__ import annotations

from repro.accel.dominance import (
    _MIN_NUMPY_BLOCK,
    PackedVectors,
    any_strict_dominator,
)
from repro.accel.runtime import accel_enabled
from repro.core.vectors import VectorIndex, strictly_dominates

Pair = tuple[str, str]


def _prune_one_way(
    pairs: set[Pair],
    index: VectorIndex,
    k: int,
    side: int,
    use_kernel: bool = False,
) -> set[Pair]:
    """One PruningInOneWay pass of Algorithm 1 over the given side.

    ``side`` 0 groups blocks by the KB1 entity, 1 by the KB2 entity.
    On the accel path large blocks are sliced out of the index's packed
    matrix and dominators counted (clipped at ``k``) by broadcast
    comparison; the keep decision ``rank < k`` is identical to the
    reference loop's early-exit count.  Packing is deferred to the first
    block that is actually large enough — incremental re-prunes over a
    few dirty closures never pay the whole-index pack.
    """
    blocks: dict[str, list[Pair]] = {}
    for pair in pairs:
        blocks.setdefault(pair[side], []).append(pair)

    packed: PackedVectors | None = None
    retained: set[Pair] = set()
    for block in blocks.values():
        if len(block) <= k:
            retained.update(block)
            continue
        vectors = index.vectors
        if use_kernel and len(block) >= _MIN_NUMPY_BLOCK:
            if packed is None:
                packed = index.packed()
            if packed.available:
                ranks = packed.counts(block, cap=k)
                retained.update(
                    pair for pair, rank in zip(block, ranks) if rank < k
                )
                continue
        keep = []
        for pair in block:
            vector = vectors[pair]
            rank = 0
            for other in block:
                if other != pair and strictly_dominates(vectors[other], vector):
                    rank += 1
                    if rank >= k:
                        break
            if rank < k:
                keep.append(pair)
        retained.update(keep)
    return retained


def partial_order_pruning(candidates: set[Pair], index: VectorIndex, k: int = 4) -> set[Pair]:
    """Algorithm 1: retain only pairs that can be a top-k match on both sides.

    Pairs dominated by ``k`` or more siblings in either direction are
    removed.  Pairs dominated by a pruned pair are necessarily also pruned
    (their ``min_rank`` is at least as large), which the rank computation
    captures directly.
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    use_kernel = accel_enabled()
    retained = _prune_one_way(candidates, index, k, side=0, use_kernel=use_kernel)
    retained = _prune_one_way(retained, index, k, side=1, use_kernel=use_kernel)
    return retained


def pruning_error_rate(
    retained: set[Pair],
    index: VectorIndex,
    gold: set[Pair],
) -> float:
    """Error rate of the optimal monotone classifier on the retained pairs.

    Following Tao (PODS'18), a pair is an *error witness* when a true match
    is strictly dominated by a non-match: no monotone classifier can label
    both correctly.  We count the minimum number of pairs any monotone
    classifier must get wrong, via the standard greedy sweep: a match is
    wrong when some non-match dominating it is classified as a match, so we
    count matches strictly dominated by non-matches (each such conflicting
    pair contributes one forced error on its smaller side).
    """
    if not retained:
        return 0.0
    vectors = index.vectors
    matches = [p for p in retained if p in gold]
    non_matches = [p for p in retained if p not in gold]
    if accel_enabled():
        # Packed kernel: one chunked broadcast instead of the
        # O(|matches|·|non_matches|) Python scan.
        packed = index.packed()
        if packed.available:
            dominated = packed.any_dominator(matches, non_matches)
        else:
            dominated = any_strict_dominator(
                [vectors[m] for m in matches], [vectors[nm] for nm in non_matches]
            )
        return sum(dominated) / len(retained)
    conflicts = 0
    for match in matches:
        mv = vectors[match]
        if any(strictly_dominates(vectors[nm], mv) for nm in non_matches):
            conflicts += 1
    return conflicts / len(retained)
