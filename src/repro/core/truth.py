"""Error-tolerant truth inference — Section VII-A.

Each question is answered by several workers; under the worker probability
model the posterior match probability follows Eq. 17.  Posteriors above the
match threshold become matches, below the non-match threshold become
non-matches, and the rest stay unresolved — their prior is replaced by the
posterior so hard questions lose benefit and are unlikely to be re-asked.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crowd.platform import LabelRecord

Pair = tuple[str, str]

_QUALITY_EPS = 0.01


def posterior_match_probability(
    prior: float,
    records: list[LabelRecord],
) -> float:
    """Eq. 17: Bayesian posterior given redundant worker labels.

    Worker qualities are clamped away from 0/1 so a single perfect-quality
    worker cannot produce degenerate odds.
    """
    if not 0.0 <= prior <= 1.0:
        raise ValueError("prior must be in [0, 1]")
    # Clamp degenerate priors: an exact-label pair has prior 1.0 but can
    # still be a homonym non-match, and unanimous worker evidence must be
    # able to override it.
    prior = min(1.0 - _QUALITY_EPS, max(_QUALITY_EPS, prior))
    # Odds form: posterior odds = prior odds × Π likelihood ratios.
    log_ratio = 0.0
    import math

    for record in records:
        quality = min(1.0 - _QUALITY_EPS, max(_QUALITY_EPS, record.worker_quality))
        if record.label:
            log_ratio += math.log(quality / (1.0 - quality))
        else:
            log_ratio += math.log((1.0 - quality) / quality)
    prior_logit = math.log(prior / (1.0 - prior))
    logit = prior_logit + log_ratio
    return 1.0 / (1.0 + math.exp(-logit))


@dataclass(slots=True)
class TruthInferenceResult:
    """Outcome of one round of truth inference."""

    matches: set[Pair] = field(default_factory=set)
    non_matches: set[Pair] = field(default_factory=set)
    #: Hard questions: unresolved, with their new priors (posteriors).
    unresolved: dict[Pair, float] = field(default_factory=dict)
    posteriors: dict[Pair, float] = field(default_factory=dict)


def infer_truths(
    answers: dict[Pair, list[LabelRecord]],
    priors: dict[Pair, float],
    match_threshold: float = 0.8,
    non_match_threshold: float = 0.2,
    default_prior: float = 0.5,
) -> TruthInferenceResult:
    """Classify answered questions into matches / non-matches / unresolved."""
    result = TruthInferenceResult()
    for question, records in answers.items():
        prior = priors.get(question, default_prior)
        posterior = posterior_match_probability(prior, records)
        result.posteriors[question] = posterior
        if posterior >= match_threshold:
            result.matches.add(question)
        elif posterior <= non_match_threshold:
            result.non_matches.add(question)
        else:
            result.unresolved[question] = posterior
    return result
