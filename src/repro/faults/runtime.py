"""Fault-plan activation and the ``check`` probe the execution layers call.

A plan activates one of two ways:

* programmatically — ``with faults.activate(plan): ...`` (tests, the
  chaos oracle);
* via the environment — ``REPRO_FAULTS`` holds either a JSON document
  (``{"rules": [...]}`` or a bare rule list) or ``@path/to/plan.json``.
  The env plan is parsed once per process and cached; pool workers
  started with ``spawn`` therefore re-create it with *fresh* counters,
  which is why cross-process rules should use ``where`` context filters
  rather than ``times`` budgets.

``check(site, **context)`` is the only place faults ever happen.  With
no active plan it is a near-free early return, so the fault plane can
stay compiled into every execution path (bench_faults pins the overhead
at ≤ 3%).
"""

from __future__ import annotations

import json
import os
import signal
import time
from contextlib import contextmanager

from .plan import FaultPlan, InjectedFault

ENV_VAR = "REPRO_FAULTS"

_active: FaultPlan | None = None
_env_plan: FaultPlan | None = None
_env_raw: str | None = None
_disabled = 0


def parse_plan(text: str) -> FaultPlan:
    """Parse a plan from a JSON string or an ``@file`` reference."""
    text = text.strip()
    if not text:
        return FaultPlan()
    if text.startswith("@"):
        with open(text[1:], "r", encoding="utf-8") as handle:
            text = handle.read()
    return FaultPlan.from_doc(json.loads(text))


def _from_env() -> FaultPlan | None:
    global _env_plan, _env_raw
    raw = os.environ.get(ENV_VAR)
    if not raw:
        _env_plan = None
        _env_raw = None
        return None
    if raw != _env_raw:
        _env_raw = raw
        _env_plan = parse_plan(raw)
    return _env_plan


def current_plan() -> FaultPlan | None:
    """The plan probes consult: programmatic activation wins over env."""
    if _disabled:
        return None
    if _active is not None:
        return _active
    return _from_env()


@contextmanager
def activate(plan: FaultPlan):
    """Make *plan* the active plan for the duration of the block."""
    global _active
    previous = _active
    _active = plan
    try:
        yield plan
    finally:
        _active = previous


@contextmanager
def disabled():
    """Suppress all fault injection inside the block (bench baselines)."""
    global _disabled
    _disabled += 1
    try:
        yield
    finally:
        _disabled -= 1


def check(site: str, **context) -> str | None:
    """Probe *site*; fire the first matching rule of the active plan.

    Returns the action name for ``delay`` / ``corrupt`` firings (the
    caller implements the corruption), ``None`` when nothing fired.
    ``error`` raises :class:`InjectedFault`; ``kill`` SIGKILLs the
    current process — exactly what a crashed worker looks like.
    """
    plan = current_plan()
    if plan is None or not plan.rules:
        return None
    rule = plan.select(site, context)
    if rule is None:
        return None

    from repro import obs

    obs.count("fault.injected")
    obs.count(f"fault.injected.{site}")
    obs.publish("fault.injected", site=site, action=rule.action, **context)

    if rule.action == "error":
        raise InjectedFault(f"injected fault at {site} ({context!r})")
    if rule.action == "kill":
        os.kill(os.getpid(), signal.SIGKILL)
    if rule.action == "delay" and rule.delay:
        time.sleep(rule.delay)
    return rule.action
