"""The fault-plan model: named sites, deterministic rules, JSON round-trip.

A :class:`FaultPlan` is a list of :class:`FaultRule` entries, each naming
a probe *site* (``store.write``, ``crowd.answer``, ``worker.mid_shard``,
…) and an *action* to take when a probe at that site matches.  Faults
fire **only** at explicit :func:`repro.faults.check` probes, and a rule
matches deterministically:

* the site name (exact, or an ``fnmatch`` pattern such as ``store.*``);
* the ``where`` filters — equality constraints on the context fields the
  probe supplies (``shard_id``, ``attempt``, ``op``, ``question``, …);
* the ``times`` budget — how often the rule may fire *per plan
  instance* (``None`` = unlimited).

No randomness is consulted anywhere, so replaying the same plan against
the same execution produces the same faults at the same probes — which
is what lets the recovery paths be tested for byte-identical results.
Cross-process determinism (pool workers re-create the plan from
``REPRO_FAULTS`` with fresh counters) should lean on ``where`` filters
like ``{"attempt": 0}`` rather than ``times`` budgets.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from fnmatch import fnmatchcase

#: The probe sites the execution layers expose.  A plan may name others
#: (probes are just strings), but these are the documented contract.
FAULT_SITES = (
    "store.write",
    "substrate.blob.load",
    "crowd.answer",
    "worker.start",
    "worker.mid_shard",
)

#: Actions a matching rule may take at its probe.
FAULT_ACTIONS = ("error", "kill", "delay", "corrupt")


class InjectedFault(RuntimeError):
    """The transient failure an ``error``-action rule raises at its probe."""


def _norm(value):
    """Normalise context/filter values so JSON round-trips compare equal."""
    if isinstance(value, (tuple, list)):
        return [_norm(item) for item in value]
    return value


@dataclass(slots=True)
class FaultRule:
    """One deterministic fault: where it fires, what it does, how often."""

    site: str
    action: str = "error"
    #: Max firings for this plan instance; ``None`` = every matching probe.
    times: int | None = 1
    #: Seconds to sleep for ``delay`` rules (ignored otherwise).
    delay: float = 0.0
    #: Equality filters on the probe's context fields; a probe matches
    #: only when every listed field is present and equal.
    where: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.action not in FAULT_ACTIONS:
            raise ValueError(
                f"unknown fault action {self.action!r}; expected one of {FAULT_ACTIONS}"
            )
        if self.times is not None and self.times < 1:
            raise ValueError("times must be positive (or None for unlimited)")
        if self.delay < 0:
            raise ValueError("delay must be non-negative")

    def matches(self, site: str, context: dict) -> bool:
        if site != self.site and not fnmatchcase(site, self.site):
            return False
        for key, expected in self.where.items():
            if key not in context or _norm(context[key]) != _norm(expected):
                return False
        return True

    def to_doc(self) -> dict:
        doc = {"site": self.site, "action": self.action, "times": self.times}
        if self.delay:
            doc["delay"] = self.delay
        if self.where:
            doc["where"] = {key: _norm(value) for key, value in self.where.items()}
        return doc

    @classmethod
    def from_doc(cls, doc: dict) -> "FaultRule":
        return cls(
            site=doc["site"],
            action=doc.get("action", "error"),
            times=doc.get("times", 1),
            delay=float(doc.get("delay", 0.0)),
            where=dict(doc.get("where", {})),
        )


class FaultPlan:
    """An ordered rule list plus per-rule firing counters (thread-safe)."""

    def __init__(self, rules: list[FaultRule] | None = None):
        self.rules = list(rules or [])
        self._fired = [0] * len(self.rules)
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def select(self, site: str, context: dict) -> FaultRule | None:
        """The first matching rule with budget left; consumes one firing."""
        with self._lock:
            for index, rule in enumerate(self.rules):
                if rule.times is not None and self._fired[index] >= rule.times:
                    continue
                if rule.matches(site, context):
                    self._fired[index] += 1
                    return rule
        return None

    def fired(self, index: int | None = None) -> int:
        """Total firings (of one rule, or across the whole plan)."""
        with self._lock:
            if index is not None:
                return self._fired[index]
            return sum(self._fired)

    def reset(self) -> None:
        """Zero every firing counter (fresh replay of the same plan)."""
        with self._lock:
            self._fired = [0] * len(self.rules)

    # ------------------------------------------------------------------
    def to_doc(self) -> dict:
        return {"rules": [rule.to_doc() for rule in self.rules]}

    @classmethod
    def from_doc(cls, doc: dict) -> "FaultPlan":
        if isinstance(doc, list):  # bare rule list is accepted shorthand
            rules = doc
        else:
            rules = doc.get("rules", [])
        return cls([FaultRule.from_doc(rule) for rule in rules])
