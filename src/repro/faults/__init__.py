"""repro.faults — deterministic fault injection for the execution layers.

Faults fire only at explicit :func:`check` probes, selected by a
:class:`FaultPlan` activated programmatically or via ``REPRO_FAULTS``;
see ``docs/robustness.md`` for the site catalogue and semantics.
"""

from .plan import FAULT_ACTIONS, FAULT_SITES, FaultPlan, FaultRule, InjectedFault
from .runtime import ENV_VAR, activate, check, current_plan, disabled, parse_plan

__all__ = [
    "FAULT_ACTIONS",
    "FAULT_SITES",
    "FaultPlan",
    "FaultRule",
    "InjectedFault",
    "ENV_VAR",
    "activate",
    "check",
    "current_plan",
    "disabled",
    "parse_plan",
]
