"""Stable serialization of pipeline artifacts.

Every function here maps a pipeline object to a plain JSON-able document
(and back) with deterministic ordering: equal inputs produce equal
documents, so ``json.dumps(doc, sort_keys=True)`` is byte-stable and safe
to hash or diff.  Nothing is pickled — documents survive refactors of the
in-memory classes as long as the schema version is honoured.

The keyed artifacts (``PreparedState``) carry a ``version`` field;
:mod:`repro.store.store` refuses to load documents with an unknown version
rather than guessing.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict

from repro.core.attributes import AttributeMatch
from repro.core.candidates import CandidateSet
from repro.core.config import RempConfig
from repro.core.er_graph import ERGraph
from repro.core.pipeline import LoopCheckpoint, LoopRecord, PreparedState, RempResult
from repro.core.vectors import VectorIndex
from repro.kb.io import kb_from_doc, kb_to_doc

Pair = tuple[str, str]

#: Schema version written into (and required of) PreparedState documents.
PREPARED_STATE_VERSION = 1
#: Schema version for loop checkpoints.
CHECKPOINT_VERSION = 1


# ----------------------------------------------------------------------
# Primitives
# ----------------------------------------------------------------------
def pairs_to_doc(pairs) -> list[list[str]]:
    return sorted([left, right] for left, right in pairs)


def pairs_from_doc(doc) -> set[Pair]:
    return {(left, right) for left, right in doc}


def priors_to_doc(priors: dict[Pair, float]) -> list[list]:
    return sorted([left, right, p] for (left, right), p in priors.items())


def priors_from_doc(doc) -> dict[Pair, float]:
    return {(left, right): p for left, right, p in doc}


# ----------------------------------------------------------------------
# Configuration
# ----------------------------------------------------------------------
def config_to_doc(config: RempConfig) -> dict:
    return asdict(config)


def config_from_doc(doc: dict) -> RempConfig:
    return RempConfig(**doc)


def config_hash(config: RempConfig | None) -> str:
    """Short stable digest of a config — part of every store cache key.

    ``None`` hashes like a default :class:`RempConfig`, so callers that
    never customize the config share cache entries.
    """
    doc = config_to_doc(config or RempConfig())
    blob = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


# ----------------------------------------------------------------------
# Offline artifacts
# ----------------------------------------------------------------------
def candidates_to_doc(candidates: CandidateSet) -> dict:
    return {
        "pairs": pairs_to_doc(candidates.pairs),
        "priors": priors_to_doc(candidates.priors),
        "initial_matches": pairs_to_doc(candidates.initial_matches),
    }


def candidates_from_doc(doc: dict) -> CandidateSet:
    return CandidateSet(
        pairs=pairs_from_doc(doc["pairs"]),
        priors=priors_from_doc(doc["priors"]),
        initial_matches=pairs_from_doc(doc["initial_matches"]),
    )


def er_graph_to_doc(graph: ERGraph) -> dict:
    groups = []
    for vertex in sorted(graph.groups):
        by_label = [
            [r1, r2, pairs_to_doc(members)]
            for (r1, r2), members in graph.groups[vertex].items()
        ]
        groups.append([vertex[0], vertex[1], sorted(by_label)])
    return {"vertices": pairs_to_doc(graph.vertices), "groups": groups}


def er_graph_from_doc(doc: dict) -> ERGraph:
    graph = ERGraph(vertices=pairs_from_doc(doc["vertices"]))
    for left, right, by_label in doc["groups"]:
        graph.groups[(left, right)] = {
            (r1, r2): pairs_from_doc(members) for r1, r2, members in by_label
        }
    return graph


def prepared_state_to_doc(state: PreparedState) -> dict:
    """Serialize every offline artifact of a prepared pipeline."""
    return {
        "version": PREPARED_STATE_VERSION,
        "kb1": kb_to_doc(state.kb1),
        "kb2": kb_to_doc(state.kb2),
        "candidates": candidates_to_doc(state.candidates),
        "attribute_matches": [
            [m.attr1, m.attr2, m.similarity] for m in state.attribute_matches
        ],
        "vectors": sorted(
            [left, right, list(vector)]
            for (left, right), vector in state.vector_index.vectors.items()
        ),
        "retained": pairs_to_doc(state.retained),
        "graph": er_graph_to_doc(state.graph),
        "signatures": sorted(
            [left, right, sorted(signature)]
            for (left, right), signature in state.signatures.items()
        ),
        "priors": priors_to_doc(state.priors),
        "isolated": pairs_to_doc(state.isolated),
    }


def prepared_state_from_doc(doc: dict) -> PreparedState:
    version = doc.get("version")
    if version != PREPARED_STATE_VERSION:
        raise ValueError(
            f"unsupported PreparedState document version {version!r}; "
            f"expected {PREPARED_STATE_VERSION}"
        )
    return PreparedState(
        kb1=kb_from_doc(doc["kb1"]),
        kb2=kb_from_doc(doc["kb2"]),
        candidates=candidates_from_doc(doc["candidates"]),
        attribute_matches=[
            AttributeMatch(attr1, attr2, similarity)
            for attr1, attr2, similarity in doc["attribute_matches"]
        ],
        vector_index=VectorIndex(
            {(left, right): tuple(vector) for left, right, vector in doc["vectors"]}
        ),
        retained=pairs_from_doc(doc["retained"]),
        graph=er_graph_from_doc(doc["graph"]),
        signatures={
            (left, right): frozenset(signature)
            for left, right, signature in doc["signatures"]
        },
        priors=priors_from_doc(doc["priors"]),
        isolated=pairs_from_doc(doc["isolated"]),
    )


# ----------------------------------------------------------------------
# Loop history, checkpoints and results
# ----------------------------------------------------------------------
def loop_record_to_doc(record: LoopRecord) -> dict:
    return {
        "loop_index": record.loop_index,
        "questions": [list(question) for question in record.questions],
        "labeled_matches": record.labeled_matches,
        "labeled_non_matches": record.labeled_non_matches,
        "unresolved_questions": record.unresolved_questions,
        "inferred_matches_so_far": record.inferred_matches_so_far,
    }


def loop_record_from_doc(doc: dict) -> LoopRecord:
    return LoopRecord(
        loop_index=doc["loop_index"],
        questions=[(left, right) for left, right in doc["questions"]],
        labeled_matches=doc["labeled_matches"],
        labeled_non_matches=doc["labeled_non_matches"],
        unresolved_questions=doc["unresolved_questions"],
        inferred_matches_so_far=doc["inferred_matches_so_far"],
    )


def checkpoint_to_doc(checkpoint: LoopCheckpoint) -> dict:
    return {
        "version": CHECKPOINT_VERSION,
        "next_loop_index": checkpoint.next_loop_index,
        "questions_asked": checkpoint.questions_asked,
        "history": [loop_record_to_doc(record) for record in checkpoint.history],
        "loop_state": checkpoint.loop_state,
        "answer_log": checkpoint.answer_log,
    }


def checkpoint_from_doc(doc: dict) -> LoopCheckpoint:
    version = doc.get("version")
    if version != CHECKPOINT_VERSION:
        raise ValueError(
            f"unsupported checkpoint document version {version!r}; "
            f"expected {CHECKPOINT_VERSION}"
        )
    return LoopCheckpoint(
        next_loop_index=doc["next_loop_index"],
        questions_asked=doc["questions_asked"],
        history=[loop_record_from_doc(record) for record in doc["history"]],
        loop_state=doc["loop_state"],
        answer_log=doc["answer_log"],
    )


def result_to_doc(result: RempResult) -> dict:
    return {
        "matches": pairs_to_doc(result.matches),
        "questions_asked": result.questions_asked,
        "num_loops": result.num_loops,
        "history": [loop_record_to_doc(record) for record in result.history],
        "labeled_matches": pairs_to_doc(result.labeled_matches),
        "inferred_matches": pairs_to_doc(result.inferred_matches),
        "isolated_matches": pairs_to_doc(result.isolated_matches),
        "non_matches": pairs_to_doc(result.non_matches),
    }


def result_from_doc(doc: dict) -> RempResult:
    return RempResult(
        matches=pairs_from_doc(doc["matches"]),
        questions_asked=doc["questions_asked"],
        num_loops=doc["num_loops"],
        history=[loop_record_from_doc(record) for record in doc["history"]],
        labeled_matches=pairs_from_doc(doc["labeled_matches"]),
        inferred_matches=pairs_from_doc(doc["inferred_matches"]),
        isolated_matches=pairs_from_doc(doc["isolated_matches"]),
        non_matches=pairs_from_doc(doc["non_matches"]),
    )
