"""SQLite-backed artifact store for Remp runs.

One :class:`RunStore` file holds three kinds of durable state:

* **Prepared states** — the offline artifacts of ``Remp.prepare`` keyed by
  ``(dataset, seed, scale, config-hash)``, so repeated runs on the same
  inputs skip candidate generation, attribute matching, pruning and
  ER-graph construction entirely.
* **Checkpoints** — one :class:`repro.core.LoopCheckpoint` per run,
  overwritten after every batch of crowd answers; an interrupted run
  resumes mid-loop without re-asking questions.
* **A run ledger** — configuration, status, question counts and the final
  :class:`repro.core.RempResult` of every run ever submitted, for later
  querying (``repro runs list`` / ``repro runs show``).

Uses only the stdlib ``sqlite3`` module.  A single connection is shared
and guarded by a re-entrant lock, so one store instance may be used from
the service's worker threads; payloads are stable JSON documents from
:mod:`repro.store.serialize`, never pickles.
"""

from __future__ import annotations

import hashlib
import json
import os
import random
import sqlite3
import threading
import time
import uuid
from dataclasses import dataclass
from datetime import datetime, timezone
from pathlib import Path

from repro import faults
from repro.core.config import RempConfig
from repro.core.pipeline import LoopCheckpoint, PreparedState, RempResult
from repro.store.serialize import (
    checkpoint_from_doc,
    checkpoint_to_doc,
    config_from_doc,
    config_hash,
    config_to_doc,
    prepared_state_from_doc,
    prepared_state_to_doc,
    result_from_doc,
    result_to_doc,
)

_SCHEMA = """
CREATE TABLE IF NOT EXISTS prepared_states (
    dataset     TEXT NOT NULL,
    seed        INTEGER NOT NULL,
    scale       REAL NOT NULL,
    config_hash TEXT NOT NULL,
    payload     TEXT NOT NULL,
    created_at  TEXT NOT NULL,
    PRIMARY KEY (dataset, seed, scale, config_hash)
);
CREATE TABLE IF NOT EXISTS runs (
    run_id          TEXT PRIMARY KEY,
    dataset         TEXT NOT NULL,
    seed            INTEGER NOT NULL,
    scale           REAL NOT NULL,
    config_hash     TEXT NOT NULL,
    strategy        TEXT NOT NULL,
    error_rate      REAL NOT NULL DEFAULT 0.0,
    status          TEXT NOT NULL,
    config_json     TEXT NOT NULL,
    questions_asked INTEGER NOT NULL DEFAULT 0,
    result_json     TEXT,
    error           TEXT,
    workers         INTEGER,
    parent_run_id   TEXT,
    delta_json      TEXT,
    stream_step     INTEGER,
    kb_fingerprint  TEXT,
    created_at      TEXT NOT NULL,
    updated_at      TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS checkpoints (
    run_id     TEXT PRIMARY KEY REFERENCES runs(run_id) ON DELETE CASCADE,
    payload    TEXT NOT NULL,
    updated_at TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS shard_checkpoints (
    run_id        TEXT NOT NULL,
    shard_id      INTEGER NOT NULL,
    kind          TEXT NOT NULL,
    payload       TEXT NOT NULL,
    updated_at    TEXT NOT NULL,
    lease_owner   TEXT,
    lease_expires REAL,
    heartbeat_at  REAL,
    attempts      INTEGER NOT NULL DEFAULT 0,
    PRIMARY KEY (run_id, shard_id)
);
CREATE TABLE IF NOT EXISTS stream_units (
    run_id     TEXT NOT NULL,
    unit_key   TEXT NOT NULL,
    payload    TEXT NOT NULL,
    updated_at TEXT NOT NULL,
    PRIMARY KEY (run_id, unit_key)
);
CREATE TABLE IF NOT EXISTS substrate_blobs (
    key        TEXT PRIMARY KEY,
    rows       INTEGER NOT NULL,
    cols       INTEGER NOT NULL,
    payload    BLOB NOT NULL,
    digest     TEXT,
    created_at TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS run_timings (
    run_id     TEXT PRIMARY KEY,
    payload    TEXT NOT NULL,
    updated_at TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS run_obs (
    run_id     TEXT PRIMARY KEY,
    payload    TEXT NOT NULL,
    updated_at TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS run_events (
    seq         INTEGER PRIMARY KEY AUTOINCREMENT,
    run_id      TEXT NOT NULL,
    ts          REAL NOT NULL,
    kind        TEXT NOT NULL,
    shard_id    INTEGER,
    stream_step INTEGER,
    payload     TEXT NOT NULL DEFAULT '{}'
);
CREATE INDEX IF NOT EXISTS run_events_by_run ON run_events (run_id, seq);
"""

#: Columns added after the v1 schema.  New databases get them through
#: ``_SCHEMA`` directly; the ALTER TABLE only upgrades stores created by
#: earlier releases (it fails with "duplicate column" otherwise, which
#: is the one error the open path may swallow).  The last four are the
#: *lineage migration*: run provenance for incremental (stream) runs.
_MIGRATIONS = (
    "ALTER TABLE runs ADD COLUMN workers INTEGER",
    "ALTER TABLE runs ADD COLUMN parent_run_id TEXT",
    "ALTER TABLE runs ADD COLUMN delta_json TEXT",
    "ALTER TABLE runs ADD COLUMN stream_step INTEGER",
    "ALTER TABLE runs ADD COLUMN kb_fingerprint TEXT",
    "ALTER TABLE substrate_blobs ADD COLUMN digest TEXT",
    "ALTER TABLE shard_checkpoints ADD COLUMN lease_owner TEXT",
    "ALTER TABLE shard_checkpoints ADD COLUMN lease_expires REAL",
    "ALTER TABLE shard_checkpoints ADD COLUMN heartbeat_at REAL",
    "ALTER TABLE shard_checkpoints ADD COLUMN attempts INTEGER NOT NULL DEFAULT 0",
)

#: SQLite error fragments that mark a *transient* write failure — another
#: process holds the database — and are worth retrying with backoff.
_TRANSIENT_MARKERS = ("database is locked", "database is busy")

#: Run lifecycle states recorded in the ledger.
RUN_STATUSES = ("queued", "preparing", "running", "done", "failed")


def _now() -> str:
    return datetime.now(timezone.utc).isoformat(timespec="seconds")


def _blob_digest(payload: bytes) -> str:
    """Integrity digest stored (and checked) with each substrate blob."""
    return hashlib.sha256(payload).hexdigest()


@dataclass(slots=True)
class RunRecord:
    """One ledger row (without the heavyweight payloads)."""

    run_id: str
    dataset: str
    seed: int
    scale: float
    config_hash: str
    strategy: str
    error_rate: float
    status: str
    questions_asked: int
    created_at: str
    updated_at: str
    error: str | None = None
    #: Partitioned-run pool size; ``None`` marks a monolithic run.
    workers: int | None = None
    #: Lineage (stream runs): the run this one incrementally updated.
    parent_run_id: str | None = None
    #: Position in a delta stream; ``None`` marks a non-stream run.
    stream_step: int | None = None
    #: Content fingerprint of the KB pair the run matched.
    kb_fingerprint: str | None = None

    @property
    def finished(self) -> bool:
        return self.status in ("done", "failed")

    @property
    def partitioned(self) -> bool:
        return self.workers is not None

    @property
    def streaming(self) -> bool:
        """Whether the run keeps unit records and supports ``update``."""
        return self.stream_step is not None


class RunStore:
    """Persistent store for prepared states, checkpoints and run results.

    Parameters
    ----------
    path:
        SQLite database file; parent directories are created on demand.
        ``":memory:"`` gives an ephemeral store (handy in tests).
    """

    def __init__(self, path: str | Path = ":memory:"):
        self.path = str(path)
        if self.path != ":memory:":
            Path(self.path).parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.RLock()
        self._conn = sqlite3.connect(self.path, check_same_thread=False)
        self._conn.row_factory = sqlite3.Row
        # Fail-slow under cross-process contention: SQLite itself waits
        # this long on a locked database before raising, and the _write
        # wrapper layers bounded retries with jittered backoff on top.
        busy_ms = int(os.environ.get("REPRO_SQLITE_BUSY_TIMEOUT_MS", "5000"))
        self._conn.execute(f"PRAGMA busy_timeout = {busy_ms}")
        self._write_attempts = 1 + max(
            0, int(os.environ.get("REPRO_STORE_WRITE_RETRIES", "5"))
        )
        self._backoff_rng = random.Random(0x5EED)  # never the global RNG
        with self._lock, self._conn:
            self._conn.executescript(_SCHEMA)
            for migration in _MIGRATIONS:
                try:
                    self._conn.execute(migration)
                except sqlite3.OperationalError as exc:
                    message = str(exc).lower()
                    if "duplicate column" not in message:
                        raise

    # ------------------------------------------------------------------
    def _write(self, op: str, fn):
        """Run one write transaction with bounded retry on transient errors.

        Every mutation goes through here: the ``store.write`` fault probe
        fires first (so injected failures exercise exactly this recovery
        path), then ``fn(conn)`` runs inside the lock + transaction.  A
        ``database is locked/busy`` error or an :class:`InjectedFault`
        sleeps an exponentially growing, jittered backoff and retries up
        to ``REPRO_STORE_WRITE_RETRIES`` times; anything else (or an
        exhausted budget) propagates.
        """
        from repro import obs

        last_error: Exception | None = None
        for attempt in range(self._write_attempts):
            try:
                faults.check("store.write", op=op, attempt=attempt)
                with self._lock, self._conn:
                    return fn(self._conn)
            except (sqlite3.OperationalError, faults.InjectedFault) as exc:
                if isinstance(exc, sqlite3.OperationalError):
                    message = str(exc).lower()
                    if not any(marker in message for marker in _TRANSIENT_MARKERS):
                        raise
                last_error = exc
                obs.count("store.write.retry")
                if attempt + 1 >= self._write_attempts:
                    break
                delay = min(0.25, 0.01 * (2**attempt))
                time.sleep(delay * (0.5 + self._backoff_rng.random()))
        assert last_error is not None
        raise last_error

    # ------------------------------------------------------------------
    def close(self) -> None:
        with self._lock:
            self._conn.close()

    def __enter__(self) -> "RunStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Prepared-state cache
    # ------------------------------------------------------------------
    def save_prepared(
        self,
        dataset: str,
        seed: int,
        scale: float,
        config: RempConfig | None,
        state: PreparedState,
    ) -> str:
        """Persist ``state`` under its cache key; returns the config hash."""
        digest = config_hash(config)
        payload = json.dumps(prepared_state_to_doc(state), sort_keys=True)

        def op(conn):
            conn.execute(
                "INSERT OR REPLACE INTO prepared_states"
                " (dataset, seed, scale, config_hash, payload, created_at)"
                " VALUES (?, ?, ?, ?, ?, ?)",
                (dataset, seed, scale, digest, payload, _now()),
            )

        self._write("save_prepared", op)
        return digest

    def load_prepared(
        self, dataset: str, seed: int, scale: float, config: RempConfig | None
    ) -> PreparedState | None:
        """Round-trip a cached prepared state, or ``None`` on a miss."""
        with self._lock:
            row = self._conn.execute(
                "SELECT payload FROM prepared_states"
                " WHERE dataset = ? AND seed = ? AND scale = ? AND config_hash = ?",
                (dataset, seed, scale, config_hash(config)),
            ).fetchone()
        if row is None:
            return None
        return prepared_state_from_doc(json.loads(row["payload"]))

    def has_prepared(
        self, dataset: str, seed: int, scale: float, config: RempConfig | None
    ) -> bool:
        with self._lock:
            row = self._conn.execute(
                "SELECT 1 FROM prepared_states"
                " WHERE dataset = ? AND seed = ? AND scale = ? AND config_hash = ?",
                (dataset, seed, scale, config_hash(config)),
            ).fetchone()
        return row is not None

    def list_prepared(self) -> list[tuple[str, int, float, str]]:
        """Cache keys of every stored prepared state."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT dataset, seed, scale, config_hash FROM prepared_states"
                " ORDER BY dataset, seed, scale, config_hash"
            ).fetchall()
        return [tuple(row) for row in rows]

    def clear_prepared(self) -> int:
        """Drop every cached prepared state; returns the number removed."""
        return self._write(
            "clear_prepared",
            lambda conn: conn.execute("DELETE FROM prepared_states").rowcount,
        )

    # ------------------------------------------------------------------
    # Substrate blobs (repro.substrate packed dominance matrices)
    # ------------------------------------------------------------------
    def save_substrate_blob(
        self, key: str, rows: int, cols: int, payload: bytes
    ) -> None:
        """Persist one packed float64 matrix (sorted-pair row order).

        ``key`` is the flattened substrate key — KB-pair fingerprints
        plus config hash — so the blob is valid for any equal-content
        index and a fresh process skips the re-pack.  A payload digest
        rides along and is verified on load, so a corrupt row degrades
        to a re-pack instead of a silently wrong canonical matrix.
        """
        def op(conn):
            conn.execute(
                "INSERT OR REPLACE INTO substrate_blobs"
                " (key, rows, cols, payload, digest, created_at)"
                " VALUES (?, ?, ?, ?, ?, ?)",
                (key, rows, cols, payload, _blob_digest(payload), _now()),
            )

        self._write("save_substrate_blob", op)

    def load_substrate_blob(self, key: str) -> tuple[int, int, bytes] | None:
        """``(rows, cols, payload)`` for a stored matrix, or ``None``.

        A row whose payload fails its digest check — corruption, or a
        pre-digest row from an older store — is treated as absent; the
        caller re-packs (and re-saves, restoring the digest).
        """
        with self._lock:
            row = self._conn.execute(
                "SELECT rows, cols, payload, digest FROM substrate_blobs"
                " WHERE key = ?",
                (key,),
            ).fetchone()
        if row is None:
            return None
        payload = bytes(row["payload"])
        if faults.check("substrate.blob.load", key=key) == "corrupt" and payload:
            # Flip bits *before* the digest check so the injected
            # corruption exercises the real refusal → re-pack path.
            payload = bytes([payload[0] ^ 0xFF]) + payload[1:]
        if row["digest"] != _blob_digest(payload):
            return None
        return int(row["rows"]), int(row["cols"]), payload

    def clear_substrate_blobs(self) -> int:
        """Drop every stored packed matrix; returns the number removed."""
        return self._write(
            "clear_substrate_blobs",
            lambda conn: conn.execute("DELETE FROM substrate_blobs").rowcount,
        )

    # ------------------------------------------------------------------
    # Run ledger
    # ------------------------------------------------------------------
    def create_run(
        self,
        dataset: str,
        seed: int,
        scale: float,
        config: RempConfig | None,
        strategy: str = "remp",
        error_rate: float = 0.0,
        run_id: str | None = None,
        workers: int | None = None,
        parent_run_id: str | None = None,
        delta_json: str | None = None,
        stream_step: int | None = None,
        kb_fingerprint: str | None = None,
    ) -> str:
        """Insert a ledger row in status ``queued``; returns the run id.

        ``workers`` marks a partitioned run (``repro.partition``); its
        checkpoints live per shard and resume re-fans them onto a pool.
        ``stream_step``/``parent_run_id``/``delta_json``/``kb_fingerprint``
        record lineage for incremental (stream) runs: step 0 is a root,
        later steps point at the run they updated and carry the applied
        delta verbatim.
        """
        run_id = run_id or uuid.uuid4().hex[:12]
        now = _now()

        def op(conn):
            conn.execute(
                "INSERT INTO runs (run_id, dataset, seed, scale, config_hash,"
                " strategy, error_rate, status, config_json, workers,"
                " parent_run_id, delta_json, stream_step, kb_fingerprint,"
                " created_at, updated_at)"
                " VALUES (?, ?, ?, ?, ?, ?, ?, 'queued', ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    run_id,
                    dataset,
                    seed,
                    scale,
                    config_hash(config),
                    strategy,
                    error_rate,
                    json.dumps(config_to_doc(config or RempConfig()), sort_keys=True),
                    workers,
                    parent_run_id,
                    delta_json,
                    stream_step,
                    kb_fingerprint,
                    now,
                    now,
                ),
            )

        self._write("create_run", op)
        return run_id

    def set_run_fingerprint(self, run_id: str, kb_fingerprint: str) -> None:
        """Record the content fingerprint of the KB pair a run matched."""

        def op(conn):
            conn.execute(
                "UPDATE runs SET kb_fingerprint = ?, updated_at = ? WHERE run_id = ?",
                (kb_fingerprint, _now(), run_id),
            )

        self._write("set_run_fingerprint", op)

    def get_run_delta_json(self, run_id: str) -> str | None:
        """The serialized delta a stream run applied (``None`` for roots)."""
        with self._lock:
            row = self._conn.execute(
                "SELECT delta_json FROM runs WHERE run_id = ?", (run_id,)
            ).fetchone()
        return row["delta_json"] if row is not None else None

    def lineage(self, run_id: str) -> list[RunRecord]:
        """The parent chain of a run, root first (ends with the run itself)."""
        chain: list[RunRecord] = []
        seen: set[str] = set()
        current: str | None = run_id
        while current is not None and current not in seen:
            seen.add(current)
            record = self.get_run(current)
            if record is None:
                break
            chain.append(record)
            current = record.parent_run_id
        chain.reverse()
        return chain

    def set_run_workers(self, run_id: str, workers: int | None) -> None:
        """Record (or clear) a run's partitioned pool size in the ledger.

        Resuming with a ``workers`` override calls this so that *later*
        resumes keep treating the run as partitioned and pick up its
        shard checkpoints instead of silently reverting to monolithic.
        """

        def op(conn):
            conn.execute(
                "UPDATE runs SET workers = ?, updated_at = ? WHERE run_id = ?",
                (workers, _now(), run_id),
            )

        self._write("set_run_workers", op)

    def update_run_status(self, run_id: str, status: str) -> None:
        if status not in RUN_STATUSES:
            raise ValueError(f"unknown run status {status!r}")

        def op(conn):
            conn.execute(
                "UPDATE runs SET status = ?, updated_at = ? WHERE run_id = ?",
                (status, _now(), run_id),
            )

        self._write("update_run_status", op)

    def finish_run(self, run_id: str, result: RempResult) -> None:
        """Record the final result, mark ``done`` and drop the checkpoint."""

        def op(conn):
            conn.execute(
                "UPDATE runs SET status = 'done', result_json = ?,"
                " questions_asked = ?, updated_at = ? WHERE run_id = ?",
                (
                    json.dumps(result_to_doc(result), sort_keys=True),
                    result.questions_asked,
                    _now(),
                    run_id,
                ),
            )
            conn.execute("DELETE FROM checkpoints WHERE run_id = ?", (run_id,))
            conn.execute("DELETE FROM shard_checkpoints WHERE run_id = ?", (run_id,))

        self._write("finish_run", op)

    def fail_run(self, run_id: str, error: str) -> None:
        """Mark ``failed``; the checkpoint is kept so the run can resume."""

        def op(conn):
            conn.execute(
                "UPDATE runs SET status = 'failed', error = ?, updated_at = ?"
                " WHERE run_id = ?",
                (error, _now(), run_id),
            )

        self._write("fail_run", op)

    def get_run(self, run_id: str) -> RunRecord | None:
        with self._lock:
            row = self._conn.execute(
                "SELECT run_id, dataset, seed, scale, config_hash, strategy,"
                " error_rate, status, questions_asked, created_at, updated_at,"
                " error, workers, parent_run_id, stream_step, kb_fingerprint"
                " FROM runs WHERE run_id = ?",
                (run_id,),
            ).fetchone()
        return _run_record(row) if row is not None else None

    def get_run_config(self, run_id: str) -> RempConfig | None:
        with self._lock:
            row = self._conn.execute(
                "SELECT config_json FROM runs WHERE run_id = ?", (run_id,)
            ).fetchone()
        if row is None:
            return None
        return config_from_doc(json.loads(row["config_json"]))

    def get_result(self, run_id: str) -> RempResult | None:
        with self._lock:
            row = self._conn.execute(
                "SELECT result_json FROM runs WHERE run_id = ?", (run_id,)
            ).fetchone()
        if row is None or row["result_json"] is None:
            return None
        return result_from_doc(json.loads(row["result_json"]))

    def list_runs(self, dataset: str | None = None) -> list[RunRecord]:
        query = (
            "SELECT run_id, dataset, seed, scale, config_hash, strategy,"
            " error_rate, status, questions_asked, created_at, updated_at,"
            " error, workers, parent_run_id, stream_step, kb_fingerprint"
            " FROM runs"
        )
        params: tuple = ()
        if dataset is not None:
            query += " WHERE dataset = ?"
            params = (dataset,)
        query += " ORDER BY created_at, run_id"
        with self._lock:
            rows = self._conn.execute(query, params).fetchall()
        return [_run_record(row) for row in rows]

    # ------------------------------------------------------------------
    # Checkpoints
    # ------------------------------------------------------------------
    def save_checkpoint(self, run_id: str, checkpoint: LoopCheckpoint) -> None:
        """Overwrite the run's checkpoint and its ledger question count."""
        payload = json.dumps(checkpoint_to_doc(checkpoint), sort_keys=True)
        now = _now()

        def op(conn):
            conn.execute(
                "INSERT OR REPLACE INTO checkpoints (run_id, payload, updated_at)"
                " VALUES (?, ?, ?)",
                (run_id, payload, now),
            )
            conn.execute(
                "UPDATE runs SET questions_asked = ?, updated_at = ? WHERE run_id = ?",
                (checkpoint.questions_asked, now, run_id),
            )

        self._write("save_checkpoint", op)

    def load_checkpoint(self, run_id: str) -> LoopCheckpoint | None:
        with self._lock:
            row = self._conn.execute(
                "SELECT payload FROM checkpoints WHERE run_id = ?", (run_id,)
            ).fetchone()
        if row is None:
            return None
        return checkpoint_from_doc(json.loads(row["payload"]))

    # ------------------------------------------------------------------
    # Per-shard checkpoints (partitioned runs, repro.partition)
    # ------------------------------------------------------------------
    def save_shard_checkpoint(
        self, run_id: str, shard_id: int, checkpoint: LoopCheckpoint
    ) -> None:
        """Overwrite one shard's mid-loop checkpoint for a partitioned run."""
        payload = json.dumps(
            {"kind": "loop", "checkpoint": checkpoint_to_doc(checkpoint)},
            sort_keys=True,
        )
        self._write_shard_row(run_id, shard_id, "loop", payload)

    def save_shard_result(
        self,
        run_id: str,
        shard_id: int,
        result: RempResult,
        snapshot: dict,
        answer_log: list | None = None,
    ) -> None:
        """Mark a shard finished: final result plus its loop-state snapshot.

        The snapshot feeds the isolated-pair classification phase on
        resume, so a restored shard contributes exactly the training
        data it produced live; the answer log keeps a resumed stream
        run's new-spend accounting exact.
        """
        payload = json.dumps(
            {
                "kind": "done",
                "result": result_to_doc(result),
                "snapshot": snapshot,
                "answer_log": answer_log or [],
            },
            sort_keys=True,
        )
        self._write_shard_row(run_id, shard_id, "done", payload)

    def _write_shard_row(
        self, run_id: str, shard_id: int, kind: str, payload: str
    ) -> None:
        # Upsert (not REPLACE) so checkpoint writes never clobber the
        # lease/attempt columns the supervisor maintains on the same row.
        def op(conn):
            conn.execute(
                "INSERT INTO shard_checkpoints"
                " (run_id, shard_id, kind, payload, updated_at)"
                " VALUES (?, ?, ?, ?, ?)"
                " ON CONFLICT(run_id, shard_id) DO UPDATE SET"
                " kind = excluded.kind, payload = excluded.payload,"
                " updated_at = excluded.updated_at",
                (run_id, shard_id, kind, payload, _now()),
            )

        self._write("save_shard_checkpoint", op)

    def load_shard_records(self, run_id: str) -> dict[int, tuple]:
        """All persisted shard states of a partitioned run.

        Returns ``{shard_id: ("loop", LoopCheckpoint)}`` for shards
        interrupted mid-loop and ``{shard_id: ("done", RempResult,
        snapshot, answer_log)}`` for finished shards — the resume input
        of :class:`repro.partition.ParallelRunner`.
        """
        with self._lock:
            rows = self._conn.execute(
                "SELECT shard_id, payload FROM shard_checkpoints WHERE run_id = ?"
                " ORDER BY shard_id",
                (run_id,),
            ).fetchall()
        records: dict[int, tuple] = {}
        for row in rows:
            doc = json.loads(row["payload"])
            if doc.get("kind") not in ("loop", "done"):
                # Lease-stub rows carry no execution state; a shard whose
                # lease exists but never checkpointed restarts from scratch.
                continue
            if doc["kind"] == "loop":
                records[row["shard_id"]] = (
                    "loop",
                    checkpoint_from_doc(doc["checkpoint"]),
                )
            else:
                records[row["shard_id"]] = (
                    "done",
                    result_from_doc(doc["result"]),
                    doc["snapshot"],
                    doc.get("answer_log", []),
                )
        return records

    def clear_shard_checkpoints(self, run_id: str) -> int:
        """Drop every shard row of a run; returns the number removed."""
        return self._write(
            "clear_shard_checkpoints",
            lambda conn: conn.execute(
                "DELETE FROM shard_checkpoints WHERE run_id = ?", (run_id,)
            ).rowcount,
        )

    # ------------------------------------------------------------------
    # Shard leases (supervised execution, repro.partition)
    # ------------------------------------------------------------------
    # Leases live on the same per-shard rows as the checkpoints: the
    # supervisor acquires one when a worker claims a shard, heartbeats it
    # on every checkpoint, and releases it when the shard finishes or is
    # requeued.  An expired lease is how a *different* process (the
    # future distributed shard queue) recognises an abandoned shard.

    def acquire_shard_lease(
        self,
        run_id: str,
        shard_id: int,
        owner: str,
        ttl: float = 30.0,
        *,
        now: float | None = None,
    ) -> bool:
        """Claim a shard for ``owner`` for ``ttl`` seconds.

        Succeeds when the shard has no lease, the lease already belongs
        to ``owner``, or the previous lease expired.  Creates a stub row
        (kind ``lease``) when the shard has no checkpoint yet.
        """
        if now is None:
            now = time.time()

        def op(conn):
            conn.execute(
                "INSERT OR IGNORE INTO shard_checkpoints"
                " (run_id, shard_id, kind, payload, updated_at)"
                " VALUES (?, ?, 'lease', '{}', ?)",
                (run_id, shard_id, _now()),
            )
            cursor = conn.execute(
                "UPDATE shard_checkpoints"
                " SET lease_owner = ?, lease_expires = ?, heartbeat_at = ?"
                " WHERE run_id = ? AND shard_id = ?"
                " AND (lease_owner IS NULL OR lease_owner = ?"
                "      OR lease_expires IS NULL OR lease_expires < ?)",
                (owner, now + ttl, now, run_id, shard_id, owner, now),
            )
            return cursor.rowcount > 0

        return self._write("acquire_shard_lease", op)

    def heartbeat_shard_lease(
        self,
        run_id: str,
        shard_id: int,
        owner: str,
        ttl: float = 30.0,
        *,
        now: float | None = None,
    ) -> bool:
        """Extend ``owner``'s lease; fails if the lease moved elsewhere."""
        if now is None:
            now = time.time()

        def op(conn):
            cursor = conn.execute(
                "UPDATE shard_checkpoints"
                " SET lease_expires = ?, heartbeat_at = ?"
                " WHERE run_id = ? AND shard_id = ? AND lease_owner = ?",
                (now + ttl, now, run_id, shard_id, owner),
            )
            return cursor.rowcount > 0

        return self._write("heartbeat_shard_lease", op)

    def release_shard_lease(
        self, run_id: str, shard_id: int, owner: str | None = None
    ) -> bool:
        """Clear a shard's lease (any owner's, unless one is named)."""

        def op(conn):
            query = (
                "UPDATE shard_checkpoints SET lease_owner = NULL,"
                " lease_expires = NULL WHERE run_id = ? AND shard_id = ?"
            )
            params: tuple = (run_id, shard_id)
            if owner is not None:
                query += " AND lease_owner = ?"
                params = (*params, owner)
            return conn.execute(query, params).rowcount > 0

        return self._write("release_shard_lease", op)

    def expired_shard_leases(
        self, run_id: str, *, now: float | None = None
    ) -> list[int]:
        """Shard ids whose lease is held but past its expiry."""
        if now is None:
            now = time.time()
        with self._lock:
            rows = self._conn.execute(
                "SELECT shard_id FROM shard_checkpoints"
                " WHERE run_id = ? AND lease_owner IS NOT NULL"
                " AND lease_expires IS NOT NULL AND lease_expires < ?"
                " ORDER BY shard_id",
                (run_id, now),
            ).fetchall()
        return [row["shard_id"] for row in rows]

    def shard_lease(self, run_id: str, shard_id: int) -> dict | None:
        """The lease columns of one shard row, or ``None`` if no row."""
        with self._lock:
            row = self._conn.execute(
                "SELECT lease_owner, lease_expires, heartbeat_at, attempts"
                " FROM shard_checkpoints WHERE run_id = ? AND shard_id = ?",
                (run_id, shard_id),
            ).fetchone()
        if row is None:
            return None
        return {
            "owner": row["lease_owner"],
            "expires": row["lease_expires"],
            "heartbeat_at": row["heartbeat_at"],
            "attempts": row["attempts"],
        }

    def bump_shard_attempts(self, run_id: str, shard_id: int) -> int:
        """Increment a shard's durable attempt counter; returns the total."""

        def op(conn):
            conn.execute(
                "INSERT OR IGNORE INTO shard_checkpoints"
                " (run_id, shard_id, kind, payload, updated_at)"
                " VALUES (?, ?, 'lease', '{}', ?)",
                (run_id, shard_id, _now()),
            )
            conn.execute(
                "UPDATE shard_checkpoints SET attempts = attempts + 1"
                " WHERE run_id = ? AND shard_id = ?",
                (run_id, shard_id),
            )
            row = conn.execute(
                "SELECT attempts FROM shard_checkpoints"
                " WHERE run_id = ? AND shard_id = ?",
                (run_id, shard_id),
            ).fetchone()
            return int(row["attempts"])

        return self._write("bump_shard_attempts", op)

    # ------------------------------------------------------------------
    # Stream unit records (incremental runs, repro.stream)
    # ------------------------------------------------------------------
    def replace_unit_records(self, run_id: str, records: dict[str, dict]) -> None:
        """Overwrite a stream run's content-keyed unit record documents.

        Unlike shard checkpoints these *survive* ``finish_run`` — they
        are what the next ``update()`` reuses for clean closures.
        """
        now = _now()
        payloads = [
            (run_id, key, json.dumps(doc, sort_keys=True), now)
            for key, doc in records.items()
        ]

        def op(conn):
            conn.execute("DELETE FROM stream_units WHERE run_id = ?", (run_id,))
            conn.executemany(
                "INSERT INTO stream_units (run_id, unit_key, payload, updated_at)"
                " VALUES (?, ?, ?, ?)",
                payloads,
            )

        self._write("replace_unit_records", op)

    def load_unit_record_docs(self, run_id: str) -> dict[str, dict]:
        """All unit record documents of a stream run, keyed by content key."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT unit_key, payload FROM stream_units WHERE run_id = ?"
                " ORDER BY unit_key",
                (run_id,),
            ).fetchall()
        return {row["unit_key"]: json.loads(row["payload"]) for row in rows}

    def clear_unit_records(self, run_id: str) -> int:
        """Drop a stream run's unit records; returns the number removed."""
        return self._write(
            "clear_unit_records",
            lambda conn: conn.execute(
                "DELETE FROM stream_units WHERE run_id = ?", (run_id,)
            ).rowcount,
        )

    # ------------------------------------------------------------------
    # Kernel / stage timing profiles (repro.accel)
    # ------------------------------------------------------------------
    def save_run_timings(self, run_id: str, timings: dict) -> None:
        """Persist a run's stage/kernel timing profile (JSON document)."""

        def op(conn):
            conn.execute(
                "INSERT INTO run_timings (run_id, payload, updated_at)"
                " VALUES (?, ?, ?)"
                " ON CONFLICT(run_id) DO UPDATE SET"
                " payload = excluded.payload, updated_at = excluded.updated_at",
                (run_id, json.dumps(timings, sort_keys=True), _now()),
            )

        self._write("save_run_timings", op)

    def load_run_timings(self, run_id: str) -> dict | None:
        """The timing profile saved for a run, or ``None``."""
        with self._lock:
            row = self._conn.execute(
                "SELECT payload FROM run_timings WHERE run_id = ?", (run_id,)
            ).fetchone()
        return None if row is None else json.loads(row["payload"])

    # ------------------------------------------------------------------
    # Observability documents (repro.obs): trace + metrics + cost ledger
    # ------------------------------------------------------------------
    def save_run_obs(self, run_id: str, doc: dict) -> None:
        """Persist a run's observability document (JSON).

        The document carries the run scope's export — ``trace`` (span
        list), ``metrics`` (counters/gauges), ``timings`` — plus the
        ``meta`` and ``cost_ledger`` sections the artifact exporter
        materialises into ``runs/<run_id>/``.
        """
        def op(conn):
            conn.execute(
                "INSERT INTO run_obs (run_id, payload, updated_at)"
                " VALUES (?, ?, ?)"
                " ON CONFLICT(run_id) DO UPDATE SET"
                " payload = excluded.payload, updated_at = excluded.updated_at",
                (run_id, json.dumps(doc, sort_keys=True), _now()),
            )

        self._write("save_run_obs", op)

    def load_run_obs(self, run_id: str) -> dict | None:
        """The observability document saved for a run, or ``None``."""
        with self._lock:
            row = self._conn.execute(
                "SELECT payload FROM run_obs WHERE run_id = ?", (run_id,)
            ).fetchone()
        return None if row is None else json.loads(row["payload"])

    # ------------------------------------------------------------------
    # Live telemetry events (repro.obs.live): append-only, tailable
    # ------------------------------------------------------------------
    # The ``run_events`` table is the cross-process half of the telemetry
    # bus: sessions append progress/heartbeat rows while they run, and a
    # *second* process tails them by sequence number (``repro runs watch``,
    # ``repro top``).  Stores created before this release upgrade on open
    # — ``_SCHEMA`` runs every time, so the table appears without an
    # explicit ALTER migration.

    def append_run_event(
        self,
        run_id: str,
        kind: str,
        payload: dict | None = None,
        *,
        ts: float | None = None,
        shard_id: int | None = None,
        stream_step: int | None = None,
    ) -> int:
        """Append one telemetry event row; returns its sequence number."""
        if ts is None:
            ts = datetime.now(timezone.utc).timestamp()

        def op(conn):
            cursor = conn.execute(
                "INSERT INTO run_events"
                " (run_id, ts, kind, shard_id, stream_step, payload)"
                " VALUES (?, ?, ?, ?, ?, ?)",
                (
                    run_id,
                    ts,
                    kind,
                    shard_id,
                    stream_step,
                    json.dumps(payload or {}, sort_keys=True),
                ),
            )
            return cursor.lastrowid

        return self._write("append_run_event", op)

    def tail_run_events(
        self, run_id: str, after_seq: int = 0, limit: int | None = None
    ) -> list[dict]:
        """Events of a run with ``seq > after_seq``, oldest first.

        Each event is a flat dict: the row columns (``seq``/``ts``/
        ``kind`` plus ``shard_id``/``stream_step`` when set) merged with
        the JSON payload fields.  Pass the last seen ``seq`` back in to
        poll incrementally — the watch loop's contract.
        """
        query = (
            "SELECT seq, ts, kind, shard_id, stream_step, payload"
            " FROM run_events WHERE run_id = ? AND seq > ? ORDER BY seq"
        )
        params: tuple = (run_id, after_seq)
        if limit is not None:
            query += " LIMIT ?"
            params = (*params, limit)
        with self._lock:
            rows = self._conn.execute(query, params).fetchall()
        return [_event_doc(row) for row in rows]

    def last_run_event(self, run_id: str) -> dict | None:
        """The most recent event of a run, or ``None``."""
        with self._lock:
            row = self._conn.execute(
                "SELECT seq, ts, kind, shard_id, stream_step, payload"
                " FROM run_events WHERE run_id = ? ORDER BY seq DESC LIMIT 1",
                (run_id,),
            ).fetchone()
        return None if row is None else _event_doc(row)

    def count_run_events(self, run_id: str) -> int:
        with self._lock:
            row = self._conn.execute(
                "SELECT COUNT(*) AS n FROM run_events WHERE run_id = ?", (run_id,)
            ).fetchone()
        return row["n"]

    def clear_run_events(self, run_id: str) -> int:
        """Drop a run's telemetry events; returns the number removed."""
        return self._write(
            "clear_run_events",
            lambda conn: conn.execute(
                "DELETE FROM run_events WHERE run_id = ?", (run_id,)
            ).rowcount,
        )

    def active_runs(self) -> list[RunRecord]:
        """Ledger rows still in flight (queued / preparing / running)."""
        return [record for record in self.list_runs() if not record.finished]

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Row counts for ``repro cache info`` and diagnostics."""
        with self._lock:
            prepared = self._conn.execute(
                "SELECT COUNT(*) AS n FROM prepared_states"
            ).fetchone()["n"]
            runs = self._conn.execute("SELECT COUNT(*) AS n FROM runs").fetchone()["n"]
            by_status = dict(
                self._conn.execute(
                    "SELECT status, COUNT(*) FROM runs GROUP BY status"
                ).fetchall()
            )
            checkpoints = self._conn.execute(
                "SELECT COUNT(*) AS n FROM checkpoints"
            ).fetchone()["n"]
            shard_checkpoints = self._conn.execute(
                "SELECT COUNT(*) AS n FROM shard_checkpoints"
            ).fetchone()["n"]
            stream_units = self._conn.execute(
                "SELECT COUNT(*) AS n FROM stream_units"
            ).fetchone()["n"]
            run_obs = self._conn.execute(
                "SELECT COUNT(*) AS n FROM run_obs"
            ).fetchone()["n"]
            run_events = self._conn.execute(
                "SELECT COUNT(*) AS n FROM run_events"
            ).fetchone()["n"]
            substrate_blobs = self._conn.execute(
                "SELECT COUNT(*) AS n FROM substrate_blobs"
            ).fetchone()["n"]
        return {
            "path": self.path,
            "prepared_states": prepared,
            "substrate_blobs": substrate_blobs,
            "runs": runs,
            "runs_by_status": by_status,
            "checkpoints": checkpoints,
            "shard_checkpoints": shard_checkpoints,
            "stream_units": stream_units,
            "run_obs": run_obs,
            "run_events": run_events,
        }


def _event_doc(row: sqlite3.Row) -> dict:
    doc = {"seq": row["seq"], "ts": row["ts"], "kind": row["kind"]}
    if row["shard_id"] is not None:
        doc["shard_id"] = row["shard_id"]
    if row["stream_step"] is not None:
        doc["stream_step"] = row["stream_step"]
    payload = json.loads(row["payload"])
    for key, value in payload.items():
        doc.setdefault(key, value)
    return doc


def _run_record(row: sqlite3.Row) -> RunRecord:
    return RunRecord(
        run_id=row["run_id"],
        dataset=row["dataset"],
        seed=row["seed"],
        scale=row["scale"],
        config_hash=row["config_hash"],
        strategy=row["strategy"],
        error_rate=row["error_rate"],
        status=row["status"],
        questions_asked=row["questions_asked"],
        created_at=row["created_at"],
        updated_at=row["updated_at"],
        error=row["error"],
        workers=row["workers"],
        parent_run_id=row["parent_run_id"],
        stream_step=row["stream_step"],
        kb_fingerprint=row["kb_fingerprint"],
    )
