"""Persistent run store: durable, resumable Remp runs.

``repro.store`` turns the pipeline's in-memory artifacts into durable
state backed by a single SQLite file (stdlib ``sqlite3``, no extra
dependencies):

* :class:`RunStore` — prepared-state cache keyed by
  ``(dataset, seed, scale, config-hash)``, per-run loop checkpoints, and
  a queryable ledger of every run's config, cost and final result.
* :mod:`repro.store.serialize` — stable JSON documents for
  :class:`~repro.kb.KnowledgeBase`, :class:`~repro.core.PreparedState`,
  checkpoints and results; equal objects serialize to equal documents.

:mod:`repro.service` builds the concurrent matching service on top of
this package; the ``repro runs`` and ``repro cache`` CLI verbs expose it
from the command line.
"""

from repro.store.serialize import (
    checkpoint_from_doc,
    checkpoint_to_doc,
    config_from_doc,
    config_hash,
    config_to_doc,
    prepared_state_from_doc,
    prepared_state_to_doc,
    result_from_doc,
    result_to_doc,
)
from repro.store.store import RunRecord, RunStore

__all__ = [
    "RunStore",
    "RunRecord",
    "config_hash",
    "config_to_doc",
    "config_from_doc",
    "prepared_state_to_doc",
    "prepared_state_from_doc",
    "checkpoint_to_doc",
    "checkpoint_from_doc",
    "result_to_doc",
    "result_from_doc",
]
