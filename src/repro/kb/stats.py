"""Summary statistics for knowledge bases (Table II style)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.kb.model import KnowledgeBase


@dataclass(frozen=True, slots=True)
class KBStatistics:
    """Counts reported in the paper's Table II plus density measures."""

    name: str
    num_entities: int
    num_attributes: int
    num_relationships: int
    num_attribute_triples: int
    num_relationship_triples: int
    mean_out_degree: float
    num_isolated_entities: int

    def as_row(self) -> str:
        return (
            f"{self.name}: |U|={self.num_entities} |A|={self.num_attributes} "
            f"|R|={self.num_relationships} attr_triples={self.num_attribute_triples} "
            f"rel_triples={self.num_relationship_triples} "
            f"deg={self.mean_out_degree:.2f} isolated={self.num_isolated_entities}"
        )


def describe(kb: KnowledgeBase) -> KBStatistics:
    """Compute :class:`KBStatistics` for ``kb``."""
    isolated = sum(1 for e in kb.entities if not kb.has_relations(e))
    n = len(kb.entities)
    mean_deg = kb.num_relationship_triples / n if n else 0.0
    return KBStatistics(
        name=kb.name,
        num_entities=n,
        num_attributes=len(kb.attributes),
        num_relationships=len(kb.relationships),
        num_attribute_triples=kb.num_attribute_triples,
        num_relationship_triples=kb.num_relationship_triples,
        mean_out_degree=mean_deg,
        num_isolated_entities=isolated,
    )
