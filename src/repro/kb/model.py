"""In-memory knowledge base model.

The paper models a KB as a 5-tuple ``K = (U, L, A, R, T)`` where attribute
triples ``(entity, attribute, literal)`` attach literals to entities and
relationship triples ``(entity, relationship, entity)`` link entities.  The
algorithms in :mod:`repro.core` only ever touch a KB through the value-set
accessors ``attribute_values`` (``N^a_u``) and ``relation_values``
(``N^r_u``), plus the label and neighborhood indexes, so those are kept as
precomputed dictionaries for O(1) lookup.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator


#: Attribute conventionally holding an entity's human-readable label.
LABEL_ATTRIBUTE = "rdfs:label"


@dataclass(frozen=True, slots=True)
class Triple:
    """A single KB fact ``(subject, property, value)``.

    ``is_relation`` distinguishes relationship triples (value is an entity
    identifier) from attribute triples (value is a literal).
    """

    subject: str
    prop: str
    value: object
    is_relation: bool = False

    def as_tuple(self) -> tuple[str, str, object]:
        return (self.subject, self.prop, self.value)


class KnowledgeBase:
    """A mutable knowledge base with value-set and neighborhood indexes.

    Parameters
    ----------
    name:
        Identifier used in logs, dataset registries and error messages.

    Examples
    --------
    >>> kb = KnowledgeBase("demo")
    >>> kb.add_entity("e1", label="Leonardo da Vinci")
    >>> kb.add_attribute_triple("e1", "birth_date", "1452-04-15")
    >>> kb.add_entity("m1", label="Mona Lisa")
    >>> kb.add_relationship_triple("e1", "works", "m1")
    >>> sorted(kb.relation_values("e1", "works"))
    ['m1']
    """

    def __init__(self, name: str = "kb"):
        self.name = name
        self._entities: set[str] = set()
        # entity -> attribute -> set of literals  (N^a_u)
        self._attr_values: dict[str, dict[str, set[object]]] = {}
        # entity -> relationship -> set of object entities  (N^r_u)
        self._rel_values: dict[str, dict[str, set[str]]] = {}
        # entity -> relationship -> set of subject entities (inverse index)
        self._rel_sources: dict[str, dict[str, set[str]]] = {}
        self._attributes: set[str] = set()
        self._relationships: set[str] = set()
        # Per-property triple counts, so removal can retire a property
        # name once its last triple goes (keeps the vocabulary sets
        # equal to a freshly-built KB's).
        self._attr_counts: dict[str, int] = {}
        self._rel_counts: dict[str, int] = {}
        self._n_attr_triples = 0
        self._n_rel_triples = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_entity(self, entity: str, label: str | None = None) -> None:
        """Register ``entity``; optionally attach a ``rdfs:label`` literal."""
        self._entities.add(entity)
        if label is not None:
            self.add_attribute_triple(entity, LABEL_ATTRIBUTE, label)

    def add_attribute_triple(self, entity: str, attribute: str, literal: object) -> None:
        """Add ``(entity, attribute, literal)`` to the attribute triples."""
        self._entities.add(entity)
        self._attributes.add(attribute)
        values = self._attr_values.setdefault(entity, {}).setdefault(attribute, set())
        if literal not in values:
            values.add(literal)
            self._n_attr_triples += 1
            self._attr_counts[attribute] = self._attr_counts.get(attribute, 0) + 1

    def add_relationship_triple(self, subject: str, relationship: str, obj: str) -> None:
        """Add ``(subject, relationship, object)`` to the relationship triples."""
        self._entities.add(subject)
        self._entities.add(obj)
        self._relationships.add(relationship)
        objs = self._rel_values.setdefault(subject, {}).setdefault(relationship, set())
        if obj not in objs:
            objs.add(obj)
            self._n_rel_triples += 1
            self._rel_counts[relationship] = self._rel_counts.get(relationship, 0) + 1
            self._rel_sources.setdefault(obj, {}).setdefault(relationship, set()).add(subject)

    def add_triples(self, triples: Iterable[Triple]) -> None:
        for t in triples:
            if t.is_relation:
                self.add_relationship_triple(t.subject, t.prop, str(t.value))
            else:
                self.add_attribute_triple(t.subject, t.prop, t.value)

    # ------------------------------------------------------------------
    # Mutation (KB deltas, repro.stream)
    # ------------------------------------------------------------------
    def remove_attribute_triple(self, entity: str, attribute: str, literal: object) -> bool:
        """Remove ``(entity, attribute, literal)``; returns whether it existed.

        Empty value sets are pruned so the indexes look exactly as if the
        triple had never been added — the incremental preparer relies on
        a mutated KB being indistinguishable from a freshly-built one.
        """
        by_attr = self._attr_values.get(entity)
        if by_attr is None:
            return False
        values = by_attr.get(attribute)
        if values is None or literal not in values:
            return False
        values.discard(literal)
        self._n_attr_triples -= 1
        remaining = self._attr_counts.get(attribute, 1) - 1
        if remaining <= 0:
            self._attr_counts.pop(attribute, None)
            self._attributes.discard(attribute)
        else:
            self._attr_counts[attribute] = remaining
        if not values:
            del by_attr[attribute]
        if not by_attr:
            del self._attr_values[entity]
        return True

    def remove_relationship_triple(self, subject: str, relationship: str, obj: str) -> bool:
        """Remove ``(subject, relationship, object)``; returns whether it existed."""
        by_rel = self._rel_values.get(subject)
        if by_rel is None:
            return False
        objs = by_rel.get(relationship)
        if objs is None or obj not in objs:
            return False
        objs.discard(obj)
        self._n_rel_triples -= 1
        remaining = self._rel_counts.get(relationship, 1) - 1
        if remaining <= 0:
            self._rel_counts.pop(relationship, None)
            self._relationships.discard(relationship)
        else:
            self._rel_counts[relationship] = remaining
        if not objs:
            del by_rel[relationship]
        if not by_rel:
            del self._rel_values[subject]
        sources = self._rel_sources.get(obj, {})
        subjects = sources.get(relationship)
        if subjects is not None:
            subjects.discard(subject)
            if not subjects:
                del sources[relationship]
            if not sources and obj in self._rel_sources:
                del self._rel_sources[obj]
        return True

    def remove_entity(self, entity: str) -> bool:
        """Remove ``entity`` and every triple mentioning it."""
        if entity not in self._entities:
            return False
        for attribute, literals in list(self._attr_values.get(entity, {}).items()):
            for literal in list(literals):
                self.remove_attribute_triple(entity, attribute, literal)
        for relationship, objs in list(self._rel_values.get(entity, {}).items()):
            for obj in list(objs):
                self.remove_relationship_triple(entity, relationship, obj)
        for relationship, subjects in list(self._rel_sources.get(entity, {}).items()):
            for subject in list(subjects):
                self.remove_relationship_triple(subject, relationship, entity)
        self._entities.discard(entity)
        return True

    def copy(self, name: str | None = None) -> "KnowledgeBase":
        """An independent deep copy (delta application never mutates in place)."""
        clone = KnowledgeBase(name or self.name)
        clone._entities = set(self._entities)
        clone._attr_values = {
            entity: {attr: set(values) for attr, values in by_attr.items()}
            for entity, by_attr in self._attr_values.items()
        }
        clone._rel_values = {
            entity: {rel: set(objs) for rel, objs in by_rel.items()}
            for entity, by_rel in self._rel_values.items()
        }
        clone._rel_sources = {
            entity: {rel: set(subjects) for rel, subjects in by_rel.items()}
            for entity, by_rel in self._rel_sources.items()
        }
        clone._attributes = set(self._attributes)
        clone._relationships = set(self._relationships)
        clone._attr_counts = dict(self._attr_counts)
        clone._rel_counts = dict(self._rel_counts)
        clone._n_attr_triples = self._n_attr_triples
        clone._n_rel_triples = self._n_rel_triples
        return clone

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def entities(self) -> set[str]:
        return self._entities

    @property
    def attributes(self) -> set[str]:
        return self._attributes

    @property
    def relationships(self) -> set[str]:
        return self._relationships

    @property
    def num_attribute_triples(self) -> int:
        return self._n_attr_triples

    @property
    def num_relationship_triples(self) -> int:
        return self._n_rel_triples

    def __contains__(self, entity: str) -> bool:
        return entity in self._entities

    def __len__(self) -> int:
        return len(self._entities)

    def attribute_values(self, entity: str, attribute: str) -> set[object]:
        """Value set ``N^a_u`` — literals of ``attribute`` on ``entity``."""
        return self._attr_values.get(entity, {}).get(attribute, set())

    def relation_values(self, entity: str, relationship: str) -> set[str]:
        """Value set ``N^r_u`` — objects of ``relationship`` on ``entity``."""
        return self._rel_values.get(entity, {}).get(relationship, set())

    def relation_sources(self, entity: str, relationship: str) -> set[str]:
        """Inverse value set — subjects pointing at ``entity`` via ``relationship``."""
        return self._rel_sources.get(entity, {}).get(relationship, set())

    def entity_attributes(self, entity: str) -> dict[str, set[object]]:
        """All attribute value sets of ``entity`` keyed by attribute name."""
        return self._attr_values.get(entity, {})

    def entity_relations(self, entity: str) -> dict[str, set[str]]:
        """All outgoing relationship value sets of ``entity``."""
        return self._rel_values.get(entity, {})

    def entity_inverse_relations(self, entity: str) -> dict[str, set[str]]:
        """All incoming relationship source sets of ``entity``."""
        return self._rel_sources.get(entity, {})

    def label(self, entity: str) -> str | None:
        """The first ``rdfs:label`` of ``entity``, or ``None`` if unlabeled."""
        labels = self.attribute_values(entity, LABEL_ATTRIBUTE)
        if not labels:
            return None
        return min(str(v) for v in labels)

    def labels(self, entity: str) -> set[str]:
        return {str(v) for v in self.attribute_values(entity, LABEL_ATTRIBUTE)}

    def has_relations(self, entity: str) -> bool:
        """True if ``entity`` occurs in any relationship triple."""
        return bool(self._rel_values.get(entity)) or bool(self._rel_sources.get(entity))

    # ------------------------------------------------------------------
    # Iteration
    # ------------------------------------------------------------------
    def iter_attribute_triples(self) -> Iterator[Triple]:
        for entity, by_attr in self._attr_values.items():
            for attribute, literals in by_attr.items():
                for literal in literals:
                    yield Triple(entity, attribute, literal, is_relation=False)

    def iter_relationship_triples(self) -> Iterator[Triple]:
        for subject, by_rel in self._rel_values.items():
            for relationship, objects in by_rel.items():
                for obj in objects:
                    yield Triple(subject, relationship, obj, is_relation=True)

    def iter_triples(self) -> Iterator[Triple]:
        yield from self.iter_attribute_triples()
        yield from self.iter_relationship_triples()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"KnowledgeBase(name={self.name!r}, entities={len(self._entities)}, "
            f"attributes={len(self._attributes)}, relationships={len(self._relationships)}, "
            f"attr_triples={self._n_attr_triples}, rel_triples={self._n_rel_triples})"
        )


@dataclass(slots=True)
class EntityPair:
    """An ordered pair of entities, one from each KB.

    Entity pairs are the vertices of the ER graph.  They are hashable and
    compare by the underlying identifiers, so plain tuples may be used
    interchangeably; this class exists for readability at API boundaries.
    """

    left: str
    right: str
    prior: float = field(default=0.5, compare=False)

    def as_tuple(self) -> tuple[str, str]:
        return (self.left, self.right)
