"""Serialization for knowledge bases.

Two formats are supported:

* **JSON** — a single document with explicit attribute and relationship
  triple lists.  Lossless for any literal type JSON can express.
* **TSV** — one triple per line (``subject<TAB>property<TAB>value<TAB>kind``)
  in the style of common public KB dumps.  Literals are stored as strings.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.kb.model import KnowledgeBase


def _triple_key(triple: list) -> tuple:
    """Type-stable sort key: literals of mixed types cannot be compared."""
    subject, prop, value = triple
    return (subject, prop, type(value).__name__, str(value))


def kb_to_doc(kb: KnowledgeBase) -> dict:
    """``kb`` as a JSON-able document with deterministically ordered triples.

    Equal knowledge bases produce equal documents regardless of insertion
    order, so the document doubles as a stable serialization format for
    :mod:`repro.store` and as an equality witness in tests.
    """
    return {
        "name": kb.name,
        "entities": sorted(kb.entities),
        "attribute_triples": sorted(
            ([t.subject, t.prop, t.value] for t in kb.iter_attribute_triples()),
            key=_triple_key,
        ),
        "relationship_triples": sorted(
            [t.subject, t.prop, t.value] for t in kb.iter_relationship_triples()
        ),
    }


def kb_from_doc(doc: dict) -> KnowledgeBase:
    """Rebuild a :class:`KnowledgeBase` from a :func:`kb_to_doc` document."""
    kb = KnowledgeBase(doc.get("name", "kb"))
    for entity in doc.get("entities", []):
        kb.add_entity(entity)
    for subject, prop, value in doc.get("attribute_triples", []):
        kb.add_attribute_triple(subject, prop, value)
    for subject, prop, value in doc.get("relationship_triples", []):
        kb.add_relationship_triple(subject, prop, str(value))
    return kb


def save_kb_json(kb: KnowledgeBase, path: str | Path) -> None:
    """Write ``kb`` to ``path`` as a JSON document."""
    Path(path).write_text(json.dumps(kb_to_doc(kb), indent=1, sort_keys=True))


def load_kb_json(path: str | Path) -> KnowledgeBase:
    """Read a KB previously written by :func:`save_kb_json`."""
    return kb_from_doc(json.loads(Path(path).read_text()))


def save_kb_tsv(kb: KnowledgeBase, path: str | Path) -> None:
    """Write ``kb`` as tab-separated triples with a ``kind`` column."""
    lines = []
    for t in kb.iter_attribute_triples():
        lines.append(f"{t.subject}\t{t.prop}\t{t.value}\tA")
    for t in kb.iter_relationship_triples():
        lines.append(f"{t.subject}\t{t.prop}\t{t.value}\tR")
    Path(path).write_text("\n".join(lines) + ("\n" if lines else ""))


def load_kb_tsv(path: str | Path, name: str = "kb") -> KnowledgeBase:
    """Read a KB previously written by :func:`save_kb_tsv`.

    All literal values come back as strings; numeric literals should be
    parsed downstream if needed (the similarity layer accepts both).
    """
    kb = KnowledgeBase(name)
    for line_no, line in enumerate(Path(path).read_text().splitlines(), start=1):
        if not line.strip():
            continue
        parts = line.split("\t")
        if len(parts) != 4:
            raise ValueError(f"{path}:{line_no}: expected 4 tab-separated fields, got {len(parts)}")
        subject, prop, value, kind = parts
        if kind == "A":
            kb.add_attribute_triple(subject, prop, value)
        elif kind == "R":
            kb.add_relationship_triple(subject, prop, value)
        else:
            raise ValueError(f"{path}:{line_no}: unknown triple kind {kind!r}")
    return kb
