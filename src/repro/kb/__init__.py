"""Knowledge base substrate.

A knowledge base is a 5-tuple ``K = (U, L, A, R, T)`` of entities, literals,
attributes, relationships and triples (Section III-A of the paper).  This
package provides the in-memory data model, serialization, and summary
statistics used by every other layer of the library.
"""

from repro.kb.model import KnowledgeBase, Triple
from repro.kb.stats import KBStatistics, describe
from repro.kb.io import (
    kb_from_doc,
    kb_to_doc,
    load_kb_json,
    save_kb_json,
    load_kb_tsv,
    save_kb_tsv,
)

__all__ = [
    "KnowledgeBase",
    "Triple",
    "KBStatistics",
    "describe",
    "kb_to_doc",
    "kb_from_doc",
    "load_kb_json",
    "save_kb_json",
    "load_kb_tsv",
    "save_kb_tsv",
]
