"""Text processing substrate: normalization and similarity measures.

Section IV-B of the paper normalizes entity labels (lowercasing,
tokenization, stemming) and compares the resulting token sets with the
Jaccard coefficient; Section IV-C compares literal *sets* with an extended
Jaccard measure built on per-literal similarities.  This package implements
all of those pieces without external NLP dependencies.
"""

from repro.text.normalize import normalize_label, tokenize, stem
from repro.text.similarity import (
    jaccard,
    dice,
    cosine_tokens,
    levenshtein,
    edit_similarity,
    numeric_similarity,
    token_jaccard,
)
from repro.text.literal import literal_similarity, literal_set_similarity

__all__ = [
    "normalize_label",
    "tokenize",
    "stem",
    "jaccard",
    "dice",
    "cosine_tokens",
    "levenshtein",
    "edit_similarity",
    "numeric_similarity",
    "token_jaccard",
    "literal_similarity",
    "literal_set_similarity",
]
