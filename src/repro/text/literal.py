"""Extended Jaccard similarity for sets of literals (Section IV-C).

``simL`` compares two *sets* of literal values.  An internal per-literal
measure decides when two literals "are the same" (similarity at or above a
threshold, 0.9 in the paper); the set similarity is then the Jaccard-style
ratio of matched literals to total literals.  Strings are compared with the
token Jaccard coefficient and numbers with maximum percentage difference.
"""

from __future__ import annotations

from typing import Collection

from repro.text.normalize import normalize_label
from repro.text.similarity import jaccard, numeric_similarity

#: Paper default: internal literal similarity threshold for simL.
DEFAULT_LITERAL_THRESHOLD = 0.9


def _as_number(value: object) -> float | None:
    """Interpret ``value`` as a number if possible, else ``None``."""
    if isinstance(value, bool):
        return None
    if isinstance(value, (int, float)):
        return float(value)
    if isinstance(value, str):
        text = value.strip()
        try:
            return float(text)
        except ValueError:
            return None
    return None


def literal_similarity(a: object, b: object) -> float:
    """Similarity of two literals.

    Numbers (or numeric strings) use maximum percentage difference; all
    other values are compared as token sets with the Jaccard coefficient.
    A number never matches a non-numeric string.
    """
    na, nb = _as_number(a), _as_number(b)
    if na is not None and nb is not None:
        return numeric_similarity(na, nb)
    if (na is None) != (nb is None):
        return 0.0
    return jaccard(normalize_label(str(a)), normalize_label(str(b)))


def literal_set_similarity(
    values_a: Collection[object],
    values_b: Collection[object],
    threshold: float = DEFAULT_LITERAL_THRESHOLD,
) -> float:
    """Extended Jaccard ``simL`` between two literal sets.

    A literal counts as *matched* when its best counterpart on the other
    side has similarity >= ``threshold``.  The result is
    ``matched / (|A| + |B| − matched)`` — the usual Jaccard form with soft
    matching.  Two empty sets yield 0.0: no evidence is not a match signal
    (the attribute-similarity aggregation in Eq. 1 skips such pairs).
    """
    if not values_a or not values_b:
        return 0.0
    list_a = list(values_a)
    list_b = list(values_b)
    matched_a = [False] * len(list_a)
    matched_b = [False] * len(list_b)
    # Greedy soft matching: each literal pairs with at most one counterpart.
    for i, va in enumerate(list_a):
        best_j, best_sim = -1, threshold
        for j, vb in enumerate(list_b):
            if matched_b[j]:
                continue
            sim = literal_similarity(va, vb)
            if sim >= best_sim:
                best_j, best_sim = j, sim
        if best_j >= 0:
            matched_a[i] = True
            matched_b[best_j] = True
    matched = sum(matched_a)
    union = len(list_a) + len(list_b) - matched
    return matched / union
