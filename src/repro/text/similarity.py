"""String and numeric similarity measures.

The paper uses the Jaccard coefficient on normalized token sets for label
blocking, and mentions cosine, Dice and edit distance as interchangeable
choices.  Numbers (integers, floats, dates encoded numerically) are compared
with the maximum-percentage-difference measure of Section IV-C.
"""

from __future__ import annotations

import math
from typing import Collection

from repro.text.normalize import normalize_label


def _as_set(values: Collection) -> frozenset | set:
    """Avoid copying collections that already are sets.

    These measures run once per candidate pair on pre-normalized
    frozensets; the redundant ``set()`` copy used to dominate their cost.
    """
    if isinstance(values, (set, frozenset)):
        return values
    return set(values)


def jaccard(a: Collection, b: Collection) -> float:
    """Jaccard coefficient |a ∩ b| / |a ∪ b| on two collections.

    Empty-vs-empty is defined as 1.0 (identical absence of information);
    empty-vs-nonempty is 0.0.
    """
    sa, sb = _as_set(a), _as_set(b)
    if not sa and not sb:
        return 1.0
    inter = len(sa & sb)
    return inter / (len(sa) + len(sb) - inter)


def dice(a: Collection, b: Collection) -> float:
    """Dice coefficient 2|a ∩ b| / (|a| + |b|)."""
    sa, sb = _as_set(a), _as_set(b)
    if not sa and not sb:
        return 1.0
    denom = len(sa) + len(sb)
    return 2.0 * len(sa & sb) / denom


def cosine_tokens(a: Collection, b: Collection) -> float:
    """Set-based cosine similarity |a ∩ b| / sqrt(|a| · |b|)."""
    sa, sb = _as_set(a), _as_set(b)
    if not sa and not sb:
        return 1.0
    if not sa or not sb:
        return 0.0
    return len(sa & sb) / math.sqrt(len(sa) * len(sb))


def levenshtein(s: str, t: str) -> int:
    """Classic Levenshtein edit distance with a two-row DP (O(|s|·|t|))."""
    if s == t:
        return 0
    if not s:
        return len(t)
    if not t:
        return len(s)
    if len(s) < len(t):
        s, t = t, s
    previous = list(range(len(t) + 1))
    for i, cs in enumerate(s, start=1):
        current = [i]
        for j, ct in enumerate(t, start=1):
            cost = 0 if cs == ct else 1
            current.append(min(previous[j] + 1, current[j - 1] + 1, previous[j - 1] + cost))
        previous = current
    return previous[-1]


def edit_similarity(s: str, t: str) -> float:
    """Normalized edit similarity 1 − d(s,t) / max(|s|, |t|)."""
    if not s and not t:
        return 1.0
    longest = max(len(s), len(t))
    return 1.0 - levenshtein(s, t) / longest


def numeric_similarity(x: float, y: float) -> float:
    """Maximum-percentage-difference similarity for numbers.

    Defined as ``1 − |x − y| / max(|x|, |y|)`` clamped to [0, 1]; two zeros
    are identical.  This is the measure the paper applies to integers,
    floats and dates.
    """
    if x == y:
        return 1.0
    denom = max(abs(x), abs(y))
    if denom == 0.0:
        return 1.0
    return max(0.0, 1.0 - abs(x - y) / denom)


def token_jaccard(label_a: str, label_b: str, stemming: bool = True) -> float:
    """Jaccard similarity of two labels after normalization.

    This is the measure used for candidate entity match generation
    (Section IV-B).
    """
    return jaccard(normalize_label(label_a, stemming), normalize_label(label_b, stemming))
