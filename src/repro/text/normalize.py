"""Label normalization: lowercasing, tokenization and light stemming.

The paper normalizes entity labels "via lowercasing, tokenization, stemming,
etc." before computing token-set similarities.  We implement a small
rule-based suffix stemmer (a compact subset of the Porter rules) so the
library has no NLP dependencies; the goal is stable token canonicalization,
not linguistic perfection.
"""

from __future__ import annotations

import re
from functools import lru_cache

_TOKEN_RE = re.compile(r"[a-z0-9]+")

# Suffix rules applied longest-first; each maps suffix -> replacement and a
# minimum remaining stem length that must survive the strip.
_SUFFIX_RULES: tuple[tuple[str, str, int], ...] = (
    ("ational", "ate", 3),
    ("ization", "ize", 3),
    ("fulness", "ful", 3),
    ("ousness", "ous", 3),
    ("iveness", "ive", 3),
    ("tional", "tion", 3),
    ("biliti", "ble", 3),
    ("lessli", "less", 3),
    ("entli", "ent", 3),
    ("ation", "ate", 3),
    ("alism", "al", 3),
    ("aliti", "al", 3),
    ("ement", "e", 3),
    ("ments", "ment", 3),
    ("iviti", "ive", 3),
    ("ness", "", 3),
    ("able", "", 3),
    ("ible", "", 3),
    ("ings", "", 3),
    ("sses", "ss", 2),
    ("ies", "i", 2),
    ("ied", "i", 2),
    ("ing", "", 3),
    ("ers", "er", 3),
    ("est", "", 4),
    ("ed", "", 3),
    ("ie", "i", 3),
    ("ly", "", 3),
    ("s", "", 3),
)


def stem(token: str) -> str:
    """Strip a common English suffix from ``token`` (single pass).

    >>> stem("movies")
    'movi'
    >>> stem("directed")
    'direct'
    >>> stem("acting")
    'act'
    """
    for suffix, replacement, min_stem in _SUFFIX_RULES:
        if token.endswith(suffix) and len(token) - len(suffix) >= min_stem:
            return token[: len(token) - len(suffix)] + replacement
    return token


def tokenize(text: str) -> list[str]:
    """Lowercase ``text`` and split into alphanumeric tokens.

    >>> tokenize("The Cradle Will Rock (1999 film)")
    ['the', 'cradle', 'will', 'rock', '1999', 'film']
    """
    return _TOKEN_RE.findall(text.lower())


@lru_cache(maxsize=65536)
def normalize_label(text: str, stemming: bool = True) -> frozenset[str]:
    """Normalize an entity label into a canonical token set.

    Tokens are lowercased, split on non-alphanumerics and (optionally)
    stemmed.  The result is a frozenset so it can key caches directly —
    and the function itself is memoized: labels and literals recur across
    candidate pairs, and the hot paths re-normalize them once per call
    site otherwise.
    """
    tokens = tokenize(text)
    if stemming:
        tokens = [stem(t) for t in tokens]
    return frozenset(tokens)
