"""Corleone: hands-off crowdsourced entity matching (Gokhale et al., SIGMOD'14).

Corleone trains a random forest matcher entirely from crowd labels using
active learning: it bootstraps with a small labeled sample, then repeatedly
asks the crowd about the pairs the current forest is least certain about,
retrains, and stops when uncertainty is exhausted or the budget runs out.
Its question count is naturally the highest of the compared systems — every
labeled example is a crowd question and no relational inference exists.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaselineResult, vector_with_prior
from repro.core.pipeline import PreparedState
from repro.crowd.platform import CrowdPlatform
from repro.ml import RandomForestClassifier

Pair = tuple[str, str]


class Corleone:
    """Active-learning random forest over the retained pairs."""

    def __init__(
        self,
        bootstrap_size: int = 20,
        batch_size: int = 10,
        max_rounds: int = 25,
        uncertainty_stop: float = 0.15,
        forest_size: int = 40,
        seed: int = 0,
    ):
        self.bootstrap_size = bootstrap_size
        self.batch_size = batch_size
        self.max_rounds = max_rounds
        self.uncertainty_stop = uncertainty_stop
        self.forest_size = forest_size
        self.seed = seed

    def run(self, state: PreparedState, platform: CrowdPlatform) -> BaselineResult:
        pairs = sorted(state.retained)
        if not pairs:
            return BaselineResult("Corleone", set(), 0)
        features = np.array([vector_with_prior(state, p) for p in pairs], dtype=float)
        index_of = {p: i for i, p in enumerate(pairs)}
        labels: dict[Pair, bool] = {}
        questions = 0

        # Bootstrap: half the sample from the top of the prior order (where
        # positives are dense — Corleone samples from blocked candidates),
        # half spread over the full range for negatives.
        ranked = sorted(pairs, key=lambda p: -state.priors.get(p, 0.0))
        half = self.bootstrap_size // 2
        step = max(1, len(ranked) // max(1, self.bootstrap_size - half))
        bootstrap = list(dict.fromkeys(ranked[:half] + ranked[::step]))
        for pair in bootstrap[: self.bootstrap_size]:
            labels[pair] = platform.majority_label(pair)
            questions += 1

        model = None
        for _ in range(self.max_rounds):
            model = self._train(features, index_of, labels)
            if model is None:
                # one class only: label more from the other end of the order
                extremes = [p for p in (ranked[0], ranked[-1]) if p not in labels]
                if not extremes:
                    break
                for pair in extremes:
                    labels[pair] = platform.majority_label(pair)
                    questions += 1
                continue
            proba = model.predict_proba(features)
            uncertainty = np.abs(proba - 0.5)
            candidates = [
                (u, p)
                for u, p in zip(uncertainty, pairs)
                if p not in labels
            ]
            candidates.sort(key=lambda t: (t[0], t[1]))
            batch = [p for _, p in candidates[: self.batch_size]]
            if not batch or candidates[0][0] > self.uncertainty_stop:
                break
            for pair in batch:
                labels[pair] = platform.majority_label(pair)
                questions += 1

        if model is None:
            matches = {p for p, label in labels.items() if label}
            return BaselineResult("Corleone", matches, questions)
        proba = model.predict_proba(features)
        matches = {p for p, score in zip(pairs, proba) if score >= 0.5}
        # crowd labels override the model where available
        for pair, label in labels.items():
            if label:
                matches.add(pair)
            else:
                matches.discard(pair)
        return BaselineResult("Corleone", matches, questions)

    # ------------------------------------------------------------------
    def _train(
        self,
        features: np.ndarray,
        index_of: dict[Pair, int],
        labels: dict[Pair, bool],
    ) -> RandomForestClassifier | None:
        if not labels:
            return None
        y = np.array([1.0 if v else 0.0 for v in labels.values()])
        if y.sum() == 0 or y.sum() == len(y):
            return None
        X = features[[index_of[p] for p in labels]]
        model = RandomForestClassifier(n_estimators=self.forest_size, seed=self.seed)
        return model.fit(X, y)
