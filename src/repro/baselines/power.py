"""POWER: partial-order based crowdsourced ER (Chai et al., VLDBJ'18).

POWER organizes similarity vectors in the dominance partial order, groups
identical vectors, and asks the crowd about carefully chosen vectors: a
"match" answer resolves every dominating vector as a match, a "non-match"
answer resolves every dominated vector as a non-match.  Questions are
selected to maximize the number of vectors resolved either way (the
midpoint of the unresolved region).

The reimplementation keeps the vector-group structure and the two-sided
inference, selecting at each step the unresolved group whose resolution
(averaged over the two outcomes) settles the most pairs.
"""

from __future__ import annotations

from repro.baselines.base import BaselineResult, partition_by_signature, vector_with_prior
from repro.core.pipeline import PreparedState
from repro.core.vectors import dominates
from repro.crowd.platform import CrowdPlatform

Pair = tuple[str, str]
Vector = tuple[float, ...]


class Power:
    """Partial-order question selection over grouped similarity vectors."""

    def __init__(self, max_questions_per_partition: int = 30):
        self.max_questions_per_partition = max_questions_per_partition

    def run(self, state: PreparedState, platform: CrowdPlatform) -> BaselineResult:
        matches: set[Pair] = set()
        questions = 0
        for block in partition_by_signature(state):
            block_matches, block_questions = self._resolve_partition(state, block, platform)
            matches.update(block_matches)
            questions += block_questions
        return BaselineResult("POWER", matches, questions)

    # ------------------------------------------------------------------
    def _resolve_partition(
        self, state: PreparedState, block: list[Pair], platform: CrowdPlatform
    ) -> tuple[set[Pair], int]:
        groups: dict[Vector, list[Pair]] = {}
        for pair in block:
            groups.setdefault(vector_with_prior(state, pair), []).append(pair)
        vectors = sorted(groups)
        unresolved: set[Vector] = set(vectors)
        matched: set[Vector] = set()
        questions = 0

        def above(v: Vector) -> list[Vector]:
            return [w for w in vectors if dominates(w, v)]

        def below(v: Vector) -> list[Vector]:
            return [w for w in vectors if dominates(v, w)]

        while unresolved and questions < self.max_questions_per_partition:
            # Pick the group that resolves the most vectors on average.
            best, best_gain = None, -1.0
            for v in sorted(unresolved):
                up = sum(len(groups[w]) for w in above(v) if w in unresolved)
                down = sum(len(groups[w]) for w in below(v) if w in unresolved)
                gain = (up + down) / 2.0
                if gain > best_gain:
                    best, best_gain = v, gain
            assert best is not None
            probe_pair = sorted(groups[best])[0]
            label = platform.majority_label(probe_pair)
            questions += 1
            if label:
                for w in above(best):
                    if w in unresolved:
                        unresolved.discard(w)
                        matched.add(w)
            else:
                for w in below(best):
                    unresolved.discard(w)

        matches: set[Pair] = set()
        for v in matched:
            matches.update(groups[v])
        return matches, questions
