"""SiGMa: simple greedy matching for KB alignment (KDD'13).

SiGMa grows a 1:1 alignment greedily from seed matches: a priority queue
holds candidate pairs scored by a weighted sum of string similarity and
neighborhood agreement (the number of already-matched neighbor pairs).
The best pair is accepted, its entities are locked, and its neighbors'
scores are refreshed.  Like PARIS it never consults the crowd and an early
mistake stays in the alignment.
"""

from __future__ import annotations

import heapq

from repro.baselines.base import BaselineResult
from repro.core.pipeline import PreparedState

Pair = tuple[str, str]


class SiGMa:
    """Greedy neighborhood-agreement matching from seeds."""

    def __init__(
        self,
        string_weight: float = 0.5,
        neighbor_weight: float = 0.5,
        accept_threshold: float = 0.35,
    ):
        self.string_weight = string_weight
        self.neighbor_weight = neighbor_weight
        self.accept_threshold = accept_threshold

    def run(self, state: PreparedState, seeds: set[Pair]) -> BaselineResult:
        graph = state.graph
        matched: set[Pair] = set()
        taken1: set[str] = set()
        taken2: set[str] = set()

        def neighbor_agreement(pair: Pair) -> float:
            neighbors = graph.neighbors(pair)
            if not neighbors:
                return 0.0
            agreeing = sum(1 for n in neighbors if n in matched)
            return agreeing / max(1.0, len(neighbors) ** 0.5)

        def score(pair: Pair) -> float:
            return (
                self.string_weight * state.priors.get(pair, 0.0)
                + self.neighbor_weight * min(1.0, neighbor_agreement(pair))
            )

        def accept(pair: Pair) -> None:
            matched.add(pair)
            taken1.add(pair[0])
            taken2.add(pair[1])

        for seed in sorted(seeds):
            if seed[0] not in taken1 and seed[1] not in taken2:
                accept(seed)

        # Max-heap with lazily refreshed scores (standard SiGMa loop).
        heap: list[tuple[float, Pair]] = []
        for pair in sorted(state.retained):
            if pair not in matched:
                heapq.heappush(heap, (-score(pair), pair))

        while heap:
            neg_score, pair = heapq.heappop(heap)
            if pair in matched or pair[0] in taken1 or pair[1] in taken2:
                continue
            current = score(pair)
            if current < -neg_score - 1e-12:
                heapq.heappush(heap, (-current, pair))
                continue
            if current < self.accept_threshold:
                break
            accept(pair)
            # Refresh the neighbors whose agreement just improved.
            for neighbor in graph.neighbors(pair):
                if neighbor not in matched and neighbor[0] not in taken1 and neighbor[1] not in taken2:
                    heapq.heappush(heap, (-score(neighbor), neighbor))

        return BaselineResult("SiGMa", matched, 0)
