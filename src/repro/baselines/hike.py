"""HIKE: hybrid human-machine entity alignment (Zhuang et al., CIKM'17).

HIKE partitions entities into clusters with similar attributes and
relationships (hierarchical agglomerative clustering in the original), then
runs monotonicity-based threshold inference inside each partition: if a
similarity vector is labeled a match, every dominating vector is a match;
if labeled a non-match, every dominated vector is a non-match.  Questions
are chosen to bisect the unresolved region of each partition.

This reimplementation partitions by attribute signature and orders each
partition by total vector score; crowd labels then cut the order from both
ends, which is the one-dimensional projection of HIKE's partial-order
search and preserves its question-cost behaviour (cost grows with the
number of partitions, and cross-type inference is impossible).
"""

from __future__ import annotations

from repro.baselines.base import BaselineResult, partition_by_signature, vector_with_prior
from repro.core.pipeline import PreparedState
from repro.core.vectors import dominates
from repro.crowd.platform import CrowdPlatform

Pair = tuple[str, str]


class Hike:
    """Partition + monotone threshold search with crowd labels."""

    def __init__(self, questions_per_round: int = 1, max_questions_per_partition: int = 30):
        self.questions_per_round = questions_per_round
        self.max_questions_per_partition = max_questions_per_partition

    def run(self, state: PreparedState, platform: CrowdPlatform) -> BaselineResult:
        matches: set[Pair] = set()
        questions = 0
        for block in partition_by_signature(state):
            block_matches, block_questions = self._resolve_partition(state, block, platform)
            matches.update(block_matches)
            questions += block_questions
        return BaselineResult("HIKE", matches, questions)

    # ------------------------------------------------------------------
    def _resolve_partition(
        self, state: PreparedState, block: list[Pair], platform: CrowdPlatform
    ) -> tuple[set[Pair], int]:
        """Binary-search the match boundary along the score order."""
        ranked = sorted(
            block, key=lambda p: (sum(vector_with_prior(state, p)), p)
        )
        vectors = {p: vector_with_prior(state, p) for p in block}
        matches: set[Pair] = set()
        non_matches: set[Pair] = set()
        questions = 0
        low, high = 0, len(ranked) - 1
        while low <= high and questions < self.max_questions_per_partition:
            middle = (low + high) // 2
            probe = ranked[middle]
            if probe in matches or probe in non_matches:
                # already inferred by monotonicity; shrink the window
                if probe in matches:
                    high = middle - 1
                else:
                    low = middle + 1
                continue
            label = platform.majority_label(probe)
            questions += 1
            if label:
                matches.add(probe)
                # monotonicity: dominating vectors are matches
                for other in ranked[middle:]:
                    if dominates(vectors[other], vectors[probe]):
                        matches.add(other)
                high = middle - 1
            else:
                non_matches.add(probe)
                for other in ranked[: middle + 1]:
                    if dominates(vectors[probe], vectors[other]):
                        non_matches.add(other)
                low = middle + 1
        return matches, questions
