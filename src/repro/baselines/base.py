"""Shared plumbing for the baseline implementations."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.pipeline import PreparedState

Pair = tuple[str, str]


@dataclass(slots=True)
class BaselineResult:
    """Output common to every baseline: a match set and its crowd cost."""

    name: str
    matches: set[Pair]
    questions_asked: int
    extra: dict = field(default_factory=dict)


def partition_by_signature(
    state: PreparedState, merge_threshold: float = 0.5
) -> list[list[Pair]]:
    """Cluster retained pairs by attribute signature, HIKE-style.

    HIKE partitions entities with *similar* (not identical) attributes and
    relationships via hierarchical agglomerative clustering, and the paper
    deploys POWER and Corleone on those partitions.  We reproduce that with
    a greedy agglomeration: signatures join an existing cluster when their
    Jaccard similarity to its representative reaches ``merge_threshold``.
    The resulting partitions mix related entity types — exactly the
    coarseness that makes monotone inference error-prone on heterogeneous
    KBs.  Blocks and members are sorted for determinism.
    """
    from repro.text.similarity import jaccard

    blocks: dict[frozenset[int], list[Pair]] = {}
    for pair in sorted(state.retained):
        blocks.setdefault(state.signatures[pair], []).append(pair)

    representatives: list[frozenset[int]] = []
    clusters: list[list[Pair]] = []
    for signature, members in sorted(blocks.items(), key=lambda kv: (-len(kv[1]), sorted(kv[0]))):
        for i, representative in enumerate(representatives):
            if jaccard(signature, representative) >= merge_threshold:
                clusters[i].extend(members)
                break
        else:
            representatives.append(signature)
            clusters.append(list(members))
    return [sorted(cluster) for cluster in clusters]


def vector_with_prior(state: PreparedState, pair: Pair) -> tuple[float, ...]:
    """The shared feature map of a pair.

    The pipeline's similarity vectors already lead with the label prior
    (see ``Remp.prepare``), so this is the vector itself; the name records
    the contract that callers get label + attribute similarities.
    """
    return state.vector_index.vectors[pair]
