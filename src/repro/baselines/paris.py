"""PARIS: probabilistic alignment of relations and instances (VLDB'11).

PARIS iterates a fixpoint where the probability that two entities match is
driven by their matched neighbors, weighted by relationship *functionality*
(how close the relationship is to single-valued): sharing a value under a
highly functional relationship is strong evidence.  No crowdsourcing is
involved; errors made early can reinforce themselves — the error
accumulation the paper contrasts Remp against.

Reimplementation notes: we run over the retained candidate pairs, seed the
fixpoint with trusted matches, combine literal-similarity priors with the
noisy-or of relational evidence, and apply a greedy 1:1 selection at the
end, iterating a fixed number of rounds.
"""

from __future__ import annotations

from repro.baselines.base import BaselineResult
from repro.core.pipeline import PreparedState
from repro.kb.model import KnowledgeBase

Pair = tuple[str, str]


def functionality(kb: KnowledgeBase, relationship: str) -> float:
    """#subjects / #triples for the relationship (1.0 = functional)."""
    subjects = 0
    triples = 0
    for entity in kb.entities:
        values = kb.relation_values(entity, relationship)
        if values:
            subjects += 1
            triples += len(values)
    if triples == 0:
        return 0.0
    return subjects / triples


def inverse_functionality(kb: KnowledgeBase, relationship: str) -> float:
    """#objects / #triples for the relationship."""
    objects = set()
    triples = 0
    for entity in kb.entities:
        values = kb.relation_values(entity, relationship)
        triples += len(values)
        objects.update(values)
    if triples == 0:
        return 0.0
    return len(objects) / triples


class Paris:
    """Functionality-weighted probabilistic propagation from seeds."""

    def __init__(self, rounds: int = 5, accept_threshold: float = 0.5, prior_weight: float = 0.5):
        self.rounds = rounds
        self.accept_threshold = accept_threshold
        self.prior_weight = prior_weight

    def run(
        self,
        state: PreparedState,
        seeds: set[Pair],
    ) -> BaselineResult:
        kb1, kb2 = state.kb1, state.kb2
        graph = state.graph
        func1 = {r: functionality(kb1, r) for r in kb1.relationships}
        func2 = {r: functionality(kb2, r) for r in kb2.relationships}
        inv1 = {r: inverse_functionality(kb1, r) for r in kb1.relationships}
        inv2 = {r: inverse_functionality(kb2, r) for r in kb2.relationships}

        def label_weight(label: tuple[str, str]) -> float:
            r1, r2 = label
            if r1.startswith("~"):
                return inv1.get(r1[1:], 0.0) * inv2.get(r2[1:], 0.0)
            return func1.get(r1, 0.0) * func2.get(r2, 0.0)

        scores: dict[Pair, float] = {
            pair: self.prior_weight * state.priors.get(pair, 0.0)
            for pair in state.retained
        }
        for seed in seeds:
            if seed in scores:
                scores[seed] = 1.0

        for _ in range(self.rounds):
            updated = dict(scores)
            for vertex, by_label in graph.groups.items():
                # Evidence flowing INTO vertex: neighbors' scores weighted by
                # the (inverse) functionality of the connecting label.
                miss = 1.0
                for label, members in by_label.items():
                    weight = label_weight(label)
                    if weight <= 0.0:
                        continue
                    for neighbor in members:
                        miss *= 1.0 - weight * scores.get(neighbor, 0.0)
                relational = 1.0 - miss
                prior = self.prior_weight * state.priors.get(vertex, 0.0)
                updated[vertex] = max(prior, relational)
            for seed in seeds:
                if seed in updated:
                    updated[seed] = 1.0
            scores = updated

        matches = self._greedy_one_to_one(scores)
        matches.update(seed for seed in seeds)
        return BaselineResult("PARIS", matches, 0, extra={"scores": scores})

    def _greedy_one_to_one(self, scores: dict[Pair, float]) -> set[Pair]:
        taken1: set[str] = set()
        taken2: set[str] = set()
        matches: set[Pair] = set()
        for pair, score in sorted(scores.items(), key=lambda kv: (-kv[1], kv[0])):
            if score < self.accept_threshold:
                break
            e1, e2 = pair
            if e1 in taken1 or e2 in taken2:
                continue
            matches.add(pair)
            taken1.add(e1)
            taken2.add(e2)
        return matches
