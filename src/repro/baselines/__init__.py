"""Baseline ER systems the paper compares against.

Crowdsourced baselines (Table III / Figure 3):

* :mod:`repro.baselines.hike` — HIKE (Zhuang et al., CIKM'17): partition
  entities by attribute signature, then monotone threshold search per
  partition with crowd questions.
* :mod:`repro.baselines.power` — POWER (Chai et al., VLDBJ'18): a
  partial-order framework; crowd labels propagate along vector dominance.
* :mod:`repro.baselines.corleone` — Corleone (Gokhale et al., SIGMOD'14):
  hands-off active learning with random forests.

Collective, non-crowd baselines (Table VI):

* :mod:`repro.baselines.paris` — PARIS (Suchanek et al., VLDB'11):
  probabilistic propagation weighted by relationship functionality.
* :mod:`repro.baselines.sigma` — SiGMa (Lacoste-Julien et al., KDD'13):
  greedy neighborhood-score matching.

All crowdsourced baselines consume the same retained match set ``M_rd`` as
Remp ("all methods take the same retained entity matches as input") and ask
questions through the shared :class:`repro.crowd.CrowdPlatform`, so label
reuse across approaches mirrors the paper's protocol.
"""

from repro.baselines.base import BaselineResult
from repro.baselines.corleone import Corleone
from repro.baselines.hike import Hike
from repro.baselines.paris import Paris
from repro.baselines.power import Power
from repro.baselines.sigma import SiGMa

__all__ = ["BaselineResult", "Hike", "Power", "Corleone", "Paris", "SiGMa"]
