"""Matching-as-a-service front-end over the persistent run store.

:class:`MatchingService` owns a :class:`repro.store.RunStore`, serves
``PreparedState`` through a concurrency-safe two-level cache (offline
work is computed at most once per ``(dataset, seed, scale, config)``),
and runs many Remp sessions on a thread pool with an explicit
``submit / step / status / result`` lifecycle.  Interrupted sessions
resume from their latest checkpoint, replaying recorded crowd answers.

Exposed on the command line as ``repro serve-batch``, ``repro runs`` and
``repro cache``.
"""

from repro.service.service import MatchingService, MatchingSession

__all__ = ["MatchingService", "MatchingSession"]
