"""The concurrent matching service.

:class:`MatchingService` multiplexes many Remp human–machine loops over
one :class:`repro.store.RunStore`:

* ``prepare()`` work is deduplicated through a two-level cache — a
  size-capped in-process LRU in front of the store's SQLite table —
  with one lock per cache key (pruned when its compute finishes), so
  concurrent submissions of the same ``(dataset, seed, scale, config)``
  compute the offline stages exactly once and every other session
  blocks until the artifact is ready.  Computes run inside, and every
  returned state is attached to, the key's shared kernel arena
  (:mod:`repro.substrate`), so sessions on the same KB pair share one
  literal-interning arena and one packed dominance matrix.
* Each submitted run becomes a :class:`MatchingSession` with an explicit
  ``submit / step / status / result`` lifecycle.  Background sessions run
  on a thread pool; foreground sessions are advanced by calling
  :meth:`MatchingService.step` one human–machine loop at a time.
* Every labeling round checkpoints to the store, so a killed process (or
  a failed session) resumes mid-loop via :meth:`MatchingService.resume`,
  replaying the recorded crowd answers instead of re-asking.
* Sessions submitted with ``workers=N`` run partitioned
  (:mod:`repro.partition`): the ER graph is sharded into entity-closure
  components and fanned onto a process pool, checkpointing per shard;
  such runs resume shard-by-shard, and their merged result does not
  depend on the pool size.
* Sessions submitted with ``stream=True`` execute unit-wise
  (:mod:`repro.stream`) and persist content-keyed unit records; the
  :meth:`MatchingService.update` lifecycle verb then applies a
  :class:`repro.stream.KBDelta` incrementally — re-preparing and
  re-running only the entity closures the delta touches, reusing every
  clean unit's recorded outcome and crowd answers, with full lineage
  (parent run, delta, KB fingerprint) in the ledger.
"""

from __future__ import annotations

import json
import threading
import traceback
from collections import OrderedDict
from concurrent.futures import Future, ThreadPoolExecutor
from contextlib import contextmanager, nullcontext

from repro.accel.runtime import accel_enabled, stages_doc
from repro.core import Remp, RempConfig
from repro.core.pipeline import (
    LoopCheckpoint,
    PreparedState,
    RempResult,
    assemble_result,
)
from repro.crowd import CrowdPlatform
from repro.datasets import load_dataset
from repro.obs import runtime as obs
from repro.obs.artifacts import run_meta
from repro.obs.live import StoreEventWriter
from repro.obs.logging import get_logger
from repro.partition import CrowdSpec, ParallelRunner, PartialResult
from repro.store import RunStore, config_hash
from repro.store.store import RunRecord
from repro.stream import (
    DeltaConflictError,
    KBDelta,
    StreamRunner,
    incremental_prepare,
    kb_pair_fingerprint,
    unit_record_from_doc,
    unit_record_to_doc,
)
from repro.substrate import SubstrateCache, shared_cache, substrate_key

Pair = tuple[str, str]

log = get_logger("service")

#: Session lifecycle states (mirrors the ledger's run statuses).
QUEUED = "queued"
PREPARING = "preparing"
RUNNING = "running"
DONE = "done"
FAILED = "failed"


def _build_platform(bundle, error_rate: float, seed: int) -> CrowdPlatform:
    """The crowd for one session: an oracle, or seeded noisy workers."""
    if error_rate <= 0.0:
        return CrowdPlatform.with_oracle(bundle.gold_matches)
    return CrowdPlatform.with_simulated_workers(
        bundle.gold_matches, error_rate=error_rate, seed=seed
    )


class MatchingSession:
    """One resumable Remp run with an explicit stepwise lifecycle.

    Sessions are created by :class:`MatchingService` and advanced either
    by its thread pool (:meth:`run`) or manually (:meth:`step` …
    :meth:`finalize`).  All mutating methods take the session lock, so a
    session may be driven from any single thread at a time.
    """

    def __init__(
        self,
        run_id: str,
        *,
        dataset: str,
        seed: int,
        scale: float,
        config: RempConfig | None,
        strategy: str,
        error_rate: float,
        store: RunStore,
        prepared_provider,
        workers: int | None = None,
        on_event=None,
        stream: bool = False,
        parent_run_id: str | None = None,
        delta: KBDelta | None = None,
        stream_provider=None,
        stream_step: int | None = None,
    ):
        self.run_id = run_id
        self.dataset = dataset
        self.seed = seed
        self.scale = scale
        self.config = config or RempConfig()
        self.strategy = strategy
        self.error_rate = error_rate
        #: Partitioned-run pool size; ``None`` = monolithic stepwise run.
        self.workers = workers
        self.on_event = on_event
        #: Stream (incremental) session: executes unit-wise through
        #: :class:`repro.stream.StreamRunner` and keeps unit records.
        self.stream = stream
        self.parent_run_id = parent_run_id
        self.delta = delta
        #: The last stream execution's :class:`repro.stream.StreamOutcome`
        #: (reuse/new-spend accounting); ``None`` until the run finishes.
        self.stream_outcome = None
        self.status = QUEUED
        self.error: str | None = None
        self._store = store
        self._prepared_provider = prepared_provider
        self._stream_provider = stream_provider
        self._remp = Remp(self.config, seed=seed)
        self._lock = threading.RLock()
        self._loop_state = None
        self._platform: CrowdPlatform | None = None
        #: The session's observability scope: every execution path runs
        #: under its activation, so stage timings, spans and metrics are
        #: attributed to exactly this run — concurrent sessions in the
        #: same process no longer contaminate each other's profiles.
        self._scope = obs.RunScope(run_id, stream_step=stream_step)
        #: Itemised billed questions (loop / shard / stream-unit scoped);
        #: persisted as the run's cost ledger, summing to the result's
        #: ``questions_asked`` exactly.
        self._cost_items: list[dict] = []
        self._history = []
        self._base_questions = 0
        self._billed_at_start = 0
        self._next_loop = 0
        self._loop_converged = False
        self._result: RempResult | None = None

    # ------------------------------------------------------------------
    @property
    def questions_asked(self) -> int:
        if self._result is not None:
            return self._result.questions_asked
        if self._platform is None:
            return self._base_questions
        return self._base_questions + (
            self._platform.questions_asked - self._billed_at_start
        )

    @property
    def num_loops(self) -> int:
        return len(self._history)

    # ------------------------------------------------------------------
    @contextmanager
    def _observed(self):
        """Lock + scope activation + live-event persistence, together.

        Every execution path runs under this: while it is open, anything
        published on the telemetry bus under this run id (status
        transitions, loop heartbeats, shard lifecycle events funnelled
        through the parent, stream summaries) is appended to the store's
        ``run_events`` table — which is what lets a *second process*
        watch the run live (``repro runs watch`` / ``repro top``).
        """
        with self._lock, StoreEventWriter(self._store, self.run_id), (
            self._scope.activate()
        ):
            yield

    def _set_status(self, status: str, **fields) -> None:
        """Record a lifecycle transition in the ledger and on the bus."""
        self.status = status
        self._store.update_run_status(self.run_id, status)
        self._scope.publish(f"status.{status}", **fields)

    # ------------------------------------------------------------------
    def _save_timings(self) -> None:
        """Persist the kernel/stage timings this session's scope collected.

        The scope's private registry holds only stages that ran under
        this session's activations (plus shard deltas merged back from
        its own pool workers) — exact attribution, not a diff against
        the shared process-wide singleton.
        """
        self._store.save_run_timings(
            self.run_id,
            {
                "accel": accel_enabled(),
                "stages": stages_doc(self._scope.timings.snapshot()),
            },
        )

    def _save_obs(self, result: RempResult) -> None:
        """Persist the run's observability document (trace/metrics/ledger)."""
        record = self._store.get_run(self.run_id)
        doc = self._scope.export()
        if record is not None:
            doc["meta"] = run_meta(record, accel=accel_enabled())
        ledger = {
            "total": sum(item["questions"] for item in self._cost_items),
            "items": list(self._cost_items),
        }
        if self.stream_outcome is not None:
            ledger["questions_new"] = self.stream_outcome.questions_new
        if ledger["total"] != result.questions_asked:  # pragma: no cover
            # Never expected; recorded rather than raised so a ledger
            # accounting bug can't fail an otherwise-finished run.
            ledger["mismatch"] = result.questions_asked - ledger["total"]
        doc["cost_ledger"] = ledger
        self._store.save_run_obs(self.run_id, doc)

    # ------------------------------------------------------------------
    def _ensure_started(self) -> None:
        """Prepare (through the cache), build the crowd, load any checkpoint."""
        if self._loop_state is not None:
            return
        self._set_status(PREPARING)
        state: PreparedState = self._prepared_provider(
            self.dataset, self.seed, self.scale, self.config
        )
        bundle = load_dataset(self.dataset, seed=self.seed, scale=self.scale)
        self._platform = _build_platform(bundle, self.error_rate, self.seed)
        self._loop_state = self._remp._make_loop_state(state)
        checkpoint = self._store.load_checkpoint(self.run_id)
        if checkpoint is not None:
            self._loop_state.restore(checkpoint.loop_state)
            self._platform.load_answer_log(checkpoint.answer_log)
            self._history = list(checkpoint.history)
            self._base_questions = checkpoint.questions_asked
            self._next_loop = checkpoint.next_loop_index
            if self._base_questions:
                # Loops billed before the restart are no longer itemisable
                # per loop; one checkpoint item keeps the ledger total
                # equal to the result's question count.
                self._cost_items.append(
                    {
                        "scope": "checkpoint",
                        "key": "resume",
                        "questions": self._base_questions,
                    }
                )
            obs.event(
                "session.checkpoint_restored",
                loops=self._next_loop,
                questions=self._base_questions,
            )
            log.info(
                "run %s restored from checkpoint: %d loops, %d questions",
                self.run_id,
                self._next_loop,
                self._base_questions,
            )
        self._billed_at_start = self._platform.questions_asked
        self._set_status(RUNNING)

    def step(self) -> bool:
        """Advance one human–machine loop and checkpoint it.

        Returns ``False`` once the loop has converged (or already
        finished); call :meth:`finalize` afterwards for the result.
        """
        if self.stream:
            raise ValueError(
                "stream sessions advance whole units, not loops; "
                "use run()/result() instead of step()"
            )
        if self.workers is not None:
            raise ValueError(
                "partitioned sessions advance whole shards, not loops; "
                "use run()/result() instead of step()"
            )
        with self._observed():
            if self._result is not None or self._loop_converged:
                return False
            self._ensure_started()
            config = self._remp.config
            if self._next_loop >= config.max_loops:
                self._loop_converged = True
                return False
            remaining_budget = None
            if config.budget is not None:
                remaining_budget = config.budget - self.questions_asked
            billed_before = self._platform.questions_asked
            record = self._remp._loop_once(
                self._loop_state,
                self._platform,
                self.strategy,
                self._next_loop,
                remaining_budget,
            )
            if record is None:
                self._loop_converged = True
                return False
            self._cost_items.append(
                {
                    "scope": "loop",
                    "key": str(self._next_loop),
                    "questions": self._platform.questions_asked - billed_before,
                }
            )
            self._next_loop += 1
            self._history.append(record)
            self._store.save_checkpoint(
                self.run_id,
                LoopCheckpoint(
                    next_loop_index=self._next_loop,
                    questions_asked=self.questions_asked,
                    history=list(self._history),
                    loop_state=self._loop_state.snapshot(),
                    answer_log=self._platform.export_answer_log(),
                ),
            )
            # The per-loop heartbeat watchers poll for: cheap, and on
            # even under REPRO_NO_TRACE (operational, like counters).
            obs.publish(
                "loop.checkpointed",
                loops=self._next_loop,
                questions=self.questions_asked,
            )
            return True

    def finalize(self) -> RempResult:
        """Final propagation, isolated-pair classification, ledger write."""
        if self.stream:
            return self._run_stream()
        if self.workers is not None:
            return self._run_partitioned()
        with self._observed():
            if self._result is not None:
                return self._result
            self._ensure_started()
            state = self._loop_state.state
            self._loop_state.propagate(state.kb1, state.kb2)
            billed_before = self._platform.questions_asked
            isolated_matches, _ = self._remp._classify_isolated(
                state, self._loop_state, self._platform
            )
            isolated_billed = self._platform.questions_asked - billed_before
            if isolated_billed:
                self._cost_items.append(
                    {
                        "scope": "isolated",
                        "key": "classifier",
                        "questions": isolated_billed,
                    }
                )
            result = assemble_result(
                self._loop_state,
                isolated_matches,
                self.questions_asked,
                list(self._history),
            )
            self._result = result
            self.status = DONE
            self._store.finish_run(self.run_id, result)
            self._scope.publish(
                "status.done",
                questions=result.questions_asked,
                matches=len(result.matches),
            )
            self._save_timings()
            self._save_obs(result)
            log.info(
                "run %s done: %d matches, %d questions, %d loops",
                self.run_id,
                len(result.matches),
                result.questions_asked,
                result.num_loops,
            )
            return result

    def run(self) -> RempResult:
        """Drive the session to completion (the thread-pool entry point)."""
        try:
            if self.stream:
                return self._run_stream()
            if self.workers is not None:
                return self._run_partitioned()
            while self.step():
                pass
            return self.finalize()
        except PartialResult as exc:
            # Graceful degradation: the run failed, but structured — the
            # error names the quarantined shards and the merged healthy
            # result stays reachable on the exception itself.
            ids = [entry["shard_id"] for entry in exc.quarantined]
            with self._lock:
                self.status = FAILED
                self.error = f"PartialResult: {exc}"
                self._store.fail_run(self.run_id, traceback.format_exc())
                with StoreEventWriter(self._store, self.run_id):
                    self._scope.publish(
                        "status.failed",
                        error=self.error,
                        quarantined=ids,
                        partial_matches=len(exc.result.matches),
                        partial_questions=exc.result.questions_asked,
                    )
            log.error(
                "run %s degraded: shards %s quarantined (%d healthy matches kept)",
                self.run_id,
                ids,
                len(exc.result.matches),
            )
            raise
        except Exception as exc:
            with self._lock:
                self.status = FAILED
                self.error = f"{type(exc).__name__}: {exc}"
                self._store.fail_run(self.run_id, traceback.format_exc())
                # The execution path's event writer unwound with the
                # exception; a short-lived one records the terminal
                # transition so watchers see the failure, not a stall.
                with StoreEventWriter(self._store, self.run_id):
                    self._scope.publish("status.failed", error=self.error)
            log.error("run %s failed: %s", self.run_id, self.error)
            raise

    def _run_partitioned(self) -> RempResult:
        """Shard the prepared state and fan it onto a process pool.

        Every labeling round of every shard checkpoints under
        ``(run_id, shard_id)``, so a killed partitioned run resumes
        shard-by-shard; finished shards are restored from the store and
        never re-executed.

        The session lock is held for the whole run — like the
        monolithic path, which holds it across every ``step()`` — so
        concurrent ``result()``/``finalize()`` callers wait for the one
        execution instead of fanning out a second pool.
        """
        with self._observed():
            if self._result is not None:
                return self._result
            self._set_status(PREPARING)
            state: PreparedState = self._prepared_provider(
                self.dataset, self.seed, self.scale, self.config
            )
            bundle = load_dataset(self.dataset, seed=self.seed, scale=self.scale)
            crowd = CrowdSpec(
                truth=bundle.gold_matches, error_rate=self.error_rate, seed=self.seed
            )
            runner = ParallelRunner(
                self.config,
                seed=self.seed,
                workers=self.workers,
                strategy=self.strategy,
                store=self._store,
                run_id=self.run_id,
                on_event=self.on_event,
            )
            self._set_status(RUNNING)
            result = runner.run(state, crowd)
            # Shard billing is additive over disjoint pair sets, so the
            # per-shard items sum to the merged question count exactly.
            self._cost_items.extend(runner.shard_costs)
            self._result = result
            self.status = DONE
            self._store.finish_run(self.run_id, result)
            self._scope.publish(
                "status.done",
                questions=result.questions_asked,
                matches=len(result.matches),
            )
            self._save_timings()
            self._save_obs(result)
            log.info(
                "run %s done (partitioned, workers=%d): %d matches, %d questions",
                self.run_id,
                self.workers,
                len(result.matches),
                result.questions_asked,
            )
            return result

    def _run_stream(self) -> RempResult:
        """Execute (or incrementally update) unit-wise via the stream runner.

        The stream provider hands back the prepared state, the dirty
        pair set and the parent's unit records; clean units restore from
        those records, dirty ones execute with per-unit checkpoints
        under ``(run_id, shard_id)`` — so an interrupted update resumes
        without re-asking a question.  Unit records persist past
        ``finish_run``: they are what the *next* update reuses.
        """
        with self._observed():
            if self._result is not None:
                return self._result
            self._set_status(PREPARING)
            state, dirty, reuse, truth = self._stream_provider(self)
            crowd = CrowdSpec(
                truth=truth, error_rate=self.error_rate, seed=self.seed
            )
            runner = StreamRunner(
                self.config,
                seed=self.seed,
                workers=self.workers or 1,
                strategy=self.strategy,
                store=self._store,
                run_id=self.run_id,
                on_event=self.on_event,
            )
            self._set_status(RUNNING)
            outcome = runner.run_incremental(state, crowd, dirty=dirty, reuse=reuse)
            self._store.replace_unit_records(
                self.run_id,
                {
                    key: unit_record_to_doc(record)
                    for key, record in outcome.records.items()
                },
            )
            self.stream_outcome = outcome
            # Unit records cover every shard of the run (reused ones bill
            # their recorded, i.e. logical, question count), so the items
            # sum to the merged result's questions_asked.
            self._cost_items.extend(
                {
                    "scope": "stream_unit",
                    "key": key,
                    "kind": record.kind,
                    "questions": record.result.questions_asked,
                    "reused": key in outcome.reused_keys,
                }
                for key, record in sorted(outcome.records.items())
            )
            self._result = outcome.result
            self.status = DONE
            self._store.finish_run(self.run_id, outcome.result)
            self._scope.publish(
                "status.done",
                questions=outcome.result.questions_asked,
                matches=len(outcome.result.matches),
            )
            self._save_timings()
            self._save_obs(outcome.result)
            log.info(
                "run %s done (stream): %d units, %d reused, %d new questions",
                self.run_id,
                len(outcome.records),
                len(outcome.reused_keys),
                outcome.questions_new,
            )
            return self._result

    def result(self) -> RempResult | None:
        return self._result


class MatchingService:
    """Concurrent front-end over a :class:`repro.store.RunStore`.

    Examples
    --------
    >>> from repro.service import MatchingService
    >>> service = MatchingService(":memory:", max_workers=2)
    >>> a = service.submit("iimb", scale=0.2)
    >>> b = service.submit("iimb", scale=0.2)   # same key: prepare() once
    >>> service.result(a).matches == service.result(b).matches
    True
    >>> service.close()
    """

    def __init__(
        self,
        store: RunStore | str = ":memory:",
        *,
        max_workers: int = 4,
        error_rate: float = 0.0,
        memory_cache_size: int = 8,
        substrate_cache: SubstrateCache | None = None,
    ):
        self._store = store if isinstance(store, RunStore) else RunStore(store)
        self._owns_store = not isinstance(store, RunStore)
        self._default_error_rate = error_rate
        self._executor = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="remp-session"
        )
        self._sessions: dict[str, MatchingSession] = {}
        self._futures: dict[str, Future] = {}
        #: In-memory prepared-state LRU, size-capped at ``memory_cache_size``.
        self._memory_cache: OrderedDict[tuple, PreparedState] = OrderedDict()
        self._memory_cache_size = max(1, memory_cache_size)
        #: Per-key compute locks; pruned as computes finish, so the dict
        #: size is bounded by the number of *in-flight* prepares.
        self._key_locks: dict[tuple, threading.Lock] = {}
        self._lock = threading.Lock()
        #: Shared kernel arenas (process-wide by default): every service
        #: in the process converges on one arena per (KB pair, config).
        self._substrate = (
            substrate_cache if substrate_cache is not None else shared_cache()
        )
        #: Prepared-state cache accounting (memory or store hits vs. computes).
        self.cache_hits = 0
        self.cache_misses = 0
        self.cache_evictions = 0

    # ------------------------------------------------------------------
    @property
    def store(self) -> RunStore:
        return self._store

    def close(self, wait: bool = True) -> None:
        self._executor.shutdown(wait=wait)
        if self._owns_store:
            self._store.close()

    def __enter__(self) -> "MatchingService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Prepared-state cache
    # ------------------------------------------------------------------
    def _cache_get(self, key: tuple) -> PreparedState | None:
        """LRU probe (caller holds ``self._lock``)."""
        state = self._memory_cache.get(key)
        if state is not None:
            self._memory_cache.move_to_end(key)
        return state

    def _cache_put(self, key: tuple, state: PreparedState) -> None:
        """LRU insert with size-cap eviction (caller holds ``self._lock``)."""
        self._memory_cache[key] = state
        self._memory_cache.move_to_end(key)
        while len(self._memory_cache) > self._memory_cache_size:
            self._memory_cache.popitem(last=False)
            self.cache_evictions += 1
            obs.count("prepared.cache.evictions")

    def _attach_substrate(
        self, state: PreparedState, config: RempConfig | None
    ) -> PreparedState:
        """Bind ``state`` to its shared kernel arena (no-op accel-off)."""
        if not accel_enabled():
            return state
        arena = self._substrate.get_or_create(
            substrate_key(state.kb1, state.kb2, config)
        )
        return arena.attach(state, store=self._store)

    def prepared(
        self,
        dataset: str,
        seed: int = 0,
        scale: float = 1.0,
        config: RempConfig | None = None,
    ) -> PreparedState:
        """The offline artifacts for a key, computed at most once.

        Memory LRU first, then the store; a miss runs ``Remp.prepare``
        under a per-key lock so concurrent sessions asking for the same
        key wait for the one computation instead of repeating it.  The
        compute runs inside the key's shared substrate arena
        (:mod:`repro.substrate`), and every state returned is attached
        to it, so concurrent sessions on the same KB pair share one
        literal-interning arena and one packed dominance matrix.
        """
        key = (dataset, seed, scale, config_hash(config))
        with self._lock:
            state = self._cache_get(key)
            if state is not None:
                self.cache_hits += 1
                obs.count("prepared.cache.hits")
                return state
            key_lock = self._key_locks.setdefault(key, threading.Lock())
        try:
            with key_lock:
                with self._lock:
                    state = self._cache_get(key)
                    if state is not None:
                        self.cache_hits += 1
                        obs.count("prepared.cache.hits")
                        return state
                state = self._store.load_prepared(dataset, seed, scale, config)
                if state is not None:
                    state = self._attach_substrate(state, config)
                    with self._lock:
                        self.cache_hits += 1
                        self._cache_put(key, state)
                    obs.count("prepared.cache.hits")
                    return state
                bundle = load_dataset(dataset, seed=seed, scale=scale)
                arena = None
                if accel_enabled():
                    arena = self._substrate.get_or_create(
                        substrate_key(bundle.kb1, bundle.kb2, config)
                    )
                with arena.activation() if arena is not None else nullcontext():
                    state = Remp(config or RempConfig(), seed=seed).prepare(
                        bundle.kb1, bundle.kb2
                    )
                self._store.save_prepared(dataset, seed, scale, config, state)
                if arena is not None:
                    arena.attach(state, store=self._store)
                with self._lock:
                    self.cache_misses += 1
                    self._cache_put(key, state)
                obs.count("prepared.cache.misses")
                log.info("prepared state computed for %s", key)
                return state
        finally:
            # The per-key lock exists only to deduplicate in-flight
            # computes; once any holder exits, waiters re-check the cache
            # anyway, so the entry can go.  The identity guard keeps a
            # straggler from deleting a *newer* lock created after an
            # earlier prune.
            with self._lock:
                if self._key_locks.get(key) is key_lock:
                    del self._key_locks[key]

    # ------------------------------------------------------------------
    # Session lifecycle
    # ------------------------------------------------------------------
    def submit(
        self,
        dataset: str,
        *,
        seed: int = 0,
        scale: float = 1.0,
        config: RempConfig | None = None,
        strategy: str = "remp",
        error_rate: float | None = None,
        background: bool = True,
        workers: int | None = None,
        on_event=None,
        stream: bool = False,
    ) -> str:
        """Register a new run and return its id.

        With ``background=True`` the session starts on the thread pool;
        otherwise it waits to be advanced via :meth:`step` (one
        human–machine loop per call) or driven to completion by
        :meth:`result`.  ``workers`` switches the session to partitioned
        execution (:mod:`repro.partition`): the ER graph is sharded into
        components and run on that many processes, with per-shard
        checkpoints; ``on_event`` receives shard lifecycle events.
        ``stream`` makes this a *stream root* (step 0 of a delta
        lineage): it executes unit-wise and persists content-keyed unit
        records, which is what :meth:`update` later reuses.
        """
        if error_rate is None:
            error_rate = self._default_error_rate
        run_id = self._store.create_run(
            dataset,
            seed,
            scale,
            config,
            strategy=strategy,
            error_rate=error_rate,
            workers=workers,
            stream_step=0 if stream else None,
        )
        session = MatchingSession(
            run_id,
            dataset=dataset,
            seed=seed,
            scale=scale,
            config=config,
            strategy=strategy,
            error_rate=error_rate,
            store=self._store,
            prepared_provider=self.prepared,
            workers=workers,
            on_event=on_event,
            stream=stream,
            stream_provider=self._stream_inputs,
            stream_step=0 if stream else None,
        )
        log.info(
            "submit run %s: dataset=%s seed=%d scale=%s workers=%s stream=%s",
            run_id,
            dataset,
            seed,
            scale,
            workers,
            stream,
        )
        with self._lock:
            self._sessions[run_id] = session
        if background:
            with self._lock:
                self._futures[run_id] = self._executor.submit(session.run)
        return run_id

    def update(
        self,
        run_id: str,
        delta: KBDelta,
        *,
        workers: int | None = None,
        background: bool = True,
        on_event=None,
    ) -> str:
        """Incrementally re-match after a KB delta; returns the new run id.

        ``run_id`` must be a *finished stream run* (submitted with
        ``stream=True`` or itself produced by ``update``).  The delta is
        diffed against the cached prepared state; only the entity
        closures it touches are re-prepared and re-run, prior
        resolutions and crowd answers for clean closures are reused
        verbatim, and the new run's result is byte-identical to a
        from-scratch run on the post-delta KBs.  A delta carrying a
        ``parent_fingerprint`` that does not match the run's recorded KB
        fingerprint raises :class:`repro.stream.DeltaConflictError`.
        ``workers`` defaults to the parent run's pool size, so a lineage
        started parallel stays parallel across updates.
        """
        record = self._store.get_run(run_id)
        if record is None:
            raise KeyError(f"unknown run {run_id!r}")
        if workers is None:
            workers = record.workers
        if not record.streaming:
            raise ValueError(
                f"run {run_id!r} is not a stream run; submit with stream=True "
                "to build an updatable lineage"
            )
        if record.status != DONE:
            raise ValueError(
                f"run {run_id!r} has status {record.status!r}; only finished "
                "runs can be updated (resume it first)"
            )
        if (
            delta.parent_fingerprint is not None
            and record.kb_fingerprint is not None
            and delta.parent_fingerprint != record.kb_fingerprint
        ):
            raise DeltaConflictError(
                f"delta was authored against KB pair "
                f"{delta.parent_fingerprint}, but run {run_id!r} matched "
                f"fingerprint {record.kb_fingerprint}"
            )
        config = self._store.get_run_config(run_id)
        new_run_id = self._store.create_run(
            record.dataset,
            record.seed,
            record.scale,
            config,
            strategy=record.strategy,
            error_rate=record.error_rate,
            workers=workers,
            parent_run_id=run_id,
            delta_json=json.dumps(delta.to_doc(), sort_keys=True),
            stream_step=(record.stream_step or 0) + 1,
        )
        session = MatchingSession(
            new_run_id,
            dataset=record.dataset,
            seed=record.seed,
            scale=record.scale,
            config=config,
            strategy=record.strategy,
            error_rate=record.error_rate,
            store=self._store,
            prepared_provider=self.prepared,
            workers=workers,
            on_event=on_event,
            stream=True,
            parent_run_id=run_id,
            delta=delta,
            stream_provider=self._stream_inputs,
            stream_step=(record.stream_step or 0) + 1,
        )
        log.info(
            "update run %s -> %s (stream step %d)",
            run_id,
            new_run_id,
            (record.stream_step or 0) + 1,
        )
        with self._lock:
            self._sessions[new_run_id] = session
            if background:
                self._futures[new_run_id] = self._executor.submit(session.run)
        return new_run_id

    def resume(
        self,
        run_id: str,
        background: bool = True,
        workers: int | None = None,
        on_event=None,
    ) -> str:
        """Rebuild a session for an interrupted or failed ledger run.

        The stored checkpoint (if any) restores the resolution state and
        replays the crowd answer log, so no past question is re-asked.
        A partitioned run resumes partitioned (its recorded pool size
        can be overridden with ``workers`` — the merged result does not
        depend on it).
        """
        record = self._store.get_run(run_id)
        if record is None:
            raise KeyError(f"unknown run {run_id!r}")
        if record.status == DONE:
            raise ValueError(f"run {run_id!r} already finished")
        with self._lock:
            future = self._futures.get(run_id)
            live = self._sessions.get(run_id)
        if future is not None and not future.done():
            raise ValueError(f"run {run_id!r} is still active in this service")
        if live is not None and live.status in (QUEUED, PREPARING, RUNNING):
            raise ValueError(f"run {run_id!r} has a live session in this service")
        if (
            workers is not None
            and record.workers is None
            and self._store.load_checkpoint(run_id) is not None
        ):
            raise ValueError(
                f"run {run_id!r} is monolithic with a mid-loop checkpoint; "
                "resuming it partitioned would discard that progress"
            )
        if workers is not None and workers != record.workers:
            # Persist the override: later resumes must keep treating the
            # run as partitioned and reuse its shard checkpoints.
            self._store.set_run_workers(run_id, workers)
        config = self._store.get_run_config(run_id)
        session = MatchingSession(
            run_id,
            dataset=record.dataset,
            seed=record.seed,
            scale=record.scale,
            config=config,
            strategy=record.strategy,
            error_rate=record.error_rate,
            store=self._store,
            prepared_provider=self.prepared,
            workers=workers if workers is not None else record.workers,
            on_event=on_event,
            stream=record.streaming,
            parent_run_id=record.parent_run_id,
            stream_provider=self._stream_inputs,
            stream_step=record.stream_step,
        )
        log.info("resume run %s (status was %s)", run_id, record.status)
        with self._lock:
            self._sessions[run_id] = session
            if background:
                self._futures[run_id] = self._executor.submit(session.run)
        return run_id

    # ------------------------------------------------------------------
    # Stream (incremental) plumbing
    # ------------------------------------------------------------------
    def _stream_state_for(self, record: RunRecord) -> PreparedState:
        """The prepared state a finished stream run matched.

        Roots live in the ordinary dataset-keyed cache; updated states
        are stored under their KB fingerprint.
        """
        config = self._store.get_run_config(record.run_id)
        if record.parent_run_id is None:
            return self.prepared(record.dataset, record.seed, record.scale, config)
        if record.kb_fingerprint is None:
            raise ValueError(
                f"run {record.run_id!r} predates the lineage migration; "
                "its prepared state cannot be located"
            )
        key = (f"fp:{record.kb_fingerprint}", record.seed, record.scale, config_hash(config))
        with self._lock:
            state = self._cache_get(key)
        if state is not None:
            return state
        state = self._store.load_prepared(
            f"fp:{record.kb_fingerprint}", record.seed, record.scale, config
        )
        if state is None:
            raise ValueError(
                f"run {record.run_id!r}'s prepared state "
                f"(fingerprint {record.kb_fingerprint}) is not in the store"
            )
        state = self._attach_substrate(state, config)
        with self._lock:
            self._cache_put(key, state)
        return state

    def _stream_inputs(self, session: MatchingSession):
        """(state, dirty, reuse, truth) for a stream session.

        Pure given the ledger: a resumed update recomputes the same
        state, dirty set and reuse records the interrupted run saw.
        """
        config = session.config
        if session.parent_run_id is None:
            state = self.prepared(
                session.dataset, session.seed, session.scale, config
            )
            self._store.set_run_fingerprint(
                session.run_id, kb_pair_fingerprint(state.kb1, state.kb2)
            )
            bundle = load_dataset(
                session.dataset, seed=session.seed, scale=session.scale
            )
            return state, None, None, set(bundle.gold_matches)

        parent = self._store.get_run(session.parent_run_id)
        if parent is None:
            raise KeyError(f"unknown parent run {session.parent_run_id!r}")
        parent_state = self._stream_state_for(parent)
        delta = session.delta
        if delta is None:
            delta_json = self._store.get_run_delta_json(session.run_id)
            if delta_json is None:
                raise ValueError(
                    f"stream run {session.run_id!r} has no recorded delta"
                )
            delta = KBDelta.from_doc(json.loads(delta_json))
        # The fingerprint guard already ran in update(); a resumed
        # session replays the recorded delta against the recorded state.
        # The splice runs inside the parent's arena so it reuses the
        # parent's literal scorers; the spliced state then attaches to
        # its own (derived) arena under the post-delta fingerprints.
        parent_arena = None
        if accel_enabled():
            parent_key = parent_state.substrate_key
            if parent_key is None:
                parent_state = self._attach_substrate(parent_state, config)
                parent_key = parent_state.substrate_key
            if parent_key is not None:
                parent_arena = self._substrate.get_or_create(parent_key)
        with (
            parent_arena.activation()
            if parent_arena is not None
            else nullcontext()
        ):
            prepared = incremental_prepare(
                parent_state, delta, config, check_fingerprint=False
            )
        self._store.set_run_fingerprint(session.run_id, prepared.fingerprint)
        fp_dataset = f"fp:{prepared.fingerprint}"
        self._store.save_prepared(
            fp_dataset, session.seed, session.scale, config, prepared.state
        )
        if accel_enabled():
            child = self._substrate.derive(
                parent_arena,
                substrate_key(prepared.state.kb1, prepared.state.kb2, config),
            )
            # persist=False: a delta step per stream update would
            # otherwise append one full packed matrix to the store each
            # time, with nothing ever reclaiming them.
            child.attach(prepared.state, store=self._store, persist=False)
        with self._lock:
            self._cache_put(
                (fp_dataset, session.seed, session.scale, config_hash(config)),
                prepared.state,
            )
        reuse = {
            key: unit_record_from_doc(doc)
            for key, doc in self._store.load_unit_record_docs(
                session.parent_run_id
            ).items()
        }
        return prepared.state, prepared.changed, reuse, self.stream_truth(session.run_id)

    def stream_truth(self, run_id: str) -> set:
        """The simulation gold standard of a stream run's KB pair.

        The root's dataset gold, folded through every delta's
        ``gold_add``/``gold_remove`` along the lineage.
        """
        chain = self._store.lineage(run_id)
        if not chain:
            raise KeyError(f"unknown run {run_id!r}")
        root = chain[0]
        bundle = load_dataset(root.dataset, seed=root.seed, scale=root.scale)
        truth = set(bundle.gold_matches)
        for record in chain[1:]:
            delta_json = self._store.get_run_delta_json(record.run_id)
            if delta_json is not None:
                truth = KBDelta.from_doc(json.loads(delta_json)).apply_gold(truth)
        return truth

    def stream_outcome(self, run_id: str):
        """The live session's :class:`repro.stream.StreamOutcome`, if any."""
        with self._lock:
            session = self._sessions.get(run_id)
        return session.stream_outcome if session is not None else None

    def _session(self, run_id: str) -> MatchingSession:
        with self._lock:
            session = self._sessions.get(run_id)
        if session is None:
            raise KeyError(f"no live session for run {run_id!r}; use resume()")
        return session

    def step(self, run_id: str) -> bool:
        """Advance a foreground session one human–machine loop."""
        return self._session(run_id).step()

    def status(self, run_id: str) -> str:
        """Live session status, falling back to the ledger."""
        with self._lock:
            session = self._sessions.get(run_id)
        if session is not None:
            return session.status
        record = self._store.get_run(run_id)
        if record is None:
            raise KeyError(f"unknown run {run_id!r}")
        return record.status

    def result(self, run_id: str, timeout: float | None = None) -> RempResult:
        """The final result, driving or awaiting the session as needed.

        Background sessions are awaited; foreground sessions are stepped
        to completion in the calling thread; finished runs are read back
        from the ledger.
        """
        with self._lock:
            future = self._futures.get(run_id)
            session = self._sessions.get(run_id)
        if future is not None:
            return future.result(timeout=timeout)
        if session is not None:
            return session.run()
        stored = self._store.get_result(run_id)
        if stored is None:
            raise KeyError(f"run {run_id!r} has no stored result")
        return stored

    def wait_all(self, timeout: float | None = None) -> None:
        """Block until every background session has finished."""
        with self._lock:
            futures = list(self._futures.values())
        for future in futures:
            future.result(timeout=timeout)

    def list_runs(self, dataset: str | None = None) -> list[RunRecord]:
        return self._store.list_runs(dataset)
