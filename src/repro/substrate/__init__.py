"""Shared prepare substrate: one kernel arena per (KB pair, config).

The expensive prepare artifacts — the packed dominance matrix
(:class:`repro.accel.dominance.PackedVectors`), the
:class:`repro.accel.literals.LiteralScorer` interning arena, and the
candidate-generation token indexes — depend only on the two KBs and the
Remp configuration.  This package owns them once per
``(kb1 fingerprint, kb2 fingerprint, config hash)`` and hands them to
every pass that would otherwise rebuild its own: concurrent
:class:`repro.service.MatchingService` sessions, partition pool workers
(copy-on-write under ``fork``, ``multiprocessing.shared_memory`` under
``spawn``), and incremental stream steps deriving from a parent run.

Under ``REPRO_NO_ACCEL=1`` the substrate is a no-op passthrough —
:func:`current_substrate` returns ``None`` and every caller falls back
to the reference path, byte-identically.
"""

from repro.substrate.arena import (
    PrepareSubstrate,
    current_substrate,
    kb_fingerprint,
    substrate_key,
)
from repro.substrate.cache import SubstrateCache, shared_cache

__all__ = [
    "PrepareSubstrate",
    "SubstrateCache",
    "current_substrate",
    "kb_fingerprint",
    "shared_cache",
    "substrate_key",
]
