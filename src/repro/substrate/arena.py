"""The prepare arena: shared kernels for one (KB pair, config) key.

A :class:`PrepareSubstrate` is content-addressed — its key is
``(kb_fingerprint(kb1), kb_fingerprint(kb2), config_hash(config))`` —
so everything it caches is a pure function of the key:

* per-threshold :class:`repro.accel.LiteralScorer` arenas (their caches
  are content-addressed, so one scorer soundly serves every prepare,
  attribute-matching round, and incremental splice over the pair);
* the candidate-generation token indexes, keyed by KB *identity* (a
  different KB object — e.g. a delta-spliced copy — always rebuilds, so
  a stale index can never leak across stream steps);
* the canonical :class:`repro.accel.dominance.PackedVectors` float64
  matrix, adopted by every equal-content ``VectorIndex`` and optionally
  persisted as a store blob so a fresh process skips the re-pack.

Activation is scoped through a context variable:
``arena.activation()`` makes :func:`current_substrate` return the arena
for the duration (holding the arena lock, so concurrent passes over the
same pair serialize instead of racing the plain-dict caches), and the
prepare stages consult it.  When the accel layer is off
(``REPRO_NO_ACCEL=1``) :func:`current_substrate` always returns ``None``
and the pipeline takes the untouched reference path.
"""

from __future__ import annotations

import hashlib
import json
import threading
import weakref
from contextlib import contextmanager
from contextvars import ContextVar

from repro.accel.dominance import PackedVectors
from repro.accel.literals import LiteralScorer
from repro.accel.runtime import accel_enabled
from repro.kb.io import kb_to_doc
from repro.kb.model import KnowledgeBase
from repro.obs import runtime as obs
from repro.obs.logging import get_logger

#: A substrate key: (kb1 fingerprint, kb2 fingerprint, config hash).
Key = tuple[str, str, str]

log = get_logger("substrate")

_ACTIVE: ContextVar["PrepareSubstrate | None"] = ContextVar(
    "repro_substrate", default=None
)


def kb_fingerprint(kb: KnowledgeBase) -> str:
    """Stable digest of one KB's *content* (entities + triples).

    The single-KB analogue of :func:`repro.stream.kb_pair_fingerprint`:
    equal KBs produce equal fingerprints regardless of insertion order
    or mutation history.
    """
    blob = json.dumps(
        kb_to_doc(kb), sort_keys=True, separators=(",", ":"), default=str
    )
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


def substrate_key(kb1: KnowledgeBase, kb2: KnowledgeBase, config=None) -> Key:
    """The content address of the shared kernels for this pair + config."""
    # Runtime import: the store's serializers import the core pipeline,
    # which imports this package for current_substrate().
    from repro.store.serialize import config_hash

    return (kb_fingerprint(kb1), kb_fingerprint(kb2), config_hash(config))


def current_substrate() -> "PrepareSubstrate | None":
    """The arena activated for this context, or ``None`` (reference path)."""
    if not accel_enabled():
        return None
    return _ACTIVE.get()


class PrepareSubstrate:
    """One shared kernel arena; see the module docstring."""

    def __init__(self, key: Key):
        self.key = key
        self._lock = threading.RLock()
        self._scorers: dict[float, LiteralScorer] = {}
        self._token_indexes: dict[int, tuple[weakref.ref, object]] = {}
        self._adjacencies: dict[int, tuple[weakref.ref, object]] = {}
        self._labels_indexes: dict[int, tuple[weakref.ref, object]] = {}
        self._packed: PackedVectors | None = None
        #: How many prepared states attached (diagnostics + bench).
        self.attached = 0

    @property
    def key_str(self) -> str:
        """The key flattened for store blobs and telemetry payloads."""
        return ":".join(self.key)

    # -- activation -----------------------------------------------------
    @contextmanager
    def activation(self):
        """Make this arena :func:`current_substrate` for the duration.

        The arena lock is held throughout: the scorer and token caches
        are plain dicts, so two passes over the same pair serialize here
        (one computes, the next reuses) rather than locking per literal.
        """
        with self._lock:
            token = _ACTIVE.set(self)
            try:
                yield self
            finally:
                _ACTIVE.reset(token)

    # -- shared kernels -------------------------------------------------
    def scorer(self, threshold: float) -> LiteralScorer:
        """The pair's literal-interning arena for ``threshold``."""
        scorer = self._scorers.get(threshold)
        if scorer is None:
            scorer = self._scorers[threshold] = LiteralScorer(threshold)
            obs.count("substrate.scorer.created")
        else:
            obs.count("substrate.scorer.reused")
        return scorer

    def _identity_memo(self, slots: dict, side: int, kb: KnowledgeBase, builder, counter: str):
        """Memoized ``builder(kb)``, keyed by KB side *and identity*.

        Identity keying (``is``, against a weak reference to the KB the
        entry was built from) makes staleness impossible: a spliced or
        re-loaded KB is a different object and rebuilds, replacing the
        entry.  The reference is weak so a long-lived arena never pins a
        dropped KB alive — a dead entry simply rebuilds.
        """
        entry = slots.get(side)
        if entry is not None and entry[0]() is kb:
            obs.count(counter)
            return entry[1]
        result = builder(kb)
        slots[side] = (weakref.ref(kb), result)
        return result

    def token_index(self, side: int, kb: KnowledgeBase, builder):
        """The side's candidate token index (see :meth:`_identity_memo`)."""
        return self._identity_memo(
            self._token_indexes, side, kb, builder, "substrate.token_index.reused"
        )

    def er_adjacency(self, side: int, kb: KnowledgeBase, builder):
        """The side's ER-graph relation adjacency snapshot, memoized."""
        return self._identity_memo(
            self._adjacencies, side, kb, builder, "substrate.er_adjacency.reused"
        )

    def labels_index(self, side: int, kb: KnowledgeBase, builder):
        """The side's raw label → entities map, memoized."""
        return self._identity_memo(
            self._labels_indexes, side, kb, builder, "substrate.labels_index.reused"
        )

    # -- packed matrix --------------------------------------------------
    def attach(self, state, store=None, persist=True):
        """Bind a prepared state to this arena's canonical packed matrix.

        The first attach registers (or builds, via a store blob when one
        is available) the pair's ``PackedVectors``; later attaches of
        equal-content states adopt it instead of re-packing, so every
        session and pool worker on the key shares one float64 matrix.
        Content equality is checked outright — a mismatch (a restricted
        slice, a different pair under a colliding key) just re-packs.
        ``persist=False`` still *loads* a matching store blob but never
        saves one — stream delta steps use it, since one full matrix per
        delta step would grow ``substrate_blobs`` without bound and the
        hot arena already covers same-process reuse.  Passthrough when
        the accel layer is off.
        """
        if not accel_enabled():
            return state
        index = state.vector_index
        with self._lock:
            packed = self._packed
            if packed is not None and packed.same_content(index.vectors):
                if index._packed is not packed:
                    index._packed = packed
                    obs.count("substrate.packed.adopted")
            else:
                loaded = False
                if index._packed is None and store is not None:
                    adopted = _packed_from_store(store, self.key_str, index.vectors)
                    if adopted is not None:
                        index._packed = adopted
                        loaded = True
                        obs.count("substrate.blob.loaded")
                packed = index.packed()
                if packed.available:
                    self._packed = packed
                    if store is not None and not loaded and persist:
                        _packed_to_store(store, self.key_str, packed)
            self.attached += 1
            sessions = self.attached
        state.substrate_key = self.key
        obs.event("substrate.attach", key=self.key_str, sessions=sessions)
        return state


def _packed_to_store(store, key: str, packed: PackedVectors) -> None:
    """Best-effort persist of the canonical matrix (sorted-pair rows)."""
    blob = packed.sorted_blob()
    if blob is None:
        return
    rows, cols, payload = blob
    try:
        store.save_substrate_blob(key, rows, cols, payload)
        obs.count("substrate.blob.saved")
    except Exception:  # pragma: no cover - store closed / readonly
        log.debug("substrate blob save failed for %s", key, exc_info=True)


def _packed_from_store(store, key: str, vectors) -> PackedVectors | None:
    """Rebuild the canonical matrix from a store blob, or ``None``."""
    try:
        blob = store.load_substrate_blob(key)
    except Exception:  # pragma: no cover - store closed / readonly
        return None
    if blob is None:
        return None
    rows, cols, payload = blob
    return PackedVectors.from_sorted_blob(vectors, rows, cols, payload)
