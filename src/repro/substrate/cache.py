"""The process-wide substrate cache: LRU of prepare arenas by content key.

One :class:`SubstrateCache` (normally the module singleton behind
:func:`shared_cache`) maps each ``(kb1 fingerprint, kb2 fingerprint,
config hash)`` key to its :class:`repro.substrate.PrepareSubstrate`.
Concurrent :class:`repro.service.MatchingService` instances in one
process — and the pool workers forked under them — therefore converge on
one arena per KB pair instead of one per session.

Capacity is bounded: the least-recently-used arena is dropped past
``capacity`` entries (its kernels stay alive only while an attached
prepared state still references them), counted by
``substrate.evictions``.  ``derive`` seeds a delta-spliced child pair's
arena with *copies* of the parent's literal scorers — their caches are
content-addressed, so the child only pays for literals the delta
introduced, while each arena keeps sole ownership of its (mutable)
scorers.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict

from repro.obs import runtime as obs
from repro.substrate.arena import Key, PrepareSubstrate


class SubstrateCache:
    """Bounded LRU of :class:`PrepareSubstrate` arenas."""

    def __init__(self, capacity: int = 8):
        self.capacity = max(1, capacity)
        self._lock = threading.Lock()
        self._entries: OrderedDict[Key, PrepareSubstrate] = OrderedDict()
        #: Lookup accounting (also emitted as ``substrate.*`` counters).
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get_or_create(self, key: Key) -> PrepareSubstrate:
        """The arena for ``key``, created (and LRU-registered) on a miss."""
        with self._lock:
            arena = self._entries.get(key)
            if arena is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                obs.count("substrate.hits")
                return arena
            arena = PrepareSubstrate(key)
            self._entries[key] = arena
            self.misses += 1
            obs.count("substrate.misses")
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
                obs.count("substrate.evictions")
            return arena

    def derive(
        self, parent: PrepareSubstrate | None, key: Key
    ) -> PrepareSubstrate:
        """The arena for a child (delta-spliced) key, seeded by ``parent``.

        Only the literal scorers carry over — their interning caches are
        content-addressed and threshold-keyed, so reuse is sound for any
        KB pair.  They carry over as *snapshots*, never aliases: the two
        arenas have separate locks, so a scorer shared by both could be
        mutated by a parent-activated session and a child-activated
        stream step at once.  Token indexes and the packed matrix are
        pair-specific and rebuilt by the child.
        """
        arena = self.get_or_create(key)
        if parent is None or parent.key == key:
            return arena
        first, second = sorted((arena, parent), key=lambda a: a.key)
        with first._lock, second._lock:  # key-ordered: no AB/BA deadlock
            for threshold, scorer in parent._scorers.items():
                if threshold not in arena._scorers:
                    arena._scorers[threshold] = scorer.snapshot()
        obs.count("substrate.derived")
        return arena

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def stats(self) -> dict:
        with self._lock:
            return {
                "entries": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }


_shared = SubstrateCache()


def shared_cache() -> SubstrateCache:
    """The process-wide cache every service shares by default."""
    return _shared


def _reset_after_fork() -> None:
    # Forked pool workers inherit the parent's arenas mid-flight (their
    # locks may belong to threads that no longer exist); give the child
    # an empty cache — workers never attach arenas themselves.
    global _shared
    _shared = SubstrateCache(capacity=_shared.capacity)


if hasattr(os, "register_at_fork"):  # pragma: no branch - POSIX only
    os.register_at_fork(after_in_child=_reset_after_fork)
